"""Graceful shutdown of ``treesketch serve`` and the ``top`` console.

The daemon tests run the real CLI in a subprocess and deliver real
signals: SIGTERM must drain in-flight requests, log a final metrics
snapshot, and exit 0.  The ``top`` tests poll a canned /statusz through
the actual HTTP path.
"""

import json
import os
import re
import signal
import subprocess
import sys
import time

import pytest

from repro.cli import _render_statusz, main
from repro.core.build import build_treesketch
from repro.core.io import save_synopsis
from repro.core.stable import build_stable
from repro.obs.expo import ExpositionServer
from repro.xmltree.serialize import to_xml
from repro.xmltree.tree import XMLTree

pytestmark = pytest.mark.obs

_SERVE_RE = re.compile(r"on (\d+\.\d+\.\d+\.\d+):(\d+) \(protocol")
_TELEMETRY_RE = re.compile(r"telemetry on http://([\d.]+):(\d+)")


def _tree() -> XMLTree:
    return XMLTree.from_nested(
        ("r", [("a", [("p", ["k"]), "n"]), ("a", ["n"])]))


@pytest.fixture(scope="module")
def artifacts(tmp_path_factory):
    tmp = tmp_path_factory.mktemp("shutdown")
    doc = tmp / "doc.xml"
    doc.write_text(to_xml(_tree()))
    sketch = tmp / "sketch.json"
    save_synopsis(build_treesketch(build_stable(_tree()), 100 * 1024),
                  str(sketch))
    return {"doc": str(doc), "sketch": str(sketch)}


def _spawn_serve(artifacts, *extra):
    env = dict(os.environ)
    src = os.path.join(os.path.dirname(__file__), "..", "src")
    env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
    proc = subprocess.Popen(
        [sys.executable, "-m", "repro", "serve", artifacts["sketch"],
         "--port", "0", *extra],
        stdout=subprocess.PIPE, stderr=subprocess.STDOUT, text=True, env=env)
    addresses = {}
    deadline = time.monotonic() + 30
    while time.monotonic() < deadline:
        line = proc.stdout.readline()
        if not line:
            break
        match = _SERVE_RE.search(line)
        if match:
            addresses["serve"] = (match.group(1), int(match.group(2)))
        match = _TELEMETRY_RE.search(line)
        if match:
            addresses["telemetry"] = (match.group(1), int(match.group(2)))
        if "serve" in addresses and ("--metrics-port" not in extra
                                     or "telemetry" in addresses):
            return proc, addresses
    proc.kill()
    raise AssertionError("daemon did not report its addresses in time")


class TestGracefulShutdown:
    def test_sigterm_drains_and_exits_zero(self, artifacts):
        proc, addresses = _spawn_serve(artifacts, "--metrics-port", "0")
        from repro.serve.client import ServeClient

        with ServeClient(*addresses["serve"], retries=5) as client:
            assert client.estimate("//a") == 2.0
        proc.send_signal(signal.SIGTERM)
        out, _ = proc.communicate(timeout=30)
        assert proc.returncode == 0
        assert "draining in-flight requests" in out
        assert "drained" in out
        # The final metrics snapshot made it into the log, with the
        # request that was served before the signal.
        assert "final metrics snapshot" in out
        assert "serve.requests" in out

    def test_sigint_takes_the_same_path(self, artifacts):
        proc, _ = _spawn_serve(artifacts)
        proc.send_signal(signal.SIGINT)
        out, _ = proc.communicate(timeout=30)
        assert proc.returncode == 0
        assert "draining in-flight requests" in out

    def test_trace_file_is_flushed_on_sigterm(self, artifacts, tmp_path):
        trace = tmp_path / "trace.jsonl"
        proc, addresses = _spawn_serve(
            artifacts, "--metrics-port", "0", "--trace", str(trace))
        from repro.serve.client import ServeClient

        with ServeClient(*addresses["serve"], retries=5) as client:
            client.estimate("//a", request_id="shutdown-corr")
        proc.send_signal(signal.SIGTERM)
        proc.communicate(timeout=30)
        assert proc.returncode == 0
        records = [json.loads(line)
                   for line in trace.read_text().splitlines()]
        ids = {(r.get("attrs") or {}).get("request_id") for r in records}
        assert "shutdown-corr" in ids


class TestTop:
    STATUS = {
        "uptime_s": 12.0,
        "protocol": 1,
        "admission": {"depth": 1, "max_pending": 64, "degrade_watermark": 32,
                      "admitted_total": 9, "shed_total": 2},
        "sketches": [{"name": "xmark", "nodes": 40, "size_bytes": 2048,
                      "cache": {"hits": 5, "misses": 4, "size": 4,
                                "maxsize": 256, "evictions": 0}}],
        "latency": {"estimate": {"count": 9, "mean": 0.001, "p50": 0.001,
                                 "p95": 0.002, "p99": 0.003}},
        "accuracy": {"fraction": 0.1, "sampled": 1, "evaluated": 1,
                     "dropped": 0, "failed": 0, "pending": 0,
                     "rel_error_mean": 0.25, "rel_error_max": 0.5,
                     "rel_error_last": 0.25},
        "counters": {"serve.requests": 11},
    }

    def test_render_statusz_screen(self):
        screen = _render_statusz(self.STATUS, "http://127.0.0.1:9")
        assert "uptime 12s" in screen
        assert "depth 1/64" in screen
        assert "admitted 9  shed 2" in screen
        assert "xmark" in screen and "2.0 KB" in screen
        assert "p95" in screen and "2.00" in screen  # ms rendering
        assert "rel error mean 0.2500  max 0.5000" in screen
        assert "serve.requests" in screen

    def test_render_handles_minimal_status(self):
        screen = _render_statusz({}, "src")
        assert "shadow sampler off" in screen

    def test_top_polls_a_live_endpoint(self, capsys):
        server = ExpositionServer(snapshot_provider=dict,
                                  status_provider=lambda: self.STATUS,
                                  port=0).start()
        try:
            code = main(["top", f"127.0.0.1:{server.port}",
                         "--iterations", "2", "--interval", "0.01",
                         "--no-clear"])
        finally:
            server.stop()
        assert code == 0
        out = capsys.readouterr().out
        assert out.count("treesketch top") == 2
        assert "depth 1/64" in out

    def test_top_reports_unreachable_endpoint(self, capsys):
        import socket

        with socket.socket() as sock:
            sock.bind(("127.0.0.1", 0))
            port = sock.getsockname()[1]
        code = main(["top", f"127.0.0.1:{port}",
                     "--iterations", "1", "--no-clear"])
        assert code == 1
        assert "cannot poll" in capsys.readouterr().err

    def test_top_rejects_bad_address(self, capsys):
        assert main(["top", "no-port-here"]) == 2
        assert "HOST:PORT" in capsys.readouterr().err
