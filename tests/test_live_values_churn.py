"""``track_values`` snapshots under heavy churn.

The value extension's live contract: with ``LiveOptions(track_values=True)``
the maintainer's per-cluster value counters stay **exactly** equal to a
from-scratch recount of the current document after every reconcile -- no
drift, no leaks, across inserts, deletes, reclassifications, and
re-merges.  Every step also freezes a snapshot and *serves* it (through
:class:`repro.core.qcache.QueryCache`, the serving tier's read path) so
the check covers what a daemon would actually answer, not just internal
state: on a lossless budget the structural estimate equals exact truth
and value-predicate estimates respect the structural upper bound; on a
tight budget (real merges) the counters stay exact and estimates stay
finite and bounded.
"""

import random
from collections import Counter

import pytest

from repro.core.estimate import estimate_selectivity
from repro.core.evaluate import eval_query
from repro.core.live import (
    LiveOptions,
    SketchMaintainer,
    find_labeled,
    rebuild_partition_like,
)
from repro.core.qcache import QueryCache
from repro.engine.exact import ExactEvaluator
from repro.query.parser import parse_twig
from repro.xmltree.node import XMLNode
from repro.xmltree.tree import XMLTree

GENRES = ["scifi", "crime", "drama", "poetry"]

STRUCTURAL = parse_twig("//book ( /copy )")
VALUED = {
    genre: parse_twig(f'//book[/genre = "{genre}"] ( /copy )')
    for genre in GENRES
}


def _book(rng: random.Random) -> XMLNode:
    """A detached valued subtree: book -> genre(value) + 0..2 copies."""
    book = XMLNode("book")
    book.add_child(XMLNode("genre", value=rng.choice(GENRES)))
    for _ in range(rng.randrange(3)):
        book.add_child(XMLNode("copy"))
    return book


def _library(rng: random.Random, shelves: int = 6, books: int = 4) -> XMLTree:
    root = XMLNode("lib")
    for _ in range(shelves):
        shelf = root.add_child(XMLNode("shelf"))
        for _ in range(books):
            shelf.add_child(_book(rng))
    return XMLTree(root)


def _count_label(tree: XMLTree, label: str) -> int:
    return sum(1 for n in tree.root.iter_preorder() if n.label == label)


def _recount_values(maintainer: SketchMaintainer):
    """The oracle: per-cluster value counters recomputed from scratch."""
    counts = {}
    for node in maintainer.stable.tree.root.iter_preorder():
        if node.value is not None:
            cid = maintainer.stable.class_of(node)
            counts.setdefault(cid, Counter())[node.value] += 1
    return counts


def _churn(maintainer: SketchMaintainer, rng: random.Random, ops: int):
    """Random insert/delete churn; yields after every reconcile."""
    tree = maintainer.stable.tree
    for step in range(ops):
        n_books = _count_label(tree, "book")
        if rng.random() < 0.6 or n_books <= 4:
            shelf = find_labeled(
                tree.root, "shelf", rng.randrange(_count_label(tree, "shelf")))
            maintainer.insert_subtree(shelf, _book(rng))
        else:
            book = find_labeled(tree.root, "book", rng.randrange(n_books))
            maintainer.delete_subtree(book)
        yield step


def _live_counts(maintainer: SketchMaintainer):
    return {cid: counter
            for cid, counter in maintainer._value_counts.items() if counter}


def _check_serving(maintainer: SketchMaintainer, lossless: bool) -> None:
    """Freeze + serve the snapshot and estimate-check it."""
    snapshot = maintainer.snapshot()
    cache = QueryCache(snapshot)
    structural = cache.selectivity(STRUCTURAL)
    truth = float(ExactEvaluator(maintainer.stable.tree).selectivity(STRUCTURAL))
    # The served snapshot answers exactly like a from-scratch sketch
    # replaying the same cluster membership over the current document
    # (cluster_sq is the one divided statistic, hence the tolerance).
    replayed, _ = rebuild_partition_like(maintainer)
    oracle = estimate_selectivity(
        eval_query(replayed.to_treesketch(), STRUCTURAL))
    assert structural == pytest.approx(oracle, rel=1e-9)
    if lossless:
        # A generous budget: routing is the only lossy step, so the
        # structural estimate stays in tight range of exact truth.
        assert abs(structural - truth) / max(truth, 1.0) <= 0.5
    else:
        assert structural >= 0.0
    for genre, query in VALUED.items():
        valued = cache.selectivity(query)
        # Value filters can only narrow the structural answer.
        assert 0.0 <= valued <= structural + 1e-9
    # Snapshot summaries cover every valued element exactly once.
    assert snapshot.values is not None
    assert sum(s.total for s in snapshot.values.values()) == sum(
        1 for n in maintainer.stable.tree.root.iter_preorder()
        if n.value is not None)


class TestTrackValuesUnderChurn:

    def test_lossless_budget_counts_and_estimates_stay_exact(self):
        rng = random.Random(11)
        tree = _library(rng)
        # A huge budget plus an unreachable debt bar: routing is the only
        # lossy step, and the re-merge loop must never fire.
        maintainer = SketchMaintainer(
            tree, 10 * 1024 * 1024,
            LiveOptions(track_values=True, debt_threshold=1e9))
        for step in _churn(maintainer, rng, ops=60):
            assert _live_counts(maintainer) == _recount_values(maintainer)
            _check_serving(maintainer, lossless=True)
            if step % 10 == 9:
                maintainer.check()
        assert maintainer.mutations == 60
        assert maintainer.remerges == 0

    def test_tight_budget_counts_survive_remerges(self):
        rng = random.Random(23)
        tree = _library(rng, shelves=8, books=5)
        # A budget around half the lossless size: churn forces real
        # merges and the debt loop forces real re-merges.
        lossless = SketchMaintainer(
            tree.copy(), 10 * 1024 * 1024).snapshot().size_bytes()
        maintainer = SketchMaintainer(
            tree, max(512, lossless // 2),
            LiveOptions(track_values=True, debt_threshold=4.0))
        for step in _churn(maintainer, rng, ops=80):
            assert _live_counts(maintainer) == _recount_values(maintainer)
            _check_serving(maintainer, lossless=False)
            if step % 16 == 15:
                maintainer.check()
        assert maintainer.mutations == 80
        assert maintainer.remerges > 0  # churn actually exercised merging

    def test_deleting_every_book_empties_the_counters(self):
        rng = random.Random(5)
        maintainer = SketchMaintainer(
            _library(rng, shelves=2, books=2), 10 * 1024 * 1024,
            LiveOptions(track_values=True))
        tree = maintainer.stable.tree
        while _count_label(tree, "book"):
            maintainer.delete_subtree(find_labeled(tree.root, "book", 0))
            assert _live_counts(maintainer) == _recount_values(maintainer)
        assert _live_counts(maintainer) == {}
        snapshot = maintainer.snapshot()
        assert not snapshot.values
        for query in VALUED.values():
            assert QueryCache(snapshot).selectivity(query) == 0.0

    def test_value_histogram_matches_document(self):
        """Aggregated across clusters, tracked values equal a plain
        document histogram -- clusters partition the valued nodes."""
        rng = random.Random(77)
        maintainer = SketchMaintainer(
            _library(rng), 10 * 1024 * 1024, LiveOptions(track_values=True))
        for _ in _churn(maintainer, rng, ops=40):
            pass
        aggregated = Counter()
        for counter in _live_counts(maintainer).values():
            aggregated.update(counter)
        document = Counter(
            n.value for n in maintainer.stable.tree.root.iter_preorder()
            if n.value is not None)
        assert aggregated == document
