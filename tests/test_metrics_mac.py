"""Unit tests for the MAC-style set distance."""

import pytest

from repro.metrics.mac import FrequencyPenalty, mac_distance


def flat(a, b):
    """Ground distance: |a - b| on integer 'values'."""
    return abs(a - b)


def unit(_v):
    return 1.0


class TestIdentity:
    def test_identical_multisets(self):
        u = [(1, 3), (2, 2)]
        assert mac_distance(u, u, flat, unit) == 0.0

    def test_empty_vs_empty(self):
        assert mac_distance([], [], flat, unit) == 0.0

    def test_symmetry(self):
        u, v = [(1, 4)], [(1, 1), (3, 2)]
        d1 = mac_distance(u, v, flat, unit)
        d2 = mac_distance(v, u, flat, unit)
        assert d1 == d2


class TestMatching:
    def test_equal_values_match_free(self):
        assert mac_distance([(5, 2)], [(5, 2)], flat, unit) == 0.0

    def test_close_values_match_at_distance(self):
        # 1 unit of flow at distance 1; no residuals.
        assert mac_distance([(1, 1)], [(2, 1)], flat, unit) == 1.0

    def test_greedy_prefers_cheap_pairs(self):
        # (1 vs 1) matches free; (10 vs 12) at distance 2.
        d = mac_distance([(1, 1), (10, 1)], [(1, 1), (12, 1)], flat, unit)
        assert d == 2.0

    def test_flow_respects_multiplicities(self):
        # 3 copies of 1 vs 1 copy of 1: 1 matched, 2 residual (tri: 3).
        d = mac_distance([(1, 3)], [(1, 1)], flat, unit)
        assert d == FrequencyPenalty.TRIANGULAR(2)


class TestResidualPenalties:
    def test_empty_other_side_charges_magnitude(self):
        d = mac_distance([(1, 1)], [], flat, lambda v: 7.0)
        assert d == 7.0  # triangular(1) == 1

    def test_linear_penalty(self):
        d = mac_distance([(1, 4)], [], flat, unit, FrequencyPenalty.LINEAR)
        assert d == 4.0

    def test_triangular_penalty(self):
        d = mac_distance([(1, 4)], [], flat, unit, FrequencyPenalty.TRIANGULAR)
        assert d == 10.0

    def test_quadratic_penalty(self):
        d = mac_distance([(1, 4)], [], flat, unit, FrequencyPenalty.QUADRATIC)
        assert d == 16.0

    def test_superlinear_prefers_spread_out_differences(self):
        """The Fig. 10 discrimination: residuals (3, 0) must cost more than
        residuals (2, 1) under a superlinear penalty."""
        concentrated = mac_distance([("x", 4)], [("x", 1)], flat_eq, unit)
        spread = (
            mac_distance([("x", 3)], [("x", 1)], flat_eq, unit)
            + mac_distance([("y", 2)], [("y", 1)], flat_eq, unit)
        )
        assert spread < concentrated

    def test_magnitude_scales_residuals(self):
        d = mac_distance([("x", 2)], [], flat_eq, lambda v: 5.0)
        assert d == 5.0 * FrequencyPenalty.TRIANGULAR(2)


def flat_eq(a, b):
    return 0.0 if a == b else 1.0


class TestMixedScenarios:
    def test_partial_overlap(self):
        # Values {1:2, 2:1} vs {1:1, 3:1}: 1 matches 1; 2 matches 3 (d=1);
        # residual one copy of 1 (tri(1)=1).
        d = mac_distance([(1, 2), (2, 1)], [(1, 1), (3, 1)], flat, unit)
        assert d == 2.0

    def test_zero_distance_cross_values(self):
        # Different value ids at distance 0 still match free.
        d = mac_distance([("a", 2)], [("b", 2)], lambda x, y: 0.0, unit)
        assert d == 0.0


class TestExactMode:
    def test_exact_equals_greedy_on_simple_sets(self):
        u, v = [(1, 2), (5, 1)], [(2, 1), (5, 2)]
        greedy = mac_distance(u, v, flat, unit)
        exact = mac_distance(u, v, flat, unit, exact=True)
        assert exact <= greedy + 1e-9

    def test_exact_beats_greedy_on_adversarial_case(self):
        # Classic greedy failure: L={0,3}, R={2,5}.  Greedy takes the
        # cheapest pair (3,2)=1 first and is forced into (0,5)=5, total 6;
        # the optimal matching (0,2)+(3,5) costs 4.
        u, v = [(0, 1), (3, 1)], [(2, 1), (5, 1)]
        greedy = mac_distance(u, v, flat, unit)
        exact = mac_distance(u, v, flat, unit, exact=True)
        assert exact == 4.0
        assert greedy == 6.0

    def test_exact_falls_back_when_too_large(self):
        u = [(i, 3) for i in range(20)]  # 60 units > exact_limit
        v = [(i + 1, 3) for i in range(20)]
        assert mac_distance(u, v, flat, unit, exact=True) == mac_distance(
            u, v, flat, unit
        )

    def test_exact_identity_zero(self):
        u = [(1, 3), (2, 2)]
        assert mac_distance(u, u, flat, unit, exact=True) == 0.0

    def test_exact_residuals_penalized(self):
        d = mac_distance([(1, 4)], [(1, 1)], flat, unit, exact=True)
        assert d == FrequencyPenalty.TRIANGULAR(3)
