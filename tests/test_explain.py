"""Error-provenance oracle for :mod:`repro.core.explain`.

The load-bearing invariant: with explain enabled, the per-cluster
contribution terms sum (left-associated, in the order returned) to the
plain estimator's answer *bitwise* — these tests assert ``==`` on the
floats, never approximate closeness — with and without numpy.  With
explain disabled, the plain estimate path does zero extra work, pinned
by the module's activity probes.
"""

import random

import pytest

from repro.core.build import build_treesketch
from repro.core.estimate import estimate_selectivity, estimate_selectivity_batch
from repro.core.evaluate import eval_query
from repro.core.explain import (
    PROBES,
    EstimateExplanation,
    explain_estimate,
    explain_query,
    reset_probes,
)
from repro.core.npsupport import have_numpy
from repro.core.stable import build_stable
from repro.query.parser import parse_twig
from repro.workload.workload import make_workload
from tests.conftest import make_random_tree


def _workload_results(seed, size=300, queries=25, budget_kb=4):
    rng = random.Random(seed)
    tree = make_random_tree(rng, size)
    stable = build_stable(tree)
    sketch = build_treesketch(stable, budget_kb * 1024)
    wl = make_workload(tree, num_queries=queries, seed=seed, stable=stable)
    return sketch, wl, [eval_query(sketch, q) for q in wl.queries]


def _fold(contributions):
    total = 0.0
    for _cluster, term in contributions:
        total += term
    return total


@pytest.mark.parametrize("seed", [0, 7, 42])
def test_contributions_sum_bitwise(seed):
    """Left-associated fold of the terms == the plain estimate, exactly."""
    _sketch, _wl, results = _workload_results(seed)
    batch = estimate_selectivity_batch(results)
    assert any(not r.empty for r in results)
    for result, batched in zip(results, batch):
        expl = explain_estimate(result)
        plain = estimate_selectivity(result)
        assert expl.estimate == plain
        assert expl.exact_split or result.empty or not expl.contributions
        assert _fold(expl.contributions) == plain
        assert expl.estimate == batched


@pytest.mark.parametrize("seed", [0, 7])
def test_contributions_sum_bitwise_without_numpy(seed, monkeypatch):
    monkeypatch.setenv("REPRO_NO_NUMPY", "1")
    assert not have_numpy()
    _sketch, _wl, results = _workload_results(seed)
    for result in results:
        expl = explain_estimate(result)
        assert _fold(expl.contributions) == estimate_selectivity(result)


def test_disabled_path_does_no_explain_work():
    """Plain eval/estimate must never touch the explain machinery."""
    reset_probes()
    _sketch, _wl, results = _workload_results(3, queries=15)
    for result in results:
        estimate_selectivity(result)
    estimate_selectivity_batch(results)
    assert PROBES == {"explain_calls": 0, "dp_keys": 0}
    explain_estimate(results[0])
    assert PROBES["explain_calls"] == 1
    reset_probes()


def test_empty_result(paper_document):
    stable = build_stable(paper_document)
    sketch = build_treesketch(stable, 64 * 1024)
    empty = eval_query(sketch, parse_twig("//p (//zzz)"))
    assert empty.empty
    expl = explain_estimate(empty)
    assert expl.estimate == 0.0
    assert expl.contributions == []
    assert expl.clusters == []
    assert expl.touched == 0


def test_multi_branch_root_falls_back(paper_document):
    """``q0`` with several child groups has no additive split; the whole
    estimate is attributed to the root cluster and still sums exactly."""
    stable = build_stable(paper_document)
    sketch = build_treesketch(stable, 64 * 1024)
    result = eval_query(sketch, parse_twig("//a, //p"))
    expl = explain_estimate(result)
    plain = estimate_selectivity(result)
    assert not expl.exact_split
    assert expl.contributions == [(result.root_key[0], plain)]
    assert _fold(expl.contributions) == plain


def test_optional_clamp_falls_back(paper_document):
    """A fired max(1, .) clamp at the root group is not a sum of terms."""
    stable = build_stable(paper_document)
    sketch = build_treesketch(stable, 64 * 1024)
    result = eval_query(sketch, parse_twig("//zzz?"))
    expl = explain_estimate(result)
    plain = estimate_selectivity(result)
    assert _fold(expl.contributions) == plain
    if plain == 1.0:  # clamp fired: single root-attributed term
        assert not expl.exact_split


def test_debt_ranks_clusters(paper_document):
    stable = build_stable(paper_document)
    sketch = build_treesketch(stable, 64 * 1024)
    result = eval_query(sketch, parse_twig("//a (//p (//k))"))
    base = explain_estimate(result)
    assert base.clusters, "expected touched clusters"
    assert all(c.debt == 0.0 and c.error_weight == 0.0 for c in base.clusters)
    # Load one touched cluster with debt: it must rank first.
    victim = base.clusters[-1].cluster
    expl = explain_estimate(result, debt={victim: 99.0})
    assert expl.clusters[0].cluster == victim
    assert expl.clusters[0].error_weight == pytest.approx(
        expl.clusters[0].mass * 99.0
    )
    # top_k truncates.
    assert len(explain_estimate(result, top_k=1).clusters) == 1


def test_explain_query_convenience(paper_document):
    stable = build_stable(paper_document)
    sketch = build_treesketch(stable, 64 * 1024)
    query = parse_twig("//a (//p)")
    expl = explain_query(sketch, query, top_k=3)
    assert isinstance(expl, EstimateExplanation)
    assert expl.estimate == estimate_selectivity(eval_query(sketch, query))
    payload = expl.to_payload()
    assert payload["estimate"] == expl.estimate
    assert len(payload["clusters"]) == len(expl.clusters)
    assert all({"cluster", "term"} <= set(c) for c in payload["contributions"])


def test_touched_counts_distinct_clusters():
    _sketch, _wl, results = _workload_results(1, queries=10)
    for result in results:
        expl = explain_estimate(result, top_k=10_000)
        if result.empty:
            continue
        distinct = {key[0] for key in result.label}
        assert expl.touched == len(distinct)
        assert {c.cluster for c in expl.clusters} <= distinct
