"""Unit tests for TSBUILD / CREATEPOOL (repro.core.build, repro.core.pool)."""

import pytest

from repro.core.build import TreeSketchBuilder, TSBuildOptions, build_treesketch, compress_to_budgets
from repro.core.partition import MergePartition
from repro.core.pool import create_pool
from repro.core.stable import build_stable
from tests.conftest import make_random_tree


class TestCreatePool:
    def test_empty_when_no_mergeable_labels(self, small_tree):
        # small_tree's stable summary: r, two a-classes?, b, c...
        s = build_stable(small_tree)
        part = MergePartition(s)
        pool = create_pool(part, heap_upper=100)
        labels = [part.cluster_label[c] for c in part.members]
        mergeable = len(labels) != len(set(labels))
        assert bool(pool) == mergeable

    def test_pool_respects_upper_bound(self, rng):
        tree = make_random_tree(rng, 400)
        part = MergePartition(build_stable(tree))
        pool = create_pool(part, heap_upper=10)
        assert len(pool) <= 10

    def test_pool_entries_are_same_label(self, rng):
        tree = make_random_tree(rng, 300)
        part = MergePartition(build_stable(tree))
        for _ratio, _errd, _sized, u, v in create_pool(part, heap_upper=200):
            assert part.cluster_label[u] == part.cluster_label[v]
            assert u != v

    def test_bounded_pool_is_subset_of_exhaustive(self, rng):
        # A small pool stops at shallow levels (the paper's bottom-up
        # schedule), so it is a subset of the exhaustive pool -- not
        # necessarily the globally best ratios.
        tree = make_random_tree(rng, 300)
        part = MergePartition(build_stable(tree))
        full = create_pool(part, heap_upper=10_000, pair_window=None)
        small = create_pool(part, heap_upper=5, pair_window=None)
        assert len(small) == 5
        pairs_full = {tuple(sorted(e[3:5])) for e in full}
        pairs_small = {tuple(sorted(e[3:5])) for e in small}
        assert pairs_small <= pairs_full

    def test_bounded_pool_keeps_best_ratios_single_level(self):
        # With all mergeable nodes at one depth, the bounded pool must keep
        # exactly the best-ratio candidates.
        from repro.xmltree.tree import XMLTree

        spec = ("r", [("a", ["x"] * i) for i in range(1, 8)])
        part = MergePartition(build_stable(XMLTree.from_nested(spec)))
        full = create_pool(part, heap_upper=10_000, pair_window=None)
        small = create_pool(part, heap_upper=4, pair_window=None)
        best_full = sorted(e[0] for e in full)[:4]
        best_small = sorted(e[0] for e in small)
        assert best_small == pytest.approx(best_full)

    def test_window_none_is_superset(self, rng):
        tree = make_random_tree(rng, 200)
        part = MergePartition(build_stable(tree))
        windowed = create_pool(part, heap_upper=10_000, pair_window=4)
        exhaustive = create_pool(part, heap_upper=10_000, pair_window=None)
        pairs_w = {tuple(sorted(e[3:5])) for e in windowed}
        pairs_e = {tuple(sorted(e[3:5])) for e in exhaustive}
        assert pairs_w <= pairs_e


class TestBuildTreesketch:
    def test_budget_respected(self, rng):
        tree = make_random_tree(rng, 500)
        stable = build_stable(tree)
        budget = stable.size_bytes() // 2
        sketch = build_treesketch(stable, budget)
        assert sketch.size_bytes() <= budget
        sketch.validate()

    def test_generous_budget_returns_stable_shape(self, paper_document):
        stable = build_stable(paper_document)
        sketch = build_treesketch(stable, stable.size_bytes() * 2)
        assert sketch.num_nodes == stable.num_nodes
        assert sketch.squared_error() == 0.0

    def test_unreachable_budget_stops_at_label_split(self, rng):
        tree = make_random_tree(rng, 300)
        sketch = build_treesketch(tree, 1)  # impossible budget
        labels = [sketch.label[nid] for nid in sketch.node_ids()]
        # One node per label: nothing mergeable remains.
        assert len(labels) == len(set(labels))

    def test_accepts_tree_or_stable(self, paper_document):
        stable = build_stable(paper_document)
        a = build_treesketch(paper_document, 64)
        b = build_treesketch(stable, 64)
        assert a.size_bytes() == b.size_bytes()

    def test_squared_error_grows_with_compression(self, rng):
        tree = make_random_tree(rng, 600)
        stable = build_stable(tree)
        builder = TreeSketchBuilder(stable)
        errors = []
        for fraction in (0.8, 0.5, 0.3, 0.15):
            sketch = builder.compress_to(int(stable.size_bytes() * fraction))
            errors.append(sketch.squared_error())
        assert errors == sorted(errors)

    def test_root_preserved(self, rng):
        tree = make_random_tree(rng, 300)
        sketch = build_treesketch(tree, 128)
        assert sketch.label[sketch.root_id] == "r"
        assert sketch.count[sketch.root_id] >= 1

    def test_counts_conserved(self, rng):
        tree = make_random_tree(rng, 300)
        sketch = build_treesketch(tree, 200)
        assert sum(sketch.count.values()) == len(tree)

    def test_small_pool_lh_interaction(self, paper_document):
        # A pool smaller than Lh must still drain (regression guard): the
        # builder must make progress all the way to the label-split floor.
        stable = build_stable(paper_document)
        options = TSBuildOptions(heap_upper=10_000, heap_lower=100)
        sketch = build_treesketch(stable, 1, options)
        labels = [sketch.label[nid] for nid in sketch.node_ids()]
        assert len(labels) == len(set(labels))  # fully merged per label

    def test_deterministic(self, rng):
        tree = make_random_tree(rng, 400)
        stable = build_stable(tree)
        a = build_treesketch(stable, 300)
        b = build_treesketch(build_stable(tree), 300)
        assert a.size_bytes() == b.size_bytes()
        assert abs(a.squared_error() - b.squared_error()) < 1e-9


class TestCompressToBudgets:
    def test_sweep_matches_individual_builds(self, rng):
        tree = make_random_tree(rng, 400)
        stable = build_stable(tree)
        floor = build_treesketch(stable, 1).size_bytes()  # label-split graph
        budgets = [b for b in (1200, 800, 500) if b >= floor]
        assert budgets, "fixture tree produced an unexpectedly large floor"
        sweep = compress_to_budgets(stable, budgets)
        for budget in budgets:
            assert sweep[budget].size_bytes() <= budget

    def test_sweep_monotone_error(self, rng):
        tree = make_random_tree(rng, 500)
        budgets = [800, 500, 300, 150]
        sweep = compress_to_budgets(build_stable(tree), budgets)
        errors = [sweep[b].squared_error() for b in sorted(budgets, reverse=True)]
        assert errors == sorted(errors)

    def test_duplicate_budgets_deduplicated(self, paper_document):
        sweep = compress_to_budgets(build_stable(paper_document), [100, 100, 50])
        assert set(sweep) == {100, 50}
