"""Unit tests for the TSBUILD merge partition (repro.core.partition)."""

import random

import pytest

from repro.core.partition import MergePartition
from repro.core.size import EDGE_BYTES, NODE_BYTES
from repro.core.stable import build_stable
from repro.core.treesketch import TreeSketch
from repro.xmltree.tree import XMLTree
from tests.conftest import make_random_tree


def label_pairs(part):
    """All mergeable same-label cluster pairs in the partition."""
    by_label = {}
    for cid, lab in part.cluster_label.items():
        by_label.setdefault(lab, []).append(cid)
    pairs = []
    for group in by_label.values():
        for i in range(len(group)):
            for j in range(i + 1, len(group)):
                pairs.append((group[i], group[j]))
    return pairs


class TestInitialState:
    def test_initial_matches_stable(self, paper_document):
        s = build_stable(paper_document)
        part = MergePartition(s)
        assert part.num_nodes == s.num_nodes
        assert part.num_edges == s.num_edges
        assert part.total_sq == 0.0
        assert part.size_bytes() == s.size_bytes()

    def test_initial_invariants(self, paper_document):
        MergePartition(build_stable(paper_document)).check_invariants()

    def test_to_treesketch_initial(self, paper_document):
        s = build_stable(paper_document)
        ts = MergePartition(s).to_treesketch()
        ts.validate()
        assert ts.squared_error() == 0.0
        ref = TreeSketch.from_stable(s)
        assert ts.count == ref.count
        for src, dst, avg in ref.edges():
            assert abs(ts.out[src][dst] - avg) < 1e-12


class TestEvaluateMerge:
    def test_self_merge_rejected(self, paper_document):
        part = MergePartition(build_stable(paper_document))
        cid = next(iter(part.members))
        with pytest.raises(ValueError):
            part.evaluate_merge(cid, cid)

    def test_sized_always_positive(self, paper_document):
        part = MergePartition(build_stable(paper_document))
        for u, v in label_pairs(part):
            assert part.evaluate_merge(u, v).sized >= NODE_BYTES

    def test_evaluate_matches_apply(self, rng):
        for _ in range(8):
            tree = make_random_tree(rng, rng.randint(20, 150))
            part = MergePartition(build_stable(tree))
            for _ in range(25):
                pairs = label_pairs(part)
                if not pairs:
                    break
                u, v = rng.choice(pairs)
                predicted = part.evaluate_merge(u, v)
                sq_before = part.total_sq
                size_before = part.size_bytes()
                part.apply_merge(u, v)
                assert abs((part.total_sq - sq_before) - predicted.errd) < 1e-6
                assert (size_before - part.size_bytes()) == predicted.sized

    def test_identical_structure_merge_is_free(self):
        # Two a's with identical sub-trees but different parents paths? In a
        # stable summary they are already one class; construct differing
        # contexts: a under r and a under s, same sub-structure.
        tree = XMLTree.from_nested(
            ("r", [("s", [("a", ["x"])]), ("a", ["x"])])
        )
        s = build_stable(tree)
        assert len(s.nodes_with_label("a")) == 1  # same sub-tree, one class

    def test_merge_of_different_counts_costs_error(self, figure3_t2):
        s = build_stable(figure3_t2)
        part = MergePartition(s)
        (b1, b4) = s.nodes_with_label("b")
        result = part.evaluate_merge(b1, b4)
        # Merging b-with-1-c and b-with-4-c: counts (1,1,4,4) -> sq 9.
        # Plus the parent a-classes' dimensions collapse.
        assert result.errd > 0


class TestApplyMerge:
    def test_counts_conserved(self, paper_document, rng):
        s = build_stable(paper_document)
        part = MergePartition(s)
        total = sum(part.count.values())
        while True:
            pairs = label_pairs(part)
            if not pairs:
                break
            part.apply_merge(*rng.choice(pairs))
            part.check_invariants()
            assert sum(part.count.values()) == total

    def test_dead_cluster_rejected(self, paper_document):
        part = MergePartition(build_stable(paper_document))
        pairs = label_pairs(part)
        if not pairs:
            pytest.skip("no mergeable pairs in fixture")
        u, v = pairs[0]
        part.apply_merge(u, v)
        with pytest.raises(ValueError):
            part.apply_merge(u, v)

    def test_versions_bumped_for_neighbourhood(self, figure3_t2):
        s = build_stable(figure3_t2)
        part = MergePartition(s)
        b1, b4 = s.nodes_with_label("b")
        versions_before = dict(part.version)
        part.apply_merge(b1, b4)
        # The merged node and the parent a-clusters must change version.
        assert part.version[b1] != versions_before.get(b1)
        for a in s.nodes_with_label("a"):
            assert part.version[a] != versions_before.get(a)

    def test_depth_is_max_of_members(self, paper_document, rng):
        s = build_stable(paper_document)
        part = MergePartition(s)
        pairs = label_pairs(part)
        if not pairs:
            pytest.skip("no mergeable pairs")
        u, v = pairs[0]
        expected = max(part.cluster_depth[u], part.cluster_depth[v])
        part.apply_merge(u, v)
        assert part.cluster_depth[u] == expected

    def test_treesketch_export_after_merges(self, rng):
        tree = make_random_tree(rng, 120)
        part = MergePartition(build_stable(tree))
        for _ in range(15):
            pairs = label_pairs(part)
            if not pairs:
                break
            part.apply_merge(*rng.choice(pairs))
        ts = part.to_treesketch()
        ts.validate()
        assert abs(ts.squared_error() - max(0.0, part.total_sq)) < 1e-6 * max(
            1.0, abs(part.total_sq)
        ) + 1e-6

    def test_merge_nodes_with_mutual_edges(self):
        # Recursive label: section inside section.
        tree = XMLTree.from_nested(
            ("r", [("s", [("s", ["x"]), "x"]), ("s", ["x"])])
        )
        s = build_stable(tree)
        part = MergePartition(s)
        sections = [c for c in part.members if part.cluster_label[c] == "s"]
        # Merge all section classes; some have edges into others.
        while len(sections) > 1:
            part.apply_merge(sections[0], sections[1])
            part.check_invariants()
            sections = [c for c in part.members if part.cluster_label[c] == "s"]
        ts = part.to_treesketch()
        ts.validate()


class TestNonImprovingMerges:
    """sized <= 0 candidates: defined ratio, skipped at pool insertion.

    A merge that frees no space cannot improve the error/size trade-off;
    ``MergeResult.ratio`` reports it as ``inf`` (instead of raising
    ZeroDivisionError) and candidate generation never pools it.
    """

    def test_ratio_is_inf_not_zero_division(self):
        from repro.core.partition import MergeResult

        assert MergeResult(5.0, 0).ratio == float("inf")
        assert MergeResult(0.0, 0).ratio == float("inf")
        assert MergeResult(5.0, -EDGE_BYTES).ratio == float("inf")
        assert MergeResult(6.0, 3).ratio == 2.0

    def test_scored_merge_guards_sized(self, monkeypatch):
        part = MergePartition(build_stable(make_random_tree(random.Random(0), 60)))
        monkeypatch.setattr(part, "_eval_raw", lambda u, v: (1.0, 0))
        u, v = label_pairs(part)[0]
        assert part.scored_merge(u, v) == (float("inf"), 1.0, 0)
        part.enable_memo()
        assert part.scored_merge(u, v) == (float("inf"), 1.0, 0)
        # Served from the memo on repeat, still guarded.
        assert part.scored_merge(u, v) == (float("inf"), 1.0, 0)
        assert part.memo_hits == 1

    @pytest.mark.parametrize("memoize", [False, True])
    def test_pool_skips_non_improving_candidates(self, memoize, monkeypatch):
        from repro.core.pool import PoolState, create_pool

        part = MergePartition(build_stable(make_random_tree(random.Random(1), 80)))
        assert label_pairs(part), "need at least one candidate pair"
        monkeypatch.setattr(part, "_eval_raw", lambda u, v: (1.0, 0))
        state = None
        if memoize:
            part.enable_memo()
            state = PoolState(part)
        pool = create_pool(part, 100, None, state=state, memoize=memoize)
        assert pool == []
        if memoize:
            # The memoized entries are re-served on the second pass and
            # must stay excluded there too.
            assert create_pool(part, 100, None, state=state, memoize=True) == []
            assert part.memo_hits > 0

    def test_kernel_scored_merge_guards_sized(self, monkeypatch):
        from repro.core.kernel import KernelPartition

        part = KernelPartition(build_stable(make_random_tree(random.Random(2), 60)))
        monkeypatch.setattr(part, "_eval_raw", lambda u, v: (2.0, 0))
        u, v = label_pairs(part)[0]
        assert part.scored_merge(u, v) == (float("inf"), 2.0, 0)
        part.enable_memo()
        assert part.scored_merge(u, v) == (float("inf"), 2.0, 0)
