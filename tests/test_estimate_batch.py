"""Batch selectivity estimation vs. the scalar estimator.

``estimate_selectivity_batch`` flattens many result-sketch DPs into
shared arrays and runs them through numpy scatter ops.  Because
``np.add.at`` / ``np.multiply.at`` are unbuffered (applied strictly in
array order) and the arrays are emitted in the scalar estimator's
iteration order, the batch path must agree with the sequential one
*exactly* -- these tests assert ``==`` on the floats, not approximate
closeness.  The pure-python fallback (``REPRO_NO_NUMPY``) is the scalar
estimator itself, so it is trivially identical; the tests prove the
gate actually routes there.
"""

import random

import pytest

from repro.core.build import build_treesketch
from repro.core.estimate import estimate_selectivity, estimate_selectivity_batch
from repro.core.evaluate import eval_query
from repro.core.npsupport import have_numpy
from repro.core.stable import build_stable
from repro.query.parser import parse_twig
from repro.workload.runner import run_selectivity
from repro.workload.workload import make_workload
from tests.conftest import make_random_tree


def _workload_results(seed, size=300, queries=25, budget_kb=4):
    rng = random.Random(seed)
    tree = make_random_tree(rng, size)
    stable = build_stable(tree)
    sketch = build_treesketch(stable, budget_kb * 1024)
    wl = make_workload(tree, num_queries=queries, seed=seed, stable=stable)
    return sketch, wl, [eval_query(sketch, q) for q in wl.queries]


@pytest.mark.parametrize("seed", [0, 7, 42])
def test_batch_equals_sequential(seed):
    _sketch, _wl, results = _workload_results(seed)
    sequential = [estimate_selectivity(r) for r in results]
    assert estimate_selectivity_batch(results) == sequential


@pytest.mark.parametrize("seed", [0, 7])
def test_batch_fallback_without_numpy(seed, monkeypatch):
    _sketch, _wl, results = _workload_results(seed)
    sequential = [estimate_selectivity(r) for r in results]
    monkeypatch.setenv("REPRO_NO_NUMPY", "1")
    assert not have_numpy()
    assert estimate_selectivity_batch(results) == sequential


def test_batch_handles_empty_inputs(paper_document):
    assert estimate_selectivity_batch([]) == []
    stable = build_stable(paper_document)
    sketch = build_treesketch(stable, 64 * 1024)
    # "//p (//zzz)" has no bindings for the solid child: an empty result.
    empty = eval_query(sketch, parse_twig("//p (//zzz)"))
    assert empty.empty
    full = eval_query(sketch, parse_twig("//a (//p)"))
    batch = estimate_selectivity_batch([empty, full, empty])
    assert batch[0] == 0.0 and batch[2] == 0.0
    assert batch[1] == estimate_selectivity(full)


def test_batch_optional_edges(paper_document):
    """Dashed (optional) children exercise the max(1, .) clamp."""
    stable = build_stable(paper_document)
    sketch = build_treesketch(stable, 64 * 1024)
    queries = [
        parse_twig("//a (//p (//k?))"),
        parse_twig("//a (//zzz?)"),  # optional with no bindings: clamp to 1
        parse_twig("//p (//y, //k?)"),
    ]
    results = [eval_query(sketch, q) for q in queries]
    sequential = [estimate_selectivity(r) for r in results]
    assert estimate_selectivity_batch(results) == sequential
    assert sequential[1] >= 1.0  # the clamp kept the optional factor alive


@pytest.mark.parametrize("use_cache", [False, True])
def test_runner_batch_mode_matches_sequential(use_cache):
    sketch, wl, _results = _workload_results(3, queries=15)
    cache = 32 if use_cache else None
    seq = run_selectivity(sketch, wl, cache=cache)
    bat = run_selectivity(sketch, wl, cache=cache, batch=True)
    assert bat.per_query == seq.per_query
    assert bat.avg_error == seq.avg_error


def test_runner_batch_respects_query_slice():
    sketch, wl, _results = _workload_results(5, queries=12)
    seq = run_selectivity(sketch, wl, queries=[0, 3, 7])
    bat = run_selectivity(sketch, wl, queries=[0, 3, 7], batch=True)
    assert bat.per_query == seq.per_query
