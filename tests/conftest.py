"""Shared fixtures and tree-building helpers for the test suite."""

from __future__ import annotations

import random

import pytest

from repro.xmltree.node import XMLNode
from repro.xmltree.tree import XMLTree


def make_random_tree(rng: random.Random, size: int, labels: str = "abcdef") -> XMLTree:
    """Uniform random attachment tree with random labels (root label 'r')."""
    root = XMLNode("r")
    nodes = [root]
    for _ in range(size):
        parent = rng.choice(nodes)
        nodes.append(parent.new_child(rng.choice(labels)))
    return XMLTree(root)


@pytest.fixture
def paper_document() -> XMLTree:
    """The bibliography document of the paper's Figure 1.

    d0 with three authors; papers carry year/title/keywords, books a title.
    """
    paper1 = ("p", ["y", "t", "k"])       # e.g. p4: y13 t14 k15
    paper2 = ("p", ["y", "t", "k", "k"])  # p5: y16 t17 k18 k19
    book = ("b", ["t"])
    return XMLTree.from_nested(
        (
            "d",
            [
                ("a", [paper1, "n", paper2]),   # a1: p4 n6 p5
                ("a", ["n", book, paper1]),     # a2: n7 b9 p8
                ("a", ["n", book, paper1]),     # a3: n10 b12 p9
            ],
        )
    )


@pytest.fixture
def small_tree() -> XMLTree:
    """r -> a(b c c) a(b)."""
    return XMLTree.from_nested(
        ("r", [("a", [("b", []), "c", "c"]), ("a", [("b", [])])])
    )


@pytest.fixture
def figure3_t1() -> XMLTree:
    """Document T1 of the paper's Figure 3 (a1: b1 c, b4 c; a2: b1 c, b4 c).

    Numbers along edges in the figure are child multiplicities of c under
    each b.
    """
    return XMLTree.from_nested(
        (
            "r",
            [
                ("a", [("b", ["c"]), ("b", ["c"] * 4)]),
                ("a", [("b", ["c"]), ("b", ["c"] * 4)]),
            ],
        )
    )


@pytest.fixture
def figure3_t2() -> XMLTree:
    """Document T2 of Figure 3 (a1: b1 c, b1 c; a2: b4 c, b4 c)."""
    return XMLTree.from_nested(
        (
            "r",
            [
                ("a", [("b", ["c"]), ("b", ["c"])]),
                ("a", [("b", ["c"] * 4), ("b", ["c"] * 4)]),
            ],
        )
    )


@pytest.fixture
def rng() -> random.Random:
    return random.Random(0xC0FFEE)
