"""Tests for ASCII / dot rendering."""

import pytest

from repro.core.stable import build_stable
from repro.core.treesketch import TreeSketch
from repro.engine.exact import ExactEvaluator
from repro.query.parser import parse_twig
from repro.xmltree.parser import parse_xml
from repro.xmltree.render import render_nesting_tree, render_tree, synopsis_to_dot
from repro.xmltree.tree import XMLTree


class TestRenderTree:
    def test_single_node(self):
        assert render_tree(XMLTree.from_nested(("r", []))) == "r"

    def test_structure_markers(self, small_tree):
        text = render_tree(small_tree)
        assert text.splitlines()[0] == "r"
        assert "|--" in text
        assert "`--" in text

    def test_every_node_rendered(self, paper_document):
        text = render_tree(paper_document)
        assert len(text.splitlines()) == 28

    def test_truncation(self, paper_document):
        text = render_tree(paper_document, max_nodes=5)
        assert "truncated" in text
        assert len(text.splitlines()) == 6

    def test_values_rendered_on_request(self):
        tree = parse_xml("<a><b>v</b></a>", keep_values=True)
        assert '"v"' in render_tree(tree, show_values=True)
        assert '"v"' not in render_tree(tree)


class TestRenderNestingTree:
    def test_variables_annotated(self, paper_document):
        nt = ExactEvaluator(paper_document).evaluate(parse_twig("//a (//p)"))
        text = render_nesting_tree(nt)
        assert "[q0]" in text
        assert "[q1]" in text
        assert "[q2]" in text

    def test_truncation(self, paper_document):
        nt = ExactEvaluator(paper_document).evaluate(parse_twig("//a (//p, //n ?)"))
        text = render_nesting_tree(nt, max_nodes=3)
        assert "truncated" in text


class TestSynopsisToDot:
    def test_valid_dot_skeleton(self, paper_document):
        dot = synopsis_to_dot(build_stable(paper_document), title="paper")
        assert dot.startswith("digraph")
        assert dot.endswith("}")
        assert 'label="paper"' in dot
        assert "->" in dot

    def test_counts_in_labels(self, paper_document):
        stable = build_stable(paper_document)
        dot = synopsis_to_dot(stable)
        assert f"a ({stable.count[stable.nodes_with_label('a')[0]]})" in dot

    def test_root_double_bordered(self, paper_document):
        dot = synopsis_to_dot(build_stable(paper_document))
        assert "peripheries=2" in dot

    def test_truncation_marker(self, paper_document):
        dot = synopsis_to_dot(build_stable(paper_document), max_nodes=3)
        assert "more nodes" in dot

    def test_treesketch_fractional_edges(self, paper_document):
        from repro.core.build import build_treesketch

        sketch = build_treesketch(paper_document, 120)
        dot = synopsis_to_dot(sketch)
        assert "digraph" in dot

    def test_escaping(self):
        tree = XMLTree.from_nested(('weird"label', []))
        dot = synopsis_to_dot(build_stable(tree))
        assert '\\"' in dot
