"""Property-based tests for the values extension."""

from __future__ import annotations

from hypothesis import given, settings, strategies as st

from repro.values.summary import ValueSummary

values_lists = st.lists(
    st.one_of(st.none(), st.sampled_from(["a", "b", "c", "d", "e", "f"])),
    max_size=40,
)


@given(values_lists, st.integers(min_value=1, max_value=8))
@settings(max_examples=60, deadline=None)
def test_total_matches_input(values, top_k):
    summary = ValueSummary.from_values(values, top_k)
    assert summary.total == len(values)
    assert summary.null_count == sum(1 for v in values if v is None)


@given(values_lists, st.integers(min_value=1, max_value=8))
@settings(max_examples=60, deadline=None)
def test_probabilities_bounded(values, top_k):
    summary = ValueSummary.from_values(values, top_k)
    for value in "abcdefzzz":
        p = summary.probability(value)
        assert 0.0 <= p <= 1.0


@given(values_lists)
@settings(max_examples=60, deadline=None)
def test_uncapped_probabilities_exact(values):
    summary = ValueSummary.from_values(values, top_k=100)
    n = len(values)
    for value in "abcdef":
        expected = (values.count(value) / n) if n else 0.0
        assert abs(summary.probability(value) - expected) < 1e-12


@given(values_lists, values_lists, st.integers(min_value=1, max_value=8))
@settings(max_examples=60, deadline=None)
def test_merge_total_additive(u, v, top_k):
    a = ValueSummary.from_values(u, top_k)
    b = ValueSummary.from_values(v, top_k)
    merged = a.merge(b, top_k)
    assert merged.total == len(u) + len(v)
    assert merged.null_count == a.null_count + b.null_count
    assert len(merged.top) <= top_k


@given(values_lists, values_lists)
@settings(max_examples=60, deadline=None)
def test_uncapped_merge_equals_joint_summary(u, v):
    merged = ValueSummary.from_values(u, 100).merge(
        ValueSummary.from_values(v, 100), 100
    )
    joint = ValueSummary.from_values(u + v, 100)
    assert merged.top == joint.top
    assert merged.null_count == joint.null_count
