"""Tests for per-variable binding estimates."""

import pytest

from repro.core.estimate import estimate_bindings
from repro.core.evaluate import eval_query
from repro.core.stable import build_stable
from repro.core.treesketch import TreeSketch
from repro.query.parser import parse_twig


def stable_sketch(tree):
    return TreeSketch.from_stable(build_stable(tree))


class TestEstimateBindings:
    def test_root_is_one(self, paper_document):
        result = eval_query(stable_sketch(paper_document), parse_twig("//a"))
        assert estimate_bindings(result)["q0"] == 1.0

    def test_exact_on_stable(self, paper_document):
        result = eval_query(stable_sketch(paper_document), parse_twig("//a (//p)"))
        bindings = estimate_bindings(result)
        assert bindings["q1"] == pytest.approx(3.0)  # 3 authors
        assert bindings["q2"] == pytest.approx(4.0)  # 4 papers

    def test_descendant_counts(self, paper_document):
        result = eval_query(stable_sketch(paper_document), parse_twig("//k"))
        assert estimate_bindings(result)["q1"] == pytest.approx(5.0)

    def test_empty_result(self, paper_document):
        result = eval_query(stable_sketch(paper_document), parse_twig("//zzz"))
        bindings = estimate_bindings(result)
        assert bindings["q0"] == 1.0
        assert bindings["q1"] == 0.0

    def test_optional_variable_counted(self, paper_document):
        result = eval_query(
            stable_sketch(paper_document), parse_twig("//p (//k ?)")
        )
        bindings = estimate_bindings(result)
        assert bindings["q2"] == pytest.approx(5.0)

    def test_all_variables_present(self, paper_document):
        result = eval_query(
            stable_sketch(paper_document), parse_twig("//a (//p (//zzz ?), //n ?)")
        )
        bindings = estimate_bindings(result)
        assert set(bindings) == {"q0", "q1", "q2", "q3", "q4"}
        assert bindings["q3"] == 0.0
