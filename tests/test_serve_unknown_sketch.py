"""Regression tests: an unknown sketch name is a structured error.

Before this suite existed, ``ServeClient`` surfaced the server's
``unknown_sketch`` rejection as a generic :class:`ServerError`, and
``PooledClient`` -- worse -- consistent-hashed the unknown name onto an
arbitrary worker, whose shard-local sketch list then masqueraded as the
fleet's.  Both now raise :class:`UnknownSketchError` carrying the
offending name, and the pooled path reports the fleet-wide availability
list without sending the doomed request anywhere.
"""

import threading

import pytest

from repro.core.build import build_treesketch
from repro.core.stable import build_stable
from repro.serve import (
    ServeClient,
    ServeConfig,
    ServerError,
    SketchRegistry,
    UnknownSketchError,
    start_server_thread,
)
from repro.serve.client import PooledClient
from repro.xmltree.tree import XMLTree


@pytest.fixture(scope="module")
def server():
    tree = XMLTree.from_nested(("d", [("a", [("p", ["k"]), "n"])]))
    registry = SketchRegistry()
    registry.register("alpha", build_treesketch(build_stable(tree), 100_000))
    handle = start_server_thread(registry, ServeConfig(port=0))
    yield handle
    handle.stop()


class TestServeClient:
    def test_unknown_sketch_is_typed(self, server):
        with ServeClient("127.0.0.1", server.port) as client:
            with pytest.raises(UnknownSketchError) as excinfo:
                client.estimate("//a", sketch="nope")
        err = excinfo.value
        assert err.code == "unknown_sketch"
        assert err.sketch == "nope"
        assert "alpha" in err.message  # names what IS available

    def test_unknown_sketch_is_still_a_server_error(self, server):
        # Existing callers catching ServerError keep working.
        with ServeClient("127.0.0.1", server.port) as client:
            with pytest.raises(ServerError):
                client.estimate("//a", sketch="nope")

    def test_known_sketch_unaffected(self, server):
        with ServeClient("127.0.0.1", server.port) as client:
            assert client.estimate("//a", sketch="alpha") >= 0.0


class _FakePool(PooledClient):
    """A PooledClient with a canned shard map and no supervisor."""

    def __init__(self, shard_map, refreshed_map=None):
        # Deliberately skip PooledClient.__init__: routing is what is
        # under test, not the control-plane connection.
        self._lock = threading.Lock()
        self._map = shard_map
        self._rr = 0
        self.refreshes = 0
        self._refreshed_map = refreshed_map or shard_map

    def refresh(self):
        self.refreshes += 1
        with self._lock:
            self._map = self._refreshed_map
        return self._refreshed_map


def _name_map(sketches, shard_count=2):
    return {"shard_by": "name", "shard_count": shard_count,
            "sketches": sketches,
            "workers": [{"index": i, "state": "up"}
                        for i in range(shard_count)]}


class TestPooledClientRouting:
    def test_unknown_name_raises_before_routing(self):
        pool = _FakePool(_name_map(["alpha", "beta"]))
        with pytest.raises(UnknownSketchError) as excinfo:
            pool._route("gamma")
        assert excinfo.value.sketch == "gamma"
        assert "alpha" in str(excinfo.value)
        assert "beta" in str(excinfo.value)
        assert pool.refreshes == 1  # one staleness check, then fail

    def test_stale_map_refresh_rescues_new_sketch(self):
        # The name is missing from the cached map but present after a
        # refresh (fleet was re-specced): routing must succeed.
        pool = _FakePool(_name_map(["alpha"]),
                         refreshed_map=_name_map(["alpha", "gamma"]))
        index = pool._route("gamma")
        assert 0 <= index < 2
        assert pool.refreshes == 1

    def test_known_name_routes_without_refresh(self):
        pool = _FakePool(_name_map(["alpha", "beta"]))
        assert 0 <= pool._route("alpha") < 2
        assert pool.refreshes == 0
