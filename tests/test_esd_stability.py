"""Stability properties of ESD: symmetry and interning-order independence."""

import random

from hypothesis import given, settings, strategies as st

from repro.metrics.esd import ESDCalculator, esd
from repro.testing import make_random_tree


@st.composite
def tree_pairs(draw):
    seed = draw(st.integers(min_value=0, max_value=2**32 - 1))
    rng = random.Random(seed)
    t1 = make_random_tree(rng, rng.randint(1, 35), labels="abc")
    t2 = make_random_tree(rng, rng.randint(1, 35), labels="abc")
    return t1, t2


@given(tree_pairs())
@settings(max_examples=60, deadline=None)
def test_symmetry(pair):
    t1, t2 = pair
    assert abs(esd(t1, t2) - esd(t2, t1)) < 1e-9


@given(tree_pairs())
@settings(max_examples=40, deadline=None)
def test_interning_order_independence(pair):
    """The distance must not depend on which tree a calculator saw first."""
    t1, t2 = pair
    first = ESDCalculator()
    first.classify_order_marker = first.distance(t1, t2)
    second = ESDCalculator()
    # Prime the second calculator with t2 first, then compare.
    second._classes.classify(t2.root)
    assert abs(second.distance(t1, t2) - first.classify_order_marker) < 1e-9


@given(tree_pairs())
@settings(max_examples=40, deadline=None)
def test_shared_calculator_matches_fresh(pair):
    t1, t2 = pair
    shared = ESDCalculator()
    # Unrelated prior comparisons must not change later distances.
    shared.distance(t2, t2.copy())
    assert abs(shared.distance(t1, t2) - esd(t1, t2)) < 1e-9
