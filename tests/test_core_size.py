"""Unit tests for the synopsis size model."""

from repro.core.size import EDGE_BYTES, NODE_BYTES, kb, synopsis_bytes


class TestSizeModel:
    def test_constants(self):
        assert NODE_BYTES == 8
        assert EDGE_BYTES == 8

    def test_synopsis_bytes(self):
        assert synopsis_bytes(0, 0) == 0
        assert synopsis_bytes(10, 20) == 10 * NODE_BYTES + 20 * EDGE_BYTES

    def test_kb(self):
        assert kb(1024) == 1.0
        assert kb(0) == 0.0
        assert kb(512) == 0.5

    def test_consistency_with_summaries(self, paper_document):
        from repro.core.stable import build_stable
        from repro.core.treesketch import TreeSketch

        stable = build_stable(paper_document)
        assert stable.size_bytes() == synopsis_bytes(stable.num_nodes, stable.num_edges)
        sketch = TreeSketch.from_stable(stable)
        assert sketch.size_bytes() == stable.size_bytes()
