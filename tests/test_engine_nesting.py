"""Unit tests for nesting trees (repro.engine.nesting)."""

import pytest

from repro.engine.nesting import NestingTree, NTNode, empty_result
from repro.query.parser import parse_twig


def build_nt(query, spec):
    """spec: nested (label, qvar, [children])."""

    def make(s):
        label, qvar, children = s
        node = NTNode(label=label, qvar=qvar)
        for c in children:
            node.add(make(c))
        return node

    return NestingTree(make(spec), query)


class TestNTNode:
    def test_subtree_size(self):
        node = NTNode("a", "q1")
        node.add(NTNode("b", "q2"))
        node.add(NTNode("b", "q2")).add(NTNode("c", "q3"))
        assert node.subtree_size() == 4

    def test_add_returns_child(self):
        node = NTNode("a", "q1")
        child = node.add(NTNode("b", "q2"))
        assert child in node.children


class TestBindingTupleCount:
    def test_single_chain(self):
        q = parse_twig("//a")
        nt = build_nt(q, ("r", "q0", [("a", "q1", []), ("a", "q1", [])]))
        assert nt.binding_tuple_count() == 2

    def test_product_across_branches(self):
        q = parse_twig("//a ( /b, /c )")
        nt = build_nt(
            q,
            ("r", "q0", [
                ("a", "q1", [
                    ("b", "q2", []), ("b", "q2", []),
                    ("c", "q3", []), ("c", "q3", []), ("c", "q3", []),
                ])
            ]),
        )
        assert nt.binding_tuple_count() == 6

    def test_sum_across_occurrences(self):
        q = parse_twig("//a ( /b )")
        nt = build_nt(
            q,
            ("r", "q0", [
                ("a", "q1", [("b", "q2", [])]),
                ("a", "q1", [("b", "q2", []), ("b", "q2", [])]),
            ]),
        )
        assert nt.binding_tuple_count() == 3

    def test_optional_empty_counts_one(self):
        q = parse_twig("//a ( /b ? )")
        nt = build_nt(q, ("r", "q0", [("a", "q1", [])]))
        assert nt.binding_tuple_count() == 1

    def test_solid_empty_counts_zero(self):
        q = parse_twig("//a ( /b )")
        nt = build_nt(q, ("r", "q0", [("a", "q1", [])]))
        assert nt.binding_tuple_count() == 0

    def test_empty_result_helper(self):
        q = parse_twig("//a")
        nt = empty_result(q)
        assert nt.size() == 1
        assert nt.binding_tuple_count() == 0
        assert nt.is_empty()


class TestConversion:
    def test_to_xmltree_structure(self):
        q = parse_twig("//a ( /b )")
        nt = build_nt(
            q, ("r", "q0", [("a", "q1", [("b", "q2", [])])])
        )
        tree = nt.to_xmltree()
        assert len(tree) == 3
        assert tree.root.label == "r"
        assert tree.root.children[0].children[0].label == "b"

    def test_size(self):
        q = parse_twig("//a")
        nt = build_nt(q, ("r", "q0", [("a", "q1", [])]))
        assert nt.size() == 2
