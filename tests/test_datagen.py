"""Unit tests for the synthetic data generators."""

import random

import pytest

from repro.core.stable import build_stable
from repro.datagen.datasets import dblp_like, imdb_like, sprot_like, xmark_like
from repro.datagen.synthetic import (
    Choice,
    Fixed,
    Geometric,
    LabelSchema,
    SchemaGenerator,
    Uniform,
    Zipf,
    profile,
)
from repro.xmltree.stats import compute_stats


class TestDistributions:
    def test_fixed(self):
        assert Fixed(3).sample(random.Random(0)) == 3
        assert Fixed(3).mean() == 3.0

    def test_uniform_bounds(self):
        rng = random.Random(1)
        samples = [Uniform(2, 5).sample(rng) for _ in range(200)]
        assert min(samples) >= 2 and max(samples) <= 5
        assert Uniform(2, 5).mean() == 3.5

    def test_geometric_cap(self):
        rng = random.Random(2)
        samples = [Geometric(0.9, cap=4).sample(rng) for _ in range(200)]
        assert max(samples) <= 4

    def test_zipf_skewed_to_low(self):
        rng = random.Random(3)
        samples = [Zipf(1, 10, alpha=2.0).sample(rng) for _ in range(500)]
        assert samples.count(1) > samples.count(10)
        assert 1 <= Zipf(1, 10).mean() <= 10

    def test_choice_weights(self):
        rng = random.Random(4)
        dist = Choice((0, 5), (0.9, 0.1))
        samples = [dist.sample(rng) for _ in range(300)]
        assert samples.count(0) > samples.count(5)
        assert dist.mean() == pytest.approx(0.5)


class TestSchemaGenerator:
    def test_deterministic_per_seed(self):
        t1 = imdb_like(scale=0.2, seed=9)
        t2 = imdb_like(scale=0.2, seed=9)
        assert [n.label for n in t1] == [n.label for n in t2]

    def test_different_seeds_differ(self):
        t1 = imdb_like(scale=0.2, seed=1)
        t2 = imdb_like(scale=0.2, seed=2)
        assert [n.label for n in t1] != [n.label for n in t2]

    def test_scale_controls_size(self):
        small = imdb_like(scale=0.2, seed=0)
        large = imdb_like(scale=1.0, seed=0)
        assert len(large) > len(small) * 2

    def test_recursion_terminates(self):
        schema = {
            "r": LabelSchema((profile(1.0, ("s", Fixed(3))),)),
            "s": LabelSchema((profile(1.0, ("s", Uniform(0, 2))),)),
        }
        gen = SchemaGenerator("r", schema, recursion_decay=0.4, max_depth=10)
        tree = gen.generate(seed=0)
        assert tree.height <= 10

    def test_max_depth_hard_cap(self):
        schema = {"r": LabelSchema((profile(1.0, ("r", Fixed(1))),))}
        gen = SchemaGenerator("r", schema, recursion_decay=1.0, max_depth=5)
        assert gen.generate(0).height <= 5

    def test_recursive_label_detection(self):
        schema = {
            "a": LabelSchema((profile(1.0, ("b", Fixed(1))),)),
            "b": LabelSchema((profile(1.0, ("a", Fixed(1)), ("c", Fixed(1))),)),
        }
        gen = SchemaGenerator("a", schema, max_depth=8)
        assert gen._recursive_labels == {"a", "b"}


class TestDatasets:
    @pytest.mark.parametrize(
        "generator,root",
        [(imdb_like, "imdb"), (xmark_like, "site"), (sprot_like, "sprot"), (dblp_like, "dblp")],
    )
    def test_root_labels(self, generator, root):
        tree = generator(scale=0.1, seed=0)
        assert tree.root.label == root

    def test_xmark_has_recursion(self):
        tree = xmark_like(scale=1.0, seed=0)
        # Some parlist nested under a listitem (under a parlist).
        nested = [
            n for n in tree.nodes_with_label("parlist")
            if n.parent is not None and n.parent.label == "listitem"
        ]
        assert nested

    def test_stable_summary_is_much_smaller_than_document(self):
        for generator in (imdb_like, xmark_like, sprot_like, dblp_like):
            tree = generator(scale=1.0, seed=0)
            stable = build_stable(tree)
            assert stable.num_nodes < len(tree) * 0.35

    def test_dblp_most_regular(self):
        """DBLP's stable summary is the smallest relative to its size, as
        in the paper's Table 1."""
        ratios = {}
        for name, generator in [
            ("imdb", imdb_like), ("xmark", xmark_like), ("dblp", dblp_like)
        ]:
            tree = generator(scale=1.0, seed=0)
            ratios[name] = build_stable(tree).num_nodes / len(tree)
        assert ratios["dblp"] < ratios["imdb"]
        assert ratios["dblp"] < ratios["xmark"]

    def test_imdb_bimodal_cast(self):
        tree = imdb_like(scale=1.0, seed=0)
        sizes = [len(c.children) for c in tree.nodes_with_label("cast")]
        small = sum(1 for s in sizes if s <= 5)
        large = sum(1 for s in sizes if s >= 6)
        assert small > 0 and large > 0

    def test_stats_smoke(self):
        stats = compute_stats(sprot_like(scale=0.3, seed=1))
        assert stats.num_elements > 100
        assert stats.height >= 3
