"""Assorted coverage: mutation + reindex, extents, ESD sub-tree API."""

import pytest

from repro.core.stable import build_stable
from repro.metrics.esd import ESDCalculator
from repro.xmltree.node import XMLNode
from repro.xmltree.tree import XMLTree


class TestReindex:
    def test_mutation_then_reindex(self, small_tree):
        extra = small_tree.root.children[0].new_child("new")
        small_tree.reindex()
        assert extra.oid >= 0
        assert small_tree.node(extra.oid) is extra
        assert "new" in small_tree.labels

    def test_indexes_consistent_after_reindex(self, small_tree):
        small_tree.root.new_child("zz")
        small_tree.reindex()
        for node in small_tree:
            assert small_tree.node(node.oid) is node
            assert node.oid in small_tree.oids_with_label(node.label)

    def test_subtree_sizes_after_mutation(self, small_tree):
        target = small_tree.root.children[0]
        target.new_child("x")
        small_tree.reindex()
        assert small_tree.subtree_size(target) == target.subtree_size()


class TestStableExtents:
    def test_extents_partition_oids(self, paper_document):
        stable = build_stable(paper_document, keep_extents=True)
        seen = set()
        for nid, oids in stable.extent.items():
            for oid in oids:
                assert oid not in seen
                seen.add(oid)
                assert paper_document.node(oid).label == stable.label[nid]
        assert len(seen) == len(paper_document)

    def test_extent_sizes_match_counts(self, paper_document):
        stable = build_stable(paper_document, keep_extents=True)
        for nid, oids in stable.extent.items():
            assert len(oids) == stable.count[nid]


class TestESDSubtreeAPI:
    def test_distance_roots(self):
        t1 = XMLTree.from_nested(("r", [("a", ["x", "x"]), ("a", ["x"])]))
        calc = ESDCalculator()
        first, second = t1.root.children
        d = calc.distance_roots(first, second)
        assert d > 0
        assert calc.distance_roots(first, first) == 0.0

    def test_distance_roots_consistent_with_trees(self):
        spec = ("a", ["x", ("y", ["z"])])
        t1 = XMLTree.from_nested(spec)
        t2 = XMLTree.from_nested(("a", ["x"]))
        calc = ESDCalculator()
        via_roots = calc.distance_roots(t1.root, t2.root)
        from repro.metrics.esd import esd

        assert via_roots == pytest.approx(esd(t1, t2))

    def test_memo_shared_across_comparisons(self):
        calc = ESDCalculator()
        t1 = XMLTree.from_nested(("r", [("a", ["x"])]))
        t2 = XMLTree.from_nested(("r", [("a", ["x", "x"])]))
        d1 = calc.distance(t1, t2)
        d2 = calc.distance(t1, t2)
        assert d1 == d2
