"""Property tests for consistent-hash shard routing.

The sharded serving tier only works if every party -- supervisor,
workers, and pooled clients -- computes the *same* sketch-to-worker
assignment independently: the assignment is never shipped, only
recomputed from ``(sketch names, worker count)``.  These tests pin the
properties that make that safe:

* the assignment is a total function: every name maps to exactly one
  worker, and per-worker shards partition the name set;
* it is deterministic across runs *and across processes* -- the ring
  hashes with SHA-1, never Python's per-process-salted ``hash()``, so
  two interpreters with different ``PYTHONHASHSEED`` must agree;
* the supervisor's assignment and the client-side computation
  (:func:`repro.serve.sharding.shard_for`, what
  :class:`~repro.serve.client.PooledClient` routes by) agree for
  randomized registry contents;
* growing the fleet moves a bounded fraction of names (the property
  that makes the hashing "consistent").
"""

import json
import os
import random
import string
import subprocess
import sys

import pytest

from repro.serve import sharding
from repro.serve.supervisor import Supervisor, SupervisorConfig


def _names(rng: random.Random, count: int) -> list:
    return [
        "s" + "".join(rng.choices(string.ascii_lowercase, k=8)) + str(i)
        for i in range(count)
    ]


class TestPartition:
    @pytest.mark.parametrize("seed,shards", [(1, 2), (2, 3), (3, 5), (4, 7)])
    def test_every_name_maps_to_exactly_one_worker(self, seed, shards):
        names = _names(random.Random(seed), 40)
        assignment = sharding.assign(names, shards)
        assert sorted(assignment) == sorted(names)
        assert all(0 <= index < shards for index in assignment.values())
        # Per-worker shards partition the name set: disjoint, covering.
        shard_lists = [sharding.shard_names(names, i, shards)
                       for i in range(shards)]
        flattened = [name for shard in shard_lists for name in shard]
        assert sorted(flattened) == sorted(names)
        for index, shard in enumerate(shard_lists):
            assert all(assignment[name] == index for name in shard)

    def test_single_shard_owns_everything(self):
        names = _names(random.Random(9), 10)
        assert sharding.assign(names, 1) == {name: 0 for name in names}
        assert all(sharding.shard_for(name, 1) == 0 for name in names)

    def test_empty_registry(self):
        assert sharding.assign([], 4) == {}
        assert sharding.shard_names([], 2, 4) == []

    def test_spread_is_not_degenerate(self):
        # 200 names over 4 workers: consistent hashing with 128 vnodes
        # should never put everything on one worker.
        names = _names(random.Random(11), 200)
        assignment = sharding.assign(names, 4)
        used = set(assignment.values())
        assert len(used) == 4


class TestDeterminism:
    def test_stable_across_reruns(self):
        names = _names(random.Random(5), 60)
        first = sharding.assign(names, 3)
        second = sharding.assign(list(reversed(names)), 3)
        assert first == second
        ring_a, ring_b = sharding.HashRing(3), sharding.HashRing(3)
        assert all(ring_a.owner(n) == ring_b.owner(n) for n in names)

    @pytest.mark.parametrize("hashseed", ["1", "9423"])
    def test_stable_across_processes(self, hashseed):
        # A fresh interpreter with a *different* hash salt must compute
        # the identical assignment -- the property that lets supervisor,
        # workers and clients each recompute the map independently.
        names = _names(random.Random(7), 50)
        env = dict(os.environ)
        src = os.path.join(os.path.dirname(__file__), "..", "src")
        env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
        env["PYTHONHASHSEED"] = hashseed
        out = subprocess.run(
            [sys.executable, "-c",
             "import json, sys\n"
             "from repro.serve import sharding\n"
             "names = json.load(sys.stdin)\n"
             "print(json.dumps(sharding.assign(names, 5)))"],
            input=json.dumps(names), capture_output=True, text=True,
            env=env, check=True)
        assert json.loads(out.stdout) == sharding.assign(names, 5)


class TestSupervisorClientAgreement:
    @pytest.mark.parametrize("seed,shards", [(21, 2), (22, 3), (23, 6)])
    def test_assignments_agree_for_randomized_registries(self, seed, shards):
        # The supervisor parses specs and computes its assignment before
        # any process is spawned; the client side recomputes with
        # shard_for.  Both must agree for arbitrary registry contents.
        rng = random.Random(seed)
        names = _names(rng, rng.randrange(1, 30))
        specs = [f"{name}=/nowhere/{name}.json" for name in names]
        supervisor = Supervisor(
            specs, SupervisorConfig(workers=shards))
        client_side = {name: sharding.shard_for(name, shards)
                       for name in names}
        assert supervisor.assignment() == client_side


class TestConsistency:
    def test_growing_the_fleet_moves_a_bounded_fraction(self):
        names = _names(random.Random(31), 300)
        before = sharding.assign(names, 4)
        after = sharding.assign(names, 5)
        moved = sum(1 for name in names if before[name] != after[name])
        # Ideal consistent hashing moves ~1/5 of the keys; a modulo hash
        # would move ~4/5.  Half is a generous bound that still rejects
        # any non-consistent scheme.
        assert moved / len(names) < 0.5
