"""Unit tests for the document index (repro.engine.index)."""

import pytest

from repro.engine.index import DocumentIndex
from repro.xmltree.tree import XMLTree
from tests.conftest import make_random_tree


class TestChildren:
    def test_children_with_label(self, paper_document):
        index = DocumentIndex(paper_document)
        root = paper_document.root
        assert len(index.children_with_label(root, "a")) == 3
        assert index.children_with_label(root, "p") == []

    def test_children_wildcard(self, paper_document):
        index = DocumentIndex(paper_document)
        assert len(index.children_with_label(paper_document.root, "*")) == 3


class TestDescendants:
    def test_descendants_with_label(self, paper_document):
        index = DocumentIndex(paper_document)
        assert len(index.descendants_with_label(paper_document.root, "k")) == 5

    def test_descendants_scoped_to_subtree(self, paper_document):
        index = DocumentIndex(paper_document)
        first_author = paper_document.root.children[0]
        ks = index.descendants_with_label(first_author, "k")
        assert len(ks) == 3
        for k in ks:
            assert paper_document.is_ancestor(first_author, k)

    def test_descendants_exclude_self(self):
        tree = XMLTree.from_nested(("a", [("a", [])]))
        index = DocumentIndex(tree)
        assert len(index.descendants_with_label(tree.root, "a")) == 1

    def test_descendants_wildcard(self, paper_document):
        index = DocumentIndex(paper_document)
        assert (
            len(index.descendants_with_label(paper_document.root, "*"))
            == len(paper_document) - 1
        )

    def test_unknown_label(self, paper_document):
        index = DocumentIndex(paper_document)
        assert index.descendants_with_label(paper_document.root, "zzz") == []

    def test_count_matches_list(self, rng):
        tree = make_random_tree(rng, 300)
        index = DocumentIndex(tree)
        for node in list(tree)[::17]:
            for label in "abc":
                assert index.count_descendants_with_label(node, label) == len(
                    index.descendants_with_label(node, label)
                )

    def test_document_order(self, rng):
        tree = make_random_tree(rng, 200)
        index = DocumentIndex(tree)
        targets = index.descendants_with_label(tree.root, "a")
        oids = [t.oid for t in targets]
        assert oids == sorted(oids)
