"""Unit tests for the error-budget ledger (repro.obs.accuracy)."""

import threading

import pytest

from repro import obs
from repro.obs.accuracy import (
    STATE_BURNING,
    STATE_OK,
    STATE_WARN,
    AccuracyLedger,
)


def test_states_follow_burn_rate():
    ledger = AccuracyLedger(target_rel_error=0.1, window=4, warn_ratio=0.8)
    assert ledger.state("s") == STATE_OK
    # Mean 0.05 -> burn 0.5: ok.
    assert ledger.record("s", 0.05) == STATE_OK
    # Window mean climbs into [0.08, 0.1] -> warn.
    assert ledger.record("s", 0.13) == STATE_WARN
    # Blow the budget -> burning.
    ledger.record("s", 0.5)
    ledger.record("s", 0.5)
    assert ledger.state("s") == STATE_BURNING
    assert ledger.burn_rate("s") > 1.0
    # The window forgets: four clean samples recover to ok.
    for _ in range(4):
        ledger.record("s", 0.0)
    assert ledger.state("s") == STATE_OK


def test_trailing_window_is_bounded():
    ledger = AccuracyLedger(target_rel_error=0.1, window=8)
    for _ in range(100):
        ledger.record("s", 1.0)
    for _ in range(8):
        ledger.record("s", 0.0)
    # Only the trailing 8 samples count, all zero.
    assert ledger.burn_rate("s") == 0.0


def test_per_sketch_targets_and_summary():
    ledger = AccuracyLedger(target_rel_error=0.1, window=4)
    ledger.track("tight", target=0.01)
    ledger.track("loose", target=10.0)
    ledger.record("tight", 0.05)   # burn 5 -> burning
    ledger.record("loose", 0.05)   # burn 0.005 -> ok
    assert ledger.state("tight") == STATE_BURNING
    assert ledger.state("loose") == STATE_OK
    counts = ledger.summary()
    assert counts == {STATE_OK: 1, STATE_WARN: 0, STATE_BURNING: 1}


def test_metrics_export_one_hot_states():
    with obs.observed() as registry:
        ledger = AccuracyLedger(target_rel_error=0.1, window=4)
        ledger.track("a")
        ledger.track("b")
        ledger.record("a", 1.0)
        snap = registry.snapshot()
        assert snap["gauges"]["serve.accuracy.budget_state.burning"] == 1
        assert snap["gauges"]["serve.accuracy.budget_state.ok"] == 1
        assert snap["gauges"]["serve.accuracy.budget_burn_max"] == pytest.approx(10.0)
        assert snap["counters"]["serve.accuracy.budget_transitions"] == 1
    assert ledger.transitions_total == 1


def test_listeners_receive_every_sample_and_cannot_kill_recording():
    ledger = AccuracyLedger(target_rel_error=0.5, window=4)
    seen = []

    def bad_listener(*_args):
        raise RuntimeError("boom")

    ledger.subscribe(bad_listener)
    ledger.subscribe(lambda sketch, err, state, burn: seen.append(
        (sketch, err, state, burn)))
    ledger.record("s", 0.25)
    assert seen == [("s", 0.25, STATE_OK, pytest.approx(0.5))]


def test_note_debt_surfaces_in_info():
    ledger = AccuracyLedger(target_rel_error=0.25)
    ledger.note_debt("s", 12.5)
    ledger.record("s", 0.1)
    info = ledger.info()
    assert info["sketches"]["s"]["debt"] == 12.5
    assert info["sketches"]["s"]["samples"] == 1
    assert info["sketches"]["s"]["state"] == STATE_OK
    assert info["target_rel_error"] == 0.25


def test_concurrent_recording_is_safe():
    ledger = AccuracyLedger(target_rel_error=0.1, window=16)

    def worker(name):
        for _ in range(200):
            ledger.record(name, 0.05)

    threads = [threading.Thread(target=worker, args=(f"s{i}",))
               for i in range(4)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    info = ledger.info()
    assert len(info["sketches"]) == 4
    assert all(b["samples"] == 200 for b in info["sketches"].values())


def test_constructor_validation():
    with pytest.raises(ValueError):
        AccuracyLedger(target_rel_error=0.0)
    with pytest.raises(ValueError):
        AccuracyLedger(window=0)
    with pytest.raises(ValueError):
        AccuracyLedger(warn_ratio=0.0)
