"""WindowedHistogram: trailing-window percentiles on the obs clock.

All rotation is driven by a FakeClock installed via ``obs.observed``,
so bucket expiry and percentile math are fully deterministic.
"""

import pytest

from repro import obs
from repro.obs import FakeClock, WindowedHistogram
from repro.obs.metrics import MetricsRegistry, NULL_REGISTRY

pytestmark = pytest.mark.obs


class TestWindowMath:
    def test_nearest_rank_quantiles(self):
        hist = WindowedHistogram("h", window_s=60.0, clock=FakeClock())
        for value in range(1, 101):  # 1..100
            hist.observe(float(value))
        # Nearest-rank on a sorted sample of n=100: index min(99, int(q*n)).
        assert hist.quantile(0.0) == 1.0
        assert hist.quantile(0.50) == 51.0
        assert hist.quantile(0.95) == 96.0
        assert hist.quantile(0.99) == 100.0
        assert hist.quantile(1.0) == 100.0

    def test_quantile_validation_and_empty(self):
        hist = WindowedHistogram("h", clock=FakeClock())
        with pytest.raises(ValueError):
            hist.quantile(1.5)
        assert hist.quantile(0.5) == 0.0
        summary = hist.summary()
        assert summary["count"] == 0 and summary["p99"] == 0.0

    def test_constructor_validation(self):
        with pytest.raises(ValueError):
            WindowedHistogram("h", window_s=0.0)
        with pytest.raises(ValueError):
            WindowedHistogram("h", buckets=0)

    def test_summary_shape_matches_report_columns(self):
        from repro.obs.report import _HIST_COLUMNS

        hist = WindowedHistogram("h", clock=FakeClock())
        hist.observe(2.0)
        summary = hist.summary()
        for column in _HIST_COLUMNS:
            assert column in summary
        assert summary["window_s"] == 60.0


class TestRotation:
    def test_old_observations_leave_the_window(self):
        clock = FakeClock()
        hist = WindowedHistogram("h", window_s=60.0, buckets=6, clock=clock)
        hist.observe(1.0)
        clock.advance(30.0)
        hist.observe(2.0)
        assert sorted(hist.window_values()) == [1.0, 2.0]
        clock.advance(45.0)  # t=75: the t=0 bucket is beyond the window
        assert hist.window_values() == [2.0]
        clock.advance(60.0)  # everything expired
        assert hist.window_values() == []

    def test_lifetime_count_survives_rotation(self):
        clock = FakeClock()
        hist = WindowedHistogram("h", window_s=10.0, buckets=2, clock=clock)
        hist.observe(5.0)
        clock.advance(100.0)
        assert hist.window_values() == []
        assert hist.count == 1
        assert hist.total == 5.0
        # ...but the summary describes only the (empty) window.
        assert hist.summary()["count"] == 0

    def test_buckets_drop_one_at_a_time(self):
        clock = FakeClock()
        hist = WindowedHistogram("h", window_s=6.0, buckets=6, clock=clock)
        for second in range(6):
            clock.set(float(second))
            hist.observe(float(second))
        assert len(hist.window_values()) == 6
        clock.set(7.0)  # bucket index 7; horizon drops index <= 1
        remaining = hist.window_values()
        assert sorted(remaining) == [2.0, 3.0, 4.0, 5.0]

    def test_percentiles_follow_the_window(self):
        clock = FakeClock()
        hist = WindowedHistogram("h", window_s=10.0, buckets=2, clock=clock)
        for _ in range(10):
            hist.observe(100.0)  # a slow burst...
        clock.advance(12.0)      # ...that ages out entirely
        hist.observe(1.0)
        assert hist.quantile(0.99) == 1.0

    def test_uses_active_obs_clock_when_not_injected(self):
        clock = FakeClock()
        with obs.observed(clock=clock) as registry:
            hist = registry.windowed("w", window_s=10.0, buckets=2)
            hist.observe(1.0)
            clock.advance(50.0)
            assert hist.window_values() == []


class TestRegistryIntegration:
    def test_windowed_is_cached_by_name(self):
        registry = MetricsRegistry()
        assert registry.windowed("w") is registry.windowed("w")

    def test_kind_conflicts_raise(self):
        registry = MetricsRegistry()
        registry.histogram("h")
        registry.windowed("w")
        with pytest.raises(TypeError):
            registry.windowed("h")
        with pytest.raises(TypeError):
            registry.histogram("w")
        with pytest.raises(TypeError):
            registry.counter("w")

    def test_snapshot_includes_window_summary(self):
        with obs.observed(clock=FakeClock()) as registry:
            registry.windowed("serve.op.latency.eval").observe(0.5)
            snapshot = registry.snapshot()
        summary = snapshot["histograms"]["serve.op.latency.eval"]
        assert summary["count"] == 1
        assert summary["p95"] == 0.5
        assert summary["window_s"] == 60.0

    def test_render_registry_handles_windowed(self):
        with obs.observed(clock=FakeClock()) as registry:
            registry.windowed("w").observe(1.0)
            text = obs.report.render_registry(registry)
        assert "w" in text and "histograms" in text

    def test_null_registry_windowed_is_noop(self):
        hist = NULL_REGISTRY.windowed("w")
        hist.observe(1.0)
        assert hist.summary()["count"] == 0
