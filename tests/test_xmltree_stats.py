"""Unit tests for repro.xmltree.stats."""

from repro.xmltree.stats import compute_stats, fanout_distribution
from repro.xmltree.tree import XMLTree


class TestComputeStats:
    def test_single_node(self):
        stats = compute_stats(XMLTree.from_nested(("r", [])))
        assert stats.num_elements == 1
        assert stats.num_labels == 1
        assert stats.height == 0
        assert stats.max_fanout == 0
        assert stats.avg_fanout == 0.0

    def test_counts(self, small_tree):
        stats = compute_stats(small_tree)
        assert stats.num_elements == 7
        assert stats.num_labels == 4
        assert stats.height == 2
        assert stats.max_fanout == 3

    def test_label_histogram(self, small_tree):
        stats = compute_stats(small_tree)
        assert stats.label_histogram == {"r": 1, "a": 2, "b": 2, "c": 2}
        assert sum(stats.label_histogram.values()) == len(small_tree)

    def test_level_histogram(self, small_tree):
        stats = compute_stats(small_tree)
        assert stats.level_histogram == {0: 1, 1: 2, 2: 4}

    def test_avg_fanout_internal_nodes_only(self):
        # r has 2 children, each a has 1 child: avg over internal = 4/3.
        tree = XMLTree.from_nested(("r", [("a", ["x"]), ("a", ["x"])]))
        stats = compute_stats(tree)
        assert abs(stats.avg_fanout - 4 / 3) < 1e-12

    def test_str_contains_key_numbers(self, small_tree):
        text = str(compute_stats(small_tree))
        assert "elements=7" in text


class TestFanoutDistribution:
    def test_distribution(self, figure3_t1):
        dist = fanout_distribution(figure3_t1, "b", "c")
        assert dist == {1: 2, 4: 2}

    def test_missing_child_label(self, figure3_t1):
        dist = fanout_distribution(figure3_t1, "b", "zzz")
        assert dist == {0: 4}

    def test_missing_parent_label(self, figure3_t1):
        assert fanout_distribution(figure3_t1, "nope", "c") == {}
