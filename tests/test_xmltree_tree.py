"""Unit tests for repro.xmltree.tree."""

import random

import pytest

from repro.xmltree.node import XMLNode
from repro.xmltree.tree import XMLTree
from tests.conftest import make_random_tree


class TestConstruction:
    def test_from_nested_leaf_strings(self):
        tree = XMLTree.from_nested(("r", ["a", "b"]))
        assert len(tree) == 3
        assert [n.label for n in tree] == ["r", "a", "b"]

    def test_from_nested_deep(self):
        tree = XMLTree.from_nested(("r", [("a", [("b", ["c"])])]))
        assert len(tree) == 4
        assert tree.height == 3

    def test_requires_root(self):
        with pytest.raises(ValueError):
            XMLTree(None)

    def test_oids_are_preorder(self, small_tree):
        oids = [n.oid for n in small_tree.root.iter_preorder()]
        assert oids == list(range(len(small_tree)))

    def test_node_lookup_by_oid(self, small_tree):
        for node in small_tree:
            assert small_tree.node(node.oid) is node


class TestIndexes:
    def test_labels_sorted(self, small_tree):
        assert small_tree.labels == ["a", "b", "c", "r"]

    def test_nodes_with_label(self, small_tree):
        assert len(small_tree.nodes_with_label("a")) == 2
        assert len(small_tree.nodes_with_label("c")) == 2
        assert small_tree.nodes_with_label("zzz") == []

    def test_oids_with_label_sorted(self, small_tree):
        oids = small_tree.oids_with_label("c")
        assert oids == sorted(oids)

    def test_level(self, small_tree):
        assert small_tree.level(small_tree.root) == 0
        for child in small_tree.root.children:
            assert small_tree.level(child) == 1

    def test_height_of_leaf_only_tree(self):
        assert XMLTree(XMLNode("x")).height == 0

    def test_depth_below_matches_node_method(self, paper_document):
        for node in paper_document:
            assert paper_document.depth_below(node) == node.depth_below()


class TestAncestry:
    def test_is_ancestor_direct(self, small_tree):
        root = small_tree.root
        for child in root.children:
            assert small_tree.is_ancestor(root, child)
            assert not small_tree.is_ancestor(child, root)

    def test_is_ancestor_not_self(self, small_tree):
        assert not small_tree.is_ancestor(small_tree.root, small_tree.root)

    def test_is_ancestor_transitive(self):
        tree = XMLTree.from_nested(("r", [("a", [("b", ["c"])])]))
        r, a = tree.node(0), tree.node(1)
        c = tree.node(3)
        assert tree.is_ancestor(r, c)
        assert tree.is_ancestor(a, c)

    def test_siblings_not_ancestors(self, small_tree):
        first, second = small_tree.root.children
        assert not small_tree.is_ancestor(first, second)
        assert not small_tree.is_ancestor(second, first)

    def test_subtree_size(self, small_tree):
        assert small_tree.subtree_size(small_tree.root) == len(small_tree)
        for node in small_tree:
            assert small_tree.subtree_size(node) == node.subtree_size()

    def test_subtree_size_random(self, rng):
        tree = make_random_tree(rng, 200)
        for node in tree:
            assert tree.subtree_size(node) == node.subtree_size()

    def test_descendant_oid_range_contiguous(self, rng):
        tree = make_random_tree(rng, 100)
        for node in tree:
            expected = sorted(
                d.oid for d in node.iter_preorder() if d is not node
            )
            assert list(tree.descendant_oid_range(node)) == expected


class TestCopy:
    def test_copy_is_structurally_equal(self, paper_document):
        clone = paper_document.copy()
        assert len(clone) == len(paper_document)
        for a, b in zip(paper_document, clone):
            assert a.label == b.label
            assert len(a.children) == len(b.children)

    def test_copy_is_independent(self, small_tree):
        clone = small_tree.copy()
        clone.root.new_child("extra")
        clone.reindex()
        assert len(clone) == len(small_tree) + 1
