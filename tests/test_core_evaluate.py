"""Unit tests for EVALQUERY / EVALEMBED (repro.core.evaluate)."""

import pytest

from repro.core.evaluate import ResultSketch, eval_query
from repro.core.stable import build_stable
from repro.core.treesketch import TreeSketch
from repro.engine.exact import ExactEvaluator
from repro.query.parser import parse_twig


def stable_sketch(tree):
    return TreeSketch.from_stable(build_stable(tree))


def figure9_sketch():
    """The synopsis of the paper's Figure 9(b)."""
    ts = TreeSketch()
    nodes = {
        "r": ("r", 1), "A": ("a", 10), "B": ("b", 50), "E": ("e", 2),
        "D": ("d", 20), "F": ("f", 110), "G1": ("g", 12), "G2": ("g", 14),
        "C": ("c", 165),
    }
    ids = {}
    for i, (name, (label, count)) in enumerate(nodes.items()):
        ids[name] = i
        ts.add_node(i, label, count)
    edges = [
        ("r", "A", 10), ("A", "B", 5), ("A", "E", 0.2), ("A", "D", 2),
        ("B", "F", 2), ("E", "F", 5), ("D", "F", 0.5), ("D", "G1", 0.6),
        ("D", "G2", 0.7), ("F", "C", 1.5),
    ]
    for src, dst, avg in edges:
        ts.add_edge(ids[src], ids[dst], avg)
        count = nodes[src][1]
        ts.stats[(ids[src], ids[dst])] = (count * avg, count * avg * avg)
    ts.root_id = ids["r"]
    ts.doc_height = 6
    return ts, ids


class TestEvalQueryOnStable:
    """On count-stable synopses EVALQUERY is exact (paper Section 4.3)."""

    QUERIES = [
        "//a",
        "//a (//p)",
        "//a (//p, //n)",
        "//a[//b] ( //p ( //k ? ), //n ? )",
        "//p (//k ?)",
        "/a/p/k",
        "//a (/p (/k), /n ?)",
    ]

    @pytest.mark.parametrize("text", QUERIES)
    def test_bindings_match_exact(self, paper_document, text):
        from repro.core.estimate import estimate_selectivity

        query = parse_twig(text)
        truth = ExactEvaluator(paper_document).selectivity(query)
        result = eval_query(stable_sketch(paper_document), query)
        assert estimate_selectivity(result) == pytest.approx(float(truth))

    def test_empty_query_marked(self, paper_document):
        result = eval_query(stable_sketch(paper_document), parse_twig("//zzz"))
        assert result.empty

    def test_optional_empty_not_marked(self, paper_document):
        result = eval_query(stable_sketch(paper_document), parse_twig("//a (//zzz ?)"))
        assert not result.empty

    def test_solid_empty_child_marks_empty(self, paper_document):
        result = eval_query(stable_sketch(paper_document), parse_twig("//a (//zzz)"))
        assert result.empty

    def test_result_nodes_unique_per_pair(self, paper_document):
        query = parse_twig("//a (//p, //p)")
        result = eval_query(stable_sketch(paper_document), query)
        assert len(set(result.label)) == len(result.label)


class TestFigure9:
    """Exact numbers of the paper's Example 4.1."""

    def test_result_sketch_edges(self):
        ts, ids = figure9_sketch()
        query = parse_twig("//a ( b|e ( //f ( c ) ), d[/g]//f )")
        result = eval_query(ts, query)
        edges = {
            (result.label[src], src[1], result.label[dst], dst[1]): round(k, 6)
            for src, out in result.out.items()
            for dst, k in out.items()
        }
        assert edges[("r", "q0", "a", "q1")] == 10
        assert edges[("a", "q1", "b", "q2")] == 5
        assert edges[("a", "q1", "e", "q2")] == pytest.approx(0.2)
        assert edges[("b", "q2", "f", "q3")] == 2
        assert edges[("e", "q2", "f", "q3")] == 5
        assert edges[("f", "q3", "c", "q4")] == 1.5
        # The headline number: 1 * (0.6 + 0.7 - 0.42) = 0.88.
        assert edges[("a", "q1", "f", "q5")] == pytest.approx(0.88)

    def test_branch_selectivity_saturates_at_one(self):
        ts, ids = figure9_sketch()
        # Boost G1 counts so the branch count >= 1 -> selectivity exactly 1.
        ts.out[ids["D"]][ids["G1"]] = 1.2
        query = parse_twig("//a ( d[/g]//f )")
        result = eval_query(ts, query)
        (edge,) = [
            k
            for src, out in result.out.items()
            for dst, k in out.items()
            if dst[1] == "q2"
        ]
        assert edge == pytest.approx(1.0)  # nt=1, selectivity 1

    def test_unsatisfiable_branch_prunes(self):
        ts, _ = figure9_sketch()
        query = parse_twig("//a ( d[/zzz]//f )")
        result = eval_query(ts, query)
        assert result.empty


class TestCyclicSynopsis:
    def test_descendant_terminates_on_cycle(self):
        ts = TreeSketch()
        ts.add_node(0, "r", 1)
        ts.add_node(1, "s", 4)
        ts.add_node(2, "x", 8)
        ts.add_edge(0, 1, 2.0)
        ts.add_edge(1, 1, 0.5)  # self-loop: merged recursive label
        ts.add_edge(1, 2, 2.0)
        for (s, d) in [(0, 1), (1, 1), (1, 2)]:
            count = ts.count[s]
            avg = ts.out[s][d]
            ts.stats[(s, d)] = (count * avg, count * avg * avg)
        ts.root_id = 0
        ts.doc_height = 4
        result = eval_query(ts, parse_twig("//x"))
        assert not result.empty
        total = sum(k for out in result.out.values() for k in out.values())
        assert total > 0
        # Bounded propagation: geometric series truncated at doc_height.
        assert total < 100


class TestResultSketchStructure:
    def test_root_binding(self, paper_document):
        sketch = stable_sketch(paper_document)
        result = eval_query(sketch, parse_twig("//a"))
        assert result.root_key == (sketch.root_id, "q0")
        assert result.bind["q0"] == [result.root_key]

    def test_bind_lists_cover_all_nodes(self, paper_document):
        result = eval_query(stable_sketch(paper_document), parse_twig("//a (//p, //n ?)"))
        bound = {key for keys in result.bind.values() for key in keys}
        assert bound == set(result.label)

    def test_counts_aggregate_multiple_embeddings(self):
        # r -> a -> b and r -> c -> b: //b from root sums both paths.
        from repro.xmltree.tree import XMLTree

        tree = XMLTree.from_nested(("r", [("a", ["b"]), ("c", ["b", "b"])]))
        sketch = stable_sketch(tree)
        result = eval_query(sketch, parse_twig("//b"))
        ks = [
            k for out in result.out.values() for (dst, k) in out.items()
            if dst[1] == "q1"
        ]
        assert sum(ks) == pytest.approx(3.0)
