"""Unit tests for the command-line interface."""

import pytest

from repro.cli import main
from repro.xmltree.serialize import to_xml


@pytest.fixture
def xml_file(paper_document, tmp_path):
    path = tmp_path / "doc.xml"
    path.write_text(to_xml(paper_document))
    return str(path)


class TestCLI:
    def test_stats(self, xml_file, capsys):
        assert main(["stats", xml_file]) == 0
        out = capsys.readouterr().out
        assert "elements=28" in out
        assert "stable summary" in out

    def test_stable_and_build(self, xml_file, tmp_path, capsys):
        stable_path = str(tmp_path / "stable.json")
        sketch_path = str(tmp_path / "sketch.json")
        assert main(["stable", xml_file, "-o", stable_path]) == 0
        assert main(["build", stable_path, "--budget-kb", "0.125", "-o", sketch_path]) == 0
        out = capsys.readouterr().out
        assert "squared error" in out

    def test_build_from_xml(self, xml_file, tmp_path):
        sketch_path = str(tmp_path / "sketch.json")
        assert main(["build", xml_file, "--budget-kb", "1", "-o", sketch_path]) == 0

    def test_query_and_exact(self, xml_file, tmp_path, capsys):
        sketch_path = str(tmp_path / "sketch.json")
        main(["build", xml_file, "--budget-kb", "64", "-o", sketch_path])
        capsys.readouterr()
        assert main(["query", sketch_path, "//a (//p)"]) == 0
        approx = capsys.readouterr().out
        assert "estimated binding tuples: 4.0" in approx
        assert main(["exact", xml_file, "//a (//p)"]) == 0
        exact = capsys.readouterr().out
        assert "exact binding tuples: 4" in exact

    def test_query_preview(self, xml_file, tmp_path, capsys):
        sketch_path = str(tmp_path / "sketch.json")
        preview_path = str(tmp_path / "preview.xml")
        main(["build", xml_file, "--budget-kb", "64", "-o", sketch_path])
        assert main(["query", sketch_path, "//a (//p)", "--preview", preview_path]) == 0
        from repro.xmltree.parser import parse_xml_file

        preview = parse_xml_file(preview_path)
        assert preview.root.label == "d"

    def test_compare(self, xml_file, tmp_path, capsys):
        sketch_path = str(tmp_path / "sketch.json")
        main(["build", xml_file, "--budget-kb", "64", "-o", sketch_path])
        capsys.readouterr()
        assert main(["compare", xml_file, sketch_path, "//a (//p)"]) == 0
        out = capsys.readouterr().out
        assert "answer ESD" in out
        assert "0.0" in out  # zero-error sketch at generous budget

    def test_build_rejects_treesketch_json(self, xml_file, tmp_path, capsys):
        sketch_path = str(tmp_path / "sketch.json")
        main(["build", xml_file, "--budget-kb", "64", "-o", sketch_path])
        assert main(["build", sketch_path, "--budget-kb", "1", "-o", sketch_path]) == 2


class TestStoreCommands:
    """``build --format tsb``, ``convert``, ``inspect``, ``--memo-cache``."""

    def test_build_tsb_output(self, xml_file, tmp_path, capsys):
        tsb_path = str(tmp_path / "sketch.tsb")
        assert main(["build", xml_file, "--budget-kb", "64",
                     "-o", tsb_path]) == 0
        from repro.core.io import sniff_format

        assert sniff_format(tsb_path) == "tsb"
        capsys.readouterr()
        assert main(["query", tsb_path, "//a (//p)"]) == 0
        assert "estimated binding tuples: 4.0" in capsys.readouterr().out

    def test_build_format_overrides_extension(self, xml_file, tmp_path):
        path = str(tmp_path / "sketch.json")  # json name, tsb content
        assert main(["build", xml_file, "--budget-kb", "64", "-o", path,
                     "--format", "tsb"]) == 0
        from repro.core.io import sniff_format

        assert sniff_format(path) == "tsb"

    def test_convert_round_trip_is_bitwise(self, xml_file, tmp_path, capsys):
        json_path = str(tmp_path / "sketch.json")
        tsb_path = str(tmp_path / "sketch.tsb")
        back_path = str(tmp_path / "back.json")
        main(["build", xml_file, "--budget-kb", "64", "-o", json_path])
        assert main(["convert", json_path, tsb_path]) == 0
        assert main(["convert", tsb_path, back_path]) == 0
        out = capsys.readouterr().out
        assert "wrote" in out
        with open(json_path) as a, open(back_path) as b:
            assert a.read() == b.read()

    def test_convert_missing_input(self, tmp_path, capsys):
        assert main(["convert", str(tmp_path / "nope.json"),
                     str(tmp_path / "out.tsb")]) == 2
        assert "cannot load" in capsys.readouterr().err

    def test_inspect_tsb(self, xml_file, tmp_path, capsys):
        tsb_path = str(tmp_path / "sketch.tsb")
        main(["build", xml_file, "--budget-kb", "64", "-o", tsb_path])
        capsys.readouterr()
        assert main(["inspect", tsb_path]) == 0
        out = capsys.readouterr().out
        assert "tsb v1 (treesketch)" in out
        assert "node_ids" in out and "edge_off" in out  # section table
        assert "squared error" in out

    def test_inspect_json(self, xml_file, tmp_path, capsys):
        json_path = str(tmp_path / "sketch.json")
        main(["build", xml_file, "--budget-kb", "64", "-o", json_path])
        capsys.readouterr()
        assert main(["inspect", json_path]) == 0
        out = capsys.readouterr().out
        assert "json" in out and "treesketch:" in out

    def test_inspect_corrupt_store(self, xml_file, tmp_path, capsys):
        tsb_path = tmp_path / "sketch.tsb"
        main(["build", xml_file, "--budget-kb", "64", "-o", str(tsb_path)])
        raw = bytearray(tsb_path.read_bytes())
        raw[0:4] = b"XXXX"
        tsb_path.write_bytes(bytes(raw))
        capsys.readouterr()
        assert main(["inspect", str(tsb_path)]) == 2
        assert "corrupt store" in capsys.readouterr().err

    def test_build_memo_cache_round_trip(self, xml_file, tmp_path, capsys):
        import os

        stable_path = str(tmp_path / "stable.json")
        main(["stable", xml_file, "-o", stable_path])
        cold = str(tmp_path / "cold.json")
        warm = str(tmp_path / "warm.json")
        assert main(["build", stable_path, "--budget-kb", "0.125",
                     "-o", cold, "--memo-cache"]) == 0
        assert os.path.exists(stable_path + ".cache")
        capsys.readouterr()
        assert main(["build", stable_path, "--budget-kb", "0.125",
                     "-o", warm, "--memo-cache"]) == 0
        assert "seeded merge memo" in capsys.readouterr().out
        with open(cold) as a, open(warm) as b:
            assert a.read() == b.read()  # memo reuse is output-invisible


class TestServeCommand:
    def test_serve_missing_sketch_file(self, tmp_path, capsys):
        missing = str(tmp_path / "nope.json")
        assert main(["serve", missing, "--port", "0"]) == 2
        assert "cannot load sketch" in capsys.readouterr().err

    def test_serve_duplicate_names(self, xml_file, tmp_path, capsys):
        sketch_path = str(tmp_path / "sketch.json")
        main(["build", xml_file, "--budget-kb", "1", "-o", sketch_path])
        capsys.readouterr()
        assert main(["serve", sketch_path, f"sketch={sketch_path}",
                     "--port", "0"]) == 2
        assert "already registered" in capsys.readouterr().err

    def test_estimate_batch_matches_sequential(self, xml_file, tmp_path, capsys):
        sketch_path = str(tmp_path / "sketch.json")
        main(["build", xml_file, "--budget-kb", "64", "-o", sketch_path])
        capsys.readouterr()
        twigs = ["//a (//p)", "//a (//b)"]
        assert main(["estimate", sketch_path, *twigs]) == 0
        sequential = capsys.readouterr().out.splitlines()[:2]
        assert main(["estimate", sketch_path, *twigs, "--batch"]) == 0
        batch = capsys.readouterr().out.splitlines()[:2]
        assert batch == sequential

    def test_workload_batch_flag(self, xml_file, capsys):
        assert main(["workload", xml_file, "--queries", "5",
                     "--budget-kb", "64", "--batch"]) == 0
        assert "avg selectivity error" in capsys.readouterr().out

    def test_gzip_sketch_through_cli(self, xml_file, tmp_path, capsys):
        """build and query accept .json.gz paths transparently."""
        sketch_path = str(tmp_path / "sketch.json.gz")
        assert main(["build", xml_file, "--budget-kb", "64",
                     "-o", sketch_path]) == 0
        capsys.readouterr()
        assert main(["query", sketch_path, "//a (//p)"]) == 0
        assert "estimated binding tuples: 4.0" in capsys.readouterr().out


class TestPythonDashM:
    """``python -m repro`` must behave exactly like the console script."""

    def _run(self, *argv):
        import os
        import pathlib
        import subprocess
        import sys

        import repro

        src = str(pathlib.Path(repro.__file__).resolve().parent.parent)
        env = dict(os.environ)
        env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
        return subprocess.run(
            [sys.executable, "-m", "repro", *argv],
            capture_output=True, text=True, env=env, timeout=120,
        )

    def test_module_entry_stats(self, xml_file):
        proc = self._run("stats", xml_file)
        assert proc.returncode == 0
        assert "stable summary" in proc.stdout

    def test_module_entry_requires_subcommand(self):
        proc = self._run()
        assert proc.returncode == 2
        assert "usage" in proc.stderr.lower()


class TestGenCorpus:
    def test_gen_corpus_writes_files(self, tmp_path, capsys):
        assert main(["gen-corpus", str(tmp_path), "XMark-TX", "--scale", "0.02"]) == 0
        out = capsys.readouterr().out
        assert "XMark-TX" in out
        assert (tmp_path / "xmark_tx.xml").exists()
        assert (tmp_path / "corpus.json").exists()

    def test_gen_corpus_unknown_dataset(self, tmp_path, capsys):
        assert main(["gen-corpus", str(tmp_path), "nope"]) == 2

    def test_full_cli_pipeline_from_corpus(self, tmp_path, capsys):
        assert main(["gen-corpus", str(tmp_path), "IMDB-TX", "--scale", "0.02"]) == 0
        xml = str(tmp_path / "imdb_tx.xml")
        stable = str(tmp_path / "stable.json")
        sketch = str(tmp_path / "sketch.json")
        assert main(["stable", xml, "-o", stable]) == 0
        assert main(["build", stable, "--budget-kb", "2", "-o", sketch]) == 0
        capsys.readouterr()
        assert main(["compare", xml, sketch, "//movie (/title)"]) == 0
        out = capsys.readouterr().out
        assert "exact tuples" in out
        assert "answer ESD" in out
