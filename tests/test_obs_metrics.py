"""Counter/gauge/histogram semantics and registry state management."""

import pytest

from repro import obs
from repro.obs.metrics import (
    NULL_REGISTRY,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)

pytestmark = pytest.mark.obs


class TestCounter:
    def test_starts_at_zero_and_increments(self):
        c = Counter("x")
        assert c.value == 0
        c.inc()
        c.inc(4)
        assert c.value == 5

    def test_monotonic(self):
        c = Counter("x")
        with pytest.raises(ValueError):
            c.inc(-1)


class TestGauge:
    def test_set_inc_dec(self):
        g = Gauge("x")
        g.set(2.5)
        g.inc()
        g.dec(0.5)
        assert g.value == 3.0


class TestHistogram:
    def test_exact_aggregates(self):
        h = Histogram("lat")
        for v in [3.0, 1.0, 2.0]:
            h.observe(v)
        assert h.count == 3
        assert h.total == 6.0
        assert h.min == 1.0
        assert h.max == 3.0
        assert h.mean == 2.0

    def test_quantiles(self):
        h = Histogram("lat")
        for v in range(100):
            h.observe(float(v))
        assert h.quantile(0.0) == 0.0
        assert h.quantile(0.5) == 50.0
        assert h.quantile(1.0) == 99.0

    def test_empty_quantile_is_zero(self):
        assert Histogram("lat").quantile(0.9) == 0.0

    def test_quantile_range_checked(self):
        with pytest.raises(ValueError):
            Histogram("lat").quantile(1.5)

    def test_bounded_sample_thinning_is_deterministic(self):
        def run():
            h = Histogram("lat", sample_cap=64)
            for v in range(1000):
                h.observe(float(v))
            return h.count, h.total, h.quantile(0.5), len(h._sample)

        first, second = run(), run()
        assert first == second
        count, total, p50, sample_len = first
        assert count == 1000
        assert total == sum(range(1000))
        assert sample_len < 64  # thinned below the cap
        assert 300.0 <= p50 <= 700.0  # sampled median stays representative

    def test_summary_keys(self):
        h = Histogram("lat")
        h.observe(1.0)
        assert set(h.summary()) == {
            "count", "sum", "mean", "min", "max", "p50", "p90", "p99"
        }


class TestRegistry:
    def test_same_name_same_instrument(self):
        reg = MetricsRegistry()
        assert reg.counter("a") is reg.counter("a")

    def test_kind_conflict_rejected(self):
        reg = MetricsRegistry()
        reg.counter("a")
        with pytest.raises(TypeError):
            reg.histogram("a")

    def test_snapshot_structure(self):
        reg = MetricsRegistry()
        reg.counter("c").inc(2)
        reg.gauge("g").set(1.5)
        reg.histogram("h").observe(3.0)
        snap = reg.snapshot()
        assert snap["counters"] == {"c": 2}
        assert snap["gauges"] == {"g": 1.5}
        assert snap["histograms"]["h"]["count"] == 1

    def test_reset(self):
        reg = MetricsRegistry()
        reg.counter("c").inc()
        reg.reset()
        assert reg.names() == []


class TestDisabledPath:
    def test_disabled_by_default(self):
        assert not obs.enabled()
        assert obs.get_metrics() is NULL_REGISTRY

    def test_null_instruments_are_shared_singletons(self):
        # No allocation on the disabled hot path: every lookup returns the
        # same inert object, and mutations are swallowed.
        c1 = NULL_REGISTRY.counter("a")
        c2 = NULL_REGISTRY.counter("b")
        assert c1 is c2
        c1.inc(100)
        assert c1.value == 0
        h = NULL_REGISTRY.histogram("h")
        h.observe(5.0)
        assert h.count == 0 and h.quantile(0.5) == 0.0
        assert NULL_REGISTRY.snapshot() == {
            "counters": {}, "gauges": {}, "histograms": {}
        }

    def test_enable_disable_roundtrip(self):
        reg = obs.enable()
        try:
            assert obs.enabled()
            assert obs.get_metrics() is reg
            reg.counter("x").inc()
            assert reg.snapshot()["counters"] == {"x": 1}
        finally:
            obs.disable()
        assert not obs.enabled()
        assert obs.get_metrics() is NULL_REGISTRY

    def test_observed_restores_previous_state(self):
        with obs.observed() as inner:
            assert obs.get_metrics() is inner
            with obs.observed() as nested:
                assert obs.get_metrics() is nested
            assert obs.get_metrics() is inner
        assert obs.get_metrics() is NULL_REGISTRY
