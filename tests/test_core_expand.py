"""Unit tests for result-sketch expansion (repro.core.expand)."""

import pytest

from repro.core.estimate import estimate_selectivity
from repro.core.evaluate import eval_query
from repro.core.expand import (
    ExpansionLimitError,
    expand_result,
    expected_size,
    satisfaction_fractions,
)
from repro.core.stable import build_stable
from repro.core.treesketch import TreeSketch
from repro.engine.exact import ExactEvaluator
from repro.metrics.esd import esd_nesting_trees
from repro.query.parser import parse_twig


def stable_sketch(tree):
    return TreeSketch.from_stable(build_stable(tree))


class TestExactOnStable:
    QUERIES = [
        "//a",
        "//a (//p, //n)",
        "//a[//b] ( //p ( //k ? ), //n ? )",
        "//p (//k ?)",
        "//a (//b)",      # prunes the bookless author
        "//b (//k ?)",
    ]

    @pytest.mark.parametrize("text", QUERIES)
    def test_expansion_equals_exact_nesting_tree(self, paper_document, text):
        query = parse_twig(text)
        truth = ExactEvaluator(paper_document).evaluate(query)
        approx = expand_result(eval_query(stable_sketch(paper_document), query))
        assert esd_nesting_trees(truth, approx) == 0.0
        assert approx.size() == truth.size()
        assert approx.binding_tuple_count() == truth.binding_tuple_count()


class TestSatisfactionFractions:
    def test_all_one_when_no_solid_children(self, paper_document):
        result = eval_query(stable_sketch(paper_document), parse_twig("//a (//p ?)"))
        sat = satisfaction_fractions(result)
        assert all(v == 1.0 for v in sat.values())

    def test_zero_for_unsatisfied_binding(self, paper_document):
        # //a (//b): the 2-paper author class has no b descendants.
        result = eval_query(stable_sketch(paper_document), parse_twig("//a (//b)"))
        sat = satisfaction_fractions(result)
        values = sorted(
            sat[key] for key in result.bind["q1"]
        )
        assert values[0] == 0.0
        assert values[-1] == 1.0

    def test_fractional_counts_give_fractional_sat(self):
        ts = TreeSketch()
        ts.add_node(0, "r", 1)
        ts.add_node(1, "a", 10)
        ts.add_node(2, "b", 3)
        for (s, d, avg) in [(0, 1, 10.0), (1, 2, 0.3)]:
            ts.add_edge(s, d, avg)
            ts.stats[(s, d)] = (ts.count[s] * avg, ts.count[s] * avg * avg)
        ts.root_id = 0
        ts.doc_height = 3
        result = eval_query(ts, parse_twig("//a (/b)"))
        sat = satisfaction_fractions(result)
        a_key = result.bind["q1"][0]
        assert sat[a_key] == pytest.approx(0.3)


class TestBresenham:
    def test_fractional_counts_distributed(self):
        # 10 a's, avg 0.5 b's each -> exactly 5 b's materialized.
        ts = TreeSketch()
        ts.add_node(0, "r", 1)
        ts.add_node(1, "a", 10)
        ts.add_node(2, "b", 5)
        for (s, d, avg) in [(0, 1, 10.0), (1, 2, 0.5)]:
            ts.add_edge(s, d, avg)
            ts.stats[(s, d)] = (ts.count[s] * avg, ts.count[s] * avg * avg)
        ts.root_id = 0
        ts.doc_height = 3
        nt = expand_result(eval_query(ts, parse_twig("//a (/b ?)")))
        a_nodes = nt.root.children
        assert len(a_nodes) == 10
        assert sum(len(a.children) for a in a_nodes) == 5

    def test_expected_size_matches_expansion(self, paper_document):
        query = parse_twig("//a (//p, //n ?)")
        result = eval_query(stable_sketch(paper_document), query)
        nt = expand_result(result)
        assert expected_size(result) == pytest.approx(float(nt.size()), abs=1.5)


class TestLimits:
    def test_limit_raises(self, paper_document):
        query = parse_twig("//a (//p, //n ?)")
        result = eval_query(stable_sketch(paper_document), query)
        with pytest.raises(ExpansionLimitError):
            expand_result(result, max_nodes=3)

    def test_limit_generous_enough(self, paper_document):
        query = parse_twig("//a")
        result = eval_query(stable_sketch(paper_document), query)
        nt = expand_result(result, max_nodes=100)
        assert nt.size() == 4  # root + 3 authors


class TestEstimate:
    def test_estimate_zero_for_empty(self, paper_document):
        result = eval_query(stable_sketch(paper_document), parse_twig("//zzz"))
        assert estimate_selectivity(result) == 0.0

    def test_optional_clamped_at_one(self):
        # a binds 10 elements with 0.3 optional b's: est = 10 * max(1, .3).
        ts = TreeSketch()
        ts.add_node(0, "r", 1)
        ts.add_node(1, "a", 10)
        ts.add_node(2, "b", 3)
        for (s, d, avg) in [(0, 1, 10.0), (1, 2, 0.3)]:
            ts.add_edge(s, d, avg)
            ts.stats[(s, d)] = (ts.count[s] * avg, ts.count[s] * avg * avg)
        ts.root_id = 0
        ts.doc_height = 3
        result = eval_query(ts, parse_twig("//a (/b ?)"))
        assert estimate_selectivity(result) == pytest.approx(10.0)

    def test_solid_multiplies(self, paper_document):
        query = parse_twig("//a (//p, //n)")
        result = eval_query(stable_sketch(paper_document), query)
        truth = ExactEvaluator(paper_document).selectivity(query)
        assert estimate_selectivity(result) == pytest.approx(float(truth))
