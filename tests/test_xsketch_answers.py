"""Unit tests for sampling-based twig-XSketch answers."""

import pytest

from repro.core.stable import build_stable
from repro.engine.exact import ExactEvaluator
from repro.metrics.esd import esd_nesting_trees
from repro.query.parser import parse_twig
from repro.xsketch.answers import sampled_answer
from repro.xsketch.atoms import build_atom_graph
from repro.xsketch.synopsis import TwigXSketch


def atom_level_sketch(tree, bucket_budget=1000):
    stable = build_stable(tree)
    atoms = build_atom_graph(stable)
    return TwigXSketch.from_partition(atoms, list(range(atoms.num_atoms)), bucket_budget)


class TestSampledAnswer:
    def test_deterministic_per_seed(self, paper_document):
        xs = atom_level_sketch(paper_document)
        q = parse_twig("//a (//p, //n ?)")
        a = sampled_answer(xs, q, seed=5)
        b = sampled_answer(xs, q, seed=5)
        assert esd_nesting_trees(a, b) == 0.0

    def test_different_seeds_may_differ(self, paper_document):
        xs = atom_level_sketch(paper_document)
        q = parse_twig("//a (//p (//k ?))")
        sizes = {sampled_answer(xs, q, seed=s).size() for s in range(5)}
        assert sizes  # just exercises several seeds without crashing

    def test_structure_close_to_truth_on_fine_sketch(self, paper_document):
        ev = ExactEvaluator(paper_document)
        xs = atom_level_sketch(paper_document)
        q = parse_twig("//a (//p)")
        truth = ev.evaluate(q)
        approx = sampled_answer(xs, q, seed=0)
        # Atom-level sketch is exact up to parent context; sizes match.
        assert abs(approx.size() - truth.size()) <= truth.size() * 0.5

    def test_qvars_preserved(self, paper_document):
        xs = atom_level_sketch(paper_document)
        q = parse_twig("//a (//p)")
        nt = sampled_answer(xs, q, seed=0)
        for author in nt.root.children:
            assert author.qvar == "q1"
            for p in author.children:
                assert p.qvar == "q2"

    def test_empty_result(self, paper_document):
        xs = atom_level_sketch(paper_document)
        nt = sampled_answer(xs, parse_twig("//zzz"), seed=0)
        assert nt.size() == 1

    def test_max_nodes_guard(self, paper_document):
        from repro.core.expand import ExpansionLimitError

        xs = atom_level_sketch(paper_document)
        with pytest.raises(ExpansionLimitError):
            sampled_answer(xs, parse_twig("//a (//p, //n ?)"), seed=0, max_nodes=2)
