"""Unit tests for repro.query.path."""

import pytest

from repro.query.path import Axis, Path, PathStep, child, descendant, path


class TestPathStep:
    def test_axis_str(self):
        assert str(Axis.CHILD) == "/"
        assert str(Axis.DESCENDANT) == "//"

    def test_matches_exact_label(self):
        step = child("a")
        assert step.matches_label("a")
        assert not step.matches_label("b")

    def test_matches_wildcard(self):
        step = descendant("*")
        assert step.matches_label("anything")
        assert step.matches_label("")

    def test_matches_alternation(self):
        step = child("b|e")
        assert step.matches_label("b")
        assert step.matches_label("e")
        assert not step.matches_label("c")
        assert not step.matches_label("b|e")

    def test_str_rendering(self):
        pred = path(child("g"))
        step = PathStep(Axis.CHILD, "d", (pred,))
        assert str(step) == "/d[/g]"

    def test_strip_predicates(self):
        pred = path(child("g"))
        step = PathStep(Axis.DESCENDANT, "d", (pred,))
        stripped = step.strip_predicates()
        assert stripped.predicates == ()
        assert stripped.label == "d"
        assert stripped.axis is Axis.DESCENDANT

    def test_frozen(self):
        step = child("a")
        with pytest.raises(AttributeError):
            step.label = "b"


class TestPath:
    def test_empty_path_rejected(self):
        with pytest.raises(ValueError):
            Path(())

    def test_len_and_iter(self):
        p = path(descendant("a"), child("b"))
        assert len(p) == 2
        assert [s.label for s in p] == ["a", "b"]

    def test_main_path_strips_all_predicates(self):
        p = path(
            PathStep(Axis.DESCENDANT, "a", (path(child("x")),)),
            PathStep(Axis.CHILD, "b", (path(child("y")),)),
        )
        main = p.main_path()
        assert not main.has_predicates()
        assert main.labels() == ["a", "b"]

    def test_has_predicates(self):
        assert not path(child("a")).has_predicates()
        assert path(PathStep(Axis.CHILD, "a", (path(child("b")),))).has_predicates()

    def test_str_round_trips_through_parser(self):
        from repro.query.parser import parse_path

        p = path(
            PathStep(Axis.DESCENDANT, "a", (path(descendant("b")),)),
            child("c"),
        )
        assert parse_path(str(p)) == p

    def test_labels(self):
        assert path(descendant("a"), child("b")).labels() == ["a", "b"]
