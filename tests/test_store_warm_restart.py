"""Daemon warm restart through the ``.tsb.cache`` sidecar, end to end.

The real CLI runs in subprocesses with real signals: daemon one takes
traffic, is SIGTERMed (persisting its sidecar on the drain path), and
daemon two -- a fresh process on the same ``.tsb`` file -- must answer
the previously-seen query as a cache *hit on its first request*, pinned
by the per-sketch hit/miss counters in the ``stats`` op.  A tampered
store (checksum change) must make the same restart cold.
"""

import os
import re
import signal
import subprocess
import sys
import time

import pytest

from repro.core.build import build_treesketch
from repro.core.io import save_synopsis
from repro.core.stable import build_stable
from repro.xmltree.tree import XMLTree

_SERVE_RE = re.compile(r"on (\d+\.\d+\.\d+\.\d+):(\d+) \(protocol")

QUERY = "//a (//p)"


def _tree() -> XMLTree:
    return XMLTree.from_nested(
        ("r", [("a", [("p", ["k"]), "n"]), ("a", ["n"])]))


@pytest.fixture
def tsb_path(tmp_path):
    path = tmp_path / "warm.tsb"
    save_synopsis(build_treesketch(build_stable(_tree()), 100 * 1024),
                  str(path))
    return str(path)


def _spawn(tsb_path):
    env = dict(os.environ)
    src = os.path.join(os.path.dirname(__file__), "..", "src")
    env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
    proc = subprocess.Popen(
        [sys.executable, "-m", "repro", "serve", tsb_path, "--port", "0"],
        stdout=subprocess.PIPE, stderr=subprocess.STDOUT, text=True, env=env)
    deadline = time.monotonic() + 30
    while time.monotonic() < deadline:
        line = proc.stdout.readline()
        if not line:
            break
        match = _SERVE_RE.search(line)
        if match:
            return proc, (match.group(1), int(match.group(2)))
    proc.kill()
    raise AssertionError("daemon did not report its address in time")


def _stop(proc):
    proc.send_signal(signal.SIGTERM)
    try:
        proc.wait(timeout=30)
    except subprocess.TimeoutExpired:
        proc.kill()
        raise
    return proc.stdout.read()


def _cache_info(client):
    stats = client.call("stats")
    return stats["sketches"][0]["cache"]


class TestWarmRestart:
    def test_restart_answers_first_repeat_from_cache(self, tsb_path):
        from repro.serve.client import ServeClient

        # Generation one: take traffic, then drain via SIGTERM.
        proc, (host, port) = _spawn(tsb_path)
        try:
            with ServeClient(host, port, retries=4) as client:
                want = client.estimate(QUERY, sketch="warm")
        finally:
            tail = _stop(proc)
        assert proc.returncode == 0
        assert "persisted 1 cache sidecar(s)" in tail
        assert os.path.exists(tsb_path + ".cache")

        # Generation two: a fresh process on the same store.
        proc, (host, port) = _spawn(tsb_path)
        try:
            with ServeClient(host, port, retries=4) as client:
                got = client.estimate(QUERY, sketch="warm")
                info = _cache_info(client)
        finally:
            _stop(proc)
        assert got == want  # the persisted answer is the answer
        assert info["seeded"] >= 1
        assert info["hits"] >= 1  # first repeated query hit the cache...
        assert info["misses"] == 0  # ...without any evaluation first

    def test_tampered_store_restarts_cold(self, tsb_path):
        from repro.serve.client import ServeClient

        proc, (host, port) = _spawn(tsb_path)
        try:
            with ServeClient(host, port, retries=4) as client:
                client.estimate(QUERY, sketch="warm")
        finally:
            _stop(proc)
        assert os.path.exists(tsb_path + ".cache")

        # Rebuild the synopsis from a changed document: same file name,
        # different content, different checksum.
        changed = XMLTree.from_nested(
            ("r", [("a", [("p", ["k", "k"]), "n"]), ("a", ["n", "n"])]))
        save_synopsis(build_treesketch(build_stable(changed), 100 * 1024),
                      tsb_path)

        proc, (host, port) = _spawn(tsb_path)
        try:
            with ServeClient(host, port, retries=4) as client:
                client.estimate(QUERY, sketch="warm")
                info = _cache_info(client)
        finally:
            _stop(proc)
        assert info["seeded"] == 0  # stale sidecar ignored, never served
        assert info["misses"] >= 1
