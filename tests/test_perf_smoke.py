"""Perf smoke test: pins hot-path work counters against budgeted ceilings.

Run with ``pytest -m perf``.  The exact wall-clock of a build varies by
machine, but the *amount of work* TSBUILD and the eval cache do on a fixed
dataset is deterministic -- so we pin the observability counters instead
of seconds.  If a future change pushes a counter past its ceiling (or a
cache stops hitting), the perf win of docs/PERFORMANCE.md has regressed
and this test fails before any benchmark needs to run.

Ceilings are the values measured at the time of the perf overhaul plus
~25% headroom (see BENCH_build.json for the measured baseline).
"""

import pytest

from repro import obs
from repro.core.build import build_treesketch
from repro.core.qcache import QueryCache
from repro.core.stable import build_stable
from repro.datagen.datasets import TX_DATASETS
from repro.workload.runner import run_selectivity
from repro.workload.workload import make_workload

pytestmark = pytest.mark.perf

BUDGET_BYTES = 8 * 1024
NUM_QUERIES = 20

# Measured on IMDB-TX at 8 KB: heap_pops 24482, stale 18932,
# memo_misses 50186, memo_hits 12880, merges 1450, 17 unique queries.
CEILINGS = {
    "counters.tsbuild.heap_pops": 30_000,
    "counters.tsbuild.stale_recomputations": 24_000,
    "counters.tsbuild.memo_misses": 62_000,
    "counters.tsbuild.merges_applied": 1_800,
    "counters.tsbuild.pool_regenerations": 4,
}
FLOORS = {
    # Memoization must actually absorb rescoring work.
    "counters.tsbuild.memo_hits": 9_000,
}


@pytest.fixture(scope="module")
def measured():
    tree = TX_DATASETS["IMDB-TX"]()
    stable = build_stable(tree)
    with obs.observed() as registry:
        sketch = build_treesketch(stable, BUDGET_BYTES)
        workload = make_workload(tree, num_queries=NUM_QUERIES, seed=3,
                                 stable=stable)
        cache = QueryCache(sketch, maxsize=64)
        run_selectivity(sketch, workload, cache=cache)
        run_selectivity(sketch, workload, cache=cache)
    return obs.report.flatten_snapshot(registry.snapshot())


@pytest.mark.parametrize("counter", sorted(CEILINGS))
def test_build_counter_ceiling(measured, counter):
    assert measured[counter] <= CEILINGS[counter], (
        f"{counter} = {measured[counter]} exceeds its perf budget "
        f"{CEILINGS[counter]}; the TSBUILD fast path has regressed"
    )


@pytest.mark.parametrize("counter", sorted(FLOORS))
def test_build_counter_floor(measured, counter):
    assert measured[counter] >= FLOORS[counter], (
        f"{counter} = {measured[counter]} is below {FLOORS[counter]}; "
        f"memoization is no longer absorbing rescores"
    )


def test_eval_cache_counters(measured):
    misses = measured["counters.eval.cache.misses"]
    hits = measured["counters.eval.cache.hits"]
    # One miss per distinct canonical query, at most one per issued query.
    assert misses <= NUM_QUERIES
    # The second workload pass must be served entirely from the cache.
    assert hits >= NUM_QUERIES
    assert measured["counters.eval.queries"] == misses
