"""Unit-level runs of the table/figure harness on a tiny data set.

The benchmarks exercise these paths at full scale; this module keeps them
covered inside the fast unit suite using a miniature registered data set.
"""

import pytest

import repro.experiments.harness as harness
from repro.datagen.datasets import imdb_like
from repro.experiments.figures import fig11_series, fig12_series, fig13_series
from repro.experiments.sensitivity import workload_sensitivity
from repro.experiments.tables import table1_rows, table2_rows
from repro.xsketch.build import XSketchBuildOptions

TINY = "TINY-UNIT"


@pytest.fixture(autouse=True)
def tiny_dataset(monkeypatch):
    monkeypatch.setitem(harness._ALL_GENERATORS, TINY, lambda: imdb_like(scale=0.35, seed=3))
    monkeypatch.setenv("REPRO_WORKLOAD_SIZE", "12")
    monkeypatch.setenv("REPRO_ESD_QUERIES", "4")
    # Fresh bundle cache so env changes take effect.
    harness._BUNDLES.clear()
    yield
    harness._BUNDLES.clear()


class TestTablesHarness:
    def test_table1(self):
        rows = table1_rows(names=[TINY])
        (row,) = rows
        assert row[0] == TINY
        assert row[1] > 100  # elements
        assert row[3] > 0    # stable KB

    def test_table2(self):
        rows = table2_rows(names=[TINY])
        (row,) = rows
        assert row[1] >= 1.0


class TestFiguresHarness:
    def test_fig12_series(self):
        rows = fig12_series(
            TINY,
            budgets=[2, 4],
            xsketch_options=XSketchBuildOptions(sample_size=4, candidate_clusters=2),
        )
        assert [row[0] for row in rows] == [2, 4]
        for _kb, ts_err, xs_err in rows:
            assert 0.0 <= ts_err < 200.0
            assert 0.0 <= xs_err < 200.0

    def test_fig11_series(self):
        rows = fig11_series(
            TINY,
            budgets=[3],
            esd_queries=3,
            xsketch_options=XSketchBuildOptions(sample_size=4, candidate_clusters=2),
        )
        (row,) = rows
        assert row[0] == 3
        assert row[1] >= 0.0 and row[2] >= 0.0

    def test_fig13_series(self):
        series = fig13_series(names=[TINY], budgets=[2, 4])
        rows = series[TINY]
        assert len(rows) == 2
        # More budget can't make TreeSketch (much) worse.
        assert rows[1][1] <= rows[0][1] + 1.0


class TestSensitivityHarness:
    def test_two_variations(self):
        bundle = harness.load_bundle(TINY)
        rows = workload_sensitivity(
            bundle, budget_kb=3, num_queries=8,
            variations={"default": {}, "child only": {"descendant_prob": 0.0}},
        )
        assert len(rows) == 2
        for _name, avg_err, max_err in rows:
            assert 0.0 <= avg_err <= max_err
