"""Unit tests for repro.query.twig."""

from repro.query.parser import parse_path, parse_twig
from repro.query.twig import TwigQuery


class TestTwigQuery:
    def test_programmatic_construction(self):
        q = TwigQuery()
        q1 = q.root.add_child(parse_path("//a"))
        q1.add_child(parse_path("/b"), optional=True)
        q.finalize()
        assert q.variables == ["q0", "q1", "q2"]
        assert q.node_by_var("q2").optional

    def test_finalize_returns_self(self):
        q = TwigQuery()
        q.root.add_child(parse_path("/x"))
        assert q.finalize() is q

    def test_size_counts_root(self):
        assert parse_twig("//a").size() == 2

    def test_depth(self):
        assert parse_twig("//a").depth() == 1
        assert parse_twig("//a ( /b ( /c ) )").depth() == 3
        assert parse_twig("//a ( /b, /c )").depth() == 2

    def test_node_by_var_missing(self):
        q = parse_twig("//a")
        try:
            q.node_by_var("q9")
            assert False, "expected KeyError"
        except KeyError:
            pass

    def test_iter_preorder_root_first(self):
        q = parse_twig("//a ( /b, /c )")
        assert [n.var for n in q.root.iter_preorder()] == ["q0", "q1", "q2", "q3"]

    def test_iter_postorder_root_last(self):
        q = parse_twig("//a ( /b, /c )")
        order = [n.var for n in q.root.iter_postorder()]
        assert order[-1] == "q0"
        assert set(order) == {"q0", "q1", "q2", "q3"}

    def test_str_rendering_marks_optional(self):
        q = parse_twig("//a ( /b ? )")
        assert "?" in str(q)
