"""Tests for expansion modes: deterministic, variance-aware, stochastic."""

import pytest

from repro.core.evaluate import eval_query
from repro.core.expand import expand_result
from repro.core.stable import build_stable
from repro.core.treesketch import TreeSketch
from repro.metrics.esd import esd_nesting_trees
from repro.query.parser import parse_twig


def bimodal_sketch():
    """One a-cluster whose b-counts were {1,1,4,4} before merging."""
    ts = TreeSketch()
    ts.add_node(0, "r", 1)
    ts.add_node(1, "a", 4)
    ts.add_node(2, "b", 10)
    ts.add_edge(0, 1, 4.0)
    ts.stats[(0, 1)] = (4.0, 16.0)
    ts.add_edge(1, 2, 2.5)
    ts.stats[(1, 2)] = (10.0, 34.0)  # counts 1,1,4,4
    ts.root_id = 0
    ts.doc_height = 3
    return ts


class TestVarianceAware:
    def test_two_point_reconstruction(self):
        ts = bimodal_sketch()
        result = eval_query(ts, parse_twig("//a (/b ?)"))
        nt = expand_result(result, sketch=ts)
        counts = sorted(len(a.children) for a in nt.root.children)
        # {1,1,4,4} reconstructed exactly from mean 2.5 / var 2.25.
        assert counts == [1, 1, 4, 4]

    def test_mean_mode_flattens(self):
        ts = bimodal_sketch()
        result = eval_query(ts, parse_twig("//a (/b ?)"))
        nt = expand_result(result)  # no sketch: mean expansion
        counts = sorted(len(a.children) for a in nt.root.children)
        assert counts in ([2, 2, 3, 3], [2, 3, 2, 3], [2, 3, 3, 2])
        assert sum(counts) == 10

    def test_exact_on_stable(self, paper_document):
        stable = build_stable(paper_document)
        ts = TreeSketch.from_stable(stable)
        from repro.engine.exact import ExactEvaluator

        q = parse_twig("//a (//p, //n ?)")
        truth = ExactEvaluator(paper_document).evaluate(q)
        nt = expand_result(eval_query(ts, q), sketch=ts)
        assert esd_nesting_trees(truth, nt) == 0.0

    def test_descendant_edges_not_affected(self, paper_document):
        # Descendant edges cannot map to one synopsis edge; both modes
        # must agree there.
        ts = TreeSketch.from_stable(build_stable(paper_document))
        q = parse_twig("//a (//k ?)")
        a = expand_result(eval_query(ts, q))
        b = expand_result(eval_query(ts, q), sketch=ts)
        assert esd_nesting_trees(a, b) == 0.0


class TestStochasticMode:
    def test_deterministic_per_seed(self):
        ts = bimodal_sketch()
        result = eval_query(ts, parse_twig("//a (/b ?)"))
        a = expand_result(result, sketch=ts, seed=7)
        b = expand_result(result, sketch=ts, seed=7)
        assert esd_nesting_trees(a, b) == 0.0

    def test_mean_preserved_in_expectation(self):
        ts = bimodal_sketch()
        result = eval_query(ts, parse_twig("//a (/b ?)"))
        totals = []
        for seed in range(30):
            nt = expand_result(result, sketch=ts, seed=seed)
            totals.append(sum(len(a.children) for a in nt.root.children))
        avg = sum(totals) / len(totals)
        assert avg == pytest.approx(10.0, rel=0.2)

    def test_samples_come_from_support(self):
        ts = bimodal_sketch()
        result = eval_query(ts, parse_twig("//a (/b ?)"))
        for seed in range(10):
            nt = expand_result(result, sketch=ts, seed=seed)
            for a in nt.root.children:
                assert len(a.children) in (1, 4)
