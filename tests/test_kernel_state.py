"""State-sync oracle for the array kernel (docs/PERFORMANCE.md).

:class:`repro.core.kernel.KernelPartition` re-represents the dict path's
partition state as flat CSR / slot-table buffers.  Bit-identical *scores*
(tests/test_build_equivalence.py) are necessary but not sufficient: a
drifted internal table could score correctly today and corrupt a later
merge.  These tests drive both backends through identical randomized
merge sequences and require every piece of state to stay bitwise equal
-- including dict/slot *ordering*, which fixes downstream floating-point
summation orders -- plus the kernel's own structural invariants
(``check_invariants``: CSR vs. stable adjacency, slot-table bijection,
transpose consistency, stats recomputation).

The ``perf``-marked smoke pins the kernel-path work counters on a fixed
dataset: because the kernel is bit-identical, its heap/memo traffic must
match the dict path's exactly, and the backend marker counter must
report the arrays kernel actually served the build.
"""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro import obs
from repro.core.build import TSBuildOptions, build_treesketch
from repro.core.kernel import KernelPartition
from repro.core.partition import MergePartition
from repro.core.stable import build_stable
from repro.datagen.datasets import TX_DATASETS
from tests.conftest import make_random_tree


def assert_states_match(kern: KernelPartition, dicts: MergePartition):
    """Every observable table bitwise-equal, *including iteration order*."""
    assert set(kern.members) == set(dicts.members)
    assert kern.num_edges == dicts.num_edges
    assert kern.total_sq == dicts.total_sq
    assert kern.assign == dicts.assign
    assert list(kern.cluster_label.items()) == list(dicts.cluster_label.items())
    assert kern.cluster_depth == dicts.cluster_depth
    assert kern.version == dicts.version
    assert kern.struct_version == dicts.struct_version
    for cid in dicts.members:
        assert kern.members[cid] == dicts.members[cid]
        assert kern.count[cid] == dicts.count[cid]
        assert kern.cluster_sq[cid] == dicts.cluster_sq[cid]
        assert kern.in_sources[cid] == dicts.in_sources[cid]
        # Dimension order is load-bearing (it fixes FP summation order):
        # compare as ordered item lists, not just as mappings.
        assert (
            list(kern.out_dims(cid).items())
            == list(dicts.out_stats[cid].items())
        )
        assert kern.structural_key(cid) == dicts.structural_key(cid)
    for s_id in range(kern._n):
        assert kern.gs_row(s_id) == dicts.gs[s_id]


@settings(max_examples=20, deadline=None)
@given(seed=st.integers(0, 10_000), size=st.integers(20, 120))
def test_randomized_merge_sequences_stay_in_sync(seed, size):
    rng = random.Random(seed)
    stable = build_stable(make_random_tree(rng, size))
    kern = KernelPartition(stable)
    dicts = MergePartition(stable)
    assert_states_match(kern, dicts)
    merges = 0
    while dicts.num_nodes > 2 and merges < 12:
        u, v = rng.sample(sorted(dicts.members), 2)
        # Scores must agree *before* the merge corrupting anything would
        # be observable, and state after it.
        assert kern._eval_raw(u, v) == dicts._eval_raw(u, v)
        assert kern.apply_merge(u, v) == dicts.apply_merge(u, v)
        merges += 1
        assert_states_match(kern, dicts)
    kern.check_invariants()


@settings(max_examples=10, deadline=None)
@given(seed=st.integers(0, 10_000))
def test_kernel_invariants_hold_under_adversarial_merges(seed):
    """check_invariants() passes mid-sequence, not only at the end."""
    rng = random.Random(seed)
    stable = build_stable(make_random_tree(rng, 60))
    kern = KernelPartition(stable)
    for _ in range(8):
        live = sorted(kern.members)
        if len(live) < 3:
            break
        u, v = rng.sample(live, 2)
        kern.apply_merge(u, v)
        kern.check_invariants()


def test_scored_merge_memo_matches_dict_path():
    rng = random.Random(4)
    stable = build_stable(make_random_tree(rng, 150))
    kern = KernelPartition(stable)
    dicts = MergePartition(stable)
    kern.enable_memo()
    dicts.enable_memo()
    live = sorted(dicts.members)
    pairs = [tuple(rng.sample(live, 2)) for _ in range(30)]
    for u, v in pairs + pairs:  # second pass exercises the memo-hit path
        assert kern.scored_merge(u, v) == dicts.scored_merge(u, v)
    assert (kern.memo_hits, kern.memo_misses) == (
        dicts.memo_hits,
        dicts.memo_misses,
    )
    assert kern.memo_hits == 30


# --- perf smoke: the kernel path's work counters on a fixed dataset. ----

BUDGET_BYTES = 8 * 1024

# The arrays kernel is bit-identical to the dict path, so it must do
# exactly the dict path's heap/memo work (ceilings as in
# tests/test_perf_smoke.py: measured values plus ~25% headroom).
KERNEL_CEILINGS = {
    "counters.tsbuild.heap_pops": 30_000,
    "counters.tsbuild.stale_recomputations": 24_000,
    "counters.tsbuild.memo_misses": 62_000,
    "counters.tsbuild.merges_applied": 1_800,
    "counters.tsbuild.pool_regenerations": 4,
}


@pytest.fixture(scope="module")
def kernel_measured():
    stable = build_stable(TX_DATASETS["IMDB-TX"]())
    with obs.observed() as registry:
        build_treesketch(
            stable, BUDGET_BYTES, options=TSBuildOptions(kernel="arrays")
        )
    return obs.report.flatten_snapshot(registry.snapshot())


@pytest.mark.perf
def test_kernel_build_served_by_arrays_backend(kernel_measured):
    assert kernel_measured["counters.tsbuild.kernel_arrays"] == 1
    assert "counters.tsbuild.kernel_dicts" not in kernel_measured


@pytest.mark.perf
@pytest.mark.parametrize("counter", sorted(KERNEL_CEILINGS))
def test_kernel_counter_ceiling(kernel_measured, counter):
    assert kernel_measured[counter] <= KERNEL_CEILINGS[counter], (
        f"{counter} = {kernel_measured[counter]} exceeds its perf budget "
        f"{KERNEL_CEILINGS[counter]}; the arrays kernel no longer does "
        f"the dict path's (bit-identical) amount of work"
    )


@pytest.mark.perf
def test_kernel_structural_key_cache_effective(kernel_measured):
    """struct_version-keyed caching absorbs repeat structural-key queries.

    Pool regenerations are rare on IMDB-TX and most clusters change
    between them, so the measured hit share is modest (209 hits /
    1669 recomputes at 8 KB) -- but it must stay nonzero: a hit means a
    cluster whose child-side state was untouched (only its parents
    changed) skipped the key recomputation, the exact soundness boundary
    of the version split (docs/PERFORMANCE.md).
    """
    hits = kernel_measured.get("counters.tsbuild.skey_cache_hits", 0)
    recomputes = kernel_measured.get("counters.tsbuild.skey_recomputes", 0)
    assert hits > 0, (hits, recomputes)
