"""The HTTP exposition layer: Prometheus rendering and the sidecar.

Holds the parser the acceptance bar asks for: every ``/metrics`` body
must tokenize under the text exposition grammar (version 0.0.4) --
``# TYPE`` lines, sample lines with optional labels, NaN/Inf spellings
-- with counters carrying the ``_total`` suffix and histograms published
as summaries.
"""

import json
import math
import re
import urllib.error
import urllib.request

import pytest

from repro.obs.expo import ExpositionServer, render_prometheus, sanitize_metric_name
from repro.obs.metrics import MetricsRegistry

pytestmark = pytest.mark.obs

_METRIC_NAME = r"[a-zA-Z_:][a-zA-Z0-9_:]*"
_TYPE_LINE = re.compile(rf"^# TYPE ({_METRIC_NAME}) (counter|gauge|summary|histogram|untyped)$")
_SAMPLE_LINE = re.compile(
    rf"^({_METRIC_NAME})"
    r"(?:\{([a-zA-Z_][a-zA-Z0-9_]*=\"[^\"\\\n]*\"(?:,[a-zA-Z_][a-zA-Z0-9_]*=\"[^\"\\\n]*\")*)\})?"
    r" (NaN|[+-]Inf|[+-]?[0-9]*\.?[0-9]+(?:[eE][+-]?[0-9]+)?)$"
)


def parse_exposition(text: str):
    """Parse Prometheus text exposition; raise on any malformed line.

    Returns ``(types, samples)``: declared metric types by family name,
    and ``(name, labels, value)`` sample triples.
    """
    assert text.endswith("\n"), "exposition must end with a newline"
    types = {}
    samples = []
    for line in text.splitlines():
        if not line:
            continue
        if line.startswith("#"):
            match = _TYPE_LINE.match(line)
            assert match, f"malformed comment line: {line!r}"
            types[match.group(1)] = match.group(2)
            continue
        match = _SAMPLE_LINE.match(line)
        assert match, f"malformed sample line: {line!r}"
        name, labels, value = match.groups()
        samples.append((name, labels, value))
    # Every sample must belong to a declared family (summary samples may
    # extend the family name with _sum/_count).
    for name, _, _ in samples:
        family = name
        for suffix in ("_sum", "_count"):
            if name.endswith(suffix) and name[: -len(suffix)] in types:
                family = name[: -len(suffix)]
        assert family in types, f"sample {name!r} has no # TYPE declaration"
    return types, samples


class TestRenderPrometheus:
    def test_sanitize(self):
        assert sanitize_metric_name("serve.requests.eval") == \
            "treesketch_serve_requests_eval"
        assert sanitize_metric_name("a-b c!", namespace="ns") == "ns_a_b_c_"

    def test_counters_gain_total_suffix(self):
        snapshot = {"counters": {"serve.requests": 7}}
        text = render_prometheus(snapshot)
        types, samples = parse_exposition(text)
        assert types["treesketch_serve_requests_total"] == "counter"
        assert ("treesketch_serve_requests_total", None, "7") in samples

    def test_histogram_renders_as_summary(self):
        registry = MetricsRegistry()
        hist = registry.histogram("build.seconds")
        for value in [0.1, 0.2, 0.3, 0.4]:
            hist.observe(value)
        types, samples = parse_exposition(render_prometheus(registry.snapshot()))
        assert types["treesketch_build_seconds"] == "summary"
        by_label = {labels: value for name, labels, value in samples
                    if name == "treesketch_build_seconds"}
        assert 'quantile="0.5"' in by_label
        assert 'quantile="0.99"' in by_label
        names = [name for name, _, _ in samples]
        assert "treesketch_build_seconds_sum" in names
        assert "treesketch_build_seconds_count" in names

    def test_full_registry_parses(self):
        registry = MetricsRegistry()
        registry.counter("serve.requests").inc(3)
        registry.gauge("serve.queue.depth").set(2)
        registry.histogram("serve.request_seconds").observe(0.01)
        registry.windowed("serve.op.latency.eval").observe(0.02)
        types, samples = parse_exposition(render_prometheus(registry.snapshot()))
        assert len(samples) >= 4
        # Output must be sorted by metric name for scrape diff stability.
        rendered_order = [name for name, _, _ in samples]
        families = [re.sub(r"_(sum|count|total)$", "", n) for n in rendered_order]
        assert families == sorted(families, key=families.index)  # grouped

    def test_nan_and_inf_values(self):
        snapshot = {
            "gauges": {"weird.nan": float("nan"), "weird.inf": float("inf"),
                       "weird.ninf": float("-inf")},
        }
        text = render_prometheus(snapshot)
        _, samples = parse_exposition(text)
        values = {name: value for name, _, value in samples}
        assert values["treesketch_weird_nan"] == "NaN"
        assert values["treesketch_weird_inf"] == "+Inf"
        assert values["treesketch_weird_ninf"] == "-Inf"

    def test_empty_snapshot(self):
        text = render_prometheus({})
        assert text == "\n"
        parse_exposition(text)

    def test_integer_values_render_bare(self):
        text = render_prometheus({"counters": {"c": 5}})
        assert "treesketch_c_total 5\n" in text
        assert "5.0" not in text


@pytest.fixture(scope="module")
def sidecar():
    registry = MetricsRegistry()
    registry.counter("serve.requests").inc(11)
    registry.histogram("serve.request_seconds").observe(0.25)
    server = ExpositionServer(
        snapshot_provider=registry.snapshot,
        status_provider=lambda: {"uptime_s": 1.5, "protocol": 1},
        port=0,
    ).start()
    yield server
    server.stop()


def _get(sidecar, path):
    url = f"http://{sidecar.host}:{sidecar.port}{path}"
    with urllib.request.urlopen(url, timeout=5) as resp:
        return resp.status, resp.headers, resp.read().decode("utf-8")


class TestExpositionServer:
    def test_metrics_endpoint(self, sidecar):
        status, headers, body = _get(sidecar, "/metrics")
        assert status == 200
        assert headers["Content-Type"].startswith("text/plain")
        assert "version=0.0.4" in headers["Content-Type"]
        types, samples = parse_exposition(body)
        assert types["treesketch_serve_requests_total"] == "counter"
        assert ("treesketch_serve_requests_total", None, "11") in samples

    def test_healthz(self, sidecar):
        status, headers, body = _get(sidecar, "/healthz")
        assert status == 200
        assert json.loads(body) == {"status": "ok"}

    def test_statusz(self, sidecar):
        status, headers, body = _get(sidecar, "/statusz")
        assert status == 200
        assert headers["Content-Type"] == "application/json"
        assert json.loads(body) == {"uptime_s": 1.5, "protocol": 1}

    def test_unknown_path_404(self, sidecar):
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            _get(sidecar, "/nope")
        assert excinfo.value.code == 404

    def test_query_string_ignored(self, sidecar):
        status, _, body = _get(sidecar, "/healthz?probe=1")
        assert status == 200 and json.loads(body)["status"] == "ok"

    def test_metrics_reflect_live_registry(self):
        registry = MetricsRegistry()
        server = ExpositionServer(snapshot_provider=registry.snapshot, port=0)
        server.start()
        try:
            _, _, before = _get(server, "/metrics")
            assert "live_counter" not in before
            registry.counter("live_counter").inc()
            _, _, after = _get(server, "/metrics")
            assert ("treesketch_live_counter_total", None, "1") \
                in parse_exposition(after)[1]
        finally:
            server.stop()

    def test_statusz_without_provider_is_empty_object(self):
        server = ExpositionServer(snapshot_provider=dict, port=0).start()
        try:
            _, _, body = _get(server, "/statusz")
            assert json.loads(body) == {}
        finally:
            server.stop()

    def test_double_start_rejected(self, sidecar):
        with pytest.raises(RuntimeError):
            sidecar.start()
