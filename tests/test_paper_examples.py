"""End-to-end checks of the paper's worked examples.

* Figure 1 / Figure 2: the bibliography document, its example twig query,
  and the nesting tree with exactly two binding tuples.
* Figure 3: documents T1/T2 that are indistinguishable to selectivity-
  oriented summaries but have different count-stable summaries and very
  different answer structure.
* Figure 9 / Example 4.1: EVALQUERY's exact output numbers, including the
  0.88 inclusion-exclusion branch selectivity.
* Figure 10 / Example 5.1: ESD prefers the correlation-preserving
  approximation; tree-edit distance does not.
"""

import pytest

from repro.core.estimate import estimate_selectivity
from repro.core.evaluate import eval_query
from repro.core.expand import expand_result
from repro.core.stable import build_stable, expand_stable
from repro.core.treesketch import TreeSketch
from repro.engine.exact import ExactEvaluator
from repro.metrics.esd import esd, esd_nesting_trees
from repro.metrics.tree_edit import tree_edit_distance
from repro.query.parser import parse_twig
from repro.xmltree.tree import XMLTree


class TestFigure1And2:
    QUERY = "//a[//b] ( //p ( //k ? ), //n ? )"

    def test_document_statistics(self, paper_document):
        assert len(paper_document) == 28
        assert len(paper_document.nodes_with_label("a")) == 3
        assert len(paper_document.nodes_with_label("p")) == 4
        assert len(paper_document.nodes_with_label("b")) == 2

    def test_nesting_tree_matches_figure_2c(self, paper_document):
        nt = ExactEvaluator(paper_document).evaluate(parse_twig(self.QUERY))
        # Fig. 2(c): root with a2 and a3, each carrying one p (with k) + n.
        assert len(nt.root.children) == 2
        for a in nt.root.children:
            kinds = sorted(c.label for c in a.children)
            assert kinds == ["n", "p"]
            (p,) = [c for c in a.children if c.label == "p"]
            assert [c.label for c in p.children] == ["k"]

    def test_two_binding_tuples(self, paper_document):
        ev = ExactEvaluator(paper_document)
        assert ev.selectivity(parse_twig(self.QUERY)) == 2

    def test_stable_synopsis_answers_exactly(self, paper_document):
        sketch = TreeSketch.from_stable(build_stable(paper_document))
        query = parse_twig(self.QUERY)
        result = eval_query(sketch, query)
        assert estimate_selectivity(result) == pytest.approx(2.0)
        truth = ExactEvaluator(paper_document).evaluate(query)
        assert esd_nesting_trees(truth, expand_result(result)) == 0.0


class TestFigure3:
    """Selectivity-equal documents with different structure."""

    def test_all_twigs_have_equal_selectivity(self, figure3_t1, figure3_t2):
        ev1 = ExactEvaluator(figure3_t1)
        ev2 = ExactEvaluator(figure3_t2)
        for text in ["//a", "//a/b", "//a/b/c", "//a[/b]", "//a (/b (/c))",
                     "//b (/c)", "//a (/b, /b)"]:
            q1, q2 = parse_twig(text), parse_twig(text)
            assert ev1.selectivity(q1) == ev2.selectivity(q2), text

    def test_query_q_selectivity_is_10(self, figure3_t1, figure3_t2):
        # The paper's query Q: //a/b/c has selectivity 10 on both.
        for tree in (figure3_t1, figure3_t2):
            assert ExactEvaluator(tree).selectivity(parse_twig("//a (/b (/c))")) == 10

    def test_count_stable_summaries_differ(self, figure3_t1, figure3_t2):
        s1, s2 = build_stable(figure3_t1), build_stable(figure3_t2)
        # Fig. 3(f): T1 has one a-class, T2 has two.
        assert len(s1.nodes_with_label("a")) == 1
        assert len(s2.nodes_with_label("a")) == 2

    def test_answer_structure_differs(self, figure3_t1, figure3_t2):
        q = parse_twig("//a (/b (/c))")
        nt1 = ExactEvaluator(figure3_t1).evaluate(q)
        nt2 = ExactEvaluator(figure3_t2).evaluate(q)
        assert esd_nesting_trees(nt1, nt2) > 0

    def test_treesketch_distinguishes_the_documents(self, figure3_t1, figure3_t2):
        """Zero-error TreeSketches reproduce each document's answer
        exactly -- the capability twig-XSketches lack by design."""
        q = parse_twig("//a (/b (/c))")
        for tree in (figure3_t1, figure3_t2):
            sketch = TreeSketch.from_stable(build_stable(tree))
            truth = ExactEvaluator(tree).evaluate(q)
            approx = expand_result(eval_query(sketch, q))
            assert esd_nesting_trees(truth, approx) == 0.0

    def test_lemma31_expand(self, figure3_t1, figure3_t2):
        for tree in (figure3_t1, figure3_t2):
            summary = build_stable(tree)
            rebuilt = expand_stable(summary)
            assert len(rebuilt) == len(tree)
            again = build_stable(rebuilt)
            assert again.num_nodes == summary.num_nodes


class TestExample41:
    """Figure 9: the worked EVALQUERY run."""

    def make_sketch(self):
        ts = TreeSketch()
        spec = {
            "r": ("r", 1), "A": ("a", 10), "B": ("b", 50), "E": ("e", 2),
            "D": ("d", 20), "F": ("f", 110), "G1": ("g", 12),
            "G2": ("g", 14), "C": ("c", 165),
        }
        ids = {}
        for i, (name, (label, count)) in enumerate(spec.items()):
            ids[name] = i
            ts.add_node(i, label, count)
        for src, dst, avg in [
            ("r", "A", 10), ("A", "B", 5), ("A", "E", 0.2), ("A", "D", 2),
            ("B", "F", 2), ("E", "F", 5), ("D", "F", 0.5), ("D", "G1", 0.6),
            ("D", "G2", 0.7), ("F", "C", 1.5),
        ]:
            ts.add_edge(ids[src], ids[dst], avg)
            count = spec[src][1]
            ts.stats[(ids[src], ids[dst])] = (count * avg, count * avg * avg)
        ts.root_id = ids["r"]
        ts.doc_height = 6
        return ts

    def test_result_matches_figure_9c(self):
        result = eval_query(
            self.make_sketch(), parse_twig("//a ( b|e ( //f ( c ) ), d[/g]//f )")
        )
        edges = {
            (result.label[s], s[1], result.label[d], d[1]): k
            for s, out in result.out.items()
            for d, k in out.items()
        }
        assert edges[("r", "q0", "a", "q1")] == pytest.approx(10)
        assert edges[("a", "q1", "b", "q2")] == pytest.approx(5)
        assert edges[("a", "q1", "e", "q2")] == pytest.approx(0.2)
        assert edges[("b", "q2", "f", "q3")] == pytest.approx(2)
        assert edges[("e", "q2", "f", "q3")] == pytest.approx(5)
        assert edges[("f", "q3", "c", "q4")] == pytest.approx(1.5)
        assert edges[("a", "q1", "f", "q5")] == pytest.approx(0.88)

    def test_branch_selectivity_inclusion_exclusion(self):
        # 0.6 + 0.7 - 0.6*0.7 = 0.88, the paper's arithmetic.
        assert 0.6 + 0.7 - 0.6 * 0.7 == pytest.approx(0.88)


class TestExample51:
    """Figure 10: ESD vs tree-edit distance."""

    @staticmethod
    def doc(c1, d1, c2, d2):
        sc, sd = ("c", ["x"]), ("d", ["y", "z"])
        return XMLTree.from_nested(
            ("r", [("a", [sc] * c1 + [sd] * d1), ("a", [sc] * c2 + [sd] * d2)])
        )

    def test_esd_orders_the_approximations(self):
        truth = self.doc(4, 1, 1, 4)
        t1 = self.doc(1, 1, 4, 4)
        t2 = self.doc(6, 2, 2, 6)
        assert esd(truth, t2) < esd(truth, t1)

    def test_tree_edit_fails_to_order(self):
        truth = self.doc(4, 1, 1, 4)
        t1 = self.doc(1, 1, 4, 4)
        t2 = self.doc(6, 2, 2, 6)
        assert tree_edit_distance(truth, t1) <= tree_edit_distance(truth, t2)
