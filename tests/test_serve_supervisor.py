"""End-to-end harness for the sharded multi-process serving tier.

Real processes, real signals, real sockets: ``treesketch serve
--workers N`` is booted as a subprocess (which itself forks N worker
daemons), a shard-map-aware :class:`~repro.serve.client.PooledClient`
replays a mixed workload through it, and the answers are compared --
bit for bit -- against a single-process daemon serving the same
sketches.  Fault injection then earns the harness its name:

* SIGKILL a worker mid-traffic: the supervisor must restart it within
  its backoff bounds, requests in flight on the dead connection must
  surface as retryable connection errors (never hangs), and the pooled
  client must recover by re-resolving the shard map;
* SIGTERM the supervisor: the whole fleet drains cleanly, workers exit,
  and the supervisor reports ``fleet drained`` with exit code 0.
"""

import os
import re
import signal
import subprocess
import sys
import threading
import time

import pytest

from repro.core.build import build_treesketch
from repro.core.estimate import estimate_selectivity
from repro.core.evaluate import eval_query
from repro.core.io import save_synopsis
from repro.core.stable import build_stable
from repro.query.parser import parse_twig
from repro.serve import sharding
from repro.serve.client import PooledClient, ServeClient
from repro.serve.registry import SketchRegistry
from repro.serve.server import ServeConfig, start_server_thread
from repro.xmltree.tree import XMLTree

pytestmark = pytest.mark.obs

_CONTROL_RE = re.compile(r"control on ([\d.]+):(\d+) \(protocol")
_SERVE_RE = re.compile(r"on (\d+\.\d+\.\d+\.\d+):(\d+) \(protocol")
_FLEET_TELEMETRY_RE = re.compile(r"fleet telemetry on http://([\d.]+):(\d+)")

QUERIES = ["//a", "//a (//p)", "//a[//b] (//p ?)"]

_TREES = {
    "alpha": ("r", [("a", [("p", ["k", "k"]), "n"]),
                    ("a", [("p", ["k"]), "n"]),
                    ("a", [("b", ["t"])])]),
    "beta": ("r", [("a", [("p", ["k"])])] * 4),
    "gamma": ("r", [("a", [("b", ["t"]), "n", "n"]),
                    ("a", [("p", ["k"]), ("p", ["k", "k", "k"])])]),
}


@pytest.fixture(scope="module")
def artifacts(tmp_path_factory):
    tmp = tmp_path_factory.mktemp("fleet")
    specs, sketches = [], {}
    for name, nested in _TREES.items():
        sketch = build_treesketch(
            build_stable(XMLTree.from_nested(nested)), 100 * 1024)
        path = tmp / f"{name}.json"
        save_synopsis(sketch, str(path))
        specs.append(f"{name}={path}")
        sketches[name] = sketch
    return {"specs": specs, "sketches": sketches}


def _env():
    env = dict(os.environ)
    src = os.path.join(os.path.dirname(__file__), "..", "src")
    env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
    return env


def _spawn_fleet(specs, *extra, workers=2):
    """Boot ``treesketch serve --workers N``; returns (proc, addrs, log).

    Blocks until the supervisor prints its control-endpoint readiness
    line (by which point every worker has reported ready); a drain
    thread keeps consuming stdout into ``log`` so the pipe never fills.
    """
    proc = subprocess.Popen(
        [sys.executable, "-m", "repro", "serve", *specs,
         "--port", "0", "--workers", str(workers), *extra],
        stdout=subprocess.PIPE, stderr=subprocess.STDOUT, text=True,
        env=_env())
    log, addrs = [], {}
    deadline = time.monotonic() + 90
    while time.monotonic() < deadline:
        line = proc.stdout.readline()
        if not line:
            break
        log.append(line)
        match = _CONTROL_RE.search(line)
        if match:
            addrs["control"] = (match.group(1), int(match.group(2)))
        match = _FLEET_TELEMETRY_RE.search(line)
        if match:
            addrs["telemetry"] = (match.group(1), int(match.group(2)))
        if "control" in addrs and ("--metrics-port" not in extra
                                   or "telemetry" in addrs):
            drain = threading.Thread(
                target=lambda: log.extend(iter(proc.stdout.readline, "")),
                daemon=True)
            drain.start()
            return proc, addrs, log
    proc.kill()
    raise AssertionError(
        "fleet did not report readiness in time:\n" + "".join(log))


def _stop_fleet(proc):
    if proc.poll() is None:
        proc.send_signal(signal.SIGTERM)
        try:
            proc.wait(60)
        except subprocess.TimeoutExpired:
            proc.kill()
            proc.wait(10)


def _collect_answers(client, sketch_names):
    """The mixed workload: estimate + eval + seeded expand, per sketch."""
    answers = {}
    for name in sketch_names:
        for query in QUERIES:
            answers[(name, query, "estimate")] = client.estimate(
                query, sketch=name)
            evaluated = client.eval(query, sketch=name)
            answers[(name, query, "eval")] = {
                k: v for k, v in evaluated.items()
                if k not in ("id", "request_id")}
        expanded = client.expand("//a", sketch=name, seed=7, max_nodes=500)
        answers[(name, "//a", "expand")] = {
            k: v for k, v in expanded.items()
            if k not in ("id", "request_id")}
    return answers


class TestFleetEquivalence:
    def test_two_worker_fleet_matches_single_process(self, artifacts):
        names = sorted(_TREES)
        # Single-process truth: the same daemon, one process, all
        # sketches -- run as a real subprocess through the same CLI.
        single = subprocess.Popen(
            [sys.executable, "-m", "repro", "serve", *artifacts["specs"],
             "--port", "0"],
            stdout=subprocess.PIPE, stderr=subprocess.STDOUT, text=True,
            env=_env())
        try:
            address = None
            deadline = time.monotonic() + 60
            while address is None and time.monotonic() < deadline:
                line = single.stdout.readline()
                match = _SERVE_RE.search(line)
                if match:
                    address = (match.group(1), int(match.group(2)))
            assert address is not None
            with ServeClient(*address, retries=5) as client:
                expected = _collect_answers(client, names)
        finally:
            _stop_fleet(single)

        proc, addrs, _log = _spawn_fleet(artifacts["specs"])
        try:
            with PooledClient(*addrs["control"]) as pool:
                shard_map = pool.shard_map
                assert shard_map["shard_by"] == "name"
                assert shard_map["shard_count"] == 2
                # Workers hold disjoint shards that cover the registry,
                # and the client-side routing agrees with the
                # supervisor's published assignment (satellite 3, live).
                held = sorted(
                    n for w in shard_map["workers"] for n in w["sketches"])
                assert held == names
                for name in names:
                    assert pool.shard_for(name) == \
                        shard_map["assignment"][name]
                    assert name in shard_map["workers"][
                        sharding.shard_for(name, 2)]["sketches"]
                assert _collect_answers(pool, names) == expected
        finally:
            _stop_fleet(proc)

    def test_share_all_fleet_matches_in_process_truth(self, artifacts):
        # shard_by=none: every worker serves every sketch; answers must
        # still match the in-process evaluation exactly.
        proc, addrs, _log = _spawn_fleet(
            artifacts["specs"], "--shard-by", "none")
        try:
            with PooledClient(*addrs["control"]) as pool:
                assert pool.shard_map["shard_by"] == "none"
                for name, sketch in artifacts["sketches"].items():
                    for query in QUERIES:
                        truth = estimate_selectivity(
                            eval_query(sketch, parse_twig(query)))
                        # Round-robin: consecutive calls land on
                        # different workers; all must agree with truth.
                        got = {pool.estimate(query, sketch=name)
                               for _ in range(3)}
                        assert got == {truth}
        finally:
            _stop_fleet(proc)


class TestFaultInjection:
    def test_sigkill_worker_restarts_within_backoff_no_hangs(
            self, artifacts):
        proc, addrs, log = _spawn_fleet(
            artifacts["specs"],
            "--backoff-base-s", "0.05", "--backoff-cap-s", "1.0")
        try:
            pool = PooledClient(*addrs["control"], retries=12, backoff=0.05)
            victim_name = sorted(_TREES)[0]
            shard_map = pool.shard_map
            index = shard_map["assignment"][victim_name]
            worker = shard_map["workers"][index]
            old_pid = worker["pid"]
            expected = pool.estimate("//a", sketch=victim_name)

            # A raw client pinned to the worker's address, with a request
            # in flight across the kill: it must get a prompt, retryable
            # connection error -- not a hang.
            raw = ServeClient(worker["host"], worker["port"], timeout=20)
            os.kill(old_pid, signal.SIGKILL)
            killed_at = time.monotonic()
            with pytest.raises((ConnectionError, OSError)):
                raw.estimate("//a", sketch=victim_name)
            assert time.monotonic() - killed_at < 15
            raw.close()

            # The pool recovers by re-resolving the shard map and
            # retrying against the restarted worker.
            value = pool.estimate("//a", sketch=victim_name)
            recovery_s = time.monotonic() - killed_at
            assert value == expected
            assert recovery_s < 30

            # The supervisor recorded the restart: new pid, bounded
            # backoff, bumped restart counters.
            deadline = time.monotonic() + 30
            info = None
            while time.monotonic() < deadline:
                info = pool.refresh()["workers"][index]
                if info["state"] == "up" and info["pid"] != old_pid:
                    break
                time.sleep(0.1)
            assert info is not None and info["state"] == "up"
            assert info["pid"] != old_pid
            assert info["restarts"] >= 1
            assert pool.fleet_stats()["restarts_total"] >= 1
            restart_lines = [line for line in log if "restarting in" in line]
            assert restart_lines, "supervisor never logged the restart"
            delays = [float(m.group(1)) for line in restart_lines
                      for m in [re.search(r"restarting in ([\d.]+)s", line)]
                      if m]
            assert delays and all(d <= 1.0 + 1e-9 for d in delays)
            pool.close()
        finally:
            _stop_fleet(proc)

    def test_sigterm_supervisor_drains_whole_fleet(self, artifacts):
        proc, addrs, log = _spawn_fleet(artifacts["specs"])
        with PooledClient(*addrs["control"]) as pool:
            pids = [w["pid"] for w in pool.shard_map["workers"]]
            assert pool.estimate("//a", sketch="alpha") > 0
        proc.send_signal(signal.SIGTERM)
        assert proc.wait(60) == 0
        time.sleep(0.2)  # let the drain thread flush the last lines
        text = "".join(log)
        assert "shutting down fleet" in text
        assert "fleet drained" in text
        for pid in pids:
            deadline = time.monotonic() + 10
            while time.monotonic() < deadline:
                try:
                    os.kill(pid, 0)
                except OSError:
                    break  # worker is gone
                time.sleep(0.05)
            else:
                pytest.fail(f"worker pid {pid} survived the fleet drain")


class TestClientReResolution:
    """Regression: reconnects must re-resolve, not redial a dead port."""

    def _registry(self, artifacts):
        registry = SketchRegistry()
        registry.register("alpha", artifacts["sketches"]["alpha"])
        return registry

    def test_reconnect_follows_the_resolver(self, artifacts):
        first = start_server_thread(
            self._registry(artifacts), ServeConfig(port=0))
        addresses = [("127.0.0.1", first.port)]
        client = ServeClient(*addresses[0], retries=5,
                             resolver=lambda: addresses[-1])
        try:
            expected = client.estimate("//a", sketch="alpha")
            first.stop()
            # The sketch moved: a new daemon on a new ephemeral port
            # (exactly what a supervisor restart does to a worker).
            second = start_server_thread(
                self._registry(artifacts), ServeConfig(port=0))
            try:
                addresses.append(("127.0.0.1", second.port))
                with pytest.raises((ConnectionError, OSError)):
                    client.estimate("//a", sketch="alpha")
                client.reconnect()
                assert client.port == second.port
                assert client.estimate("//a", sketch="alpha") == expected
            finally:
                second.stop()
        finally:
            client.close()

    def test_fixed_address_reconnect_stays_broken(self, artifacts):
        # The old behaviour, pinned as the contrast: without a resolver
        # the client redials the dead port and fails.
        handle = start_server_thread(
            self._registry(artifacts), ServeConfig(port=0))
        client = ServeClient("127.0.0.1", handle.port)
        try:
            assert client.estimate("//a", sketch="alpha") > 0
            dead_port = handle.port
            handle.stop()
            with pytest.raises(OSError):
                client.reconnect()
            assert client.port == dead_port
        finally:
            client.close()
