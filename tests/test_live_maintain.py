"""Randomized oracle for live TreeSketch maintenance (repro.core.live).

The maintainer's claim is strong: after any valid sequence of subtree
inserts and deletes, the live partition's sufficient statistics equal --
bitwise, not approximately -- those of a from-scratch partition over the
*current* document merged into the same cluster membership
(:func:`repro.core.live.rebuild_partition_like`).  Everything here holds
the subsystem to that claim under randomized mutation workloads, plus the
debt model's contract: with ``auto_remerge`` on, no cluster's error debt
ever exceeds ``debt_threshold`` once an edit has been reconciled.
"""

import math
import random

import pytest

from repro import obs
from repro.core.estimate import estimate_selectivity
from repro.core.evaluate import eval_query
from repro.core.live import (
    LiveOptions,
    SketchMaintainer,
    find_labeled,
    rebuild_partition_like,
)
from repro.core.stable import build_stable
from repro.core.treesketch import TreeSketch
from repro.query.parser import parse_twig
from repro.workload.mutations import (
    MutationOp,
    apply_mutation,
    dump_ops,
    load_ops,
    make_mutation_workload,
)
from repro.xmltree.tree import XMLTree


def _document() -> XMLTree:
    """A ~300-node random-attachment tree: diverse repeated shapes, so a
    halved budget forces real merges and mutations produce real drift."""
    from tests.conftest import make_random_tree

    return make_random_tree(random.Random(42), 300)


def _budget_for(tree: XMLTree, fraction: float = 0.5) -> int:
    """A budget that forces real compression: a fraction of lossless."""
    lossless = TreeSketch.from_stable(build_stable(tree.copy()))
    return max(256, int(lossless.size_bytes() * fraction))


def _assert_bitwise_replay(maintainer: SketchMaintainer) -> None:
    """The oracle: live tables == from-scratch replayed tables, bitwise.

    All sufficient statistics are sums of integer-valued floats (exact
    below 2**53 in any summation order), so counts and per-edge
    (sum, sum_sq) must match exactly; only ``cluster_sq`` involves a
    division and gets a 1e-9 tolerance.
    """
    live = maintainer.partition
    fresh, id_map = rebuild_partition_like(maintainer)
    assert set(id_map) == set(live.members)
    for u, fu in id_map.items():
        assert fresh.members[fu] == live.members[u]
        assert fresh.count[fu] == live.count[u]
        assert fresh.cluster_label[fu] == live.cluster_label[u]
        mapped = {id_map[t]: stats for t, stats in live.out_stats[u].items()}
        assert mapped == fresh.out_stats[fu]  # bitwise: exact float sums
        assert live.cluster_sq[u] == pytest.approx(
            fresh.cluster_sq[fu], abs=1e-9, rel=1e-9)
    assert live.total_sq == pytest.approx(
        fresh.total_sq, abs=1e-9, rel=1e-9)
    assert live.num_edges == sum(len(out) for out in live.out_stats.values())


def _label_counts(tree: XMLTree) -> dict:
    counts = {}
    for node in tree.root.iter_preorder():
        counts[node.label] = counts.get(node.label, 0) + 1
    return counts


class TestFindLabeled:
    def test_preorder_ordinals(self):
        tree = XMLTree.from_nested(
            ("r", [("a", [("b", []), ("a", [])]), ("a", [])]))
        root = tree.root
        assert find_labeled(root, "r") is root
        first = find_labeled(root, "a", 0)
        assert first is root.children[0]
        assert find_labeled(root, "a", 1) is first.children[1]
        assert find_labeled(root, "a", 2) is root.children[1]
        assert find_labeled(root, "a", 3) is None
        assert find_labeled(root, "zz") is None


class TestReplayOracle:
    @pytest.mark.parametrize("seed", [0, 1, 7])
    def test_bitwise_after_random_workload(self, seed):
        tree = _document()
        budget = _budget_for(tree)
        ops = make_mutation_workload(tree, num_ops=40, seed=seed)
        maintainer = SketchMaintainer(tree, budget)
        for i, op in enumerate(ops):
            apply_mutation(maintainer, op)
            if (i + 1) % 10 == 0:
                maintainer.check()
                _assert_bitwise_replay(maintainer)
        maintainer.check()
        _assert_bitwise_replay(maintainer)
        assert maintainer.mutations == len(ops)

    def test_bitwise_after_forced_full_remerge(self):
        tree = _document()
        maintainer = SketchMaintainer(
            tree, _budget_for(tree),
            options=LiveOptions(auto_remerge=False))
        for op in make_mutation_workload(tree, num_ops=30, seed=3):
            apply_mutation(maintainer, op)
        maintainer.remerge(full=True)
        assert maintainer.total_debt() == 0.0  # a full pass settles all debt
        maintainer.check()
        _assert_bitwise_replay(maintainer)

    def test_delete_everything_inserted(self):
        """Insert-then-delete sequences must return to consistent state."""
        tree = _document()
        maintainer = SketchMaintainer(tree, _budget_for(tree))
        root_label = tree.root.label
        inserted = []
        for i in range(12):
            parent = find_labeled(maintainer.tree.root, root_label, 0)
            node = maintainer.insert_subtree(
                parent, ("extra", ["leafa", ("mid", ["leafb"])]))
            inserted.append(node)
        for node in inserted:
            maintainer.delete_subtree(node)
        maintainer.check()
        _assert_bitwise_replay(maintainer)
        assert _label_counts(maintainer.tree).get("extra", 0) == 0


class TestEstimateEquivalence:
    def test_snapshot_estimates_match_replayed_partition(self):
        """Estimates are a pure function of the partition tables, so the
        maintained snapshot must answer every query like the from-scratch
        replay of its own clustering (ids differ; statistics do not)."""
        tree = _document()
        maintainer = SketchMaintainer(tree, _budget_for(tree, 0.4))
        for op in make_mutation_workload(tree, num_ops=50, seed=11):
            apply_mutation(maintainer, op)
        snapshot = maintainer.snapshot()
        replayed, _ = rebuild_partition_like(maintainer)
        oracle = replayed.to_treesketch()
        labels = sorted(_label_counts(maintainer.tree))
        queries = [f"//{label}" for label in labels]
        queries += ["//a (//b)", "//c (//d (//e ?))", "//a[//c] (//b ?)"]
        for text in queries:
            query = parse_twig(text)
            lhs = estimate_selectivity(eval_query(snapshot, query))
            rhs = estimate_selectivity(eval_query(oracle, query))
            assert lhs == pytest.approx(rhs, rel=1e-9, abs=1e-9), text

    def test_snapshot_is_a_servable_treesketch(self):
        tree = _document()
        maintainer = SketchMaintainer(tree, _budget_for(tree))
        for op in make_mutation_workload(tree, num_ops=20, seed=5):
            apply_mutation(maintainer, op)
        snapshot = maintainer.snapshot()
        snapshot.validate()
        value = estimate_selectivity(
            eval_query(snapshot, parse_twig("//a (//b)")))
        assert math.isfinite(value) and value >= 0.0


class TestDebtModel:
    def test_debt_bound_holds_after_every_edit(self):
        """The headline invariant: auto_remerge never lets a cluster's
        accumulated drift stay above the threshold past the edit that
        pushed it over."""
        tree = _document()
        options = LiveOptions(debt_threshold=2.0)
        maintainer = SketchMaintainer(
            tree, _budget_for(tree, 0.4), options=options)
        for op in make_mutation_workload(tree, num_ops=60, seed=2):
            apply_mutation(maintainer, op)
            assert maintainer.max_debt() <= options.debt_threshold + 1e-9
        assert maintainer.remerges > 0  # the workload did trip the trigger
        maintainer.check()
        _assert_bitwise_replay(maintainer)

    def test_debt_accrues_without_auto_remerge(self):
        tree = _document()
        options = LiveOptions(debt_threshold=5.0, auto_remerge=False)
        maintainer = SketchMaintainer(
            tree, _budget_for(tree, 0.4), options=options)
        for op in make_mutation_workload(tree, num_ops=60, seed=2):
            apply_mutation(maintainer, op)
        assert maintainer.remerges == 0
        accrued = maintainer.total_debt()
        assert accrued > options.debt_threshold
        merges = maintainer.remerge()
        assert maintainer.max_debt() <= options.debt_threshold + 1e-9
        assert maintainer.remerges == 1 and merges >= 0
        maintainer.check()

    def test_dissolve_cap_keeps_remerge_bounded(self):
        """``max_dissolve=0`` disables dissolution entirely: local
        re-merges still attend the region and settle its debt, and the
        live tables stay exact -- the cap only defers accuracy recovery
        (a giant drifted cluster waits for ``remerge(full=True)``
        instead of exploding the quadratic region drain)."""
        tree = _document()
        options = LiveOptions(debt_threshold=2.0, max_dissolve=0)
        maintainer = SketchMaintainer(
            tree, _budget_for(tree, 0.4), options=options)
        for op in make_mutation_workload(tree, num_ops=40, seed=2):
            apply_mutation(maintainer, op)
            assert maintainer.max_debt() <= options.debt_threshold + 1e-9
        maintainer.check()
        _assert_bitwise_replay(maintainer)

    def test_info_and_routing_counters(self):
        tree = _document()
        with obs.observed() as registry:
            maintainer = SketchMaintainer(tree, _budget_for(tree))
            ops = make_mutation_workload(
                tree, num_ops=30, seed=4, insert_fraction=0.8)
            for op in ops:
                apply_mutation(maintainer, op)
        info = maintainer.info()
        assert info["mutations"] == len(ops)
        assert info["routed"] == maintainer.routed
        assert info["singletons"] == maintainer.singletons
        assert maintainer.routed + maintainer.singletons > 0
        assert info["debt_total"] == pytest.approx(maintainer.total_debt())
        assert info["size_bytes"] == maintainer.size_bytes()
        flat = obs.report.flatten_snapshot(registry.snapshot())
        assert flat["counters.live.mutations"] == len(ops)
        inserts = sum(1 for op in ops if op.action == "insert_subtree")
        assert flat["counters.live.inserts"] == inserts
        assert flat["counters.live.deletes"] == len(ops) - inserts
        assert flat.get("counters.live.routed", 0) == maintainer.routed


class TestMutationWorkload:
    def test_script_round_trip(self):
        tree = _document()
        ops = make_mutation_workload(tree, num_ops=25, seed=9)
        assert load_ops(dump_ops(ops)) == ops
        text = "# comment\n\n" + dump_ops(ops)
        assert load_ops(text) == ops

    def test_generated_sequence_replays_validly(self):
        """Every generated op must resolve when applied in order -- on a
        maintainer whose document started identical to the generator's."""
        tree = _document()
        ops = make_mutation_workload(tree, num_ops=50, seed=13)
        maintainer = SketchMaintainer(tree, _budget_for(tree))
        for op in ops:
            apply_mutation(maintainer, op)  # KeyError would fail the test
        maintainer.check()
        assert all(op.label != tree.root.label or op.ordinal != 0
                   for op in ops if op.action == "delete_subtree")

    def test_generator_leaves_input_untouched(self):
        tree = _document()
        before = _label_counts(tree)
        make_mutation_workload(tree, num_ops=30, seed=1)
        assert _label_counts(tree) == before

    def test_bad_address_raises_keyerror(self):
        tree = _document()
        maintainer = SketchMaintainer(tree, _budget_for(tree))
        with pytest.raises(KeyError):
            apply_mutation(maintainer, MutationOp(
                action="delete_subtree", label="nope", ordinal=0))
        with pytest.raises(KeyError):
            apply_mutation(maintainer, MutationOp(
                action="insert_subtree", parent_label="site",
                parent_ordinal=99, subtree="x"))
