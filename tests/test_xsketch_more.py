"""Additional twig-XSketch coverage: view consistency, split mechanics."""

import pytest

from repro.core.stable import build_stable
from repro.datagen.datasets import sprot_like
from repro.engine.exact import ExactEvaluator
from repro.query.parser import parse_twig
from repro.xsketch.atoms import build_atom_graph
from repro.xsketch.build import _Partition, _proposed_splits
from repro.xsketch.synopsis import TwigXSketch, xsketch_selectivity


@pytest.fixture(scope="module")
def world():
    tree = sprot_like(scale=0.4, seed=9)
    stable = build_stable(tree)
    atoms = build_atom_graph(stable)
    return tree, stable, atoms


class TestBackwardSplit:
    def test_parent_tag_split_separates_contexts(self, world):
        _tree, _stable, atoms = world
        part = _Partition(atoms, bucket_budget=16)
        # 'name' appears under protein and organism: backward-splittable.
        name_cluster = next(
            cid for cid, members in part.members.items()
            if atoms.label[members[0]] == "name"
        )
        proposals = _proposed_splits(part, name_cluster)
        parent_split = proposals[0]
        parent_tags = []
        for group in parent_split:
            tags = {
                atoms.stable.label[atoms.keys[a][1]] if atoms.keys[a][1] >= 0 else "#root"
                for a in group
            }
            assert len(tags) == 1
            parent_tags.append(next(iter(tags)))
        assert len(set(parent_tags)) == len(parent_tags)

    def test_split_improves_or_keeps_sample_error(self, world):
        tree, stable, atoms = world
        ev = ExactEvaluator(tree)
        queries = [parse_twig(t) for t in [
            "//entry (/ref (/author))",
            "//organism (/lineage (/taxon))",
            "//entry (/feature (/location))",
        ]]
        truths = [ev.selectivity(q) for q in queries]

        part = _Partition(atoms, bucket_budget=16)

        def error():
            xs = part.synopsis()
            total = 0.0
            for q, t in zip(queries, truths):
                est = xsketch_selectivity(xs, q)
                total += abs(est - t) / max(t, 1)
            return total / len(queries)

        before = error()
        # Split the highest-spread cluster with its best proposal greedily.
        ranked = sorted(part.members, key=lambda c: -part.cluster_spread(c))
        for cid in ranked[:3]:
            proposals = _proposed_splits(part, cid)
            if proposals:
                part.split(cid, proposals[0])
                break
        after = error()
        assert after <= before + 0.05


class TestViewConsistency:
    def test_view_counts_match(self, world):
        _tree, _stable, atoms = world
        part = _Partition(atoms, bucket_budget=16)
        xs = part.synopsis()
        view = xs.view()
        assert view.count == xs.count
        assert view.root_id == xs.root_id

    def test_view_stats_consistent_with_means(self, world):
        _tree, _stable, atoms = world
        part = _Partition(atoms, bucket_budget=16)
        xs = part.synopsis()
        view = xs.view()
        view.validate()

    def test_selectivity_nonnegative(self, world):
        tree, _stable, atoms = world
        part = _Partition(atoms, bucket_budget=16)
        xs = part.synopsis()
        for text in ["//entry", "//entry (/ref)", "//zzz"]:
            assert xsketch_selectivity(xs, parse_twig(text)) >= 0.0


class TestHistogramBudgetEffect:
    def test_smaller_budget_smaller_size(self, world):
        _tree, _stable, atoms = world
        labels = sorted(set(atoms.label))
        cid = {lab: i for i, lab in enumerate(labels)}
        assign = [cid[lab] for lab in atoms.label]
        small = TwigXSketch.from_partition(atoms, assign, bucket_budget=2)
        large = TwigXSketch.from_partition(atoms, assign, bucket_budget=64)
        assert small.size_bytes() <= large.size_bytes()

    def test_means_survive_bucket_capping(self, world):
        _tree, _stable, atoms = world
        labels = sorted(set(atoms.label))
        cid = {lab: i for i, lab in enumerate(labels)}
        assign = [cid[lab] for lab in atoms.label]
        small = TwigXSketch.from_partition(atoms, assign, bucket_budget=2)
        large = TwigXSketch.from_partition(atoms, assign, bucket_budget=64)
        for src, out in large.out.items():
            for dst, mean in out.items():
                assert small.out[src][dst] == pytest.approx(mean)
