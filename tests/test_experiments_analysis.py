"""Unit tests for the numpy-backed analysis helpers."""

import math

import pytest

from repro.experiments.analysis import (
    geometric_mean_ratio,
    loglog_slope,
    pearson,
    percentile_profile,
)


class TestPercentiles:
    def test_profile(self):
        errors = list(range(101))
        p50, p90, p99 = percentile_profile(errors)
        assert p50 == pytest.approx(50)
        assert p90 == pytest.approx(90)
        assert p99 == pytest.approx(99)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            percentile_profile([])


class TestLogLogSlope:
    def test_inverse_law(self):
        budgets = [10, 20, 40, 80]
        errors = [8.0, 4.0, 2.0, 1.0]  # error ~ 1/budget
        assert loglog_slope(budgets, errors) == pytest.approx(-1.0)

    def test_flat_curve(self):
        assert loglog_slope([10, 20, 40], [5.0, 5.0, 5.0]) == pytest.approx(0.0)

    def test_zero_errors_clamped(self):
        slope = loglog_slope([10, 20, 40], [4.0, 1.0, 0.0])
        assert slope < 0

    def test_too_few_points(self):
        with pytest.raises(ValueError):
            loglog_slope([10], [1.0])


class TestPearson:
    def test_perfect_positive(self):
        assert pearson([1, 2, 3], [10, 20, 30]) == pytest.approx(1.0)

    def test_perfect_negative(self):
        assert pearson([1, 2, 3], [3, 2, 1]) == pytest.approx(-1.0)

    def test_constant_series_nan(self):
        assert math.isnan(pearson([1, 2, 3], [5, 5, 5]))

    def test_length_mismatch(self):
        with pytest.raises(ValueError):
            pearson([1, 2], [1, 2, 3])


class TestGeometricMeanRatio:
    def test_uniform_factor(self):
        assert geometric_mean_ratio([4, 8], [2, 4]) == pytest.approx(2.0)

    def test_mixed_factors(self):
        assert geometric_mean_ratio([2, 8], [1, 1]) == pytest.approx(4.0)

    def test_zeros_skipped(self):
        assert geometric_mean_ratio([0, 8], [1, 4]) == pytest.approx(2.0)

    def test_all_invalid_nan(self):
        assert math.isnan(geometric_mean_ratio([0.0], [1.0]))
