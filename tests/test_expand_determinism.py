"""Determinism and distribution properties of result-sketch expansion."""

import pytest

from repro.core.evaluate import eval_query
from repro.core.expand import expand_result
from repro.core.stable import build_stable
from repro.core.treesketch import TreeSketch
from repro.metrics.esd import esd_nesting_trees
from repro.query.parser import parse_twig


def two_level_sketch(num_parents, avg_children):
    ts = TreeSketch()
    ts.add_node(0, "r", 1)
    ts.add_node(1, "a", num_parents)
    ts.add_node(2, "b", max(1, int(num_parents * avg_children)))
    for (s, d, avg) in [(0, 1, float(num_parents)), (1, 2, avg_children)]:
        ts.add_edge(s, d, avg)
        ts.stats[(s, d)] = (ts.count[s] * avg, ts.count[s] * avg * avg)
    ts.root_id = 0
    ts.doc_height = 3
    return ts


class TestDeterminism:
    def test_repeated_expansion_identical(self, paper_document):
        sketch = TreeSketch.from_stable(build_stable(paper_document))
        query = parse_twig("//a (//p, //n ?)")
        a = expand_result(eval_query(sketch, query))
        b = expand_result(eval_query(sketch, query))
        assert esd_nesting_trees(a, b) == 0.0


class TestApportioning:
    @pytest.mark.parametrize("avg", [0.25, 0.5, 1.5, 2.75])
    def test_totals_preserved(self, avg):
        n = 40
        ts = two_level_sketch(n, avg)
        nt = expand_result(eval_query(ts, parse_twig("//a (/b ?)")))
        total_children = sum(len(a.children) for a in nt.root.children)
        assert total_children == pytest.approx(n * avg, abs=1.0)

    @pytest.mark.parametrize("avg", [0.5, 1.5])
    def test_children_spread_evenly(self, avg):
        n = 40
        ts = two_level_sketch(n, avg)
        nt = expand_result(eval_query(ts, parse_twig("//a (/b ?)")))
        counts = [len(a.children) for a in nt.root.children]
        # Bresenham: per-occurrence counts differ by at most 1.
        assert max(counts) - min(counts) <= 1

    def test_phases_decorrelate_sibling_edges(self):
        # One parent class with 4 child classes at avg 0.5 each: without
        # phase staggering every occurrence would get all-or-nothing.
        ts = TreeSketch()
        ts.add_node(0, "r", 1)
        ts.add_node(1, "a", 20)
        for i in range(4):
            ts.add_node(2 + i, f"b{i}", 10)
        ts.add_edge(0, 1, 20.0)
        ts.stats[(0, 1)] = (20.0, 400.0)
        for i in range(4):
            ts.add_edge(1, 2 + i, 0.5)
            ts.stats[(1, 2 + i)] = (10.0, 10.0)
        ts.root_id = 0
        ts.doc_height = 3
        query = parse_twig("//a (/b0 ?, /b1 ?, /b2 ?, /b3 ?)")
        nt = expand_result(eval_query(ts, query))
        counts = sorted(len(a.children) for a in nt.root.children)
        # Each occurrence should get about 2 of the 4 half-count children,
        # never all 4 in one and 0 in the next.
        assert counts[0] >= 1
        assert counts[-1] <= 3
