"""Request coalescing: batched estimates bitwise-equal to the scalar path.

The serving workers group concurrent ``estimate`` ops against the same
sketch into one ``estimate_selectivity_batch`` call.  That is only an
optimization if it is *invisible*: every coalesced answer must be
bitwise-identical to what the scalar path returns, with or without
numpy, and the ``serve.batch.*`` counters must prove the batch path
actually ran (otherwise this file would happily pass against a server
that silently fell back to scalar).
"""

import struct
import threading

import pytest

from repro import obs
from repro.core.build import build_treesketch
from repro.core.estimate import estimate_selectivity
from repro.core.evaluate import eval_query
from repro.core.qcache import QueryCache
from repro.core.stable import build_stable
from repro.query.parser import parse_twig
from repro.serve import (
    ServeClient,
    ServeConfig,
    SketchRegistry,
    start_server_thread,
)
from repro.xmltree.tree import XMLTree

QUERIES = ["//a", "//a (//p)", "//a[//b] (//p ?)",
           "//a (//p (//k ?), //n ?)", "//p"]


def _tree() -> XMLTree:
    return XMLTree.from_nested(
        (
            "r",
            [
                ("a", [("p", ["k", "k"]), "n"]),
                ("a", [("p", ["k"]), "n", "n"]),
                ("a", [("b", ["t"])]),
            ],
        )
    )


def _bits(value: float) -> bytes:
    return struct.pack("<d", value)


@pytest.fixture(scope="module")
def sketch():
    # A lossy sketch, so the estimates are non-trivial floats -- exactly
    # the values where a subtly different batch kernel would diverge.
    return build_treesketch(build_stable(_tree()), 220)


@pytest.fixture(scope="module")
def expected(sketch):
    return {query: estimate_selectivity(eval_query(sketch, parse_twig(query)))
            for query in QUERIES}


def _run_concurrent_estimates(port, clients=6):
    """``clients`` threads fire the query list at once; returns answers."""
    barrier = threading.Barrier(clients)
    results, errors = {}, []

    def worker(i):
        try:
            with ServeClient("127.0.0.1", port, retries=5) as client:
                barrier.wait(timeout=10)
                results[i] = [client.estimate(q) for q in QUERIES]
        except Exception as exc:  # noqa: BLE001 - surfaced via assert
            errors.append(exc)

    threads = [threading.Thread(target=worker, args=(i,))
               for i in range(clients)]
    for t in threads:
        t.start()
    for t in threads:
        t.join(30)
    assert not errors, errors
    return results


class TestCoalescedEqualsScalar:
    def test_concurrent_estimates_bitwise_equal_with_batch_counters(
            self, sketch, expected):
        with obs.observed() as metrics:
            registry = SketchRegistry()
            registry.register("x", sketch)
            handle = start_server_thread(registry, ServeConfig(
                port=0, coalesce_window_s=0.05, coalesce_max=32))
            try:
                results = _run_concurrent_estimates(handle.port)
            finally:
                handle.stop()
            truth = [_bits(expected[q]) for q in QUERIES]
            for answers in results.values():
                assert [_bits(v) for v in answers] == truth
            snapshot = metrics.snapshot()
            counters = snapshot["counters"]
            # The batch path really ran, and it carried every estimate.
            assert counters["serve.batch.flushes"] >= 1
            assert counters["serve.batch.coalesced"] == 6 * len(QUERIES)
            assert counters["serve.requests.estimate"] == 6 * len(QUERIES)
            # And it actually coalesced: at least one batch had > 1 member
            # (six clients released by a barrier into a 50 ms window).
            assert snapshot["histograms"]["serve.batch.size"]["max"] >= 2

    def test_concurrent_estimates_without_numpy(self, sketch, expected,
                                                monkeypatch):
        monkeypatch.setenv("REPRO_NO_NUMPY", "1")
        with obs.observed() as metrics:
            registry = SketchRegistry()
            registry.register("x", sketch)
            handle = start_server_thread(registry, ServeConfig(
                port=0, coalesce_window_s=0.05, coalesce_max=32))
            try:
                results = _run_concurrent_estimates(handle.port, clients=4)
            finally:
                handle.stop()
            truth = [_bits(expected[q]) for q in QUERIES]
            for answers in results.values():
                assert [_bits(v) for v in answers] == truth
            counters = metrics.snapshot()["counters"]
            assert counters["serve.batch.flushes"] >= 1
            assert counters["serve.batch.coalesced"] == 4 * len(QUERIES)

    def test_coalescing_disabled_still_answers_identically(
            self, sketch, expected):
        with obs.observed() as metrics:
            registry = SketchRegistry()
            registry.register("x", sketch)
            handle = start_server_thread(
                registry, ServeConfig(port=0, coalesce=False))
            try:
                results = _run_concurrent_estimates(handle.port, clients=3)
            finally:
                handle.stop()
            truth = [_bits(expected[q]) for q in QUERIES]
            for answers in results.values():
                assert [_bits(v) for v in answers] == truth
            counters = metrics.snapshot()["counters"]
            assert "serve.batch.flushes" not in counters
            assert "serve.batch.coalesced" not in counters


class TestQueryCacheBatch:
    def test_selectivity_batch_matches_scalar(self, sketch):
        scalar_cache = QueryCache(sketch)
        batch_cache = QueryCache(sketch)
        queries = [parse_twig(q) for q in QUERIES]
        scalar = [scalar_cache.selectivity(q) for q in queries]
        batch = batch_cache.selectivity_batch(queries)
        assert [_bits(v) for v in batch] == [_bits(v) for v in scalar]

    def test_selectivity_batch_matches_scalar_without_numpy(
            self, sketch, monkeypatch):
        monkeypatch.setenv("REPRO_NO_NUMPY", "1")
        cache = QueryCache(sketch)
        queries = [parse_twig(q) for q in QUERIES]
        batch = cache.selectivity_batch(queries)
        scalar = [estimate_selectivity(eval_query(sketch, parse_twig(q)))
                  for q in QUERIES]
        assert [_bits(v) for v in batch] == [_bits(v) for v in scalar]

    def test_duplicates_share_one_entry_and_one_estimate(self, sketch):
        cache = QueryCache(sketch)
        queries = [parse_twig("//a"), parse_twig("//p"), parse_twig("//a")]
        values = cache.selectivity_batch(queries)
        assert _bits(values[0]) == _bits(values[2])
        assert cache.misses == 2  # the duplicate hit the same LRU entry
        # Mixing in the scalar path afterwards returns the same bits.
        assert _bits(cache.selectivity(parse_twig("//a"))) == _bits(values[0])
