"""CLI observability smoke tests: the --stats/--trace paths stay alive.

One test drives ``python -m repro.cli ... --stats`` in a real subprocess
(the CI smoke invocation); the rest run ``main()`` in-process for speed.
"""

import json
import os
import subprocess
import sys

import pytest

from repro.cli import main
from repro.xmltree.serialize import to_xml

pytestmark = pytest.mark.obs


@pytest.fixture
def xml_file(paper_document, tmp_path):
    path = tmp_path / "doc.xml"
    path.write_text(to_xml(paper_document))
    return str(path)


class TestStatsFlag:
    def test_build_stats_prints_tsbuild_counters(self, xml_file, tmp_path, capsys):
        sketch = str(tmp_path / "sketch.json")
        assert main(["build", xml_file, "--budget-kb", "0.125", "-o", sketch,
                     "--stats"]) == 0
        out = capsys.readouterr().out
        assert "observability summary" in out
        assert "tsbuild.merges_applied" in out
        assert "tsbuild.heap_pops" in out
        assert "tsbuild.pool_regenerations" in out
        assert "span.tsbuild.compress_to.seconds" in out

    def test_workload_stats_prints_latency_quantiles(self, xml_file, capsys):
        assert main(["workload", xml_file, "--budget-kb", "1",
                     "--queries", "5", "--stats"]) == 0
        out = capsys.readouterr().out
        assert "avg selectivity error" in out
        assert "workload.selectivity.query_seconds" in out
        assert "p50" in out and "p99" in out
        assert "eval.queries" in out

    def test_stats_flag_leaves_observability_disabled_after(self, xml_file,
                                                            tmp_path, capsys):
        from repro import obs

        sketch = str(tmp_path / "sketch.json")
        main(["build", xml_file, "--budget-kb", "1", "-o", sketch, "--stats"])
        capsys.readouterr()
        assert not obs.enabled()

    def test_no_stats_no_summary(self, xml_file, tmp_path, capsys):
        sketch = str(tmp_path / "sketch.json")
        assert main(["build", xml_file, "--budget-kb", "1", "-o", sketch]) == 0
        assert "observability summary" not in capsys.readouterr().out


class TestKernelFlag:
    """--kernel routes the build backend; pinned via tsbuild.kernel_*."""

    def _stats_out(self, xml_file, tmp_path, capsys, *extra):
        sketch = str(tmp_path / "sketch.json")
        assert main(["build", xml_file, "--budget-kb", "1", "-o", sketch,
                     "--stats", *extra]) == 0
        return capsys.readouterr().out

    def test_kernel_counter_reported(self, xml_file, tmp_path, capsys):
        out = self._stats_out(xml_file, tmp_path, capsys,
                              "--kernel", "arrays")
        assert "tsbuild.kernel_arrays" in out

    def test_kernel_dicts_honoured(self, xml_file, tmp_path, capsys):
        out = self._stats_out(xml_file, tmp_path, capsys, "--kernel", "dicts")
        assert "tsbuild.kernel_dicts" in out

    def test_kernel_numpy_reports_block_counters(self, xml_file, tmp_path,
                                                 capsys):
        from repro.core.npsupport import have_numpy

        if not have_numpy():
            pytest.skip("numpy unavailable")
        out = self._stats_out(xml_file, tmp_path, capsys, "--kernel", "numpy")
        assert "tsbuild.kernel_numpy" in out
        assert "tsbuild.block_rescores" in out

    def test_unknown_kernel_rejected(self, xml_file, tmp_path, capsys):
        with pytest.raises(SystemExit) as exc:
            main(["build", xml_file, "--budget-kb", "1",
                  "-o", str(tmp_path / "s.json"), "--kernel", "simd"])
        assert exc.value.code == 2  # argparse usage error names the choices
        assert "invalid choice: 'simd'" in capsys.readouterr().err

    def test_workload_accepts_kernel(self, xml_file, capsys):
        assert main(["workload", xml_file, "--budget-kb", "1",
                     "--queries", "3", "--kernel", "arrays"]) == 0


class TestTraceFlag:
    def test_trace_file_is_json_lines(self, xml_file, tmp_path, capsys):
        sketch = str(tmp_path / "sketch.json")
        trace = str(tmp_path / "trace.jsonl")
        assert main(["build", xml_file, "--budget-kb", "0.125", "-o", sketch,
                     "--trace", trace]) == 0
        out = capsys.readouterr().out
        assert "trace:" in out
        events = [json.loads(line)
                  for line in open(trace, encoding="utf-8").read().splitlines()]
        assert events, "trace file is empty"
        assert all(e["type"] == "span" for e in events)
        assert any(e["name"] == "tsbuild.compress_to" for e in events)


class TestSubprocessSmoke:
    def test_python_m_repro_cli_stats(self, xml_file, tmp_path):
        """The CI smoke job: the module entry point with --stats."""
        sketch = str(tmp_path / "sketch.json")
        proc = subprocess.run(
            [sys.executable, "-m", "repro.cli", "build", xml_file,
             "--budget-kb", "0.125", "-o", sketch, "--stats"],
            capture_output=True, text=True, env=os.environ.copy(), timeout=120,
        )
        assert proc.returncode == 0, proc.stderr
        assert "tsbuild.merges_applied" in proc.stdout
