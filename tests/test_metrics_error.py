"""Unit tests for the sanity-bounded relative error."""

import pytest

from repro.metrics.error import (
    absolute_relative_error,
    average_error,
    sanity_bound,
    workload_errors,
)


class TestSanityBound:
    def test_percentile_of_sorted_counts(self):
        counts = list(range(1, 101))  # 1..100
        assert sanity_bound(counts, percentile=10.0) == pytest.approx(10.9)

    def test_floor_of_one(self):
        assert sanity_bound([0, 0, 0, 0]) == 1.0

    def test_single_value(self):
        assert sanity_bound([42]) == 42.0

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            sanity_bound([])


class TestAbsoluteRelativeError:
    def test_exact_estimate(self):
        assert absolute_relative_error(100, 100) == 0.0

    def test_relative_to_truth(self):
        assert absolute_relative_error(100, 50) == 0.5

    def test_sanity_bound_caps_small_counts(self):
        # true=1, est=11: without bound error=10; with s=20 error=0.5.
        assert absolute_relative_error(1, 11, sanity=20) == 0.5

    def test_estimate_denominator_mode(self):
        assert absolute_relative_error(100, 50, denominator="estimate") == 1.0

    def test_unknown_mode_rejected(self):
        with pytest.raises(ValueError):
            absolute_relative_error(1, 1, denominator="bogus")

    def test_overestimate_counted(self):
        assert absolute_relative_error(100, 200) == 1.0


class TestWorkloadErrors:
    def test_per_query_errors(self):
        pairs = [(100, 100), (100, 50), (100, 150)]
        errors = workload_errors(pairs)
        assert errors == [0.0, 0.5, 0.5]

    def test_average(self):
        pairs = [(100, 100), (100, 50)]
        assert average_error(pairs) == 0.25

    def test_sanity_bound_applied_across_workload(self):
        # Low-count query error is tempered by the workload's percentile.
        pairs = [(1, 3)] + [(1000, 1000)] * 9
        errors = workload_errors(pairs, percentile=50.0)
        assert errors[0] < 2.0
