"""ServeClient connection retries: backoff, jitter, late-starting servers."""

import random
import socket
import threading
import time

import pytest

from repro.core.build import build_treesketch
from repro.core.stable import build_stable
from repro.serve import ServeClient, ServeConfig, SketchRegistry, start_server_thread
from repro.xmltree.tree import XMLTree


def _free_port() -> int:
    with socket.socket() as sock:
        sock.bind(("127.0.0.1", 0))
        return sock.getsockname()[1]


@pytest.fixture()
def registry():
    tree = XMLTree.from_nested(("r", [("a", ["b"]), ("a", ["b", "b"])]))
    registry = SketchRegistry()
    registry.register("main", build_treesketch(build_stable(tree), 100 * 1024))
    return registry


class TestValidation:
    def test_rejects_bad_parameters(self):
        with pytest.raises(ValueError):
            ServeClient("127.0.0.1", 1, retries=-1)
        with pytest.raises(ValueError):
            ServeClient("127.0.0.1", 1, backoff=-0.1)
        with pytest.raises(ValueError):
            ServeClient("127.0.0.1", 1, jitter=-0.5)


class TestFailFast:
    def test_zero_retries_raises_immediately(self, monkeypatch):
        sleeps = []
        monkeypatch.setattr("repro.serve.client.time.sleep", sleeps.append)
        with pytest.raises(OSError):
            ServeClient("127.0.0.1", _free_port(), timeout=1.0)
        assert sleeps == []  # no backoff on the default path

    def test_retries_exhaust_with_exponential_backoff(self, monkeypatch):
        sleeps = []
        monkeypatch.setattr("repro.serve.client.time.sleep", sleeps.append)
        with pytest.raises(OSError):
            ServeClient("127.0.0.1", _free_port(), timeout=1.0,
                        retries=3, backoff=0.05, jitter=0.0)
        assert sleeps == [0.05, 0.1, 0.2]  # doubles; no sleep after the last

    def test_jitter_stretches_each_delay(self, monkeypatch):
        sleeps = []
        monkeypatch.setattr("repro.serve.client.time.sleep", sleeps.append)
        rng = random.Random(7)
        expected_rng = random.Random(7)
        with pytest.raises(OSError):
            ServeClient("127.0.0.1", _free_port(), timeout=1.0,
                        retries=2, backoff=0.1, jitter=0.5, rng=rng)
        expected = [0.1 * (1 + 0.5 * expected_rng.random()),
                    0.2 * (1 + 0.5 * expected_rng.random())]
        assert sleeps == pytest.approx(expected)
        for base, actual in zip([0.1, 0.2], sleeps):
            assert base <= actual <= base * 1.5


class TestLateStartingServer:
    def test_client_connects_once_the_server_is_up(self, registry):
        """The deploy race the retries exist for: the client starts
        dialing before the daemon has bound its socket."""
        port = _free_port()
        handle_box = {}

        def start_late():
            time.sleep(0.3)
            handle_box["handle"] = start_server_thread(
                registry, ServeConfig(port=port))

        starter = threading.Thread(target=start_late)
        starter.start()
        try:
            with ServeClient("127.0.0.1", port, timeout=5.0,
                             retries=10, backoff=0.05, jitter=0.2) as client:
                assert client.estimate("//a") == 2.0
        finally:
            starter.join()
            handle_box["handle"].stop()

    def test_without_retries_the_same_race_fails(self, registry):
        port = _free_port()
        with pytest.raises(OSError):
            ServeClient("127.0.0.1", port, timeout=1.0)
