"""Round-trip oracles for the binary ``.tsb`` store (repro.core.store).

The contract under test is *bitwise identity*: a synopsis loaded from a
``.tsb`` store must be indistinguishable from the same synopsis loaded
from JSON -- same dict contents in the same iteration orders, and
therefore the same floating-point accumulation order in estimates,
evaluations, and expansions.  Not approximately equal: ``==``.
"""

import copy
import pickle
import random

import pytest

from repro.core.build import build_treesketch
from repro.core.estimate import estimate_selectivity
from repro.core.evaluate import eval_query
from repro.core.expand import expand_result
from repro.core.io import (
    load_synopsis,
    save_synopsis,
    save_synopsis_binary,
    sniff_format,
    synopsis_to_dict,
)
from repro.core.stable import StableSummary, build_stable, expand_stable
from repro.core.store import MappedStableSummary, MappedTreeSketch
from repro.core.treesketch import TreeSketch
from repro.query.parser import parse_twig
from repro.values.summary import ValueSummary
from repro.xmltree.serialize import to_xml
from tests.conftest import make_random_tree

QUERIES = ["//a", "//a (//p)", "//a[//b] (//p (//k ?), //n ?)", "//d/a/p"]


def _save_both(synopsis, tmp_path):
    json_path = tmp_path / "syn.json"
    tsb_path = tmp_path / "syn.tsb"
    save_synopsis(synopsis, str(json_path))
    save_synopsis(synopsis, str(tsb_path))
    return str(json_path), str(tsb_path)


def _random_sketch(seed=7, size=500, budget=4000):
    tree = make_random_tree(random.Random(seed), size)
    return build_treesketch(build_stable(tree), budget)


class TestTablesBitwiseIdentical:
    """Every table dict matches the JSON loader in content AND order."""

    def assert_tables_match(self, a, b):
        assert list(a.label.items()) == list(b.label.items())
        assert list(a.count.items()) == list(b.count.items())
        assert list(a.out) == list(b.out)
        for nid in a.out:
            assert list(a.out[nid].items()) == list(b.out[nid].items())
        assert (a.root_id, a.doc_height) == (b.root_id, b.doc_height)

    def test_stable(self, paper_document, tmp_path):
        stable = build_stable(paper_document)
        json_path, tsb_path = _save_both(stable, tmp_path)
        a, b = load_synopsis(json_path), load_synopsis(tsb_path)
        assert isinstance(b, MappedStableSummary)
        self.assert_tables_match(a, b)
        assert list(a.depth.items()) == list(b.depth.items())
        b.validate()

    def test_treesketch(self, paper_document, tmp_path):
        sketch = build_treesketch(paper_document, 120)
        json_path, tsb_path = _save_both(sketch, tmp_path)
        a, b = load_synopsis(json_path), load_synopsis(tsb_path)
        assert isinstance(b, MappedTreeSketch)
        self.assert_tables_match(a, b)
        assert list(a.stats.items()) == list(b.stats.items())
        assert a.members == b.members and list(a.members) == list(b.members)
        b.validate()

    def test_random_sketch(self, tmp_path):
        sketch = _random_sketch()
        json_path, tsb_path = _save_both(sketch, tmp_path)
        a, b = load_synopsis(json_path), load_synopsis(tsb_path)
        self.assert_tables_match(a, b)
        assert list(a.stats.items()) == list(b.stats.items())
        assert synopsis_to_dict(a) == synopsis_to_dict(b)

    def test_values_survive(self, paper_document, tmp_path):
        sketch = TreeSketch.from_stable(build_stable(paper_document))
        nid = sorted(sketch.label)[0]
        sketch.values = {nid: ValueSummary(
            top={"alpha": 3, "beta": 1}, rest_count=7, rest_distinct=4,
            null_count=2)}
        json_path, tsb_path = _save_both(sketch, tmp_path)
        a, b = load_synopsis(json_path), load_synopsis(tsb_path)
        assert list(a.values) == list(b.values)
        for k in a.values:
            assert a.values[k] == b.values[k]
            assert list(a.values[k].top.items()) == list(b.values[k].top.items())


class TestAnswersBitwiseIdentical:
    """The acceptance oracle: estimate/eval/expand agree exactly."""

    @pytest.mark.parametrize("query_text", QUERIES)
    def test_estimates(self, paper_document, tmp_path, query_text):
        sketch = build_treesketch(paper_document, 120)
        json_path, tsb_path = _save_both(sketch, tmp_path)
        a, b = load_synopsis(json_path), load_synopsis(tsb_path)
        query = parse_twig(query_text)
        assert estimate_selectivity(eval_query(a, query)) \
            == estimate_selectivity(eval_query(b, query))

    @pytest.mark.parametrize("no_numpy", [False, True])
    def test_estimates_with_and_without_numpy(self, tmp_path, monkeypatch,
                                              no_numpy):
        if no_numpy:
            monkeypatch.setenv("REPRO_NO_NUMPY", "1")
        else:
            monkeypatch.delenv("REPRO_NO_NUMPY", raising=False)
        sketch = _random_sketch(seed=11)
        json_path, tsb_path = _save_both(sketch, tmp_path)
        a, b = load_synopsis(json_path), load_synopsis(tsb_path)
        for query_text in QUERIES:
            query = parse_twig(query_text)
            assert estimate_selectivity(eval_query(a, query)) \
                == estimate_selectivity(eval_query(b, query))

    def test_eval_result_sketches_identical(self, paper_document, tmp_path):
        sketch = TreeSketch.from_stable(build_stable(paper_document))
        json_path, tsb_path = _save_both(sketch, tmp_path)
        a, b = load_synopsis(json_path), load_synopsis(tsb_path)
        query = parse_twig("//a (//p (//k ?))")
        ra, rb = eval_query(a, query), eval_query(b, query)
        assert list(ra.label.items()) == list(rb.label.items())
        assert list(ra.bind.items()) == list(rb.bind.items())
        for key in ra.out:
            assert list(ra.out[key].items()) == list(rb.out[key].items())

    def test_expansions_identical(self, paper_document, tmp_path):
        sketch = TreeSketch.from_stable(build_stable(paper_document))
        json_path, tsb_path = _save_both(sketch, tmp_path)
        a, b = load_synopsis(json_path), load_synopsis(tsb_path)
        query = parse_twig("//a (//p)")
        na = expand_result(eval_query(a, query))
        nb = expand_result(eval_query(b, query))
        assert na.size() == nb.size()
        assert na.binding_tuple_count() == nb.binding_tuple_count()

        def shape(node):
            return (node.label, node.qvar,
                    [shape(child) for child in node.children])

        assert shape(na.root) == shape(nb.root)

    def test_expand_stable_identical(self, paper_document, tmp_path):
        stable = build_stable(paper_document)
        json_path, tsb_path = _save_both(stable, tmp_path)
        a, b = load_synopsis(json_path), load_synopsis(tsb_path)
        assert to_xml(expand_stable(a)) == to_xml(expand_stable(b))

    def test_query_cache_selectivities_identical(self, tmp_path):
        from repro.core.qcache import QueryCache

        sketch = _random_sketch(seed=3)
        json_path, tsb_path = _save_both(sketch, tmp_path)
        ca = QueryCache(load_synopsis(json_path))
        cb = QueryCache(load_synopsis(tsb_path))
        queries = [parse_twig(q) for q in QUERIES]
        assert ca.selectivity_batch(queries) == cb.selectivity_batch(queries)
        for query in queries:
            assert ca.selectivity(query) == cb.selectivity(query)


class TestLazyLoading:
    """Loading is O(header): no table dict exists until first use."""

    def test_load_does_not_materialize(self, paper_document, tmp_path):
        sketch = build_treesketch(paper_document, 120)
        _, tsb_path = _save_both(sketch, tmp_path)
        loaded = load_synopsis(tsb_path)
        assert not loaded.materialized
        # Header-only facts are available without touching the tables.
        assert loaded.num_nodes == sketch.num_nodes
        assert loaded.num_edges == sketch.num_edges
        assert loaded.size_bytes() == sketch.size_bytes()
        assert not loaded.materialized
        _ = loaded.label  # first table access
        assert loaded.materialized

    def test_checksum_exposed(self, paper_document, tmp_path):
        sketch = build_treesketch(paper_document, 120)
        tsb_path = str(tmp_path / "s.tsb")
        checksum = save_synopsis_binary(sketch, tsb_path)
        loaded = load_synopsis(tsb_path)
        assert loaded.tsb_checksum == checksum
        assert loaded.tsb_path == tsb_path

    def test_pickle_and_deepcopy(self, paper_document, tmp_path):
        sketch = build_treesketch(paper_document, 120)
        _, tsb_path = _save_both(sketch, tmp_path)
        query = parse_twig("//a (//p)")
        want = estimate_selectivity(eval_query(load_synopsis(tsb_path), query))
        clone = pickle.loads(pickle.dumps(load_synopsis(tsb_path)))
        assert estimate_selectivity(eval_query(clone, query)) == want
        clone = copy.deepcopy(load_synopsis(tsb_path))
        assert estimate_selectivity(eval_query(clone, query)) == want


class TestFormatSniffing:
    """Content decides the loader, not the file name."""

    def test_sniff_all_three(self, paper_document, tmp_path):
        stable = build_stable(paper_document)
        paths = {
            "json": tmp_path / "s.json",
            "json.gz": tmp_path / "s.json.gz",
            "tsb": tmp_path / "s.tsb",
        }
        for path in paths.values():
            save_synopsis(stable, str(path))
        for fmt, path in paths.items():
            assert sniff_format(str(path)) == fmt
            assert load_synopsis(str(path)).count == stable.count

    def test_misnamed_files_still_load(self, paper_document, tmp_path):
        stable = build_stable(paper_document)
        masquerade = tmp_path / "actually_binary.json"
        save_synopsis(stable, str(masquerade), format="tsb")
        assert sniff_format(str(masquerade)) == "tsb"
        loaded = load_synopsis(str(masquerade))
        assert isinstance(loaded, MappedStableSummary)
        json_named_tsb = tmp_path / "actually_json.tsb"
        save_synopsis(stable, str(json_named_tsb), format="json")
        assert sniff_format(str(json_named_tsb)) == "json"
        loaded = load_synopsis(str(json_named_tsb))
        assert isinstance(loaded, StableSummary)
        assert not isinstance(loaded, MappedStableSummary)

    def test_unknown_format_rejected(self, paper_document, tmp_path):
        with pytest.raises(ValueError):
            save_synopsis(build_stable(paper_document),
                          str(tmp_path / "s.json"), format="msgpack")
