"""CLI value-annotation flow: build --values, query with value predicates."""

import pytest

from repro.cli import main

LIBRARY = """
<lib>
 <book><genre>scifi</genre><copy/><copy/></book>
 <book><genre>scifi</genre><copy/></book>
 <book><genre>crime</genre><copy/><copy/><copy/></book>
 <book><genre>drama</genre></book>
</lib>
"""


@pytest.fixture
def xml_file(tmp_path):
    path = tmp_path / "lib.xml"
    path.write_text(LIBRARY)
    return str(path)


class TestValuesCLI:
    def test_build_with_values_and_query(self, xml_file, tmp_path, capsys):
        sketch_path = str(tmp_path / "sketch.json")
        assert main(["build", xml_file, "--budget-kb", "64",
                     "--values", "-o", sketch_path]) == 0
        capsys.readouterr()
        assert main(["query", sketch_path, '//book[/genre = "scifi"] ( /copy )']) == 0
        out = capsys.readouterr().out
        # stable-grade sketch + exact heavy hitters: estimate ~3
        value = float(out.split(":")[1].strip().replace(",", ""))
        assert value == pytest.approx(3.0, abs=1.0)

    def test_value_summaries_survive_save_load(self, xml_file, tmp_path, capsys):
        sketch_path = str(tmp_path / "sketch.json")
        main(["build", xml_file, "--budget-kb", "64", "--values", "-o", sketch_path])
        from repro.core.io import load_synopsis

        loaded = load_synopsis(sketch_path)
        assert loaded.values
        genre_nodes = [nid for nid, lab in loaded.label.items() if lab == "genre"]
        assert any(nid in loaded.values for nid in genre_nodes)

    def test_exact_with_values(self, xml_file, capsys):
        assert main(["exact", xml_file, '//book[/genre = "crime"] ( /copy )',
                     "--values"]) == 0
        out = capsys.readouterr().out
        assert "exact binding tuples: 3" in out

    def test_exact_without_values_flag_sees_no_values(self, xml_file, capsys):
        assert main(["exact", xml_file, '//book[/genre = "crime"] ( /copy )']) == 0
        out = capsys.readouterr().out
        assert "exact binding tuples: 0" in out

    def test_build_values_rejects_json_source(self, xml_file, tmp_path, capsys):
        stable_path = str(tmp_path / "stable.json")
        main(["stable", xml_file, "-o", stable_path])
        assert main(["build", stable_path, "--budget-kb", "1",
                     "--values", "-o", str(tmp_path / "x.json")]) == 2
