"""Tests for TSBUILD option knobs (drain fraction, early stop, windows)."""

import pytest

from repro.core.build import TreeSketchBuilder, TSBuildOptions, build_treesketch
from repro.core.stable import build_stable
from repro.datagen.datasets import xmark_like
from tests.conftest import make_random_tree


@pytest.fixture(scope="module")
def stable():
    return build_stable(xmark_like(scale=0.8, seed=3))


class TestOptionKnobs:
    def test_early_stop_still_meets_budget(self, stable):
        budget = stable.size_bytes() // 3
        sketch = build_treesketch(
            stable, budget, TSBuildOptions(stop_when_full=True)
        )
        assert sketch.size_bytes() <= budget

    def test_scan_all_not_worse_than_early_stop(self, stable):
        budget = stable.size_bytes() // 4
        scan = build_treesketch(stable, budget, TSBuildOptions())
        stop = build_treesketch(stable, budget, TSBuildOptions(stop_when_full=True))
        assert scan.squared_error() <= stop.squared_error() * 1.1

    @pytest.mark.parametrize("fraction", [0.0, 0.5, 0.9])
    def test_drain_fraction_meets_budget(self, stable, fraction):
        budget = stable.size_bytes() // 3
        sketch = build_treesketch(
            stable, budget, TSBuildOptions(drain_fraction=fraction)
        )
        assert sketch.size_bytes() <= budget
        sketch.validate()

    def test_small_window_meets_budget(self, stable):
        budget = stable.size_bytes() // 3
        sketch = build_treesketch(stable, budget, TSBuildOptions(pair_window=4))
        assert sketch.size_bytes() <= budget

    def test_builder_reports_progress(self, stable):
        builder = TreeSketchBuilder(stable)
        before = builder.size_bytes()
        builder.compress_to(stable.size_bytes() // 2)
        assert builder.size_bytes() < before
        assert builder.merges_applied > 0
        assert builder.squared_error() >= 0.0

    def test_monotone_reuse_after_budget_increase(self, stable, rng):
        # Asking a *larger* budget on a builder already below it returns
        # the current (smaller) state via a fresh sweep in the bundle; the
        # raw builder simply keeps its state.
        builder = TreeSketchBuilder(stable)
        small = builder.compress_to(stable.size_bytes() // 4)
        again = builder.compress_to(stable.size_bytes() // 2)
        assert again.size_bytes() == small.size_bytes()


class TestKernelAutoSelection:
    """``kernel="auto"`` picks the backend by edge density: dict-backed
    for merged-dims-dominated (dense) shapes, flat arrays otherwise --
    pinned through the per-build ``tsbuild.kernel_*`` counters."""

    def _flat_counters(self, stable_summary, kernel="auto"):
        from repro import obs

        with obs.observed() as registry:
            build_treesketch(
                stable_summary, stable_summary.size_bytes() // 2,
                TSBuildOptions(kernel=kernel))
        return obs.report.flatten_snapshot(registry.snapshot())

    def test_dense_shape_selects_dicts(self):
        from repro.core.build import AUTO_DICTS_DENSITY
        from repro.datagen.datasets import imdb_like

        dense = build_stable(imdb_like(scale=0.5, seed=1))
        density = dense.num_edges / max(1, len(dense.count))
        assert density >= AUTO_DICTS_DENSITY  # the premise of this case
        flat = self._flat_counters(dense)
        assert flat["counters.tsbuild.kernel_dicts"] == 1
        assert "counters.tsbuild.kernel_arrays" not in flat

    def test_sparse_shape_selects_kernel(self, stable, monkeypatch):
        from repro.core.build import AUTO_DICTS_DENSITY
        from repro.core.npsupport import have_numpy

        density = stable.num_edges / max(1, len(stable.count))
        assert density < AUTO_DICTS_DENSITY
        # With numpy present the kernel is upgraded to vectorized block
        # scoring; without it, auto stays on the plain arrays kernel.
        flat = self._flat_counters(stable)
        expected = "numpy" if have_numpy() else "arrays"
        assert flat[f"counters.tsbuild.kernel_{expected}"] == 1
        assert "counters.tsbuild.kernel_dicts" not in flat
        monkeypatch.setenv("REPRO_NO_NUMPY", "1")
        flat = self._flat_counters(stable)
        assert flat["counters.tsbuild.kernel_arrays"] == 1
        assert "counters.tsbuild.kernel_numpy" not in flat

    def test_explicit_kernels_still_honoured(self, stable):
        flat = self._flat_counters(stable, kernel="dicts")
        assert flat["counters.tsbuild.kernel_dicts"] == 1
        flat = self._flat_counters(stable, kernel="arrays")
        assert flat["counters.tsbuild.kernel_arrays"] == 1

    def test_auto_output_matches_its_chosen_backend(self, stable):
        budget = stable.size_bytes() // 3
        auto = build_treesketch(stable, budget, TSBuildOptions(kernel="auto"))
        explicit = build_treesketch(
            stable, budget, TSBuildOptions(kernel="arrays"))
        assert auto.size_bytes() == explicit.size_bytes()
        assert auto.squared_error() == explicit.squared_error()
