"""Tests for TSBUILD option knobs (drain fraction, early stop, windows)."""

import pytest

from repro.core.build import TreeSketchBuilder, TSBuildOptions, build_treesketch
from repro.core.stable import build_stable
from repro.datagen.datasets import xmark_like
from tests.conftest import make_random_tree


@pytest.fixture(scope="module")
def stable():
    return build_stable(xmark_like(scale=0.8, seed=3))


class TestOptionKnobs:
    def test_early_stop_still_meets_budget(self, stable):
        budget = stable.size_bytes() // 3
        sketch = build_treesketch(
            stable, budget, TSBuildOptions(stop_when_full=True)
        )
        assert sketch.size_bytes() <= budget

    def test_scan_all_not_worse_than_early_stop(self, stable):
        budget = stable.size_bytes() // 4
        scan = build_treesketch(stable, budget, TSBuildOptions())
        stop = build_treesketch(stable, budget, TSBuildOptions(stop_when_full=True))
        assert scan.squared_error() <= stop.squared_error() * 1.1

    @pytest.mark.parametrize("fraction", [0.0, 0.5, 0.9])
    def test_drain_fraction_meets_budget(self, stable, fraction):
        budget = stable.size_bytes() // 3
        sketch = build_treesketch(
            stable, budget, TSBuildOptions(drain_fraction=fraction)
        )
        assert sketch.size_bytes() <= budget
        sketch.validate()

    def test_small_window_meets_budget(self, stable):
        budget = stable.size_bytes() // 3
        sketch = build_treesketch(stable, budget, TSBuildOptions(pair_window=4))
        assert sketch.size_bytes() <= budget

    def test_builder_reports_progress(self, stable):
        builder = TreeSketchBuilder(stable)
        before = builder.size_bytes()
        builder.compress_to(stable.size_bytes() // 2)
        assert builder.size_bytes() < before
        assert builder.merges_applied > 0
        assert builder.squared_error() >= 0.0

    def test_monotone_reuse_after_budget_increase(self, stable, rng):
        # Asking a *larger* budget on a builder already below it returns
        # the current (smaller) state via a fresh sweep in the bundle; the
        # raw builder simply keeps its state.
        builder = TreeSketchBuilder(stable)
        small = builder.compress_to(stable.size_bytes() // 4)
        again = builder.compress_to(stable.size_bytes() // 2)
        assert again.size_bytes() == small.size_bytes()
