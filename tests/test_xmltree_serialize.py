"""Unit tests for repro.xmltree.serialize."""

from repro.xmltree.parser import parse_compact, parse_xml
from repro.xmltree.serialize import to_compact, to_etree, to_xml, xml_byte_size
from repro.xmltree.tree import XMLTree


class TestToXML:
    def test_single_node(self):
        assert to_xml(XMLTree.from_nested(("r", []))) == "<r />"

    def test_nested(self):
        text = to_xml(XMLTree.from_nested(("a", [("b", ["c"])])))
        assert "<a>" in text and "<c />" in text

    def test_round_trip_structure(self, paper_document):
        again = parse_xml(to_xml(paper_document))
        assert [n.label for n in again] == [n.label for n in paper_document]

    def test_values_serialized(self):
        tree = parse_xml("<a><b>v1</b></a>", keep_values=True)
        assert ">v1</b>" in to_xml(tree)

    def test_byte_size(self, small_tree):
        assert xml_byte_size(small_tree) > 0
        assert xml_byte_size(small_tree) == len(to_xml(small_tree).encode("utf-8"))


class TestToEtree:
    def test_structure(self, small_tree):
        root = to_etree(small_tree)
        assert root.tag == "r"
        assert len(list(root)) == 2

    def test_sibling_order(self):
        tree = XMLTree.from_nested(("r", ["x", "y", "z"]))
        root = to_etree(tree)
        assert [c.tag for c in root] == ["x", "y", "z"]


class TestToCompact:
    def test_round_trip(self, paper_document):
        again = parse_compact(to_compact(paper_document))
        assert [n.label for n in again] == [n.label for n in paper_document]

    def test_indent_width(self, small_tree):
        text = to_compact(small_tree, indent=3)
        lines = text.splitlines()
        assert lines[0] == "r"
        assert lines[1].startswith("   ")
        assert not lines[1].startswith("    ")

    def test_single_node(self):
        assert to_compact(XMLTree.from_nested(("only", []))) == "only"
