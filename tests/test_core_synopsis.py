"""Unit tests for the generic graph-synopsis model."""

import pytest

from repro.core.synopsis import GraphSynopsis


def diamond():
    """r -> a, b; a -> c; b -> c."""
    g = GraphSynopsis()
    g.add_node(0, "r", 1)
    g.add_node(1, "a", 2)
    g.add_node(2, "b", 3)
    g.add_node(3, "c", 4)
    g.add_edge(0, 1, 2.0)
    g.add_edge(0, 2, 3.0)
    g.add_edge(1, 3, 1.0)
    g.add_edge(2, 3, 1.0)
    g.root_id = 0
    return g


class TestBasics:
    def test_counts(self):
        g = diamond()
        assert g.num_nodes == 4
        assert g.num_edges == 4

    def test_edges_iteration(self):
        g = diamond()
        assert sorted((s, d) for s, d, _ in g.edges()) == [
            (0, 1), (0, 2), (1, 3), (2, 3)
        ]

    def test_children_of(self):
        g = diamond()
        assert g.children_of(0) == {1: 2.0, 2: 3.0}
        assert g.children_of(3) == {}

    def test_nodes_with_label(self):
        g = diamond()
        g.add_node(4, "a", 1)
        assert sorted(g.nodes_with_label("a")) == [1, 4]

    def test_parents_index(self):
        parents = diamond().parents_index()
        assert parents[3] == {1, 2}
        assert parents[0] == set()


class TestTopology:
    def test_dag_topological_order(self):
        g = diamond()
        order = g.topological_order()
        pos = {n: i for i, n in enumerate(order)}
        for s, d, _ in g.edges():
            assert pos[s] < pos[d]

    def test_cycle_returns_none(self):
        g = diamond()
        g.add_edge(3, 0, 1.0)
        assert g.topological_order() is None
        assert not g.is_dag()

    def test_topo_cache_invalidated_on_mutation(self):
        g = diamond()
        assert g.is_dag()
        g.add_edge(3, 0, 1.0)
        assert not g.is_dag()


class TestValidate:
    def test_valid_synopsis_passes(self):
        diamond().validate()

    def test_bad_root_rejected(self):
        g = diamond()
        g.root_id = 99
        with pytest.raises(AssertionError):
            g.validate()

    def test_nonpositive_weight_rejected(self):
        g = diamond()
        g.add_edge(0, 3, 0.0)
        with pytest.raises(AssertionError):
            g.validate()

    def test_nonpositive_count_rejected(self):
        g = diamond()
        g.count[1] = 0
        with pytest.raises(AssertionError):
            g.validate()
