"""Property test: the merge counter agrees with the builder, always.

For *any* ``TSBuildOptions``, a build must (1) emit exactly
``merges_applied`` increments of ``tsbuild.merges_applied`` and (2) end
at ``size_bytes() <= budget`` whenever it reports ``reached_budget``.
Runs under hypothesis when available, else over randomized seeds.
"""

import random

import pytest

from repro import obs
from repro.core.build import TreeSketchBuilder, TSBuildOptions
from repro.core.stable import build_stable
from repro.obs import FakeClock
from tests.conftest import make_random_tree

pytestmark = pytest.mark.obs

try:
    from hypothesis import given, settings, strategies as st

    HAVE_HYPOTHESIS = True
except ImportError:  # pragma: no cover - the image bakes hypothesis in
    HAVE_HYPOTHESIS = False


def _check_build(tree_seed: int, budget_divisor: int, options: TSBuildOptions):
    stable = build_stable(make_random_tree(random.Random(tree_seed), 150))
    budget = max(256, stable.size_bytes() // budget_divisor)
    with obs.observed(clock=FakeClock()) as registry:
        builder = TreeSketchBuilder(stable, options)
        sketch = builder.compress_to(budget)
        counters = registry.snapshot()["counters"]

    emitted = counters.get("tsbuild.merges_applied", 0)
    assert emitted == builder.merges_applied, (
        f"builder reports {builder.merges_applied} merges, "
        f"counter saw {emitted} (options={options})"
    )
    assert builder.size_bytes() == sketch.size_bytes()
    if builder.reached_budget:
        assert sketch.size_bytes() <= budget, (
            f"reported success but {sketch.size_bytes()} > {budget} "
            f"(options={options})"
        )
    else:
        assert sketch.size_bytes() > budget


if HAVE_HYPOTHESIS:

    @settings(max_examples=25, deadline=None)
    @given(
        tree_seed=st.integers(min_value=0, max_value=2**16),
        budget_divisor=st.integers(min_value=2, max_value=8),
        heap_upper=st.integers(min_value=4, max_value=500),
        heap_lower=st.integers(min_value=1, max_value=20),
        pair_window=st.one_of(st.none(), st.integers(min_value=2, max_value=16)),
        drain_fraction=st.floats(min_value=0.1, max_value=0.9),
        stop_when_full=st.booleans(),
    )
    def test_merge_counter_matches_builder(
        tree_seed, budget_divisor, heap_upper, heap_lower,
        pair_window, drain_fraction, stop_when_full,
    ):
        options = TSBuildOptions(
            heap_upper=heap_upper,
            heap_lower=heap_lower,
            pair_window=pair_window,
            drain_fraction=drain_fraction,
            stop_when_full=stop_when_full,
        )
        _check_build(tree_seed, budget_divisor, options)

else:  # randomized-seed fallback, same property

    @pytest.mark.parametrize("case_seed", range(25))
    def test_merge_counter_matches_builder(case_seed):
        rng = random.Random(case_seed)
        options = TSBuildOptions(
            heap_upper=rng.randint(4, 500),
            heap_lower=rng.randint(1, 20),
            pair_window=rng.choice([None, rng.randint(2, 16)]),
            drain_fraction=rng.uniform(0.1, 0.9),
            stop_when_full=rng.random() < 0.5,
        )
        _check_build(rng.randint(0, 2**16), rng.randint(2, 8), options)
