"""Regression tests: the hot paths must keep emitting their metrics.

These pin the metric *names* and basic count invariants for TSBUILD,
EVALQUERY, the workload runner, and the workload cache, so a future
refactor cannot silently drop instrumentation.  All timing goes through a
fake clock, which makes the snapshots fully deterministic.
"""

import pytest

from repro import obs
from repro.core.build import TreeSketchBuilder
from repro.core.estimate import estimate_selectivity
from repro.core.evaluate import eval_query
from repro.core.stable import build_stable
from repro.core.treesketch import TreeSketch
from repro.datagen.datasets import xmark_like
from repro.obs import FakeClock
from repro.workload.cache import load_workload, save_workload
from repro.workload.runner import run_answer_quality, run_selectivity
from repro.workload.workload import make_workload

pytestmark = pytest.mark.obs

TSBUILD_COUNTERS = [
    "tsbuild.merges_applied",
    "tsbuild.heap_pops",
    "tsbuild.stale_recomputations",
    "tsbuild.pool_regenerations",
]


@pytest.fixture(scope="module")
def corpus():
    tree = xmark_like(scale=0.4, seed=3)
    stable = build_stable(tree)
    workload = make_workload(tree, num_queries=8, seed=5, stable=stable)
    return tree, stable, workload


class TestTsbuildInstrumentation:
    def test_compress_to_emits_expected_counters(self, corpus):
        _tree, stable, _workload = corpus
        with obs.observed(clock=FakeClock()) as registry:
            builder = TreeSketchBuilder(stable)
            builder.compress_to(stable.size_bytes() // 3)
            snap = registry.snapshot()

        for name in TSBUILD_COUNTERS:
            assert name in snap["counters"], f"lost counter {name}"
        counters = snap["counters"]
        assert counters["tsbuild.merges_applied"] == builder.merges_applied > 0
        # Every merge costs at least one heap pop; stale entries only add.
        assert counters["tsbuild.heap_pops"] >= counters["tsbuild.merges_applied"]
        assert counters["tsbuild.pool_regenerations"] >= 1
        assert "span.tsbuild.compress_to.seconds" in snap["histograms"]

    def test_counts_are_monotonic_across_budget_sweeps(self, corpus):
        _tree, stable, _workload = corpus
        with obs.observed(clock=FakeClock()) as registry:
            builder = TreeSketchBuilder(stable)
            budget = stable.size_bytes() // 2
            builder.compress_to(budget)
            merges_after_first = registry.snapshot()["counters"][
                "tsbuild.merges_applied"
            ]
            builder.compress_to(budget // 2)
            merges_after_second = registry.snapshot()["counters"][
                "tsbuild.merges_applied"
            ]
        assert 0 < merges_after_first <= merges_after_second
        assert merges_after_second == builder.merges_applied

    def test_no_emission_while_disabled(self, corpus):
        _tree, stable, _workload = corpus
        assert not obs.enabled()
        TreeSketchBuilder(stable).compress_to(stable.size_bytes() // 3)
        assert obs.get_metrics().snapshot()["counters"] == {}


class TestEvalInstrumentation:
    def test_eval_query_counts_queries_and_visits(self, corpus):
        _tree, stable, workload = corpus
        sketch = TreeSketch.from_stable(stable)
        with obs.observed(clock=FakeClock()) as registry:
            for query in workload.queries[:3]:
                estimate_selectivity(eval_query(sketch, query))
            snap = registry.snapshot()
        assert snap["counters"]["eval.queries"] == 3
        assert snap["counters"]["eval.node_visits"] > 0
        assert snap["counters"]["estimate.calls"] == 3
        assert snap["histograms"]["span.eval.query.seconds"]["count"] == 3
        assert snap["histograms"]["span.estimate.selectivity.seconds"]["count"] == 3


class TestRunnerInstrumentation:
    def test_run_selectivity_per_query_histogram(self, corpus):
        _tree, stable, workload = corpus
        sketch = TreeSketch.from_stable(stable)
        with obs.observed(clock=FakeClock()) as registry:
            quality = run_selectivity(sketch, workload, queries=range(5))
            snap = registry.snapshot()
        # Fake clock never advances: the whole run reports zero seconds --
        # deterministic, and proof the runner times through the obs clock.
        assert quality.seconds == 0.0
        hist = snap["histograms"]["workload.selectivity.query_seconds"]
        assert hist["count"] == 5
        assert hist["max"] == 0.0
        assert snap["counters"]["workload.selectivity.queries"] == 5
        assert snap["counters"]["eval.queries"] == 5

    def test_run_answer_quality_counts_failures(self, corpus):
        _tree, stable, workload = corpus
        sketch = TreeSketch.from_stable(stable)
        with obs.observed(clock=FakeClock()) as registry:
            quality = run_answer_quality(
                sketch, workload, queries=range(4), max_nodes=2
            )
            snap = registry.snapshot()
        assert quality.failures == 4
        assert snap["counters"]["workload.answer_quality.queries"] == 4
        assert snap["counters"]["workload.answer_quality.failures"] == 4
        hist = snap["histograms"]["workload.answer_quality.query_seconds"]
        assert hist["count"] == 4

    def test_runner_timing_does_not_require_obs(self, corpus):
        # Satellite regression: the runner must use the monotonic clock
        # abstraction (perf_counter) even while observability is disabled.
        _tree, stable, workload = corpus
        sketch = TreeSketch.from_stable(stable)
        assert not obs.enabled()
        quality = run_selectivity(sketch, workload, queries=range(2))
        assert quality.seconds >= 0.0


class TestCacheInstrumentation:
    def test_cache_hit_and_miss_counters(self, corpus, tmp_path):
        tree, _stable, workload = corpus
        path = str(tmp_path / "wl.json")
        with obs.observed(clock=FakeClock()) as registry:
            save_workload(workload, path)
            load_workload(path, tree, stable=workload.stable)
            other = xmark_like(scale=0.4, seed=99)
            with pytest.raises(ValueError):
                load_workload(path, other)
            snap = registry.snapshot()
        assert snap["counters"]["workload.cache.saves"] == 1
        assert snap["counters"]["workload.cache.hits"] == 1
        assert snap["counters"]["workload.cache.misses"] == 1
