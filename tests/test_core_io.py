"""Unit tests for synopsis persistence (repro.core.io)."""

import json

import pytest

from repro.core.build import build_treesketch
from repro.core.io import load_synopsis, save_synopsis, synopsis_from_dict, synopsis_to_dict
from repro.core.stable import StableSummary, build_stable, expand_stable
from repro.core.treesketch import TreeSketch


class TestStableRoundTrip:
    def test_round_trip(self, paper_document, tmp_path):
        stable = build_stable(paper_document)
        path = tmp_path / "stable.json"
        save_synopsis(stable, str(path))
        loaded = load_synopsis(str(path))
        assert isinstance(loaded, StableSummary)
        assert loaded.num_nodes == stable.num_nodes
        assert loaded.count == stable.count
        assert loaded.depth == stable.depth
        assert loaded.root_id == stable.root_id
        assert loaded.doc_height == stable.doc_height

    def test_loaded_stable_expands(self, paper_document, tmp_path):
        stable = build_stable(paper_document)
        path = tmp_path / "stable.json"
        save_synopsis(stable, str(path))
        loaded = load_synopsis(str(path))
        assert len(expand_stable(loaded)) == len(paper_document)


class TestTreeSketchRoundTrip:
    def test_round_trip_preserves_error(self, paper_document, tmp_path):
        sketch = build_treesketch(paper_document, 120)
        path = tmp_path / "sketch.json"
        save_synopsis(sketch, str(path))
        loaded = load_synopsis(str(path))
        assert isinstance(loaded, TreeSketch)
        assert loaded.squared_error() == pytest.approx(sketch.squared_error())
        assert loaded.size_bytes() == sketch.size_bytes()

    def test_loaded_sketch_answers_queries(self, paper_document, tmp_path):
        from repro.core.estimate import estimate_selectivity
        from repro.core.evaluate import eval_query
        from repro.query.parser import parse_twig

        sketch = TreeSketch.from_stable(build_stable(paper_document))
        path = tmp_path / "sketch.json"
        save_synopsis(sketch, str(path))
        loaded = load_synopsis(str(path))
        query = parse_twig("//a (//p)")
        assert estimate_selectivity(eval_query(loaded, query)) == pytest.approx(
            estimate_selectivity(eval_query(sketch, query))
        )


class TestGzipTransport:
    """`.json.gz` paths are written and read gzip-compressed."""

    def test_round_trip_treesketch(self, paper_document, tmp_path):
        sketch = build_treesketch(paper_document, 120)
        path = tmp_path / "sketch.json.gz"
        save_synopsis(sketch, str(path))
        loaded = load_synopsis(str(path))
        assert isinstance(loaded, TreeSketch)
        assert loaded.squared_error() == pytest.approx(sketch.squared_error())
        assert loaded.size_bytes() == sketch.size_bytes()
        assert synopsis_to_dict(loaded) == synopsis_to_dict(sketch)

    def test_round_trip_stable(self, paper_document, tmp_path):
        stable = build_stable(paper_document)
        path = tmp_path / "stable.json.gz"
        save_synopsis(stable, str(path))
        loaded = load_synopsis(str(path))
        assert isinstance(loaded, StableSummary)
        assert loaded.count == stable.count

    def test_file_is_actually_gzip(self, paper_document, tmp_path):
        stable = build_stable(paper_document)
        plain = tmp_path / "s.json"
        gzipped = tmp_path / "s.json.gz"
        save_synopsis(stable, str(plain))
        save_synopsis(stable, str(gzipped))
        assert gzipped.read_bytes()[:2] == b"\x1f\x8b"  # gzip magic
        # Same JSON either way once decompressed.
        import gzip as gzip_mod
        import json as json_mod

        assert json_mod.loads(gzip_mod.decompress(gzipped.read_bytes())) \
            == json_mod.loads(plain.read_text())


class TestErrorHandling:
    def test_unknown_kind(self):
        with pytest.raises(ValueError):
            synopsis_from_dict({"format": 1, "kind": "bogus"})

    def test_unknown_version(self):
        with pytest.raises(ValueError):
            synopsis_from_dict({"format": 99, "kind": "stable"})

    def test_dict_is_json_serializable(self, paper_document):
        payload = synopsis_to_dict(build_stable(paper_document))
        json.dumps(payload)
