"""Unit tests for the exact twig evaluation engine."""

import pytest

from repro.engine.exact import ExactEvaluator
from repro.query.parser import parse_path, parse_twig
from repro.xmltree.tree import XMLTree


@pytest.fixture
def evaluator(paper_document):
    return ExactEvaluator(paper_document)


class TestPathTargets:
    def test_child_axis(self, evaluator, paper_document):
        targets = evaluator.path_targets(paper_document.root, parse_path("/a"))
        assert len(targets) == 3
        assert all(t.label == "a" for t in targets)

    def test_descendant_axis(self, evaluator, paper_document):
        targets = evaluator.path_targets(paper_document.root, parse_path("//k"))
        assert len(targets) == 5

    def test_descendant_axis_from_inner_node(self, evaluator, paper_document):
        first_author = paper_document.root.children[0]
        targets = evaluator.path_targets(first_author, parse_path("//k"))
        assert len(targets) == 3

    def test_multi_step(self, evaluator, paper_document):
        targets = evaluator.path_targets(paper_document.root, parse_path("/a/p/k"))
        assert len(targets) == 5

    def test_predicate_filters(self, evaluator, paper_document):
        # Authors having a book: the 2nd and 3rd.
        targets = evaluator.path_targets(paper_document.root, parse_path("//a[//b]"))
        assert len(targets) == 2

    def test_predicate_no_match(self, evaluator, paper_document):
        targets = evaluator.path_targets(paper_document.root, parse_path("//a[//zzz]"))
        assert targets == []

    def test_results_in_document_order(self, evaluator, paper_document):
        targets = evaluator.path_targets(paper_document.root, parse_path("//p"))
        oids = [t.oid for t in targets]
        assert oids == sorted(oids)

    def test_no_duplicate_targets_via_multiple_paths(self):
        # //x//y where y is reachable from two x ancestors must not dup.
        tree = XMLTree.from_nested(("r", [("x", [("x", [("y", [])])])]))
        ev = ExactEvaluator(tree)
        targets = ev.path_targets(tree.root, parse_path("//x//y"))
        assert len(targets) == 1

    def test_wildcard_child(self, evaluator, paper_document):
        targets = evaluator.path_targets(paper_document.root, parse_path("/*"))
        assert len(targets) == 3

    def test_alternation(self, evaluator, paper_document):
        targets = evaluator.path_targets(paper_document.root, parse_path("//p|b"))
        assert len(targets) == 6  # 4 papers + 2 books


class TestSelectivity:
    def test_single_path(self, evaluator):
        assert evaluator.selectivity(parse_twig("//a")) == 3

    def test_two_level(self, evaluator):
        assert evaluator.selectivity(parse_twig("//a (//p)")) == 4

    def test_branching_multiplies(self, evaluator):
        # per author: papers x names; authors have (2,1), (1,1), (1,1)
        assert evaluator.selectivity(parse_twig("//a (//p, //n)")) == 4

    def test_paper_figure2_query(self, evaluator):
        q = parse_twig("//a[//b] ( //p ( //k ? ), //n ? )")
        # Fig. 2(c): two binding tuples (a2/p8/k22/n7, a3/p9/k26/n10).
        assert evaluator.selectivity(q) == 2

    def test_empty_result(self, evaluator):
        assert evaluator.selectivity(parse_twig("//zzz")) == 0

    def test_solid_unsatisfied_nullifies(self, evaluator):
        # Books have no keywords.
        assert evaluator.selectivity(parse_twig("//b (//k)")) == 0

    def test_optional_does_not_nullify(self, evaluator):
        assert evaluator.selectivity(parse_twig("//b (//k ?)")) == 2

    def test_optional_with_matches_counts_matches(self, evaluator):
        # //p with optional //k: p4(1), p5(2), p8(1), p9(1) -> 5 tuples.
        assert evaluator.selectivity(parse_twig("//p (//k ?)")) == 5

    def test_deep_solid_constraint_propagates(self, evaluator):
        # a[//b] via solid child chain: only 2 authors have books.
        assert evaluator.selectivity(parse_twig("//a (//b)")) == 2


class TestNestingTree:
    def test_root_only_for_empty_result(self, evaluator):
        nt = evaluator.evaluate(parse_twig("//zzz"))
        assert nt.size() == 1
        assert nt.binding_tuple_count() == 0

    def test_tuple_count_matches_selectivity(self, evaluator):
        for text in ["//a", "//a (//p, //n)", "//a[//b] ( //p ( //k ? ), //n ? )",
                     "//p (//k ?)", "//a (//p (//k), //n ?)"]:
            q = parse_twig(text)
            nt = evaluator.evaluate(q)
            assert nt.binding_tuple_count() == evaluator.selectivity(q), text

    def test_figure2_nesting_tree_shape(self, evaluator):
        q = parse_twig("//a[//b] ( //p ( //k ? ), //n ? )")
        nt = evaluator.evaluate(q)
        # Fig. 2(c): d0 -> 2 authors, each with one paper (w/ keyword) + name.
        assert len(nt.root.children) == 2
        for author in nt.root.children:
            assert author.label == "a"
            labels = sorted(c.label for c in author.children)
            assert labels == ["n", "p"]

    def test_nesting_tree_labels_match_bindings(self, evaluator):
        q = parse_twig("//a (//p)")
        nt = evaluator.evaluate(q)
        for author in nt.root.children:
            assert author.qvar == "q1"
            for p in author.children:
                assert p.qvar == "q2"
                assert p.label == "p"

    def test_unsatisfied_bindings_excluded(self, evaluator):
        # //a (//b): author 1 has no book and must not appear.
        nt = evaluator.evaluate(parse_twig("//a (//b)"))
        assert len(nt.root.children) == 2

    def test_to_xmltree(self, evaluator):
        q = parse_twig("//a (//p)")
        tree = evaluator.evaluate(q).to_xmltree()
        assert tree.root.label == "d"
        assert len(tree) == evaluator.evaluate(q).size()


class TestDescendantSemantics:
    def test_descendant_excludes_self(self):
        tree = XMLTree.from_nested(("a", [("a", [])]))
        ev = ExactEvaluator(tree)
        # //a from the root finds only the inner a.
        assert ev.selectivity(parse_twig("//a")) == 1

    def test_nested_same_label_bindings(self):
        tree = XMLTree.from_nested(("r", [("a", [("a", [("b", [])])])]))
        ev = ExactEvaluator(tree)
        # //a//b: only the inner a has a b descendant... and the outer too
        # (b is a descendant of both).
        assert ev.selectivity(parse_twig("//a (//b)")) == 2
