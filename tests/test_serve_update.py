"""End-to-end tests for the ``update`` op: live sketches over the wire.

The consistency bar the serving tier signs up for (docs/MAINTENANCE.md):
after an ``update`` response is on the wire, **no request may ever be
answered from a pre-mutation cache entry** -- the mutation epoch bump in
:meth:`repro.serve.registry.LiveSketch.update` is the barrier.  These
tests drive it over real sockets against a single in-process daemon, and
through a real supervisor-forked fleet with the live sketch owned by one
shard; plus the protocol validation, the error mapping (``bad_request``
for unresolvable addresses, ``immutable_sketch`` for frozen entries), and
the periodic cache-checkpoint timer.
"""

import json
import os
import re
import signal
import subprocess
import sys
import threading
import time

import pytest

from repro.core.build import build_treesketch
from repro.core.estimate import estimate_selectivity
from repro.core.evaluate import eval_query
from repro.core.io import save_synopsis
from repro.core.live import SketchMaintainer
from repro.core.stable import build_stable
from repro.query.parser import parse_twig
from repro.serve import (
    ServeClient,
    ServeConfig,
    ServerError,
    SketchRegistry,
    start_server_thread,
)
from repro.serve.client import PooledClient
from repro.serve.protocol import ProtocolError, parse_request
from repro.serve.registry import LiveSketch
from repro.xmltree.serialize import to_xml
from repro.xmltree.tree import XMLTree

pytestmark = pytest.mark.obs

LIVE_BUDGET = 64 * 1024


def _tree() -> XMLTree:
    return XMLTree.from_nested(
        (
            "r",
            [
                ("a", [("p", ["k", "k"]), "n"]),
                ("a", [("p", ["k"]), "n", "n"]),
                ("a", [("b", ["t"])]),
            ],
        )
    )


@pytest.fixture
def server():
    """A fresh daemon per test: one live sketch, one frozen sketch."""
    registry = SketchRegistry()
    registry.register_live("live", SketchMaintainer(_tree(), LIVE_BUDGET))
    registry.register("frozen", build_treesketch(build_stable(_tree()), 4096))
    handle = start_server_thread(registry, ServeConfig(port=0))
    try:
        yield registry, handle
    finally:
        handle.stop()


@pytest.fixture
def client(server):
    _, handle = server
    with ServeClient("127.0.0.1", handle.port) as client:
        yield client


def _truth(sketch, text: str) -> float:
    return estimate_selectivity(eval_query(sketch, parse_twig(text)))


class TestProtocolValidation:
    def test_valid_insert_and_delete_parse(self):
        insert = parse_request(json.dumps({
            "op": "update", "sketch": "live", "action": "insert_subtree",
            "parent_label": "a", "parent_ordinal": 1,
            "subtree": ["p", ["k", ["q", []]]]}))
        assert insert["action"] == "insert_subtree"
        delete = parse_request(json.dumps({
            "op": "update", "action": "delete_subtree",
            "label": "n", "ordinal": 2}))
        assert delete["label"] == "n"

    @pytest.mark.parametrize("request_doc", [
        {"op": "update"},                                  # no action
        {"op": "update", "action": "replace"},             # unknown action
        {"op": "update", "action": "insert_subtree"},      # no parent/subtree
        {"op": "update", "action": "insert_subtree",
         "parent_label": "a", "subtree": ["p"]},           # malformed spec
        {"op": "update", "action": "insert_subtree",
         "parent_label": "a", "subtree": "x",
         "parent_ordinal": -1},                            # negative ordinal
        {"op": "update", "action": "insert_subtree",
         "parent_label": "a", "subtree": "x",
         "parent_ordinal": True},                          # bool is not int
        {"op": "update", "action": "delete_subtree"},      # no label
        {"op": "update", "action": "delete_subtree",
         "label": "", "ordinal": 0},                       # empty label
    ])
    def test_invalid_updates_rejected(self, request_doc):
        with pytest.raises(ProtocolError) as excinfo:
            parse_request(json.dumps(request_doc))
        assert excinfo.value.code == "bad_request"


class TestSingleServer:
    def test_update_never_serves_a_stale_answer(self, server, client):
        registry, _ = server
        entry = registry.get("live")
        query = "//a (//p (//k ?))"
        stale_sketch = entry.sketch
        before = client.estimate(query, sketch="live")
        assert before == _truth(stale_sketch, query)
        assert client.estimate(query, sketch="live") == before

        response = client.update(
            "insert_subtree", sketch="live", parent_label="a",
            parent_ordinal=2, subtree=["p", ["k", "k", "k"]])
        assert response["epoch"] == 1 and response["mutations"] == 1

        after = client.estimate(query, sketch="live")
        assert after == _truth(entry.sketch, query)
        assert after != before  # three new k's must move the estimate
        assert before == _truth(stale_sketch, query)  # truly was an epoch flip

    def test_delete_then_insert_epochs_accumulate(self, server, client):
        registry, _ = server
        first = client.update("delete_subtree", sketch="live",
                              label="n", ordinal=2)
        assert first["epoch"] == 1
        second = client.update("insert_subtree", sketch="live",
                               parent_label="r", subtree="n")
        assert second["epoch"] == 2 and second["mutations"] == 2
        entry = registry.get("live")
        assert entry.cache.epoch == 2
        assert isinstance(entry, LiveSketch)

    def test_frozen_sketch_is_immutable(self, client):
        with pytest.raises(ServerError) as excinfo:
            client.update("insert_subtree", sketch="frozen",
                          parent_label="a", subtree="k")
        assert excinfo.value.code == "immutable_sketch"

    def test_unresolvable_addresses_are_bad_requests(self, client):
        with pytest.raises(ServerError) as excinfo:
            client.update("insert_subtree", sketch="live",
                          parent_label="zz", subtree="k")
        assert excinfo.value.code == "bad_request"
        with pytest.raises(ServerError) as excinfo:
            client.update("delete_subtree", sketch="live",
                          label="a", ordinal=99)
        assert excinfo.value.code == "bad_request"
        # Deleting the document root is invalid, not a crash.
        with pytest.raises(ServerError) as excinfo:
            client.update("delete_subtree", sketch="live",
                          label="r", ordinal=0)
        assert excinfo.value.code == "bad_request"

    def test_list_sketches_reports_live_metadata(self, client):
        client.update("insert_subtree", sketch="live",
                      parent_label="r", subtree="n")
        described = {doc["name"]: doc for doc in client.list_sketches()}
        live = described["live"]
        assert live["live"] is True
        assert live["epoch"] == 1 and live["mutations"] == 1
        assert "debt" in live and "remerges" in live
        frozen = described["frozen"]
        assert frozen["live"] is False and "epoch" not in frozen

    def test_registry_level_invalidate_bumps_epochs(self, server):
        registry, _ = server
        epochs = registry.invalidate()
        assert epochs == {"frozen": 1, "live": 1}
        assert registry.invalidate("live") == {"live": 2}
        with pytest.raises(KeyError):
            registry.invalidate("nope")


class TestCheckpointTimer:
    def test_sidecar_written_periodically(self, tmp_path):
        """With --cache-checkpoint-s the warm state reaches the sidecar
        while the daemon is still running, not only on graceful stop."""
        path = str(tmp_path / "ckpt.tsb")
        save_synopsis(build_treesketch(build_stable(_tree()), 4096), path)
        registry = SketchRegistry()
        registry.load(path)
        handle = start_server_thread(
            registry, ServeConfig(port=0, cache_checkpoint_s=0.2))
        sidecar = path + ".cache"
        try:
            with ServeClient("127.0.0.1", handle.port) as client:
                client.estimate("//a (//p)", sketch="ckpt")
            deadline = time.monotonic() + 20
            while not os.path.exists(sidecar):
                assert time.monotonic() < deadline, "no checkpoint sidecar"
                time.sleep(0.05)
        finally:
            handle.stop()
        doc = json.loads(open(sidecar).read())
        assert doc["selectivities"]


# ---------------------------------------------------------------------------
# Fleet end-to-end: the live sketch lives on exactly one shard.
# ---------------------------------------------------------------------------

_CONTROL_RE = re.compile(r"control on ([\d.]+):(\d+) \(protocol")


def _env():
    env = dict(os.environ)
    src = os.path.join(os.path.dirname(__file__), "..", "src")
    env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
    return env


def _spawn_fleet(specs, *extra, workers=2):
    proc = subprocess.Popen(
        [sys.executable, "-m", "repro", "serve", *specs,
         "--port", "0", "--workers", str(workers), *extra],
        stdout=subprocess.PIPE, stderr=subprocess.STDOUT, text=True,
        env=_env())
    log = []
    deadline = time.monotonic() + 90
    while time.monotonic() < deadline:
        line = proc.stdout.readline()
        if not line:
            break
        log.append(line)
        match = _CONTROL_RE.search(line)
        if match:
            drain = threading.Thread(
                target=lambda: log.extend(iter(proc.stdout.readline, "")),
                daemon=True)
            drain.start()
            return proc, (match.group(1), int(match.group(2))), log
    proc.kill()
    raise AssertionError(
        "fleet did not report readiness in time:\n" + "".join(log))


def _stop_fleet(proc):
    if proc.poll() is None:
        proc.send_signal(signal.SIGTERM)
        try:
            proc.wait(60)
        except subprocess.TimeoutExpired:
            proc.kill()
            proc.wait(10)


class TestFleetUpdate:
    def test_pooled_update_routes_to_owning_shard(self, tmp_path):
        xml_path = tmp_path / "doc.xml"
        xml_path.write_text(to_xml(_tree()))
        frozen_path = tmp_path / "frozen.json"
        save_synopsis(build_treesketch(build_stable(_tree()), 4096),
                      str(frozen_path))
        specs = [f"live={xml_path}", f"frozen={frozen_path}"]
        query = "//a (//p (//k ?))"

        # In-process truth: the same document, budget, and edit sequence.
        oracle = SketchMaintainer(_tree(), LIVE_BUDGET)
        before_truth = _truth(oracle.snapshot(), query)
        parent = [n for n in oracle.tree.root.iter_preorder()
                  if n.label == "a"][2]
        oracle.insert_subtree(parent, ("p", ["k", "k", "k"]))
        after_truth = _truth(oracle.snapshot(), query)
        assert after_truth != before_truth

        proc, control, _log = _spawn_fleet(
            specs, "--live-budget-kb", str(LIVE_BUDGET / 1024))
        try:
            with PooledClient(*control) as pool:
                assert pool.estimate(query, sketch="live") == before_truth
                response = pool.update(
                    "insert_subtree", sketch="live", parent_label="a",
                    parent_ordinal=2, subtree=["p", ["k", "k", "k"]])
                assert response["epoch"] == 1
                assert pool.estimate(query, sketch="live") == after_truth
                # The frozen shard still refuses mutations through the pool.
                with pytest.raises(ServerError) as excinfo:
                    pool.update("insert_subtree", sketch="frozen",
                                parent_label="a", subtree="k")
                assert excinfo.value.code == "immutable_sketch"
                described = {doc["name"]: doc
                             for doc in pool.call("list_sketches",
                                                  sketch="live")["sketches"]}
                assert described["live"]["epoch"] == 1
        finally:
            _stop_fleet(proc)
