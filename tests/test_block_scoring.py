"""Correctness proofs for block-vectorized merge scoring (kernel="numpy").

The numpy kernel rescopes *where* stale candidates get rescored (a
vectorized block warming the merge memo) but must not change *what* the
build computes: the merge sequence and the final sketch have to stay
bitwise-identical to the dicts and arrays paths.  The drain discipline
itself is untouched -- ``_block_refresh`` pops heap entries and pushes
them back unchanged -- so the single new proof obligation is that
``KernelPartition.eval_block`` scores bitwise-identically to
``_eval_raw``.  These tests pin both halves, plus the fallback contract:
``kernel="auto"`` silently degrades when numpy is absent and explicit
``kernel="numpy"`` fails fast with a clear error.
"""

import random

import pytest

from repro import obs
from repro.core import build as build_mod
from repro.core import kernel as kernel_mod
from repro.core.build import TSBuildOptions, TreeSketchBuilder, build_treesketch
from repro.core.kernel import KernelPartition
from repro.core.npsupport import have_numpy
from repro.core.partition import MergePartition
from repro.core.pool import create_pool_reference
from repro.core.stable import build_stable
from tests.conftest import make_random_tree

needs_numpy = pytest.mark.skipif(not have_numpy(), reason="numpy unavailable")


def _sketch_state(sketch):
    return (
        dict(sketch.label),
        dict(sketch.count),
        dict(sketch.stats),
        {k: dict(v) for k, v in sketch.out.items()},
        sketch.root_id,
    )


def _traced_build(stable, options, budget):
    """Build and record the exact merge sequence the drain loop applied."""
    builder = TreeSketchBuilder(stable, options)
    part = builder.partition
    seq = []
    orig = part.apply_merge

    def tracer(u, v):
        seq.append((u, v))
        return orig(u, v)

    part.apply_merge = tracer
    sketch = builder.compress_to(budget)
    return sketch, seq


def _force_block_path(monkeypatch):
    """Make small test documents exercise the vector path.

    The production thresholds (REFRESH_MIN_SOURCES, MIN_VECTOR_SOURCES)
    are speed knobs sized for XMark-scale unions; correctness must hold
    at any setting, so tests drop them to zero to route every stale pop
    through the block path and every block pair through the numpy scorer.
    """
    monkeypatch.setattr(build_mod, "REFRESH_MIN_SOURCES", 0)
    monkeypatch.setattr(kernel_mod, "MIN_VECTOR_SOURCES", 0)


KERNELS = ("dicts", "arrays", "numpy")


@needs_numpy
@pytest.mark.parametrize("seed,budget_kb", [(7, 2), (21, 3), (99, 2)])
def test_merge_sequence_identical_across_kernels(seed, budget_kb, monkeypatch):
    """Same merges, same order, same sketch -- on all three kernels.

    The merge sequence is the strongest observable: two builds that merge
    the same pairs in the same order are the same build.  Thresholds are
    forced down so the numpy arm actually takes the block path on these
    small documents (the counter assert proves it did).
    """
    _force_block_path(monkeypatch)
    rng = random.Random(seed)
    stable = build_stable(make_random_tree(rng, 600))
    budget = budget_kb * 1024
    results = {}
    with obs.observed() as registry:
        for kernel in KERNELS:
            results[kernel] = _traced_build(
                stable, TSBuildOptions(kernel=kernel), budget
            )
    flat = obs.report.flatten_snapshot(registry.snapshot())
    assert flat["counters.tsbuild.block_rescores"] > 0  # numpy arm took it
    ref_sketch, ref_seq = results["dicts"]
    assert ref_seq, "build applied no merges; test is vacuous"
    for kernel in ("arrays", "numpy"):
        sketch, seq = results[kernel]
        assert seq == ref_seq, f"{kernel} merge sequence diverged"
        assert _sketch_state(sketch) == _sketch_state(ref_sketch)


@pytest.mark.parametrize("seed", [7, 21, 99])
def test_sketch_identical_with_and_without_numpy(seed, monkeypatch):
    """REPRO_NO_NUMPY must not change a bit of auto's output."""
    rng = random.Random(seed)
    stable = build_stable(make_random_tree(rng, 500))
    budget = 4 * 1024
    with_np = build_treesketch(stable, budget, TSBuildOptions(kernel="auto"))
    monkeypatch.setenv("REPRO_NO_NUMPY", "1")
    without = build_treesketch(stable, budget, TSBuildOptions(kernel="auto"))
    assert _sketch_state(with_np) == _sketch_state(without)


@needs_numpy
def test_eval_block_bitwise_identical_to_eval_raw(monkeypatch):
    """The one new proof obligation: vector scores == scalar scores, bitwise.

    Covers evolving (post-merge) states and both orientations of every
    candidate pair, with MIN_VECTOR_SOURCES=0 so even tiny unions go
    through the numpy code path instead of the scalar fallback.
    """
    monkeypatch.setattr(kernel_mod, "MIN_VECTOR_SOURCES", 0)
    checked = 0
    for seed in (0, 5, 17, 40):
        rng = random.Random(seed)
        stable = build_stable(make_random_tree(rng, 250))
        # Pool generation needs the reference scorer, which lives on the
        # dict partition; merges are mirrored so both stay in lockstep.
        dicts = MergePartition(stable)
        part = KernelPartition(stable)
        assert part.enable_vector_blocks()
        for _ in range(4):
            pool = create_pool_reference(dicts, heap_upper=60, pair_window=None)
            if not pool:
                break
            pairs = [(u, v) for _r, _e, _s, u, v in pool]
            pairs += [(v, u) for u, v in pairs]
            scalar = [part._eval_raw(u, v) for u, v in pairs]
            vector = part.eval_block(pairs)
            assert vector == scalar  # tuple equality is exact: bitwise
            checked += len(pairs)
            _r, _e, _s, u, v = min(pool)
            dicts.apply_merge(u, v)
            part.apply_merge(u, v)
    assert checked > 200


@needs_numpy
def test_block_counters_and_memo_accounting(monkeypatch):
    """The block path reports its work: rescores counter, size histogram."""
    _force_block_path(monkeypatch)
    rng = random.Random(12)
    stable = build_stable(make_random_tree(rng, 600))
    with obs.observed() as registry:
        build_treesketch(stable, 3 * 1024, TSBuildOptions(kernel="numpy"))
    flat = obs.report.flatten_snapshot(registry.snapshot())
    assert flat["counters.tsbuild.kernel_numpy"] == 1
    assert flat["counters.tsbuild.block_rescores"] > 0
    assert flat["histograms.tsbuild.block_size.count"] > 0
    # Every block fill is memo traffic: misses when filled, hits when the
    # warmed entries are served back to surfacing pops.
    assert flat["counters.tsbuild.memo_misses"] > 0
    assert flat["counters.tsbuild.memo_hits"] > 0


@needs_numpy
def test_numpy_kernel_counters_registered_even_when_idle():
    """A numpy build that never triggers a block still reports zeros."""
    rng = random.Random(3)
    stable = build_stable(make_random_tree(rng, 200))
    with obs.observed() as registry:
        # Default thresholds: tiny unions never reach REFRESH_MIN_SOURCES.
        build_treesketch(stable, 2 * 1024, TSBuildOptions(kernel="numpy"))
    flat = obs.report.flatten_snapshot(registry.snapshot())
    assert flat["counters.tsbuild.kernel_numpy"] == 1
    assert flat["counters.tsbuild.block_rescores"] == 0


class TestFallbackContract:
    """kernel="auto" degrades silently; kernel="numpy" fails fast."""

    def test_explicit_numpy_without_numpy_raises(self, monkeypatch):
        monkeypatch.setenv("REPRO_NO_NUMPY", "1")
        rng = random.Random(1)
        stable = build_stable(make_random_tree(rng, 100))
        with pytest.raises(ValueError, match="numpy"):
            TreeSketchBuilder(stable, TSBuildOptions(kernel="numpy"))

    def test_auto_without_numpy_selects_arrays_silently(self, monkeypatch):
        monkeypatch.setenv("REPRO_NO_NUMPY", "1")
        rng = random.Random(1)
        stable = build_stable(make_random_tree(rng, 300))
        with obs.observed() as registry:
            build_treesketch(stable, 2 * 1024, TSBuildOptions(kernel="auto"))
        flat = obs.report.flatten_snapshot(registry.snapshot())
        assert flat["counters.tsbuild.kernel_arrays"] == 1
        assert "counters.tsbuild.kernel_numpy" not in flat

    @needs_numpy
    def test_auto_with_numpy_selects_numpy(self):
        rng = random.Random(1)
        stable = build_stable(make_random_tree(rng, 300))
        with obs.observed() as registry:
            build_treesketch(stable, 2 * 1024, TSBuildOptions(kernel="auto"))
        flat = obs.report.flatten_snapshot(registry.snapshot())
        assert flat["counters.tsbuild.kernel_numpy"] == 1

    def test_unknown_kernel_rejected(self):
        rng = random.Random(1)
        stable = build_stable(make_random_tree(rng, 50))
        with pytest.raises(ValueError, match="simd"):
            TreeSketchBuilder(stable, TSBuildOptions(kernel="simd"))

    def test_enable_vector_blocks_reports_failure(self, monkeypatch):
        monkeypatch.setenv("REPRO_NO_NUMPY", "1")
        rng = random.Random(1)
        part = KernelPartition(build_stable(make_random_tree(rng, 80)))
        assert part.enable_vector_blocks() is False
        assert part.vector_blocks is False
