"""Tests for the values extension (repro.values + value predicates)."""

import pytest

from repro.core.build import TreeSketchBuilder
from repro.core.estimate import estimate_selectivity
from repro.core.evaluate import eval_query
from repro.core.stable import build_stable
from repro.core.treesketch import TreeSketch
from repro.engine.exact import ExactEvaluator
from repro.query.parser import parse_path, parse_twig
from repro.query.path import ValueTest
from repro.values import ValueSummary, annotate_sketch_values, annotate_stable_values
from repro.xmltree.parser import parse_xml

LIBRARY = """
<lib>
 <book><genre>scifi</genre><copy/><copy/></book>
 <book><genre>scifi</genre><copy/></book>
 <book><genre>crime</genre><copy/><copy/><copy/></book>
 <book><genre>drama</genre></book>
 <magazine><genre>crime</genre></magazine>
</lib>
"""


@pytest.fixture
def library():
    tree = parse_xml(LIBRARY, keep_values=True)
    stable = build_stable(tree, keep_extents=True)
    summaries = annotate_stable_values(stable, tree)
    return tree, stable, summaries


class TestValueParsing:
    def test_keep_values_parses_leaf_text(self):
        tree = parse_xml("<a><b>hello</b><c/></a>", keep_values=True)
        b, c = tree.root.children
        assert b.value == "hello"
        assert c.value is None

    def test_values_dropped_by_default(self):
        tree = parse_xml("<a><b>hello</b></a>")
        assert tree.root.children[0].value is None

    def test_internal_text_ignored(self):
        tree = parse_xml("<a>text<b>leaf</b></a>", keep_values=True)
        assert tree.root.value is None
        assert tree.root.children[0].value == "leaf"

    def test_serialization_round_trip(self):
        from repro.xmltree.serialize import to_xml

        tree = parse_xml("<a><b>x</b></a>", keep_values=True)
        again = parse_xml(to_xml(tree), keep_values=True)
        assert again.root.children[0].value == "x"


class TestValueTestSyntax:
    def test_parse_value_predicate(self):
        path = parse_path('//book[/genre = "scifi"]')
        (pred,) = path.steps[0].predicates
        assert isinstance(pred, ValueTest)
        assert pred.value == "scifi"
        assert str(pred.path) == "/genre"

    def test_single_quotes(self):
        path = parse_path("//book[/genre = 'x y z']")
        (pred,) = path.steps[0].predicates
        assert pred.value == "x y z"

    def test_mixed_predicates(self):
        path = parse_path('//book[/copy][/genre = "scifi"]')
        structural, value = path.steps[0].predicates
        assert not isinstance(structural, ValueTest)
        assert isinstance(value, ValueTest)

    def test_round_trip_through_str(self):
        path = parse_path('//book[/genre = "scifi"]/copy')
        assert parse_path(str(path)) == path

    def test_unterminated_literal(self):
        from repro.query.parser import QuerySyntaxError

        with pytest.raises(QuerySyntaxError):
            parse_path('//book[/genre = "oops]')


class TestExactValuePredicates:
    def test_selectivity_with_value_filter(self, library):
        tree, _stable, _sv = library
        ev = ExactEvaluator(tree)
        assert ev.selectivity(parse_twig('//book[/genre = "scifi"] ( /copy )')) == 3
        assert ev.selectivity(parse_twig('//book[/genre = "crime"] ( /copy )')) == 3
        assert ev.selectivity(parse_twig('//book[/genre = "drama"] ( /copy )')) == 0

    def test_value_on_missing_path(self, library):
        tree, _stable, _sv = library
        ev = ExactEvaluator(tree)
        assert ev.selectivity(parse_twig('//book[/zzz = "x"]')) == 0

    def test_nesting_tree_filters(self, library):
        tree, _stable, _sv = library
        nt = ExactEvaluator(tree).evaluate(parse_twig('//book[/genre = "scifi"]'))
        assert len(nt.root.children) == 2


class TestValueSummary:
    def test_from_values(self):
        s = ValueSummary.from_values(["a", "a", "b", None], top_k=8)
        assert s.top == {"a": 2, "b": 1}
        assert s.null_count == 1
        assert s.total == 4

    def test_probability_exact_for_top(self):
        s = ValueSummary.from_values(["a", "a", "b", "c"], top_k=2)
        assert s.probability("a") == pytest.approx(0.5)

    def test_probability_uniform_tail(self):
        s = ValueSummary.from_values(["a", "a", "b", "c"], top_k=1)
        # tail: 2 occurrences over 2 distinct -> 1/4 each.
        assert s.probability("zzz") == pytest.approx(0.25)

    def test_probability_no_tail_zero(self):
        s = ValueSummary.from_values(["a"], top_k=8)
        assert s.probability("zzz") == 0.0

    def test_empty(self):
        s = ValueSummary.from_values([], top_k=4)
        assert s.total == 0
        assert s.probability("x") == 0.0

    def test_merge_preserves_totals(self):
        a = ValueSummary.from_values(["x", "x", "y"], top_k=8)
        b = ValueSummary.from_values(["x", "z", None], top_k=8)
        merged = a.merge(b, top_k=8)
        assert merged.total == 6
        assert merged.top["x"] == 3

    def test_merge_reapplies_cap(self):
        a = ValueSummary.from_values(["a"] * 3 + ["b"] * 2, top_k=2)
        b = ValueSummary.from_values(["c"] * 4, top_k=2)
        merged = a.merge(b, top_k=2)
        assert len(merged.top) == 2
        assert merged.total == 9

    def test_size_bytes(self):
        s = ValueSummary.from_values(["a", "b"], top_k=8)
        assert s.size_bytes() == 8 * 2 + 12


class TestAnnotation:
    def test_stable_annotation_requires_extents(self, library):
        tree, _stable, _sv = library
        bare = build_stable(tree)
        with pytest.raises(ValueError):
            annotate_stable_values(bare, tree)

    def test_only_valued_classes_annotated(self, library):
        _tree, stable, summaries = library
        for nid in summaries:
            assert stable.label[nid] == "genre"

    def test_sketch_annotation_from_stable(self, library):
        _tree, stable, summaries = library
        sketch = TreeSketch.from_stable(stable)
        annotated = annotate_sketch_values(sketch, summaries)
        assert annotated
        genre_ids = [nid for nid, lab in sketch.label.items() if lab == "genre"]
        total = sum(sketch.values[nid].total for nid in genre_ids if nid in sketch.values)
        assert total == 5  # all genre elements covered

    def test_sketch_annotation_requires_members(self, library):
        _tree, _stable, summaries = library
        with pytest.raises(ValueError):
            annotate_sketch_values(TreeSketch(), summaries)

    def test_merged_cluster_probabilities(self, library):
        _tree, stable, summaries = library
        builder = TreeSketchBuilder(stable)
        sketch = builder.compress_to(stable.size_bytes() // 2)
        annotated = annotate_sketch_values(sketch, summaries)
        for summary in annotated.values():
            for value, count in summary.top.items():
                assert 0 < summary.probability(value) <= 1


class TestApproximateValueSelectivity:
    @pytest.mark.parametrize("genre,expected", [("scifi", 3), ("crime", 3)])
    def test_annotated_estimates_close(self, library, genre, expected):
        tree, stable, summaries = library
        sketch = TreeSketch.from_stable(stable)
        annotate_sketch_values(sketch, summaries)
        query = parse_twig(f'//book[/genre = "{genre}"] ( /copy )')
        estimate = estimate_selectivity(eval_query(sketch, query))
        # Value/structure independence makes this approximate; it must be
        # in the right ballpark and far below the structural bound (6).
        assert 0 < estimate <= 6
        assert abs(estimate - expected) <= 2.0

    def test_unannotated_is_structural_upper_bound(self, library):
        tree, stable, _sv = library
        sketch = TreeSketch.from_stable(stable)
        query = parse_twig('//book[/genre = "scifi"] ( /copy )')
        structural = parse_twig("//book[/genre] ( /copy )")
        assert estimate_selectivity(eval_query(sketch, query)) == pytest.approx(
            estimate_selectivity(eval_query(sketch, structural))
        )

    def test_unknown_value_low_selectivity(self, library):
        _tree, stable, summaries = library
        sketch = TreeSketch.from_stable(stable)
        annotate_sketch_values(sketch, summaries)
        query = parse_twig('//book[/genre = "unknown-genre"] ( /copy )')
        estimate = estimate_selectivity(eval_query(sketch, query))
        assert estimate <= 1.0
