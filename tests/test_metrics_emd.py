"""Unit tests for the EMD-style set distance."""

import pytest

from repro.metrics.emd import emd_distance


def flat(a, b):
    return abs(a - b)


def unit(_v):
    return 1.0


class TestEMD:
    def test_identity(self):
        u = [(1, 2), (3, 1)]
        assert emd_distance(u, u, flat, unit) == 0.0

    def test_symmetry(self):
        u, v = [(1, 3)], [(2, 1), (4, 1)]
        assert emd_distance(u, v, flat, unit) == emd_distance(v, u, flat, unit)

    def test_transport_cost(self):
        # move one unit from 1 to 2: cost 1.
        assert emd_distance([(1, 1)], [(2, 1)], flat, unit) == 1.0

    def test_mass_mismatch_linear(self):
        # 3 surplus copies charged magnitude each (linear, unlike MAC).
        assert emd_distance([(1, 4)], [(1, 1)], flat, unit) == 3.0

    def test_empty_side(self):
        assert emd_distance([(1, 2)], [], flat, lambda v: 5.0) == 10.0

    def test_both_empty(self):
        assert emd_distance([], [], flat, unit) == 0.0

    def test_linear_residual_cannot_discriminate_fig10(self):
        """The reason MAC (superlinear) is the default: EMD's linear
        residual ties the Fig. 10 comparison when sub-tree sizes match."""
        eq = lambda a, b: 0.0 if a == b else 1.0
        concentrated = emd_distance([("x", 4)], [("x", 1)], eq, unit)
        spread = (
            emd_distance([("x", 3)], [("x", 1)], eq, unit)
            + emd_distance([("y", 2)], [("y", 1)], eq, unit)
        )
        assert concentrated == spread == 3.0
