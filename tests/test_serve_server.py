"""End-to-end tests for the serving daemon: real sockets, real sketches.

Covers the acceptance bar for the serve subsystem: a server loaded with
two sketches answers eval/estimate/health over TCP with results identical
to the in-process functions; under forced queue pressure it degrades
eval to selectivity-only (``degraded: true``) and sheds with structured
``overloaded`` errors, never a hang or a crash, with the ``serve.*``
observability counters pinned.
"""

import json
import socket
import threading
import time

import pytest

from repro import obs
from repro.core.build import build_treesketch
from repro.core.estimate import estimate_selectivity
from repro.core.evaluate import eval_query
from repro.core.stable import build_stable
from repro.query.parser import parse_twig
from repro.serve import (
    ServeClient,
    ServeConfig,
    ServerError,
    SketchRegistry,
    start_server_thread,
)
from repro.xmltree.tree import XMLTree

QUERIES = ["//a (//p)", "//a[//b] (//p ?)", "//a (//p (//k ?), //n ?)"]


def _tree() -> XMLTree:
    return XMLTree.from_nested(
        (
            "r",
            [
                ("a", [("p", ["k", "k"]), "n"]),
                ("a", [("p", ["k"]), "n", "n"]),
                ("a", [("b", ["t"])]),
            ],
        )
    )


@pytest.fixture(scope="module")
def sketches():
    stable = build_stable(_tree())
    return {
        "lossless": build_treesketch(stable, 100 * 1024),
        "tight": build_treesketch(stable, 220),
    }


@pytest.fixture(scope="module")
def server(sketches):
    registry = SketchRegistry()
    for name, sketch in sketches.items():
        registry.register(name, sketch)
    handle = start_server_thread(registry, ServeConfig(port=0))
    yield handle
    handle.stop()


@pytest.fixture
def client(server):
    with ServeClient("127.0.0.1", server.port) as client:
        yield client


class TestHappyPath:
    def test_health(self, client):
        health = client.health()
        assert health["status"] == "ok"
        assert sorted(health["sketches"]) == ["lossless", "tight"]
        assert health["protocol"] == 1

    def test_list_sketches(self, client, sketches):
        listed = {entry["name"]: entry for entry in client.list_sketches()}
        assert set(listed) == {"lossless", "tight"}
        for name, sketch in sketches.items():
            assert listed[name]["nodes"] == sketch.num_nodes
            assert listed[name]["size_bytes"] == sketch.size_bytes()

    def test_estimate_matches_in_process_on_both_sketches(self, client, sketches):
        for name, sketch in sketches.items():
            for text in QUERIES:
                direct = estimate_selectivity(
                    eval_query(sketch, parse_twig(text)))
                assert client.estimate(text, sketch=name) == pytest.approx(direct)

    def test_eval_matches_in_process_on_both_sketches(self, client, sketches):
        for name, sketch in sketches.items():
            for text in QUERIES:
                result = eval_query(sketch, parse_twig(text))
                response = client.eval(text, sketch=name)
                assert response["degraded"] is False
                assert response["sketch"] == name
                assert response["selectivity"] == pytest.approx(
                    estimate_selectivity(result))
                assert response["result"] == {
                    "nodes": result.num_nodes,
                    "edges": result.num_edges,
                    "empty": result.empty,
                }
                assert "q0" in response["bindings"]

    def test_expand_round_trips_xml(self, client):
        from repro.xmltree.parser import parse_xml

        response = client.expand("//a (//p)", sketch="lossless")
        preview = parse_xml(response["xml"])
        assert len(preview) == response["elements"]
        assert preview.root.label == "r"

    def test_pipelined_requests_one_connection(self, client):
        for _ in range(3):
            assert client.health()["status"] == "ok"
            assert client.estimate("//a (//p)", sketch="lossless") >= 0.0

    def test_stats_reports_admission_and_caches(self, client):
        stats = client.stats()
        assert stats["admission"]["depth"] == 0
        names = {entry["name"] for entry in stats["sketches"]}
        assert names == {"lossless", "tight"}


class TestErrorPaths:
    def test_unknown_sketch(self, client):
        response = client.request("estimate", query="//a", sketch="nope")
        assert response["ok"] is False
        assert response["error"]["code"] == "unknown_sketch"
        with pytest.raises(ServerError) as excinfo:
            client.estimate("//a", sketch="nope")
        assert excinfo.value.code == "unknown_sketch"

    def test_ambiguous_sketch_must_be_named(self, client):
        response = client.request("estimate", query="//a")
        assert response["error"]["code"] == "unknown_sketch"

    def test_bad_query(self, client):
        response = client.request("eval", query="((", sketch="lossless")
        assert response["error"]["code"] == "bad_query"

    def test_unknown_op_and_bad_request(self, client):
        assert client.request("frobnicate")["error"]["code"] == "unknown_op"
        response = client.request("eval", sketch="lossless")  # no query
        assert response["error"]["code"] == "bad_request"

    def test_malformed_json_line(self, server):
        with socket.create_connection(("127.0.0.1", server.port), timeout=10) as sock:
            sock.sendall(b'{"op": "eval"\n')
            response = json.loads(sock.makefile("rb").readline())
        assert response["ok"] is False
        assert response["error"]["code"] == "bad_request"

    def test_connection_survives_errors(self, client):
        client.request("frobnicate")
        client.request("eval", query="((", sketch="lossless")
        assert client.health()["status"] == "ok"  # same connection, still live


class TestDeadlines:
    def test_deadline_exceeded_is_structured(self, sketches):
        registry = SketchRegistry()
        registry.register("s", sketches["lossless"])
        handle = start_server_thread(
            registry, ServeConfig(port=0, handler_delay_s=0.5))
        try:
            with obs.observed() as metrics:
                with ServeClient("127.0.0.1", handle.port) as client:
                    response = client.request(
                        "eval", query="//a (//p)", deadline_ms=50)
                    assert response["error"]["code"] == "deadline_exceeded"
                    # Control plane is unaffected by data-plane deadlines.
                    assert client.health()["status"] == "ok"
            flat = obs.report.flatten_snapshot(metrics.snapshot())
            assert flat["counters.serve.deadline_exceeded"] == 1
        finally:
            handle.stop()

    def test_abandoned_compute_keeps_its_admission_slot(self, sketches):
        """A deadline abandons the response, not the slot: while the
        worker still grinds on the abandoned request, admission must keep
        shedding -- otherwise sustained timeouts grow the executor queue
        unboundedly behind stuck work."""
        registry = SketchRegistry()
        registry.register("s", sketches["lossless"])
        entry = registry.get("s")
        orig_result = entry.cache.result
        finished = threading.Event()

        def slow_result(query):
            time.sleep(0.75)
            try:
                return orig_result(query)
            finally:
                finished.set()

        entry.cache.result = slow_result
        handle = start_server_thread(
            registry, ServeConfig(port=0, max_pending=1, degrade_watermark=1))
        try:
            with ServeClient("127.0.0.1", handle.port) as client:
                response = client.request(
                    "eval", query="//a (//p)", deadline_ms=50)
                assert response["error"]["code"] == "deadline_exceeded"
                # The abandoned computation still holds the only slot.
                probe = client.request("eval", query="//p", deadline_ms=5000)
                assert probe["ok"] is False
                assert probe["error"]["code"] == "overloaded"
                assert finished.wait(10)  # worker eventually completes
                deadline = time.monotonic() + 5.0
                while time.monotonic() < deadline:
                    if client.stats()["admission"]["depth"] == 0:
                        break
                    time.sleep(0.01)
                else:
                    pytest.fail("slot was never released after compute")
                entry.cache.result = orig_result  # back to full speed
                final = client.eval("//a (//p)")
                assert final["degraded"] is False
        finally:
            entry.cache.result = orig_result
            handle.stop()


class TestControlPlaneNonBlocking:
    def test_stats_answers_while_cache_lock_is_held(self, sketches):
        """stats/list_sketches read cache tallies without blocking on the
        single-flight lock a worker holds across a whole eval_query."""
        registry = SketchRegistry()
        registry.register("s", sketches["lossless"])
        cache = registry.get("s").cache
        handle = start_server_thread(registry, ServeConfig(port=0))
        acquired, release = threading.Event(), threading.Event()

        def hold():
            with cache._lock:
                acquired.set()
                release.wait(10)

        holder = threading.Thread(target=hold)
        holder.start()
        assert acquired.wait(10)
        try:
            with ServeClient("127.0.0.1", handle.port, timeout=5.0) as client:
                stats = client.stats()  # would hang before the fix
                assert stats["ok"] is True
                listed = client.list_sketches()
                assert listed[0]["cache"]["maxsize"] == cache.maxsize
        finally:
            release.set()
            holder.join(10)
            handle.stop()


class TestGracefulDegradation:
    def test_low_watermark_degrades_eval_to_selectivity_only(self, sketches):
        registry = SketchRegistry()
        registry.register("s", sketches["lossless"])
        # degrade_watermark=0 forces every admitted eval onto the cheap path.
        handle = start_server_thread(
            registry, ServeConfig(port=0, degrade_watermark=0))
        try:
            with obs.observed() as metrics:
                with ServeClient("127.0.0.1", handle.port) as client:
                    direct = estimate_selectivity(
                        eval_query(sketches["lossless"], parse_twig("//a (//p)")))
                    # A degraded eval serves cached entries only: before
                    # anything primed the cache it sheds instead of
                    # evaluating (degradation must shed compute).
                    cold = client.request("eval", query="//a (//p)")
                    assert cold["ok"] is False
                    assert cold["error"]["code"] == "overloaded"
                    # estimate is never degraded; it runs fully (and
                    # primes the cache for degraded evals of the hot set)
                    assert client.estimate("//a (//p)") == pytest.approx(direct)
                    response = client.eval("//a (//p)")
                    assert response["degraded"] is True
                    assert response["selectivity"] == pytest.approx(direct)
                    assert "result" not in response  # no full result sketch
                    assert "bindings" not in response
            flat = obs.report.flatten_snapshot(metrics.snapshot())
            assert flat["counters.serve.degraded"] == 1
            assert flat["counters.serve.requests.eval"] == 2
        finally:
            handle.stop()


class TestLoadShedding:
    def test_overloaded_is_shed_not_hung(self, sketches):
        registry = SketchRegistry()
        registry.register("s", sketches["lossless"])
        # One admission slot, held for a while by a slow request.
        handle = start_server_thread(
            registry,
            ServeConfig(port=0, max_pending=1, degrade_watermark=1,
                        handler_delay_s=1.0),
        )
        slow = probe = None
        try:
            with obs.observed() as metrics:
                slow = ServeClient("127.0.0.1", handle.port)
                probe = ServeClient("127.0.0.1", handle.port)
                outcome = {}

                def occupy():
                    outcome["slow"] = slow.request("eval", query="//a (//p)")

                thread = threading.Thread(target=occupy)
                thread.start()
                # stats bypasses admission: poll until the slow request holds
                # the only slot, then the next data-plane request must shed.
                deadline = time.monotonic() + 5.0
                while time.monotonic() < deadline:
                    if probe.stats()["admission"]["depth"] >= 1:
                        break
                    time.sleep(0.01)
                else:
                    pytest.fail("slow request was never admitted")
                response = probe.request("eval", query="//a (//p)")
                assert response["ok"] is False
                assert response["error"]["code"] == "overloaded"
                assert "retry" in response["error"]["message"]
                # health still answers instantly while the queue is full
                assert probe.health()["status"] == "ok"
                thread.join(timeout=10)
                assert outcome["slow"]["ok"] is True  # admitted one completed
            flat = obs.report.flatten_snapshot(metrics.snapshot())
            assert flat["counters.serve.shed"] == 1
            assert flat["gauges.serve.queue.depth"] == 0
        finally:
            if slow is not None:
                slow.close()
            if probe is not None:
                probe.close()
            handle.stop()


class TestWorkloadReplay:
    def test_cli_workload_against_server(self, tmp_path, capsys):
        from repro.cli import main
        from repro.xmltree.serialize import to_xml

        xml_path = tmp_path / "doc.xml"
        xml_path.write_text(to_xml(_tree()))
        registry = SketchRegistry()
        # The server pins the same sketch the local workload run would build.
        stable = build_stable(_tree())
        registry.register("doc", build_treesketch(stable, 10 * 1024))
        handle = start_server_thread(registry, ServeConfig(port=0))
        try:
            code = main([
                "workload", str(xml_path),
                "--server", f"127.0.0.1:{handle.port}",
                "--queries", "5",
            ])
        finally:
            handle.stop()
        assert code == 0
        out = capsys.readouterr().out
        assert f"served by 127.0.0.1:{handle.port}" in out
        assert "avg selectivity error" in out

    def test_runner_remote_matches_local(self, sketches):
        from repro.workload.runner import run_selectivity, run_selectivity_remote
        from repro.workload.workload import make_workload

        tree = _tree()
        workload = make_workload(tree, num_queries=6, seed=3,
                                 stable=build_stable(tree))
        local = run_selectivity(sketches["lossless"], workload)
        registry = SketchRegistry()
        registry.register("s", sketches["lossless"])
        handle = start_server_thread(registry, ServeConfig(port=0))
        try:
            with ServeClient("127.0.0.1", handle.port) as client:
                remote = run_selectivity_remote(client, workload, sketch="s")
        finally:
            handle.stop()
        assert remote.per_query == pytest.approx(local.per_query)

    def test_cli_workload_bad_server_address(self, tmp_path, capsys):
        from repro.cli import main
        from repro.xmltree.serialize import to_xml

        xml_path = tmp_path / "doc.xml"
        xml_path.write_text(to_xml(_tree()))
        assert main(["workload", str(xml_path), "--server", "nope"]) == 2
        assert "HOST:PORT" in capsys.readouterr().err
