"""Edge-case tests for the workload runners and harness helpers."""

import pytest

from repro.core.build import build_treesketch
from repro.core.stable import build_stable
from repro.core.treesketch import TreeSketch
from repro.datagen.datasets import xmark_like
from repro.experiments.harness import Bundle
from repro.workload.runner import run_answer_quality, run_selectivity
from repro.workload.workload import make_workload


@pytest.fixture(scope="module")
def bundle():
    tree = xmark_like(scale=0.6, seed=12)
    stable = build_stable(tree)
    wl = make_workload(tree, num_queries=12, seed=1, stable=stable)
    return Bundle(name="t", tree=tree, stable=stable, workload=wl)


class TestAnswerQualityFailures:
    def test_expansion_failures_counted(self, bundle):
        sketch = TreeSketch.from_stable(bundle.stable)
        quality = run_answer_quality(
            sketch, bundle.workload, queries=range(4), max_nodes=2
        )
        assert quality.failures == 4
        assert quality.avg_esd != quality.avg_esd  # NaN: no scored queries

    def test_partial_failures(self, bundle):
        sketch = TreeSketch.from_stable(bundle.stable)
        sizes = [
            bundle.workload.evaluator.evaluate(bundle.workload.queries[i]).size()
            for i in range(6)
        ]
        threshold = sorted(sizes)[2] + 1
        quality = run_answer_quality(
            sketch, bundle.workload, queries=range(6), max_nodes=threshold
        )
        assert 0 < quality.failures < 6
        assert quality.avg_esd == 0.0  # survivors are exact on stable


class TestEsdQueryIds:
    def test_bounded_sizes(self, bundle):
        ids = bundle.esd_query_ids(5, max_nt_size=500)
        for i in ids:
            nt = bundle.workload.evaluator.evaluate(bundle.workload.queries[i])
            assert nt.size() <= 500

    def test_cached(self, bundle):
        assert bundle.esd_query_ids(5, max_nt_size=500) is bundle.esd_query_ids(
            5, max_nt_size=500
        )

    def test_count_respected(self, bundle):
        ids = bundle.esd_query_ids(3, max_nt_size=10**9)
        assert len(ids) == 3


class TestTrainingWorkload:
    def test_disjoint_seed(self, bundle):
        training = bundle.training_workload()
        eval_texts = {str(q) for q in bundle.workload.queries}
        train_texts = [str(q) for q in training.queries]
        overlap = sum(1 for t in train_texts if t in eval_texts)
        # Different seeds: overlap should be rare (identical short queries
        # can coincide by chance).
        assert overlap <= len(train_texts) // 3

    def test_cached(self, bundle):
        assert bundle.training_workload() is bundle.training_workload()


class TestTimingFields:
    def test_runner_reports_time(self, bundle):
        sketch = build_treesketch(bundle.stable, 4096)
        sel = run_selectivity(sketch, bundle.workload, queries=range(5))
        assert sel.seconds >= 0.0
        ans = run_answer_quality(sketch, bundle.workload, queries=range(2))
        assert ans.seconds >= 0.0
