"""Unit tests for the TreeSketch synopsis structure."""

import pytest

from repro.core.stable import build_stable
from repro.core.treesketch import TreeSketch


class TestFromStable:
    def test_zero_squared_error(self, paper_document):
        ts = TreeSketch.from_stable(build_stable(paper_document))
        assert ts.squared_error() == 0.0

    def test_edges_equal_stable_counts(self, paper_document):
        s = build_stable(paper_document)
        ts = TreeSketch.from_stable(s)
        for src, dst, k in s.edges():
            assert ts.edge_average(src, dst) == float(k)

    def test_counts_preserved(self, paper_document):
        s = build_stable(paper_document)
        ts = TreeSketch.from_stable(s)
        assert ts.count == s.count

    def test_validate_passes(self, paper_document):
        TreeSketch.from_stable(build_stable(paper_document)).validate()

    def test_size_matches_stable(self, paper_document):
        s = build_stable(paper_document)
        assert TreeSketch.from_stable(s).size_bytes() == s.size_bytes()


class TestSquaredError:
    def make_sketch(self):
        """One node u (count 4) with children counts 1,1,4,4 toward v."""
        ts = TreeSketch()
        ts.add_node(0, "u", 4)
        ts.add_node(1, "v", 10)
        total = 1 + 1 + 4 + 4
        sumsq = 1 + 1 + 16 + 16
        ts.add_edge(0, 1, total / 4)
        ts.stats[(0, 1)] = (total, sumsq)
        ts.root_id = 0
        return ts

    def test_cluster_squared_error(self):
        ts = self.make_sketch()
        # mean 2.5; deviations (1.5,1.5,1.5,1.5) -> 4*2.25 = 9.
        assert abs(ts.cluster_squared_error(0) - 9.0) < 1e-9

    def test_total_is_sum_over_clusters(self):
        ts = self.make_sketch()
        assert ts.squared_error() == ts.cluster_squared_error(0)

    def test_zero_for_constant_counts(self):
        ts = TreeSketch()
        ts.add_node(0, "u", 3)
        ts.add_node(1, "v", 6)
        ts.add_edge(0, 1, 2.0)
        ts.stats[(0, 1)] = (6.0, 12.0)
        ts.root_id = 0
        assert ts.squared_error() == 0.0

    def test_validate_rejects_inconsistent_average(self):
        ts = self.make_sketch()
        ts.out[0][1] = 99.0
        with pytest.raises(AssertionError):
            ts.validate()

    def test_validate_rejects_dangling_stats(self):
        ts = self.make_sketch()
        ts.stats[(0, 5)] = (1.0, 1.0)
        with pytest.raises(AssertionError):
            ts.validate()


class TestTopology:
    def test_stable_sketch_is_dag(self, paper_document):
        ts = TreeSketch.from_stable(build_stable(paper_document))
        assert ts.is_dag()
        order = ts.topological_order()
        position = {nid: i for i, nid in enumerate(order)}
        for src, dst, _ in ts.edges():
            assert position[src] < position[dst]

    def test_cycle_detected(self):
        ts = TreeSketch()
        ts.add_node(0, "a", 2)
        ts.add_node(1, "a", 2)
        ts.add_edge(0, 1, 1.0)
        ts.add_edge(1, 0, 1.0)
        ts.root_id = 0
        assert not ts.is_dag()
        assert ts.topological_order() is None

    def test_parents_index(self, paper_document):
        ts = TreeSketch.from_stable(build_stable(paper_document))
        parents = ts.parents_index()
        for src, dst, _ in ts.edges():
            assert src in parents[dst]
