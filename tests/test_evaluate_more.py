"""Additional EVALQUERY coverage: wildcards, optional binds, deep paths."""

import pytest

from repro.core.estimate import estimate_selectivity
from repro.core.evaluate import eval_query
from repro.core.stable import build_stable
from repro.core.treesketch import TreeSketch
from repro.engine.exact import ExactEvaluator
from repro.query.parser import parse_twig
from repro.xmltree.tree import XMLTree


def sketch_of(tree):
    return TreeSketch.from_stable(build_stable(tree))


class TestWildcards:
    def test_wildcard_child_counts_everything(self, paper_document):
        q = parse_twig("/*")
        truth = ExactEvaluator(paper_document).selectivity(q)
        est = estimate_selectivity(eval_query(sketch_of(paper_document), q))
        assert est == pytest.approx(float(truth))

    def test_wildcard_descendant(self, paper_document):
        q = parse_twig("//*")
        truth = ExactEvaluator(paper_document).selectivity(q)
        est = estimate_selectivity(eval_query(sketch_of(paper_document), q))
        assert est == pytest.approx(float(truth))

    def test_wildcard_mid_path(self, paper_document):
        q = parse_twig("/a/*/k")
        truth = ExactEvaluator(paper_document).selectivity(q)
        est = estimate_selectivity(eval_query(sketch_of(paper_document), q))
        assert est == pytest.approx(float(truth))


class TestOptionalBindings:
    def test_optional_children_still_bound(self, paper_document):
        result = eval_query(sketch_of(paper_document), parse_twig("//a (//p ?)"))
        assert result.bind.get("q2")

    def test_empty_optional_bind_missing(self, paper_document):
        result = eval_query(sketch_of(paper_document), parse_twig("//a (//zzz ?)"))
        assert not result.bind.get("q2")
        assert not result.empty

    def test_alternating_solid_optional(self, paper_document):
        q = parse_twig("//a (//p, //zzz ?, //n)")
        result = eval_query(sketch_of(paper_document), q)
        assert not result.empty
        truth = ExactEvaluator(paper_document).selectivity(q)
        assert estimate_selectivity(result) == pytest.approx(float(truth))


class TestDeepPaths:
    def test_long_child_chain(self):
        tree = XMLTree.from_nested(
            ("r", [("a", [("b", [("c", [("d", ["e"])])])])] * 3)
        )
        q = parse_twig("/a/b/c/d/e")
        truth = ExactEvaluator(tree).selectivity(q)
        est = estimate_selectivity(eval_query(sketch_of(tree), q))
        assert est == pytest.approx(float(truth))

    def test_descendant_through_depth(self):
        tree = XMLTree.from_nested(
            ("r", [("a", [("x", [("x", [("k", [])])])]), ("a", [("k", [])])])
        )
        q = parse_twig("//a (//k)")
        truth = ExactEvaluator(tree).selectivity(q)
        est = estimate_selectivity(eval_query(sketch_of(tree), q))
        assert est == pytest.approx(float(truth))

    def test_query_with_repeated_variable_labels(self, paper_document):
        # Same label bound to two different variables.
        q = parse_twig("//p (//t), //b (//t)")
        truth = ExactEvaluator(paper_document).selectivity(q)
        est = estimate_selectivity(eval_query(sketch_of(paper_document), q))
        assert est == pytest.approx(float(truth))


class TestSketchReuse:
    def test_sequential_queries_independent(self, paper_document):
        sketch = sketch_of(paper_document)
        ev = ExactEvaluator(paper_document)
        for text in ["//a", "//p (//k ?)", "//a[//b]", "//zzz"]:
            q = parse_twig(text)
            est = estimate_selectivity(eval_query(sketch, q))
            assert est == pytest.approx(float(ev.selectivity(q)))
