"""Tests for the canonical-query LRU cache (repro.core.qcache)."""

import pytest

from repro import obs
from repro.core.build import build_treesketch
from repro.core.estimate import estimate_selectivity
from repro.core.evaluate import eval_query
from repro.core.qcache import QueryCache, resolve_cache
from repro.core.stable import build_stable
from repro.query.parser import parse_twig
from repro.workload.runner import run_selectivity
from repro.xmltree.tree import XMLTree


@pytest.fixture
def sketch():
    spec = (
        "r",
        [
            ("a", [("p", ["k", "k"]), "n"]),
            ("a", [("p", ["k"]), "n", "n"]),
            ("a", [("b", ["t"])]),
        ],
    )
    tree = XMLTree.from_nested(spec)
    return build_treesketch(build_stable(tree), 100 * 1024)


def test_cached_results_match_uncached(sketch):
    cache = QueryCache(sketch)
    for text in ["//a (//p)", "//a[//b] (//p ?)", "//a (//p (//k ?), //n ?)"]:
        query = parse_twig(text)
        direct = estimate_selectivity(eval_query(sketch, query))
        assert cache.selectivity(query) == direct
        assert cache.selectivity(query) == direct  # served from cache


def test_hit_miss_accounting(sketch):
    cache = QueryCache(sketch)
    q = parse_twig("//a (//p)")
    cache.result(q)
    cache.result(q)
    cache.selectivity(q)
    assert cache.misses == 1
    assert cache.hits == 2
    assert len(cache) == 1


def test_canonical_text_shares_entries(sketch):
    """Structurally identical queries parsed from different text share."""
    cache = QueryCache(sketch)
    a = parse_twig("//a (//p)")
    b = parse_twig(str(parse_twig("//a (//p)")))
    assert str(a) == str(b)
    cache.result(a)
    cache.result(b)
    assert cache.misses == 1 and cache.hits == 1


def test_lru_eviction_order(sketch):
    cache = QueryCache(sketch, maxsize=2)
    q1, q2, q3 = (parse_twig(t) for t in ["//a", "//p", "//k"])
    cache.result(q1)
    cache.result(q2)
    cache.result(q1)  # q1 now most recent
    cache.result(q3)  # evicts q2
    assert cache.evictions == 1
    cache.result(q2)
    assert cache.misses == 4  # q2 was re-computed


def test_maxsize_validation(sketch):
    with pytest.raises(ValueError):
        QueryCache(sketch, maxsize=0)
    unbounded = QueryCache(sketch, maxsize=None)
    for text in ["//a", "//p", "//k", "//n", "//b"]:
        unbounded.result(parse_twig(text))
    assert unbounded.evictions == 0


def test_obs_counters(sketch):
    with obs.observed() as registry:
        cache = QueryCache(sketch, maxsize=1)
        q1, q2 = parse_twig("//a"), parse_twig("//p")
        cache.result(q1)
        cache.result(q1)
        cache.result(q2)
    flat = obs.report.flatten_snapshot(registry.snapshot())
    assert flat["counters.eval.cache.hits"] == 1
    assert flat["counters.eval.cache.misses"] == 2
    assert flat["counters.eval.cache.evictions"] == 1


def test_resolve_cache(sketch):
    cache = QueryCache(sketch)
    assert resolve_cache(sketch, cache) is cache
    built = resolve_cache(sketch, 16)
    assert isinstance(built, QueryCache) and built.maxsize == 16
    assert resolve_cache(sketch, None) is None
    assert resolve_cache(object(), 16) is None


def test_concurrent_access_stress(sketch):
    """Hammer one cache from many threads; accounting must stay exact.

    The serve daemon shares a QueryCache across its worker pool, so the
    LRU must survive concurrent result/selectivity traffic: no lost
    updates in the hit/miss tallies (they are guarded by the same lock as
    the OrderedDict), no over-capacity growth, and every answer identical
    to the uncached computation.
    """
    import threading

    texts = ["//a", "//p", "//k", "//n", "//b", "//a (//p)"]
    queries = [parse_twig(t) for t in texts]
    expected = {
        str(q): estimate_selectivity(eval_query(sketch, q)) for q in queries
    }
    cache = QueryCache(sketch, maxsize=3)  # smaller than the query set: evicts
    n_threads, n_rounds = 8, 40
    errors = []
    barrier = threading.Barrier(n_threads)

    def worker(offset: int) -> None:
        barrier.wait()
        try:
            for i in range(n_rounds):
                query = queries[(offset + i) % len(queries)]
                if cache.selectivity(query) != expected[str(query)]:
                    errors.append(str(query))
                cache.result(query)
        except Exception as exc:  # pragma: no cover - failure reporting
            errors.append(repr(exc))

    threads = [threading.Thread(target=worker, args=(k,)) for k in range(n_threads)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join(timeout=30)
    assert not errors
    total_lookups = n_threads * n_rounds * 2  # selectivity + result per round
    assert cache.hits + cache.misses == total_lookups
    assert len(cache) <= 3
    info = cache.info()
    assert info["hits"] == cache.hits and info["misses"] == cache.misses


def test_peek_selectivity_is_cache_only(sketch):
    """peek never evaluates: the serving daemon's degraded path relies on
    a miss costing nothing (no eval_query, no miss-tally churn)."""
    cache = QueryCache(sketch)
    q = parse_twig("//a (//p)")
    assert cache.peek_selectivity(q) is None
    assert cache.misses == 0 and len(cache) == 0  # nothing was evaluated
    direct = estimate_selectivity(eval_query(sketch, q))
    cache.result(q)  # prime the entry (selectivity not yet memoized)
    assert cache.peek_selectivity(q) == direct
    assert cache.hits == 1
    assert cache.peek_selectivity(q) == direct  # memoized now
    assert cache.misses == 1  # only the priming result() missed


def test_peek_and_info_never_block_on_a_busy_lock(sketch):
    """While a worker holds the single-flight lock (mid eval_query), the
    control plane must still get answers: info() falls back to a
    lock-free snapshot and peek_selectivity declines with None."""
    import threading

    cache = QueryCache(sketch)
    q = parse_twig("//a")
    value = cache.selectivity(q)
    acquired, release = threading.Event(), threading.Event()

    def hold():
        with cache._lock:
            acquired.set()
            release.wait(10)

    holder = threading.Thread(target=hold)
    holder.start()
    assert acquired.wait(10)
    try:
        assert cache.peek_selectivity(q) is None  # contended: decline
        info = cache.info()  # must return promptly, not deadlock
        assert info["size"] == 1 and info["misses"] == 1
    finally:
        release.set()
        holder.join(10)
    assert cache.peek_selectivity(q) == value  # uncontended again


def test_invalidate_drops_everything_and_bumps_epoch(sketch):
    """The live-maintenance barrier: invalidate() must leave no answer --
    cached or sidecar-seeded -- computed against the old synopsis, and
    must rebind the replacement sketch under the same lock."""
    cache = QueryCache(sketch)
    q = parse_twig("//a (//p)")
    value = cache.selectivity(q)
    cache.seed_selectivities({"//zz": 123.0})
    assert cache.epoch == 0 and len(cache) == 1

    replacement = build_treesketch(build_stable(XMLTree.from_nested(
        ("r", [("a", [("p", ["k"])])]))), 100 * 1024)
    with obs.observed() as registry:
        assert cache.invalidate(sketch=replacement) == 1
    assert cache.epoch == 1 and cache.invalidations == 1
    assert len(cache) == 0
    assert cache.sketch is replacement
    assert cache.peek_selectivity(parse_twig("//zz")) is None  # seeded gone
    fresh = cache.selectivity(q)  # re-evaluated against the new sketch
    assert fresh != value
    assert fresh == estimate_selectivity(eval_query(replacement, q))
    assert cache.invalidate() == 2  # sketch=None keeps the binding
    assert cache.sketch is replacement
    flat = obs.report.flatten_snapshot(registry.snapshot())
    assert flat["counters.eval.cache.invalidations"] == 1
    assert cache.info()["epoch"] == 2


def test_runner_with_cache_matches_uncached(sketch):
    from repro.workload.workload import make_workload

    spec = (
        "r",
        [
            ("a", [("p", ["k", "k"]), "n"]),
            ("a", [("p", ["k"]), "n", "n"]),
            ("a", [("b", ["t"])]),
        ],
    )
    tree = XMLTree.from_nested(spec)
    stable = build_stable(tree)
    workload = make_workload(tree, num_queries=6, seed=1, stable=stable)
    plain = run_selectivity(sketch, workload)
    cache = QueryCache(sketch)
    # Two passes through the same workload: second is all cache hits.
    cached_first = run_selectivity(sketch, workload, cache=cache)
    cached_again = run_selectivity(sketch, workload, cache=cache)
    assert cached_first.per_query == plain.per_query
    assert cached_again.per_query == plain.per_query
    assert cache.hits >= len(workload)
