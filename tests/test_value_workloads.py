"""Tests for value-predicate workload generation."""

import random

import pytest

from repro.core.stable import build_stable
from repro.engine.exact import ExactEvaluator
from repro.query.generator import WorkloadGenerator, WorkloadOptions
from repro.query.path import ValueTest
from repro.values import annotate_stable_values
from repro.xmltree.parser import parse_xml

LIBRARY = """
<lib>
 <shelf><book><genre>scifi</genre><copy/></book>
        <book><genre>crime</genre><copy/><copy/></book></shelf>
 <shelf><book><genre>scifi</genre></book>
        <book><genre>drama</genre><copy/></book></shelf>
</lib>
"""


def value_tests_in(query):
    return [
        pred
        for node in query.nodes
        if node.path is not None
        for step in node.path.steps
        for pred in step.predicates
        if isinstance(pred, ValueTest)
    ]


@pytest.fixture
def annotated():
    tree = parse_xml(LIBRARY, keep_values=True)
    stable = build_stable(tree, keep_extents=True)
    annotate_stable_values(stable, tree)
    return tree, stable


class TestValueWorkloads:
    def test_value_tests_generated(self, annotated):
        _tree, stable = annotated
        generator = WorkloadGenerator(
            stable,
            WorkloadOptions(
                num_queries=40, seed=1, predicate_prob=1.0, value_predicate_prob=1.0
            ),
        )
        queries = generator.generate()
        with_tests = [q for q in queries if value_tests_in(q)]
        assert with_tests

    def test_at_most_one_value_test_per_query(self, annotated):
        _tree, stable = annotated
        generator = WorkloadGenerator(
            stable,
            WorkloadOptions(
                num_queries=60, seed=2, predicate_prob=1.0, value_predicate_prob=1.0,
                branch_prob=1.0, max_branches=3,
            ),
        )
        for query in generator.generate():
            assert len(value_tests_in(query)) <= 1

    def test_values_come_from_heavy_hitters(self, annotated):
        _tree, stable = annotated
        known = set()
        for summary in stable.values.values():
            known.update(summary.top)
        generator = WorkloadGenerator(
            stable,
            WorkloadOptions(
                num_queries=40, seed=3, predicate_prob=1.0, value_predicate_prob=1.0
            ),
        )
        for query in generator.generate():
            for test in value_tests_in(query):
                assert test.value in known

    def test_positivity_preserved(self, annotated):
        tree, stable = annotated
        evaluator = ExactEvaluator(tree)
        generator = WorkloadGenerator(
            stable,
            WorkloadOptions(
                num_queries=50, seed=4, predicate_prob=0.8, value_predicate_prob=0.8
            ),
        )
        for query in generator.generate():
            assert evaluator.selectivity(query) > 0, str(query)

    def test_disabled_by_default(self, annotated):
        _tree, stable = annotated
        generator = WorkloadGenerator(
            stable, WorkloadOptions(num_queries=30, seed=5, predicate_prob=1.0)
        )
        for query in generator.generate():
            assert not value_tests_in(query)

    def test_no_value_summaries_no_tests(self):
        tree = parse_xml(LIBRARY, keep_values=True)
        stable = build_stable(tree)  # not annotated
        generator = WorkloadGenerator(
            stable,
            WorkloadOptions(
                num_queries=20, seed=6, predicate_prob=1.0, value_predicate_prob=1.0
            ),
        )
        for query in generator.generate():
            assert not value_tests_in(query)
