"""Equivalence proofs for the optimized TSBUILD paths (docs/PERFORMANCE.md).

The perf overhaul (versioned score memoization, incremental CREATEPOOL
state, parallel candidate scoring, the single-pass scorer) must be
*output-preserving*: every optimized builder configuration has to emit a
sketch identical to the seed implementation -- same nodes, counts, edge
statistics, and total squared error.  These tests are the contract that
lets future perf work touch the hot paths safely.
"""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro import obs
from repro.core.build import TSBuildOptions, TreeSketchBuilder
from repro.core.kernel import KernelPartition
from repro.core.npsupport import have_numpy
from repro.core.partition import MergePartition
from repro.core.pool import PoolState, create_pool, create_pool_reference
from repro.core.stable import StableSummary, build_stable
from repro.datagen.datasets import TX_DATASETS
from tests.conftest import make_random_tree


def _sketch_state(sketch):
    """Everything that defines a sketch, in comparable form."""
    return (
        dict(sketch.label),
        dict(sketch.count),
        dict(sketch.stats),
        {k: dict(v) for k, v in sketch.out.items()},
        sketch.root_id,
    )


def _assert_same_sketch(a, b):
    assert _sketch_state(a) == _sketch_state(b)


OPTIMIZED_VARIANTS = {
    "default": TSBuildOptions(),
    "memo_only": TSBuildOptions(incremental_pool=False),
    "incremental_only": TSBuildOptions(memoize=False),
    "plain_scorer": TSBuildOptions(memoize=False, incremental_pool=False),
    "workers": TSBuildOptions(workers=2),
    "kernel": TSBuildOptions(kernel="arrays"),
    "kernel_plain": TSBuildOptions(
        kernel="arrays", memoize=False, incremental_pool=False
    ),
    "kernel_numpy": TSBuildOptions(kernel="numpy"),
}


@pytest.mark.parametrize("variant", sorted(OPTIMIZED_VARIANTS))
@pytest.mark.parametrize("seed,budget_kb", [(7, 6), (21, 3), (99, 10)])
def test_optimized_builders_match_reference(variant, seed, budget_kb):
    if variant == "kernel_numpy" and not have_numpy():
        pytest.skip("numpy unavailable")
    rng = random.Random(seed)
    stable = build_stable(make_random_tree(rng, 600))
    budget = budget_kb * 1024
    ref = TreeSketchBuilder(stable, TSBuildOptions(reference=True)).compress_to(budget)
    opt = TreeSketchBuilder(stable, OPTIMIZED_VARIANTS[variant]).compress_to(budget)
    _assert_same_sketch(ref, opt)


@pytest.mark.parametrize("name", sorted(TX_DATASETS))
def test_optimized_builders_match_reference_on_datasets(name):
    stable = build_stable(TX_DATASETS[name]())
    for budget in (12 * 1024, 5 * 1024):
        ref = TreeSketchBuilder(
            stable, TSBuildOptions(reference=True)
        ).compress_to(budget)
        opt = TreeSketchBuilder(stable, TSBuildOptions()).compress_to(budget)
        par = TreeSketchBuilder(stable, TSBuildOptions(workers=2)).compress_to(budget)
        _assert_same_sketch(ref, opt)
        _assert_same_sketch(ref, par)


def test_budget_sweep_matches_reference():
    # Reused builders (decreasing budgets) exercise pool-state persistence
    # across compress_to calls, not just within one.
    rng = random.Random(5)
    stable = build_stable(make_random_tree(rng, 500))
    ref_builder = TreeSketchBuilder(stable, TSBuildOptions(reference=True))
    opt_builder = TreeSketchBuilder(stable, TSBuildOptions())
    for budget_kb in (10, 6, 3):
        ref = ref_builder.compress_to(budget_kb * 1024)
        opt = opt_builder.compress_to(budget_kb * 1024)
        _assert_same_sketch(ref, opt)


@settings(max_examples=25, deadline=None)
@given(seed=st.integers(0, 10_000), size=st.integers(20, 200))
def test_fast_scorer_is_bitwise_identical(seed, size):
    """_eval_raw must equal the seed scorer *bitwise* on every pair.

    Bit-equality (not approximate equality) is what makes the memoized
    and parallel builders emit identical sketches: any rounding drift
    could flip a heap comparison and change the merge sequence.
    """
    rng = random.Random(seed)
    part = MergePartition(build_stable(make_random_tree(rng, size)))
    pool = create_pool_reference(part, heap_upper=50, pair_window=None)
    # Walk a few merges so scoring also covers post-merge states.
    for _ in range(3):
        if not pool:
            break
        _ratio, _errd, _sized, u, v = pool[0]
        for a, b in [(u, v), (v, u)]:
            ref = part.evaluate_merge_reference(a, b)
            errd, sized = part._eval_raw(a, b)
            assert (errd, sized) == (ref.errd, ref.sized)
        part.apply_merge(u, v)
        pool = create_pool_reference(part, heap_upper=50, pair_window=None)


@settings(max_examples=15, deadline=None)
@given(seed=st.integers(0, 10_000))
def test_create_pool_variants_agree(seed):
    """All create_pool configurations return the same candidate set."""
    rng = random.Random(seed)
    part = MergePartition(build_stable(make_random_tree(rng, 300)))
    for pair_window in (None, 8):
        ref = create_pool_reference(part, 60, pair_window)
        base = create_pool(part, 60, pair_window)
        state = PoolState(part)
        incr = create_pool(part, 60, pair_window, state=state)
        part.enable_memo()
        memo1 = create_pool(part, 60, pair_window, state=state, memoize=True)
        memo2 = create_pool(part, 60, pair_window, state=state, memoize=True)
        assert part.memo_hits > 0  # second pass served from the memo
        for other in (base, incr, memo1, memo2):
            assert sorted(other) == sorted(ref)
        part.merge_memo = None
        part.memo_hits = part.memo_misses = 0


def test_parallel_pool_matches_serial():
    rng = random.Random(11)
    part = MergePartition(build_stable(make_random_tree(rng, 400)))
    serial = create_pool(part, 80, 16)
    parallel = create_pool(part, 80, 16, workers=2)
    assert sorted(serial) == sorted(parallel)


def test_pool_state_tracks_merges():
    """Incrementally maintained grouping == from-scratch regrouping."""
    rng = random.Random(3)
    part = MergePartition(build_stable(make_random_tree(rng, 400)))
    state = PoolState(part)
    for _ in range(25):
        pool = create_pool(part, 10, state=state)
        if not pool:
            break
        _ratio, _errd, _sized, u, v = min(pool)
        label_u, label_v = part.cluster_label[u], part.cluster_label[v]
        depth_u, depth_v = part.cluster_depth[u], part.cluster_depth[v]
        part.apply_merge(u, v)
        state.on_merge(label_u, label_v, u, v, depth_u, depth_v,
                       part.cluster_depth[u])
        fresh = state.rebuilt_groups(part)
        live = {
            label: {d: set(b) for d, b in buckets.items() if b}
            for label, buckets in state.groups.items()
        }
        live = {label: buckets for label, buckets in live.items() if buckets}
        assert live == fresh


@settings(max_examples=20, deadline=None)
@given(seed=st.integers(0, 10_000), size=st.integers(20, 150))
def test_three_scorers_bitwise_identical(seed, size):
    """Reference, dict fast path, and array kernel agree on every pair.

    The array kernel is only admissible if its ``(errd, sized)`` equals
    the seed scorer's *bitwise* -- any rounding drift could flip a heap
    comparison and change the merge sequence.  Both orientations of every
    candidate pair are cross-checked on evolving (post-merge) states.
    """
    rng = random.Random(seed)
    stable = build_stable(make_random_tree(rng, size))
    dicts = MergePartition(stable)
    kern = KernelPartition(stable)
    pool = create_pool_reference(dicts, heap_upper=50, pair_window=None)
    for _ in range(3):
        if not pool:
            break
        _ratio, _errd, _sized, u, v = pool[0]
        for a, b in [(u, v), (v, u)]:
            ref = dicts.evaluate_merge_reference(a, b)
            d_score = dicts._eval_raw(a, b)
            k_score = kern._eval_raw(a, b)
            assert d_score == (ref.errd, ref.sized) == k_score
        dicts.apply_merge(u, v)
        kern.apply_merge(u, v)
        pool = create_pool_reference(dicts, heap_upper=50, pair_window=None)


@pytest.mark.parametrize("no_numpy", [False, True], ids=["numpy", "no_numpy"])
def test_kernel_full_build_matches_reference(no_numpy, monkeypatch):
    """End-to-end: the arrays kernel emits the seed sketch, numpy or not.

    The kernel's hot path is pure Python by design (numpy only backs
    diagnostics and audits), so REPRO_NO_NUMPY must not change a single
    bit of the output.
    """
    if no_numpy:
        monkeypatch.setenv("REPRO_NO_NUMPY", "1")
    rng = random.Random(42)
    stable = build_stable(make_random_tree(rng, 600))
    for budget_kb in (6, 3):
        ref = TreeSketchBuilder(
            stable, TSBuildOptions(reference=True)
        ).compress_to(budget_kb * 1024)
        arr = TreeSketchBuilder(
            stable, TSBuildOptions(kernel="arrays")
        ).compress_to(budget_kb * 1024)
        _assert_same_sketch(ref, arr)


def test_kernel_and_dicts_do_identical_work():
    """Bit-identical scoring implies identical heap/memo traffic."""
    rng = random.Random(8)
    stable = build_stable(make_random_tree(rng, 500))

    def counters(kernel):
        with obs.observed() as registry:
            TreeSketchBuilder(
                stable, TSBuildOptions(kernel=kernel)
            ).compress_to(1024)
        flat = obs.report.flatten_snapshot(registry.snapshot())
        return {
            k: v for k, v in flat.items()
            if k.startswith("counters.tsbuild.")
            and "kernel" not in k and "skey" not in k
        }

    arrays = counters("arrays")
    dicts = counters("dicts")
    assert arrays == dicts
    assert arrays["counters.tsbuild.merges_applied"] > 0


def test_kernel_selection_and_sparse_fallback():
    """kernel= option routing, including auto's dense-id fallback."""
    sparse = StableSummary()
    sparse.add_node(0, "r", 1)
    sparse.add_node(5, "a", 3)  # gap: ids are not dense
    sparse.add_edge(0, 5, 3)
    sparse.depth = {0: 1, 5: 0}
    sparse.root_id = 0

    with pytest.raises(ValueError):
        KernelPartition(sparse)
    with pytest.raises(ValueError):
        TreeSketchBuilder(sparse, TSBuildOptions(kernel="arrays"))
    auto = TreeSketchBuilder(sparse, TSBuildOptions(kernel="auto"))
    assert isinstance(auto.partition, MergePartition)
    with pytest.raises(ValueError):
        TreeSketchBuilder(sparse, TSBuildOptions(kernel="simd"))

    dense = build_stable(make_random_tree(random.Random(1), 80))
    assert isinstance(
        TreeSketchBuilder(dense, TSBuildOptions(kernel="auto")).partition,
        KernelPartition,
    )
    assert isinstance(
        TreeSketchBuilder(dense, TSBuildOptions(reference=True)).partition,
        MergePartition,
    )


def test_memo_invalidated_by_version_bumps():
    """A merge must invalidate memo entries touching its neighbourhood."""
    rng = random.Random(17)
    part = MergePartition(build_stable(make_random_tree(rng, 300)))
    part.enable_memo()
    pool = create_pool_reference(part, 200, None)
    assert pool
    scored = {}
    for _ratio, _errd, _sized, u, v in pool:
        scored[(u, v)] = part.scored_merge(u, v)
    _ratio, _errd, _sized, mu, mv = min(pool)
    part.apply_merge(mu, mv)
    bumped = {mu} | part.parents_of(mu) | set(part.out_stats[mu])
    for (u, v), before in scored.items():
        if u == mv or v == mv or mu in (u, v):
            continue
        if not part.alive(u) or not part.alive(v):
            continue
        after = part.scored_merge(u, v)
        fresh = part._eval_raw(u, v)
        assert after[1] == fresh[0] and after[2] == fresh[1]
        if u not in bumped and v not in bumped:
            # Untouched neighbourhood: the memo may (and does) serve the
            # old entry, which must still equal a fresh computation.
            assert after == before
