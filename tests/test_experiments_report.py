"""Unit tests for the report generator's formatting helpers."""

from repro.experiments.report import _markdown_table


class TestMarkdownTable:
    def test_header_and_separator(self):
        lines = _markdown_table(["a", "b"], [[1, 2.5]])
        assert lines[0] == "| a | b |"
        assert lines[1] == "|---|---|"

    def test_number_formatting(self):
        lines = _markdown_table(["x"], [[1234567], [3.14159]])
        assert "| 1,234,567 |" in lines
        assert "| 3.14 |" in lines

    def test_strings_passthrough(self):
        lines = _markdown_table(["x"], [["hello"]])
        assert "| hello |" in lines

    def test_trailing_blank_line(self):
        assert _markdown_table(["x"], [])[-1] == ""
