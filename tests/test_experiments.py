"""Smoke tests for the experiment harness (fast, tiny configurations)."""

import os

import pytest

from repro.experiments.ablations import (
    build_treesketch_topdown,
    pool_window_ablation,
    spearman_rank_correlation,
    sq_error_vs_esd,
)
from repro.experiments.harness import Bundle, budgets_kb, load_bundle, workload_size
from repro.experiments.reporting import format_table
from repro.core.stable import build_stable
from repro.datagen.datasets import imdb_like
from repro.workload.workload import make_workload


@pytest.fixture(scope="module")
def small_bundle():
    tree = imdb_like(scale=0.5, seed=8)
    stable = build_stable(tree)
    wl = make_workload(tree, num_queries=12, seed=1, stable=stable)
    return Bundle(name="tiny", tree=tree, stable=stable, workload=wl)


class TestHarness:
    def test_env_defaults(self, monkeypatch):
        monkeypatch.delenv("REPRO_WORKLOAD_SIZE", raising=False)
        monkeypatch.delenv("REPRO_BUDGETS_KB", raising=False)
        assert workload_size() == 120
        assert budgets_kb() == [10, 20, 30, 40, 50]

    def test_env_overrides(self, monkeypatch):
        monkeypatch.setenv("REPRO_WORKLOAD_SIZE", "7")
        monkeypatch.setenv("REPRO_BUDGETS_KB", "5,15")
        assert workload_size() == 7
        assert budgets_kb() == [5, 15]

    def test_bundle_treesketch_sweep(self, small_bundle):
        budgets = [4096, 2048]
        sweep = small_bundle.treesketch_sweep(budgets)
        assert set(sweep) == set(budgets)
        for budget, sketch in sweep.items():
            floor = len(set(sketch.label.values()))
            assert sketch.size_bytes() <= budget or sketch.num_nodes == floor

    def test_bundle_caches_sketches(self, small_bundle):
        a = small_bundle.treesketch(2048)
        b = small_bundle.treesketch(2048)
        assert a is b

    def test_load_bundle_cached(self):
        a = load_bundle("IMDB-TX", num_queries=5)
        b = load_bundle("IMDB-TX", num_queries=5)
        assert a is b


class TestReporting:
    def test_format_table(self):
        text = format_table("Title", ["a", "bb"], [[1, 2.5], [30, 4000.0]])
        assert "Title" in text
        assert "bb" in text
        assert "4,000" in text

    def test_format_empty(self):
        text = format_table("T", ["x"], [])
        assert "T" in text


class TestAblations:
    def test_topdown_builder(self, small_bundle):
        sketch = build_treesketch_topdown(small_bundle.stable, 3000)
        sketch.validate()
        assert sketch.num_nodes >= len(set(sketch.label.values()))

    def test_pool_window_rows(self, small_bundle):
        rows = pool_window_ablation(small_bundle, budget_kb=2, windows=(4, None))
        assert len(rows) == 2
        assert rows[0][0] == 4
        assert rows[1][0] == "exhaustive"

    def test_sq_error_vs_esd_rows(self, small_bundle):
        rows = sq_error_vs_esd(small_bundle, budgets_kb=[4, 2], esd_queries=4)
        assert len(rows) == 2

    def test_spearman(self):
        assert spearman_rank_correlation([1, 2, 3], [10, 20, 30]) == pytest.approx(1.0)
        assert spearman_rank_correlation([1, 2, 3], [30, 20, 10]) == pytest.approx(-1.0)
