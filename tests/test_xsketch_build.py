"""Unit tests for workload-driven twig-XSketch construction."""

import pytest

from repro.core.stable import build_stable
from repro.engine.exact import ExactEvaluator
from repro.query.generator import WorkloadOptions, generate_workload
from repro.xsketch.atoms import build_atom_graph
from repro.xsketch.build import XSketchBuildOptions, _Partition, _proposed_splits, build_twig_xsketch
from repro.xsketch.synopsis import xsketch_selectivity
from tests.conftest import make_random_tree


@pytest.fixture(scope="module")
def setup():
    import random

    tree = make_random_tree(random.Random(5), 600)
    stable = build_stable(tree)
    workload = generate_workload(stable, WorkloadOptions(num_queries=25, seed=3))
    ev = ExactEvaluator(tree)
    truths = [ev.selectivity(q) for q in workload]
    return tree, stable, workload, truths


class TestPartition:
    def test_initial_label_split(self, setup):
        _tree, stable, _wl, _truths = setup
        atoms = build_atom_graph(stable)
        part = _Partition(atoms, bucket_budget=16)
        labels = {atoms.label[m[0]] for m in part.members.values()}
        assert len(part.members) == len(labels)

    def test_split_and_undo_restore_state(self, setup):
        _tree, stable, _wl, _truths = setup
        atoms = build_atom_graph(stable)
        part = _Partition(atoms, bucket_budget=16)
        target = max(part.members, key=lambda c: len(part.members[c]))
        if len(part.members[target]) < 2:
            pytest.skip("no splittable cluster")
        before_assign = list(part.assign)
        before_members = {c: list(m) for c, m in part.members.items()}
        members = part.members[target]
        groups = [members[: len(members) // 2], members[len(members) // 2:]]
        token = part.split(target, groups)
        assert len(part.members) == len(before_members) + 1
        part.undo(token)
        assert part.assign == before_assign
        assert {c: sorted(m) for c, m in part.members.items()} == {
            c: sorted(m) for c, m in before_members.items()
        }

    def test_split_invalidates_parent_histograms(self, setup):
        _tree, stable, _wl, _truths = setup
        atoms = build_atom_graph(stable)
        part = _Partition(atoms, bucket_budget=16)
        # Prime all caches.
        for cid in list(part.members):
            part.histogram(cid)
        target = max(part.members, key=lambda c: len(part.members[c]))
        members = part.members[target]
        if len(members) < 2:
            pytest.skip("no splittable cluster")
        part.split(target, [members[:1], members[1:]])
        # Fresh synopsis must be consistent (means derive from new dims).
        xs = part.synopsis()
        assert sum(xs.count.values()) == sum(atoms.size)

    def test_cluster_spread_nonnegative(self, setup):
        _tree, stable, _wl, _truths = setup
        atoms = build_atom_graph(stable)
        part = _Partition(atoms, bucket_budget=16)
        for cid in part.members:
            assert part.cluster_spread(cid) >= 0.0


class TestProposedSplits:
    def test_no_splits_for_singleton(self, setup):
        _tree, stable, _wl, _truths = setup
        atoms = build_atom_graph(stable)
        part = _Partition(atoms, bucket_budget=16)
        singletons = [c for c, m in part.members.items() if len(m) == 1]
        for cid in singletons:
            assert _proposed_splits(part, cid) == []

    def test_groups_partition_members(self, setup):
        _tree, stable, _wl, _truths = setup
        atoms = build_atom_graph(stable)
        part = _Partition(atoms, bucket_budget=16)
        for cid, members in part.members.items():
            for groups in _proposed_splits(part, cid):
                flat = sorted(a for g in groups for a in g)
                assert flat == sorted(members)
                assert all(groups)


class TestBuild:
    def test_budget_snapshots(self, setup):
        tree, stable, workload, truths = setup
        budgets = [800, 1600]
        result = build_twig_xsketch(
            stable, max(budgets), workload, truths,
            XSketchBuildOptions(sample_size=6, candidate_clusters=3),
            snapshot_budgets=budgets,
        )
        assert set(result) == set(budgets)
        for budget, xs in result.items():
            assert xs.size_bytes() <= budget or xs.num_nodes == len(set(xs.label.values()))

    def test_larger_budget_not_worse_on_sample(self, setup):
        tree, stable, workload, truths = setup
        budgets = [600, 2400]
        result = build_twig_xsketch(
            stable, max(budgets), workload, truths,
            XSketchBuildOptions(sample_size=8, candidate_clusters=3),
            snapshot_budgets=budgets,
        )
        from repro.metrics.error import average_error

        errs = {}
        for budget, xs in result.items():
            pairs = [(float(t), xsketch_selectivity(xs, q)) for q, t in zip(workload, truths)]
            errs[budget] = average_error(pairs)
        # Refinement is greedy: allow slack, but the trend must hold.
        assert errs[2400] <= errs[600] * 1.5 + 0.05

    def test_deterministic(self, setup):
        tree, stable, workload, truths = setup
        opts = XSketchBuildOptions(sample_size=6, candidate_clusters=3, seed=1)
        a = build_twig_xsketch(stable, 1000, workload, truths, opts)[1000]
        b = build_twig_xsketch(stable, 1000, workload, truths, opts)[1000]
        assert a.size_bytes() == b.size_bytes()
        assert sorted(a.count.values()) == sorted(b.count.values())
