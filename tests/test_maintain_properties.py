"""Property-based tests for incremental maintenance (hypothesis)."""

from __future__ import annotations

import random

from hypothesis import given, settings, strategies as st

from repro.core.maintain import StableMaintainer
from repro.core.stable import build_stable
from repro.xmltree.node import XMLNode
from repro.xmltree.tree import XMLTree


def canonical(summary):
    order = summary.topological_order()
    form = {}
    for nid in reversed(order):
        children = tuple(sorted(
            (form[c], int(k)) for c, k in summary.out.get(nid, {}).items()
        ))
        form[nid] = (summary.label[nid], children)
    return sorted((form[nid], summary.count[nid]) for nid in summary.label)


@st.composite
def edit_scripts(draw):
    """A random starting tree plus a random edit script."""
    seed = draw(st.integers(min_value=0, max_value=2**32 - 1))
    size = draw(st.integers(min_value=1, max_value=40))
    num_edits = draw(st.integers(min_value=1, max_value=25))
    return seed, size, num_edits


@given(edit_scripts())
@settings(max_examples=30, deadline=None)
def test_maintenance_equals_rebuild(script):
    seed, size, num_edits = script
    rng = random.Random(seed)
    root = XMLNode("r")
    nodes = [root]
    for _ in range(size):
        parent = rng.choice(nodes)
        nodes.append(parent.new_child(rng.choice("abc")))
    tree = XMLTree(root)
    maintainer = StableMaintainer(tree)

    for _ in range(num_edits):
        current = list(tree.root.iter_preorder())
        if rng.random() < 0.6 or len(current) < 3:
            parent = rng.choice(current)
            depth = rng.randint(0, 2)
            maintainer.insert_subtree(parent, _spec(rng, depth))
        else:
            maintainer.delete_subtree(rng.choice(current[1:]))

    fresh = build_stable(XMLTree(tree.root))
    assert canonical(maintainer.summary()) == canonical(fresh)
    # Counts cover the whole document.
    assert sum(maintainer.summary().count.values()) == sum(
        1 for _ in tree.root.iter_preorder()
    )


def _spec(rng, depth):
    label = rng.choice("abc")
    if depth == 0:
        return label
    return (label, [_spec(rng, depth - 1) for _ in range(rng.randint(0, 2))])
