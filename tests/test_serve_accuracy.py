"""The accuracy observability plane, end to end over real sockets.

Covers the serving-tier half of the accuracy-plane PR: the ``explain``
op returns an additive error-provenance payload whose contribution terms
fold (left-associated) bitwise to the plain estimate; an error budget
(``ServeConfig.error_budget``) routes shadow-scored samples into the
:class:`repro.obs.accuracy.AccuracyLedger` and surfaces budget states
through ``stats``/``/statusz``/``/metrics``; queued shadow samples that
predate a mutation epoch are dropped as stale (never scored against the
post-mutation synopsis); and with ``adaptive_maintenance`` the measured
burn rate tightens a live sketch's ``debt_threshold`` through its
:class:`repro.core.live.DebtController`.
"""

import threading
import time

import pytest

from repro import obs
from repro.core.build import build_treesketch
from repro.core.live import SketchMaintainer
from repro.core.stable import build_stable
from repro.engine.exact import ExactEvaluator
from repro.obs.accuracy import STATE_BURNING, STATE_OK
from repro.serve import (
    ServeClient,
    ServeConfig,
    ServerError,
    SketchRegistry,
    start_server_thread,
)
from repro.serve.registry import LiveSketch
from repro.xmltree.tree import XMLTree

pytestmark = pytest.mark.obs

LIVE_BUDGET = 64 * 1024


def _tree() -> XMLTree:
    return XMLTree.from_nested(
        (
            "r",
            [
                ("a", [("p", ["k", "k"]), "n"]),
                ("a", [("p", ["k"]), "n", "n"]),
                ("a", [("b", ["t"])]),
            ],
        )
    )


def _registry() -> SketchRegistry:
    registry = SketchRegistry()
    registry.register("main", build_treesketch(build_stable(_tree()),
                                               100 * 1024))
    return registry


def _wait_until(predicate, timeout=10.0, message="condition"):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return
        time.sleep(0.01)
    raise AssertionError(f"timed out waiting for {message}")


def _fold(terms):
    total = 0.0
    for _, term in terms:
        total += term
    return total


# --------------------------------------------------------------- explain op


class TestExplainOp:

    def test_explain_matches_estimate_bitwise(self):
        handle = start_server_thread(_registry(), ServeConfig(port=0))
        try:
            with ServeClient("127.0.0.1", handle.port) as client:
                for twig in ["//a", "//a (//p)", "//a[//b]", "//a (//p (//k))"]:
                    estimate = client.estimate(twig)
                    payload = client.explain(twig)
                    assert payload["sketch"] == "main"
                    assert payload["estimate"] == estimate
                    terms = [(c["cluster"], c["term"])
                             for c in payload["contributions"]]
                    assert _fold(terms) == estimate
                    assert payload["touched"] >= 1
                    assert payload["epoch"] == 0
                    assert isinstance(payload["exact_split"], bool)
                    # Frozen sketch, no budget: no debt, no budget state.
                    for report in payload["clusters"]:
                        assert report["debt"] == 0.0
                    assert "budget_state" not in payload
        finally:
            handle.stop()

    def test_top_k_truncates_cluster_reports(self):
        handle = start_server_thread(_registry(), ServeConfig(port=0))
        try:
            with ServeClient("127.0.0.1", handle.port) as client:
                full = client.explain("//a (//p (//k))")
                one = client.explain("//a (//p (//k))", top_k=1)
            assert len(full["clusters"]) > 1
            assert len(one["clusters"]) == 1
            # Truncation keeps the top-ranked report.
            assert one["clusters"][0] == full["clusters"][0]
        finally:
            handle.stop()

    def test_bad_top_k_is_a_bad_request(self):
        handle = start_server_thread(_registry(), ServeConfig(port=0))
        try:
            with ServeClient("127.0.0.1", handle.port) as client:
                for bad in [0, -3, "five", True]:
                    with pytest.raises(ServerError) as excinfo:
                        client.call("explain", query="//a", top_k=bad)
                    assert excinfo.value.code == "bad_request"
        finally:
            handle.stop()

    def test_unknown_sketch(self):
        handle = start_server_thread(_registry(), ServeConfig(port=0))
        try:
            with ServeClient("127.0.0.1", handle.port) as client:
                with pytest.raises(ServerError) as excinfo:
                    client.explain("//a", sketch="nope")
                assert excinfo.value.code == "unknown_sketch"
        finally:
            handle.stop()


# ------------------------------------------------------------ error budgets


class TestErrorBudget:

    def test_budget_requires_nothing_extra_when_unset(self):
        handle = start_server_thread(_registry(), ServeConfig(port=0))
        try:
            assert handle.server.ledger is None
            assert handle.server.statusz()["budgets"] is None
        finally:
            handle.stop()

    def test_burning_budget_surfaces_everywhere(self):
        """A reference that contradicts the sketch by 100x drives the
        ledger to ``burning``; the state shows up in stats, /statusz,
        the explain payload, and the one-hot /metrics gauges."""
        with obs.observed() as registry:
            handle = start_server_thread(_registry(), ServeConfig(
                port=0,
                shadow_fraction=1.0,
                shadow_reference=lambda q: 1000.0,
                error_budget=0.25,
                error_budget_window=8,
            ))
            try:
                server = handle.server
                with ServeClient("127.0.0.1", handle.port) as client:
                    for _ in range(3):
                        client.estimate("//a")
                    _wait_until(
                        lambda: server.ledger.state("main") == STATE_BURNING,
                        message="budget to burn")
                    stats = client.stats()
                    payload = client.explain("//a")
                status = server.statusz()
            finally:
                handle.stop()
            snapshot = registry.snapshot()
        assert stats["budgets"]["sketches"]["main"]["state"] == STATE_BURNING
        assert status["budgets"]["target_rel_error"] == 0.25
        assert status["budgets"]["sketches"]["main"]["burn_rate"] > 1.0
        assert payload["budget_state"] == STATE_BURNING
        assert payload["burn_rate"] > 1.0
        assert snapshot["gauges"]["serve.accuracy.budget_state.burning"] == 1
        assert snapshot["gauges"]["serve.accuracy.budget_state.ok"] == 0
        assert snapshot["counters"]["serve.accuracy.budget_transitions"] >= 1
        assert snapshot["counters"]["serve.explains"] == 1

    def test_accurate_serving_stays_ok(self):
        evaluator = ExactEvaluator(_tree())
        handle = start_server_thread(_registry(), ServeConfig(
            port=0,
            shadow_fraction=1.0,
            shadow_reference=lambda q: float(evaluator.selectivity(q)),
            error_budget=0.25,
        ))
        try:
            server = handle.server
            with ServeClient("127.0.0.1", handle.port) as client:
                for twig in ["//a", "//a (//p)", "//a[//b]"]:
                    client.estimate(twig)
                _wait_until(lambda: server.shadow.evaluated_total == 3,
                            message="shadow evaluations")
            assert server.ledger.state("main") == STATE_OK
            assert server.ledger.burn_rate("main") == 0.0
        finally:
            handle.stop()


# ---------------------------------------------------- stale shadow samples


class TestStaleSamples:

    def test_samples_queued_before_a_mutation_are_dropped(self):
        """Satellite 1: a shadow sample enqueued at epoch 0 must not be
        scored after an ``update`` bumps the live sketch to epoch 1.
        ``shadow_eval_delay_s`` holds the drain thread long enough for
        the mutation to land first, making the race deterministic."""
        registry = SketchRegistry()
        registry.register_live("live", SketchMaintainer(_tree(), LIVE_BUDGET))
        with obs.observed() as metrics:
            handle = start_server_thread(registry, ServeConfig(
                port=0,
                shadow_fraction=1.0,
                shadow_reference=lambda q: 1.0,
                shadow_eval_delay_s=0.4,
                error_budget=0.25,
            ))
            try:
                server = handle.server
                with ServeClient("127.0.0.1", handle.port) as client:
                    client.estimate("//a", sketch="live")  # queued @ epoch 0
                    response = client.update(
                        "insert_subtree", sketch="live", parent_label="r",
                        subtree=["a", [["p", ["k"]]]])
                    assert response["epoch"] == 1
                    _wait_until(
                        lambda: server.shadow.stale_dropped_total >= 1,
                        message="stale shadow drop")
                    # The stale sample never reached the ledger.
                    assert server.ledger.info()["sketches"]["live"][
                        "samples"] == 0
                    # Post-mutation samples score normally.
                    client.estimate("//a", sketch="live")
                    _wait_until(
                        lambda: server.ledger.info()["sketches"]["live"][
                            "samples"] == 1,
                        message="fresh sample scored")
                info = server.shadow.info()
            finally:
                handle.stop()
            snapshot = metrics.snapshot()
        assert info["stale_dropped"] == 1
        assert snapshot["counters"]["serve.accuracy.stale_dropped"] == 1


# ------------------------------------------------- adaptive maintenance


class TestAdaptiveMaintenance:

    def test_burning_budget_tightens_the_live_debt_threshold(self):
        """With ``adaptive_maintenance``, sustained measured drift makes
        the DebtController cut ``debt_threshold`` and force a re-merge;
        the snapshot refresh bumps the cache epoch like a mutation."""
        registry = SketchRegistry()
        registry.register_live("live", SketchMaintainer(_tree(), LIVE_BUDGET))
        entry = registry.get("live")
        assert isinstance(entry, LiveSketch)
        base = entry.maintainer.options.debt_threshold
        handle = start_server_thread(registry, ServeConfig(
            port=0,
            shadow_fraction=1.0,
            shadow_reference=lambda q: 1000.0,
            error_budget=0.25,
            error_budget_window=8,
            adaptive_maintenance=True,
        ))
        try:
            server = handle.server
            controller = entry.maintainer.adaptive
            assert controller is not None
            assert controller.target_rel_error == 0.25
            with ServeClient("127.0.0.1", handle.port) as client:
                for _ in range(2 * controller.min_samples):
                    client.estimate("//a", sketch="live")
                _wait_until(lambda: controller.tightened >= 1,
                            message="adaptive tighten")
            assert entry.maintainer.options.debt_threshold < base
            assert server.ledger.state("live") == STATE_BURNING
            doc = entry.describe()
            assert doc["adaptive"]["tightened"] >= 1
        finally:
            handle.stop()

    def test_adaptive_is_off_without_the_flag(self):
        registry = SketchRegistry()
        registry.register_live("live", SketchMaintainer(_tree(), LIVE_BUDGET))
        handle = start_server_thread(registry, ServeConfig(
            port=0,
            shadow_fraction=1.0,
            shadow_reference=lambda q: 1.0,
            error_budget=0.25,
        ))
        try:
            entry = registry.get("live")
            assert entry.maintainer.adaptive is None
        finally:
            handle.stop()
