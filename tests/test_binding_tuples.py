"""Tests for lazy binding-tuple enumeration."""

import pytest

from repro.engine.exact import ExactEvaluator
from repro.query.parser import parse_twig


@pytest.fixture
def evaluator(paper_document):
    return ExactEvaluator(paper_document)


class TestBindingTuples:
    def test_count_matches_selectivity(self, evaluator):
        for text in ["//a", "//a (//p)", "//a (//p, //n)",
                     "//a[//b] ( //p ( //k ? ), //n ? )", "//p (//k ?)"]:
            query = parse_twig(text)
            tuples = list(evaluator.binding_tuples(query))
            assert len(tuples) == evaluator.selectivity(query), text

    def test_variables_present(self, evaluator):
        query = parse_twig("//a (//p)")
        for t in evaluator.binding_tuples(query):
            assert set(t) == {"q0", "q1", "q2"}
            assert t["q0"].label == "d"
            assert t["q1"].label == "a"
            assert t["q2"].label == "p"

    def test_structural_consistency(self, evaluator, paper_document):
        query = parse_twig("//a (//p (//k ?))")
        for t in evaluator.binding_tuples(query):
            assert paper_document.is_ancestor(t["q1"], t["q2"])
            if t["q3"] is not None:
                assert paper_document.is_ancestor(t["q2"], t["q3"])

    def test_optional_null_binding(self, evaluator):
        query = parse_twig("//b (//k ?)")
        tuples = list(evaluator.binding_tuples(query))
        assert len(tuples) == 2
        assert all(t["q2"] is None for t in tuples)

    def test_optional_with_matches_not_null(self, evaluator):
        query = parse_twig("//p (//k ?)")
        tuples = list(evaluator.binding_tuples(query))
        assert all(t["q2"] is not None for t in tuples)  # all papers have k

    def test_empty_query_yields_nothing(self, evaluator):
        assert list(evaluator.binding_tuples(parse_twig("//zzz"))) == []

    def test_solid_unsatisfied_yields_nothing(self, evaluator):
        assert list(evaluator.binding_tuples(parse_twig("//b (//k)"))) == []

    def test_limit(self, evaluator):
        query = parse_twig("//a (//p)")
        assert len(list(evaluator.binding_tuples(query, limit=2))) == 2

    def test_lazy_enumeration(self, evaluator):
        query = parse_twig("//a (//p)")
        generator = evaluator.binding_tuples(query)
        first = next(generator)
        assert first["q1"].label == "a"

    def test_tuples_unique(self, evaluator):
        query = parse_twig("//a (//p, //n ?)")
        seen = set()
        for t in evaluator.binding_tuples(query):
            key = tuple((v, node.oid if node else None) for v, node in sorted(t.items()))
            assert key not in seen
            seen.add(key)

    def test_deep_nested_optional_subtree_nulls(self, evaluator):
        # Optional subtree with its own child: all vars null when empty.
        query = parse_twig("//b (//zzz (//k) ?)")
        tuples = list(evaluator.binding_tuples(query))
        assert len(tuples) == 2
        for t in tuples:
            assert t["q2"] is None and t["q3"] is None
