"""Unit tests for the path/twig text syntax."""

import pytest

from repro.query.parser import QuerySyntaxError, parse_path, parse_twig
from repro.query.path import Axis


class TestParsePath:
    def test_single_child_step(self):
        p = parse_path("/a")
        assert len(p) == 1
        assert p.steps[0].axis is Axis.CHILD
        assert p.steps[0].label == "a"

    def test_single_descendant_step(self):
        p = parse_path("//a")
        assert p.steps[0].axis is Axis.DESCENDANT

    def test_relative_first_step_defaults_to_child(self):
        p = parse_path("a/b")
        assert p.steps[0].axis is Axis.CHILD
        assert len(p) == 2

    def test_mixed_axes(self):
        p = parse_path("//a/b//c")
        assert [s.axis for s in p] == [Axis.DESCENDANT, Axis.CHILD, Axis.DESCENDANT]
        assert p.labels() == ["a", "b", "c"]

    def test_predicate(self):
        p = parse_path("//a[//b]")
        (pred,) = p.steps[0].predicates
        assert pred.steps[0].axis is Axis.DESCENDANT
        assert pred.steps[0].label == "b"

    def test_multiple_predicates_on_one_step(self):
        p = parse_path("/a[/b][/c]")
        assert len(p.steps[0].predicates) == 2

    def test_nested_predicates(self):
        p = parse_path("/a[/b[/c]]")
        outer = p.steps[0].predicates[0]
        inner = outer.steps[0].predicates[0]
        assert inner.steps[0].label == "c"

    def test_predicate_with_multi_step_path(self):
        p = parse_path("/a[b/c//d]")
        (pred,) = p.steps[0].predicates
        assert pred.labels() == ["b", "c", "d"]

    def test_alternation(self):
        p = parse_path("/b|e")
        assert p.steps[0].label == "b|e"

    def test_wildcard(self):
        p = parse_path("//*")
        assert p.steps[0].label == "*"

    def test_labels_with_punctuation(self):
        p = parse_path("/ns.tag-name/x_y")
        assert p.labels() == ["ns.tag-name", "x_y"]

    @pytest.mark.parametrize("bad", ["", "/", "//", "/a[", "/a]", "/a[/b", "/a bc"])
    def test_malformed(self, bad):
        with pytest.raises(QuerySyntaxError):
            parse_path(bad)

    def test_whitespace_tolerated(self):
        assert parse_path("  //a [ /b ] / c ") == parse_path("//a[/b]/c")


class TestParseTwig:
    def test_single_edge(self):
        q = parse_twig("//a")
        assert q.size() == 2
        assert q.variables == ["q0", "q1"]

    def test_children_in_parentheses(self):
        q = parse_twig("//a ( /b, /c )")
        assert q.size() == 4
        root_child = q.root.children[0]
        assert len(root_child.children) == 2

    def test_optional_marker(self):
        q = parse_twig("//a ( /b ?, /c )")
        first, second = q.root.children[0].children
        assert first.optional
        assert not second.optional

    def test_optional_on_subtree(self):
        q = parse_twig("//a ( /b ( /c ) ? )")
        (b,) = q.root.children[0].children
        assert b.optional
        assert len(b.children) == 1

    def test_multiple_top_level_branches(self):
        q = parse_twig("//a, //b")
        assert len(q.root.children) == 2

    def test_paper_figure2_query(self):
        q = parse_twig("//a[//b] ( //p ( //k ? ), //n ? )")
        assert q.size() == 5
        q1 = q.root.children[0]
        assert str(q1.path) == "//a[//b]"
        p_node, n_node = q1.children
        assert not p_node.optional
        assert n_node.optional
        assert p_node.children[0].optional

    def test_variables_preorder(self):
        q = parse_twig("//a ( /b ( /c ), /d )")
        varnames = {str(n.path): n.var for n in q.nodes if n.path}
        assert varnames == {"//a": "q1", "/b": "q2", "/c": "q3", "/d": "q4"}

    @pytest.mark.parametrize("bad", ["", "//a (", "//a ( /b", "//a ) ", "//a ,"])
    def test_malformed(self, bad):
        with pytest.raises(QuerySyntaxError):
            parse_twig(bad)

    def test_str_round_trip(self):
        text = "//a[//b] (//p (//k ?), //n ?)"
        q = parse_twig(text)
        assert str(parse_twig(str(q))) == str(q)
