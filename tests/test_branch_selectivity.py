"""Focused tests for branch-selectivity semantics (EVALEMBED refinement).

Covers the label-grouping rule documented in DESIGN.md: fractional counts
of same-label terminal clusters add up (they partition the label's
elements) when the group totals below one; groups totalling >= 1 keep the
paper's independence products -- preserving Example 4.1's 0.88.
"""

import pytest

from repro.core.estimate import estimate_selectivity
from repro.core.evaluate import eval_query
from repro.core.treesketch import TreeSketch
from repro.query.parser import parse_twig


def sketch_with_split_children(k1, k2, label1="c", label2="c"):
    """root -> 10 a's; a has k1 children in cluster C1, k2 in cluster C2."""
    ts = TreeSketch()
    ts.add_node(0, "r", 1)
    ts.add_node(1, "a", 10)
    ts.add_node(2, label1, 8)
    ts.add_node(3, label2, 8)
    for (s, d, avg) in [(0, 1, 10.0), (1, 2, k1), (1, 3, k2)]:
        ts.add_edge(s, d, avg)
        ts.stats[(s, d)] = (ts.count[s] * avg, ts.count[s] * avg * avg)
    ts.root_id = 0
    ts.doc_height = 3
    return ts


def selectivity_of_branch(ts, pred="/c"):
    query = parse_twig(f"//a[{pred}]")
    return estimate_selectivity(eval_query(ts, query)) / 10.0  # per element


class TestLabelGrouping:
    def test_disjoint_fractions_add(self):
        # Two same-label clusters with fractions 0.5 / 0.3: a partition of
        # the c-elements -> P(any c child) = 0.8.
        ts = sketch_with_split_children(0.5, 0.3)
        assert selectivity_of_branch(ts) == pytest.approx(0.8)

    def test_group_totalling_above_one_uses_independence(self):
        # 0.6 / 0.7 totals 1.3: overlap exists; the paper's product.
        ts = sketch_with_split_children(0.6, 0.7)
        assert selectivity_of_branch(ts) == pytest.approx(0.88)

    def test_any_count_at_least_one_saturates(self):
        ts = sketch_with_split_children(1.5, 0.1)
        assert selectivity_of_branch(ts) == pytest.approx(1.0)

    def test_cross_label_independence(self):
        # Different labels: independence across groups.
        ts = sketch_with_split_children(0.5, 0.3, label1="c", label2="d")
        assert selectivity_of_branch(ts, pred="/c|d") == pytest.approx(
            1 - (1 - 0.5) * (1 - 0.3)
        )

    def test_single_terminal_fraction_unchanged(self):
        ts = sketch_with_split_children(0.4, 0.0)
        ts.out[1].pop(3)
        ts.stats.pop((1, 3))
        assert selectivity_of_branch(ts) == pytest.approx(0.4)

    def test_missing_branch_zero(self):
        ts = sketch_with_split_children(0.5, 0.3)
        assert selectivity_of_branch(ts, pred="/zzz") == 0.0

    def test_refinement_consistency(self):
        """Splitting a terminal cluster must not change the selectivity --
        the motivating property of the grouping rule."""
        coarse = sketch_with_split_children(0.8, 0.0)
        coarse.out[1].pop(3)
        coarse.stats.pop((1, 3))
        fine = sketch_with_split_children(0.5, 0.3)
        assert selectivity_of_branch(coarse) == pytest.approx(
            selectivity_of_branch(fine)
        )
