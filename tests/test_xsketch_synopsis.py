"""Unit tests for the TwigXSketch structure and estimator."""

import pytest

from repro.core.stable import build_stable
from repro.engine.exact import ExactEvaluator
from repro.query.parser import parse_path, parse_twig
from repro.xsketch.atoms import build_atom_graph
from repro.xsketch.synopsis import TwigXSketch, xsketch_selectivity


def label_split_sketch(tree, bucket_budget=64):
    """Label-split twig-XSketch of a document (one cluster per label)."""
    stable = build_stable(tree)
    atoms = build_atom_graph(stable)
    labels = sorted(set(atoms.label))
    cid = {lab: i for i, lab in enumerate(labels)}
    assign = [cid[lab] for lab in atoms.label]
    return TwigXSketch.from_partition(atoms, assign, bucket_budget)


def atom_level_sketch(tree, bucket_budget=64):
    """Finest partition: one cluster per atom (exact baseline)."""
    stable = build_stable(tree)
    atoms = build_atom_graph(stable)
    return TwigXSketch.from_partition(atoms, list(range(atoms.num_atoms)), bucket_budget)


class TestFromPartition:
    def test_counts_partition_document(self, paper_document):
        xs = label_split_sketch(paper_document)
        assert sum(xs.count.values()) == len(paper_document)

    def test_label_split_one_node_per_label(self, paper_document):
        xs = label_split_sketch(paper_document)
        labels = sorted(xs.label.values())
        assert labels == sorted(set(labels))

    def test_means_match_document_averages(self, paper_document):
        xs = label_split_sketch(paper_document)
        by_label = {lab: nid for nid, lab in xs.label.items()}
        # 4 papers among 3 authors -> mean 4/3 along a->p.
        assert xs.out[by_label["a"]][by_label["p"]] == pytest.approx(4 / 3)

    def test_backward_stability_flags(self, paper_document):
        xs = label_split_sketch(paper_document)
        by_label = {lab: nid for nid, lab in xs.label.items()}
        # Every author has a name: stable; not every author has a book.
        assert xs.backward_stable[(by_label["a"], by_label["n"])]
        assert not xs.backward_stable[(by_label["a"], by_label["b"])]

    def test_size_includes_histograms(self, paper_document):
        xs = label_split_sketch(paper_document)
        base = 8 * (xs.num_nodes + xs.num_edges)
        assert xs.size_bytes() > base


class TestView:
    def test_view_is_cached(self, paper_document):
        xs = label_split_sketch(paper_document)
        assert xs.view() is xs.view()

    def test_view_edge_weights_are_means(self, paper_document):
        xs = label_split_sketch(paper_document)
        view = xs.view()
        for src, out in xs.out.items():
            for dst, mean in out.items():
                assert view.out[src][dst] == mean


class TestBranchProbability:
    def test_one_step_child_predicate(self, paper_document):
        xs = label_split_sketch(paper_document)
        by_label = {lab: nid for nid, lab in xs.label.items()}
        p = xs.branch_probability(by_label["a"], parse_path("/b"))
        assert p == pytest.approx(2 / 3)  # 2 of 3 authors have a book

    def test_descendant_predicate_not_answered(self, paper_document):
        xs = label_split_sketch(paper_document)
        by_label = {lab: nid for nid, lab in xs.label.items()}
        assert xs.branch_probability(by_label["a"], parse_path("//b")) is None

    def test_multi_step_not_answered(self, paper_document):
        xs = label_split_sketch(paper_document)
        by_label = {lab: nid for nid, lab in xs.label.items()}
        assert xs.branch_probability(by_label["a"], parse_path("/p/k")) is None

    def test_unmatched_label_zero(self, paper_document):
        xs = label_split_sketch(paper_document)
        by_label = {lab: nid for nid, lab in xs.label.items()}
        assert xs.branch_probability(by_label["a"], parse_path("/zzz")) == 0.0


class TestSelectivity:
    def test_atom_level_sketch_often_exact(self, paper_document):
        ev = ExactEvaluator(paper_document)
        xs = atom_level_sketch(paper_document)
        for text in ["//a", "//p", "/a/p/k"]:
            q = parse_twig(text)
            assert xsketch_selectivity(xs, q) == pytest.approx(float(ev.selectivity(q)))

    def test_histogram_branch_beats_independence(self, figure3_t2):
        """On Fig. 3's T2, the label-split graph with a joint histogram
        answers the one-step branch exactly."""
        xs = label_split_sketch(figure3_t2)
        ev = ExactEvaluator(figure3_t2)
        q = parse_twig("//a[/b]")
        assert xsketch_selectivity(xs, q) == pytest.approx(float(ev.selectivity(q)))

    def test_empty_query(self, paper_document):
        xs = label_split_sketch(paper_document)
        assert xsketch_selectivity(xs, parse_twig("//zzz")) == 0.0
