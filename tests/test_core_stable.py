"""Unit tests for BUILD_STABLE / Expand (repro.core.stable)."""

import random

import pytest

from repro.core.stable import build_stable, expand_stable, is_count_stable
from repro.xmltree.tree import XMLTree
from tests.conftest import make_random_tree


class TestBuildStable:
    def test_single_node(self):
        s = build_stable(XMLTree.from_nested(("r", [])))
        assert s.num_nodes == 1
        assert s.num_edges == 0
        assert s.count[s.root_id] == 1

    def test_identical_leaves_share_class(self):
        s = build_stable(XMLTree.from_nested(("r", ["a", "a", "a"])))
        assert s.num_nodes == 2
        (edge,) = list(s.edges())
        assert edge[2] == 3  # r has 3 children in the a class

    def test_same_label_different_structure_split(self):
        tree = XMLTree.from_nested(("r", [("a", ["x"]), ("a", ["x", "x"])]))
        s = build_stable(tree)
        # Two a-classes (1 x-child vs 2 x-children).
        assert len(s.nodes_with_label("a")) == 2

    def test_figure3_documents_have_distinct_summaries(self, figure3_t1, figure3_t2):
        """The motivating example: same twig-XSketch, different stable
        summaries (paper Fig. 3(f))."""
        s1 = build_stable(figure3_t1)
        s2 = build_stable(figure3_t2)
        # T1: both a's have one b1 and one b4 -> single a-class.
        assert len(s1.nodes_with_label("a")) == 1
        # T2: a1 has two b1's, a2 two b4's -> two a-classes.
        assert len(s2.nodes_with_label("a")) == 2

    def test_counts_partition_document(self, paper_document):
        s = build_stable(paper_document)
        assert sum(s.count.values()) == len(paper_document)

    def test_respects_labels(self, paper_document):
        s = build_stable(paper_document, keep_extents=True)
        for nid, oids in s.extent.items():
            labels = {paper_document.node(oid).label for oid in oids}
            assert labels == {s.label[nid]}

    def test_is_count_stable(self, paper_document):
        s = build_stable(paper_document, keep_extents=True)
        assert is_count_stable(paper_document, s.class_of())

    def test_label_split_not_stable_in_general(self, figure3_t2):
        # Assign purely by label: b's have different c-counts -> unstable.
        assignment = {}
        label_ids = {}
        for node in figure3_t2:
            cid = label_ids.setdefault(node.label, len(label_ids))
            assignment[node.oid] = cid
        assert not is_count_stable(figure3_t2, assignment)

    def test_class_of_requires_extents(self, paper_document):
        s = build_stable(paper_document)
        with pytest.raises(ValueError):
            s.class_of()

    def test_depth_recorded(self, paper_document):
        s = build_stable(paper_document)
        assert s.depth[s.root_id] == paper_document.height
        leaf_classes = [nid for nid in s.node_ids() if not s.out.get(nid)]
        assert all(s.depth[nid] == 0 for nid in leaf_classes)

    def test_doc_height_recorded(self, paper_document):
        s = build_stable(paper_document)
        assert s.doc_height == paper_document.height

    def test_is_dag(self, paper_document):
        assert build_stable(paper_document).is_dag()

    def test_size_bytes_model(self, paper_document):
        s = build_stable(paper_document)
        assert s.size_bytes() == 8 * (s.num_nodes + s.num_edges)

    def test_linear_runtime_smoke(self, rng):
        # Not a timing assertion, just exercises a larger input.
        tree = make_random_tree(rng, 5000)
        s = build_stable(tree)
        assert sum(s.count.values()) == len(tree)


class TestExpand:
    def test_expand_round_trip_paper_document(self, paper_document):
        s = build_stable(paper_document)
        expanded = expand_stable(s)
        assert len(expanded) == len(paper_document)
        # Re-summarizing the expansion yields an identical-shape summary.
        s2 = build_stable(expanded)
        assert s2.num_nodes == s.num_nodes
        assert s2.num_edges == s.num_edges
        assert sorted(s2.count.values()) == sorted(s.count.values())

    def test_expand_round_trip_random(self, rng):
        for _ in range(10):
            tree = make_random_tree(rng, rng.randint(5, 200))
            s = build_stable(tree)
            expanded = expand_stable(s)
            assert len(expanded) == len(tree)
            s2 = build_stable(expanded)
            assert s2.num_nodes == s.num_nodes
            assert sorted(s2.count.values()) == sorted(s.count.values())

    def test_expand_label_multiset_preserved(self, paper_document):
        from collections import Counter

        s = build_stable(paper_document)
        expanded = expand_stable(s)
        original = Counter(n.label for n in paper_document)
        rebuilt = Counter(n.label for n in expanded)
        assert original == rebuilt
