"""Unit tests for the twig-XSketch atom graph."""

import pytest

from repro.core.stable import build_stable
from repro.xsketch.atoms import build_atom_graph
from tests.conftest import make_random_tree


class TestAtomGraph:
    def test_root_atom(self, paper_document):
        s = build_stable(paper_document)
        atoms = build_atom_graph(s)
        assert atoms.keys[atoms.root_atom] == (s.root_id, -1)
        assert atoms.size[atoms.root_atom] == 1

    def test_sizes_partition_classes(self, paper_document):
        s = build_stable(paper_document)
        atoms = build_atom_graph(s)
        per_class = {}
        for (cls, _p), size in zip(atoms.keys, atoms.size):
            per_class[cls] = per_class.get(cls, 0) + size
        assert per_class == dict(s.count)

    def test_total_size_is_document(self, paper_document):
        s = build_stable(paper_document)
        atoms = build_atom_graph(s)
        assert sum(atoms.size) == len(paper_document)

    def test_atom_out_edges_follow_stable(self, paper_document):
        s = build_stable(paper_document)
        atoms = build_atom_graph(s)
        for aid, (cls, _parent) in enumerate(atoms.keys):
            expected = {
                atoms.index[(t, cls)]: int(k)
                for t, k in s.out.get(cls, {}).items()
            }
            assert dict(atoms.out[aid]) == expected

    def test_labels_match_class_labels(self, paper_document):
        s = build_stable(paper_document)
        atoms = build_atom_graph(s)
        for (cls, _p), label in zip(atoms.keys, atoms.label):
            assert label == s.label[cls]

    def test_refines_stable_at_least_one_atom_per_class(self, rng):
        tree = make_random_tree(rng, 300)
        s = build_stable(tree)
        atoms = build_atom_graph(s)
        assert atoms.num_atoms >= s.num_nodes

    def test_shared_class_two_parents_two_atoms(self):
        from repro.xmltree.tree import XMLTree

        # A 'n' leaf class reachable from both 'a' and 'b' parents.
        tree = XMLTree.from_nested(("r", [("a", ["n"]), ("b", ["n"])]))
        s = build_stable(tree)
        atoms = build_atom_graph(s)
        n_atoms = [k for k, lab in zip(atoms.keys, atoms.label) if lab == "n"]
        assert len(n_atoms) == 2
