"""Tests for corpus materialization."""

import os

import pytest

from repro.datagen.corpus import available_datasets, read_manifest, write_corpus
from repro.xmltree.parser import parse_xml_file


class TestWriteCorpus:
    def test_writes_files_and_manifest(self, tmp_path):
        written = write_corpus(str(tmp_path), names=["XMark-TX"], scale=0.05)
        assert set(written) == {"XMark-TX"}
        assert os.path.exists(written["XMark-TX"])
        manifest = read_manifest(str(tmp_path))
        assert "XMark-TX" in manifest["documents"]
        assert manifest["scale"] == 0.05

    def test_files_parse_back(self, tmp_path):
        written = write_corpus(str(tmp_path), names=["IMDB-TX"], scale=0.05)
        tree = parse_xml_file(written["IMDB-TX"])
        manifest = read_manifest(str(tmp_path))
        assert len(tree) == manifest["documents"]["IMDB-TX"]["elements"]

    def test_scale_shrinks_documents(self, tmp_path):
        small = write_corpus(str(tmp_path / "s"), names=["SProt-TX"], scale=0.02)
        large = write_corpus(str(tmp_path / "l"), names=["SProt-TX"], scale=0.1)
        n_small = read_manifest(str(tmp_path / "s"))["documents"]["SProt-TX"]["elements"]
        n_large = read_manifest(str(tmp_path / "l"))["documents"]["SProt-TX"]["elements"]
        assert n_small < n_large

    def test_unknown_name_rejected(self, tmp_path):
        with pytest.raises(KeyError):
            write_corpus(str(tmp_path), names=["nope"])

    def test_available_datasets(self):
        names = available_datasets()
        assert "XMark-TX" in names
        assert "DBLP" in names
        assert len(names) == 7

    def test_end_to_end_with_cli(self, tmp_path, capsys):
        from repro.cli import main

        written = write_corpus(str(tmp_path), names=["IMDB-TX"], scale=0.02)
        sketch_path = str(tmp_path / "sketch.json")
        assert main(["build", written["IMDB-TX"], "--budget-kb", "4",
                     "-o", sketch_path]) == 0
        capsys.readouterr()
        assert main(["query", sketch_path, "//movie (/title)"]) == 0
        assert "estimated binding tuples" in capsys.readouterr().out
