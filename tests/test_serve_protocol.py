"""Unit tests for the serving wire protocol and admission control."""

import json

import pytest

from repro import obs
from repro.serve.admission import AdmissionController, Decision
from repro.serve.protocol import (
    ERROR_CODES,
    MAX_LINE_BYTES,
    OPS,
    ProtocolError,
    decode_message,
    encode_message,
    encode_response,
    error_response,
    ok_response,
    parse_request,
)


class TestParseRequest:
    def test_minimal_valid_requests(self):
        for op in ("health", "stats", "list_sketches"):
            assert parse_request(json.dumps({"op": op}))["op"] == op
        request = parse_request(
            b'{"op": "eval", "id": 3, "sketch": "x", "query": "//a"}\n'
        )
        assert request["query"] == "//a"

    def test_malformed_json(self):
        with pytest.raises(ProtocolError) as excinfo:
            parse_request(b'{"op": "eval"')
        assert excinfo.value.code == "bad_request"

    def test_non_object(self):
        for line in ("[1, 2]", '"eval"', "42"):
            with pytest.raises(ProtocolError) as excinfo:
                parse_request(line)
            assert excinfo.value.code == "bad_request"

    def test_not_utf8(self):
        with pytest.raises(ProtocolError) as excinfo:
            parse_request(b"\xff\xfe{}")
        assert excinfo.value.code == "bad_request"

    def test_unknown_op(self):
        with pytest.raises(ProtocolError) as excinfo:
            parse_request('{"op": "frobnicate"}')
        assert excinfo.value.code == "unknown_op"

    def test_missing_op(self):
        with pytest.raises(ProtocolError) as excinfo:
            parse_request('{"query": "//a"}')
        assert excinfo.value.code == "bad_request"

    def test_data_ops_require_query(self):
        for op in ("eval", "estimate", "expand"):
            with pytest.raises(ProtocolError) as excinfo:
                parse_request(json.dumps({"op": op}))
            assert excinfo.value.code == "bad_request"

    def test_bad_field_types(self):
        bad = [
            {"op": "eval", "query": "//a", "id": [1]},
            {"op": "eval", "query": "//a", "deadline_ms": -5},
            {"op": "eval", "query": "//a", "deadline_ms": True},
            {"op": "eval", "query": "//a", "sketch": ""},
            {"op": "eval", "query": 7},
            {"op": "expand", "query": "//a", "max_nodes": 0},
            {"op": "expand", "query": "//a", "max_nodes": "big"},
            {"op": "expand", "query": "//a", "seed": "x"},
        ]
        for request in bad:
            with pytest.raises(ProtocolError) as excinfo:
                parse_request(json.dumps(request))
            assert excinfo.value.code == "bad_request", request

    def test_oversized_line(self):
        line = b'{"op": "eval", "query": "' + b"a" * MAX_LINE_BYTES + b'"}'
        with pytest.raises(ProtocolError) as excinfo:
            parse_request(line)
        assert excinfo.value.code == "bad_request"

    def test_error_code_catalogue_is_closed(self):
        with pytest.raises(ValueError):
            ProtocolError("not_a_code", "nope")
        with pytest.raises(ValueError):
            error_response(None, "not_a_code", "nope")
        assert set(OPS) >= {"eval", "estimate", "expand",
                            "list_sketches", "health", "stats"}
        assert "overloaded" in ERROR_CODES and "deadline_exceeded" in ERROR_CODES


class TestResponses:
    def test_ok_echoes_id_and_op(self):
        response = ok_response({"op": "eval", "id": 9}, selectivity=4.0)
        assert response == {"id": 9, "op": "eval", "ok": True,
                            "selectivity": 4.0}

    def test_error_shape(self):
        response = error_response({"op": "eval", "id": 9}, "overloaded", "full")
        assert response["ok"] is False
        assert response["error"] == {"code": "overloaded", "message": "full"}

    def test_encode_decode_round_trip(self):
        message = ok_response({"op": "health", "id": "h1"}, status="ok")
        wire = encode_message(message)
        assert wire.endswith(b"\n") and wire.count(b"\n") == 1
        assert decode_message(wire) == message

    def test_decode_rejects_non_object(self):
        with pytest.raises(ValueError):
            decode_message(b"[]\n")

    def test_encode_response_within_cap_passes_through(self):
        message = ok_response({"op": "eval", "id": 1}, selectivity=2.0)
        data, sent = encode_response(message)
        assert sent is message
        assert decode_message(data) == message

    def test_encode_response_caps_oversized_payloads(self):
        """An over-cap response becomes a structured error, never a line
        the client's 1 MiB readline would truncate (and desynchronize on)."""
        message = ok_response({"op": "expand", "id": "big"},
                              xml="x" * (MAX_LINE_BYTES + 1024))
        data, sent = encode_response(message)
        assert len(data) <= MAX_LINE_BYTES
        assert data.endswith(b"\n")
        assert sent["ok"] is False
        assert sent["error"]["code"] == "response_too_large"
        assert sent["id"] == "big" and sent["op"] == "expand"
        assert decode_message(data) == sent


class TestAdmissionController:
    def test_validation(self):
        with pytest.raises(ValueError):
            AdmissionController(max_pending=0)
        with pytest.raises(ValueError):
            AdmissionController(max_pending=4, degrade_watermark=-1)

    def test_default_watermark_is_half(self):
        assert AdmissionController(max_pending=8).degrade_watermark == 4
        assert AdmissionController(max_pending=1).degrade_watermark == 1

    def test_admit_degrade_shed_progression(self):
        controller = AdmissionController(max_pending=3, degrade_watermark=1)
        assert controller.acquire() is Decision.ADMIT      # depth 1
        assert controller.acquire() is Decision.DEGRADE    # depth 2
        assert controller.acquire() is Decision.DEGRADE    # depth 3
        assert controller.acquire() is Decision.SHED       # full
        assert controller.depth == 3
        controller.release()
        assert controller.acquire() is Decision.DEGRADE    # back to 3
        for _ in range(3):
            controller.release()
        assert controller.depth == 0
        assert controller.acquire() is Decision.ADMIT

    def test_watermark_zero_degrades_everything(self):
        controller = AdmissionController(max_pending=2, degrade_watermark=0)
        assert controller.acquire() is Decision.DEGRADE

    def test_release_underflow(self):
        controller = AdmissionController(max_pending=1)
        with pytest.raises(RuntimeError):
            controller.release()

    def test_info_and_obs(self):
        with obs.observed() as registry:
            controller = AdmissionController(max_pending=1, degrade_watermark=1)
            assert controller.acquire() is Decision.ADMIT
            assert controller.acquire() is Decision.SHED
            controller.release()
        info = controller.info()
        assert info["admitted_total"] == 1
        assert info["shed_total"] == 1
        assert info["depth"] == 0
        flat = obs.report.flatten_snapshot(registry.snapshot())
        assert flat["counters.serve.admitted"] == 1
        assert flat["counters.serve.shed"] == 1
        assert flat["gauges.serve.queue.depth"] == 0
