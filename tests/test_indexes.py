"""Unit tests for the 1-index / A(k)-index partitions."""

import pytest

from repro.core.estimate import estimate_selectivity
from repro.core.evaluate import eval_query
from repro.engine.exact import ExactEvaluator
from repro.indexes.ak import (
    ak_index_partition,
    ak_sketch,
    one_index_partition,
    partition_sketch,
)
from repro.query.parser import parse_twig
from repro.xmltree.tree import XMLTree
from tests.conftest import make_random_tree


class TestPartitions:
    def test_a0_is_label_split(self, paper_document):
        assignment = ak_index_partition(paper_document, 0)
        by_class = {}
        for node in paper_document:
            by_class.setdefault(assignment[node.oid], set()).add(node.label)
        # one label per class and one class per label
        assert all(len(labels) == 1 for labels in by_class.values())
        assert len(by_class) == len(paper_document.labels)

    def test_one_index_groups_by_root_path(self, paper_document):
        assignment = one_index_partition(paper_document)
        paths = {}
        for node in paper_document:
            path = tuple(node.path_from_root())
            cid = assignment[node.oid]
            assert paths.setdefault(cid, path) == path

    def test_refinement_chain(self, rng):
        tree = make_random_tree(rng, 300)
        sizes = [
            len(set(ak_index_partition(tree, k).values()))
            for k in range(0, tree.height + 1)
        ]
        assert sizes == sorted(sizes)  # finer with growing k
        assert sizes[-1] == len(set(one_index_partition(tree).values()))

    def test_large_k_equals_one_index(self, paper_document):
        a = ak_index_partition(paper_document, 50)
        b = one_index_partition(paper_document)
        # same partition up to renaming
        mapping = {}
        for oid in a:
            assert mapping.setdefault(a[oid], b[oid]) == b[oid]

    def test_negative_k_rejected(self, paper_document):
        with pytest.raises(ValueError):
            ak_index_partition(paper_document, -1)

    def test_distinguishes_context(self):
        # n under a vs n under b: distinct classes for k >= 1.
        tree = XMLTree.from_nested(("r", [("a", ["n"]), ("b", ["n"])]))
        a1 = ak_index_partition(tree, 1)
        ns = tree.nodes_with_label("n")
        assert a1[ns[0].oid] != a1[ns[1].oid]
        a0 = ak_index_partition(tree, 0)
        assert a0[ns[0].oid] == a0[ns[1].oid]


class TestPartitionSketch:
    def test_counts_partition_document(self, paper_document):
        sketch = ak_sketch(paper_document, 1)
        assert sum(sketch.count.values()) == len(paper_document)
        sketch.validate()

    def test_rejects_label_mixing(self, paper_document):
        assignment = {node.oid: 0 for node in paper_document}
        with pytest.raises(ValueError):
            partition_sketch(paper_document, assignment)

    def test_one_index_single_path_counts_exact(self):
        # A pure chain: every partition is count-stable, so estimates are
        # exact.
        tree = XMLTree.from_nested(("r", [("a", [("b", ["c"])])]))
        sketch = ak_sketch(tree, 0)
        ev = ExactEvaluator(tree)
        q = parse_twig("//a (/b (/c))")
        assert estimate_selectivity(eval_query(sketch, q)) == pytest.approx(
            float(ev.selectivity(q))
        )

    def test_estimates_improve_with_k(self, rng):
        """Finer backward context should not hurt (on average) -- sanity
        check that the family behaves like a refinement hierarchy."""
        from repro.metrics.error import average_error

        tree = make_random_tree(rng, 500, labels="abc")
        ev = ExactEvaluator(tree)
        queries = [parse_twig(t) for t in ["//a (/b)", "//b (/c ?)", "//a (/b, /c ?)"]]
        errors = {}
        for k in (0, 2):
            sketch = ak_sketch(tree, k)
            pairs = [
                (float(ev.selectivity(q)), estimate_selectivity(eval_query(sketch, q)))
                for q in queries
            ]
            errors[k] = average_error(pairs)
        assert errors[2] <= errors[0] + 0.25

    def test_evaluator_compatibility(self, paper_document):
        sketch = ak_sketch(paper_document, 2)
        result = eval_query(sketch, parse_twig("//a[//b] ( //p ( //k ? ), //n ? )"))
        assert estimate_selectivity(result) >= 0.0
