"""Unit tests for workload generation from stable summaries."""

import pytest

from repro.core.stable import build_stable
from repro.engine.exact import ExactEvaluator
from repro.query.generator import WorkloadGenerator, WorkloadOptions, generate_workload
from repro.datagen.datasets import imdb_like
from tests.conftest import make_random_tree


@pytest.fixture(scope="module")
def corpus():
    tree = imdb_like(scale=0.5, seed=2)
    return tree, build_stable(tree)


class TestGeneration:
    def test_requested_count(self, corpus):
        _tree, stable = corpus
        wl = generate_workload(stable, WorkloadOptions(num_queries=25, seed=0))
        assert len(wl) == 25

    def test_deterministic(self, corpus):
        _tree, stable = corpus
        a = generate_workload(stable, WorkloadOptions(num_queries=10, seed=4))
        b = generate_workload(stable, WorkloadOptions(num_queries=10, seed=4))
        assert [str(q) for q in a] == [str(q) for q in b]

    def test_seeds_vary(self, corpus):
        _tree, stable = corpus
        a = generate_workload(stable, WorkloadOptions(num_queries=10, seed=1))
        b = generate_workload(stable, WorkloadOptions(num_queries=10, seed=2))
        assert [str(q) for q in a] != [str(q) for q in b]

    def test_all_queries_positive(self, corpus):
        """Count stability guarantees positivity (Section 6.1)."""
        tree, stable = corpus
        ev = ExactEvaluator(tree)
        wl = generate_workload(stable, WorkloadOptions(num_queries=50, seed=7))
        for q in wl:
            assert ev.selectivity(q) > 0, str(q)

    def test_positive_on_random_trees(self, rng):
        for _ in range(3):
            tree = make_random_tree(rng, 300)
            stable = build_stable(tree)
            ev = ExactEvaluator(tree)
            wl = generate_workload(stable, WorkloadOptions(num_queries=15, seed=1))
            for q in wl:
                assert ev.selectivity(q) > 0, str(q)

    def test_query_depth_bounded(self, corpus):
        _tree, stable = corpus
        opts = WorkloadOptions(num_queries=30, seed=0, max_query_depth=2)
        for q in generate_workload(stable, opts):
            assert q.depth() <= 2

    def test_variables_canonical(self, corpus):
        _tree, stable = corpus
        for q in generate_workload(stable, WorkloadOptions(num_queries=10, seed=0)):
            assert q.variables == [f"q{i}" for i in range(q.size())]

    def test_optional_edges_present_with_high_prob(self, corpus):
        _tree, stable = corpus
        opts = WorkloadOptions(
            num_queries=40, seed=0, optional_prob=1.0, branch_prob=1.0
        )
        wl = generate_workload(stable, opts)
        assert any(
            node.optional for q in wl for node in q.nodes if node.path is not None
        )

    def test_zero_optional_prob(self, corpus):
        _tree, stable = corpus
        opts = WorkloadOptions(num_queries=20, seed=0, optional_prob=0.0)
        for q in generate_workload(stable, opts):
            assert not any(n.optional for n in q.nodes)

    def test_predicates_generated(self, corpus):
        _tree, stable = corpus
        opts = WorkloadOptions(num_queries=40, seed=0, predicate_prob=1.0)
        wl = generate_workload(stable, opts)
        assert any(
            step.predicates
            for q in wl
            for n in q.nodes
            if n.path is not None
            for step in n.path.steps
        )

    def test_single_node_document(self):
        from repro.xmltree.tree import XMLTree

        stable = build_stable(XMLTree.from_nested(("r", [])))
        gen = WorkloadGenerator(stable, WorkloadOptions(num_queries=1, seed=0))
        with pytest.raises(RuntimeError):
            gen.generate()  # a leaf-only document has no sampleable paths
