"""Tests for workload persistence."""

import pytest

from repro.datagen.datasets import imdb_like
from repro.workload.cache import document_fingerprint, load_workload, save_workload
from repro.workload.workload import make_workload


@pytest.fixture(scope="module")
def setting():
    tree = imdb_like(scale=0.3, seed=2)
    workload = make_workload(tree, num_queries=10, seed=4)
    return tree, workload


class TestWorkloadCache:
    def test_round_trip(self, setting, tmp_path):
        tree, workload = setting
        path = str(tmp_path / "wl.json")
        save_workload(workload, path)
        loaded = load_workload(path, tree, stable=workload.stable)
        assert [str(q) for q in loaded.queries] == [str(q) for q in workload.queries]
        assert loaded.truths == workload.truths

    def test_truths_not_recomputed(self, setting, tmp_path):
        tree, workload = setting
        path = str(tmp_path / "wl.json")
        save_workload(workload, path)
        loaded = load_workload(path, tree, stable=workload.stable)
        # _truths pre-populated: accessing .truths does no exact evaluation.
        assert loaded._truths is not None

    def test_loaded_queries_reusable(self, setting, tmp_path):
        tree, workload = setting
        path = str(tmp_path / "wl.json")
        save_workload(workload, path)
        loaded = load_workload(path, tree, stable=workload.stable)
        # Spot-check one truth against a fresh evaluation.
        assert loaded.evaluator.selectivity(loaded.queries[0]) == loaded.truths[0]

    def test_fingerprint_mismatch_rejected(self, setting, tmp_path):
        tree, workload = setting
        path = str(tmp_path / "wl.json")
        save_workload(workload, path)
        other = imdb_like(scale=0.3, seed=99)
        with pytest.raises(ValueError):
            load_workload(path, other)

    def test_fingerprint_override(self, setting, tmp_path):
        tree, workload = setting
        path = str(tmp_path / "wl.json")
        save_workload(workload, path)
        other = imdb_like(scale=0.3, seed=99)
        loaded = load_workload(path, other, verify_fingerprint=False)
        assert len(loaded.queries) == len(workload.queries)

    def test_fingerprint_stability(self, setting):
        tree, _ = setting
        assert document_fingerprint(tree) == document_fingerprint(tree.copy())

    def test_unknown_format_rejected(self, setting, tmp_path):
        import json

        tree, _ = setting
        path = tmp_path / "bad.json"
        path.write_text(json.dumps({"format": 99}))
        with pytest.raises(ValueError):
            load_workload(str(path), tree)
