"""Tests for the Markov-table path estimator."""

import pytest

from repro.markov import MarkovPathEstimator
from repro.xmltree.tree import XMLTree
from tests.conftest import make_random_tree


def truth(tree, labels):
    """Exact count of the downward label path anywhere in the document.

    Counted by direct traversal ("anywhere" includes chains starting at
    the root, which `//l1/...` twigs exclude -- descendant axis skips the
    root itself).
    """
    total = 0

    def count_from(node, i):
        if node.label != labels[i]:
            return 0
        if i == len(labels) - 1:
            return 1
        return sum(count_from(child, i + 1) for child in node.children)

    for node in tree:
        total += count_from(node, 0)
    return total


class TestExactWithinOrder:
    def test_single_labels(self, paper_document):
        est = MarkovPathEstimator.from_tree(paper_document, order=2)
        for label in ["a", "p", "k", "b"]:
            assert est.estimate([label]) == truth(paper_document, [label])

    def test_pairs_exact(self, paper_document):
        est = MarkovPathEstimator.from_tree(paper_document, order=2)
        for pair in [["a", "p"], ["p", "k"], ["a", "b"], ["b", "t"]]:
            assert est.estimate(pair) == truth(paper_document, pair)

    def test_unseen_pair_zero(self, paper_document):
        est = MarkovPathEstimator.from_tree(paper_document, order=2)
        assert est.estimate(["k", "a"]) == 0.0

    def test_triples_exact_with_order_3(self, paper_document):
        est = MarkovPathEstimator.from_tree(paper_document, order=3)
        for triple in [["a", "p", "k"], ["a", "b", "t"], ["d", "a", "n"]]:
            assert est.estimate(triple) == truth(paper_document, triple)


class TestMarkovChaining:
    def test_long_path_chained(self, paper_document):
        est = MarkovPathEstimator.from_tree(paper_document, order=2)
        # d/a/p/k: f(d,a) * f(a,p)/f(a) * f(p,k)/f(p) = 1*3 * ... compare
        # with exact truth; order-2 chaining is exact here because the
        # document's paths are 1-Markov at these labels.
        assert est.estimate(["d", "a", "p", "k"]) == pytest.approx(
            float(truth(paper_document, ["d", "a", "p", "k"])), rel=0.35
        )

    def test_zero_propagates(self, paper_document):
        est = MarkovPathEstimator.from_tree(paper_document, order=2)
        assert est.estimate(["d", "a", "zzz", "k"]) == 0.0

    def test_random_trees_reasonable(self, rng):
        tree = make_random_tree(rng, 400, labels="abc")
        est = MarkovPathEstimator.from_tree(tree, order=3)
        for labels in [["a", "b"], ["a", "b", "c"], ["b", "c", "a", "b"]]:
            exact = truth(tree, labels)
            approx = est.estimate(labels)
            if exact == 0:
                continue
            assert approx > 0


class TestBudget:
    def test_unpruned_when_budget_large(self, paper_document):
        est = MarkovPathEstimator.from_tree(paper_document, order=2, budget_bytes=10**6)
        assert not est.fallback

    def test_pruning_respects_budget(self, paper_document):
        est = MarkovPathEstimator.from_tree(paper_document, order=2, budget_bytes=120)
        assert est.size_bytes() <= 120 + 8 * len(est.fallback)
        assert est.fallback  # something was collapsed

    def test_pruned_estimates_still_positive_for_common_paths(self, paper_document):
        full = MarkovPathEstimator.from_tree(paper_document, order=2)
        tiny = MarkovPathEstimator.from_tree(paper_document, order=2, budget_bytes=96)
        # The heaviest path must be kept exactly.
        heaviest = max(full.counts.items(), key=lambda kv: kv[1])[0]
        assert tiny.estimate(list(heaviest)) == full.estimate(list(heaviest))

    def test_invalid_order(self, paper_document):
        with pytest.raises(ValueError):
            MarkovPathEstimator.from_tree(paper_document, order=0)

    def test_empty_path_rejected(self, paper_document):
        est = MarkovPathEstimator.from_tree(paper_document, order=2)
        with pytest.raises(ValueError):
            est.estimate([])
