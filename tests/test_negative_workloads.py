"""Negative workloads: TreeSketches answer them with empty results.

The paper (Section 6.1): "Our experiments with negative workloads have
shown that TREESKETCHes consistently produce empty answers as
approximations".  Label-pair-absent negatives stay recognizably empty even
after merging, because merges never invent label pairs that do not occur
in the document.
"""

import pytest

from repro.core.build import build_treesketch
from repro.core.estimate import estimate_selectivity
from repro.core.evaluate import eval_query
from repro.core.stable import build_stable
from repro.core.treesketch import TreeSketch
from repro.datagen.datasets import imdb_like
from repro.engine.exact import ExactEvaluator
from repro.query.generator import generate_negative_workload


@pytest.fixture(scope="module")
def setup():
    tree = imdb_like(scale=0.6, seed=3)
    stable = build_stable(tree)
    negatives = generate_negative_workload(stable, num_queries=30, seed=5)
    return tree, stable, negatives


class TestNegativeWorkloads:
    def test_exactly_empty_on_document(self, setup):
        tree, _stable, negatives = setup
        evaluator = ExactEvaluator(tree)
        for query in negatives:
            assert evaluator.selectivity(query) == 0, str(query)

    def test_stable_sketch_answers_empty(self, setup):
        _tree, stable, negatives = setup
        sketch = TreeSketch.from_stable(stable)
        for query in negatives:
            result = eval_query(sketch, query)
            assert result.empty, str(query)
            assert estimate_selectivity(result) == 0.0

    def test_compressed_sketch_answers_empty(self, setup):
        """The paper's claim, on a heavily compressed sketch."""
        _tree, stable, negatives = setup
        sketch = build_treesketch(stable, stable.size_bytes() // 8)
        empty = sum(
            1 for query in negatives if eval_query(sketch, query).empty
        )
        assert empty == len(negatives)

    def test_generator_deterministic(self, setup):
        _tree, stable, _ = setup
        a = generate_negative_workload(stable, num_queries=10, seed=9)
        b = generate_negative_workload(stable, num_queries=10, seed=9)
        assert [str(q) for q in a] == [str(q) for q in b]

    def test_generator_rejects_saturated_documents(self):
        from repro.xmltree.tree import XMLTree

        # Single-label recursive chain realizes its only label pair.
        tree = XMLTree.from_nested(("x", [("x", [("x", [])])]))
        stable = build_stable(tree)
        with pytest.raises(ValueError):
            generate_negative_workload(stable, num_queries=1)
