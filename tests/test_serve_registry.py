"""Unit tests for the sketch registry (repro.serve.registry)."""

import pytest

from repro.core.build import build_treesketch
from repro.core.io import save_synopsis
from repro.core.stable import build_stable
from repro.core.treesketch import TreeSketch
from repro.serve.registry import SketchRegistry, name_from_path
from repro.xmltree.tree import XMLTree


@pytest.fixture
def tree():
    return XMLTree.from_nested(
        ("r", [("a", [("p", ["k", "k"]), "n"]), ("a", [("p", ["k"]), "n"])])
    )


@pytest.fixture
def sketch(tree):
    return build_treesketch(build_stable(tree), 100 * 1024)


def test_name_from_path():
    assert name_from_path("/tmp/xmark.json") == "xmark"
    assert name_from_path("/tmp/xmark.json.gz") == "xmark"
    assert name_from_path("xmark.synopsis") == "xmark"


def test_register_and_get(sketch):
    registry = SketchRegistry()
    entry = registry.register("main", sketch)
    assert registry.get("main") is entry
    assert registry.get() is entry  # sole sketch resolves implicitly
    assert "main" in registry and len(registry) == 1
    assert registry.names() == ["main"]


def test_get_errors(sketch):
    registry = SketchRegistry()
    with pytest.raises(KeyError):
        registry.get("nope")
    registry.register("a", sketch)
    registry.register("b", sketch)
    with pytest.raises(KeyError):  # ambiguous without a name
        registry.get()


def test_duplicate_and_invalid_registration(sketch):
    registry = SketchRegistry()
    registry.register("a", sketch)
    with pytest.raises(ValueError):
        registry.register("a", sketch)
    with pytest.raises(ValueError):
        registry.register("", sketch)
    with pytest.raises(TypeError):
        registry.register("b", object())


def test_stable_summary_promoted(tree):
    registry = SketchRegistry()
    entry = registry.register("zero", build_stable(tree))
    assert isinstance(entry.sketch, TreeSketch)
    assert entry.sketch.squared_error() == pytest.approx(0.0)


def test_load_plain_and_gzip(sketch, tmp_path):
    plain = str(tmp_path / "doc.json")
    gzipped = str(tmp_path / "doc2.json.gz")
    save_synopsis(sketch, plain)
    save_synopsis(sketch, gzipped)
    registry = SketchRegistry()
    a = registry.load(plain)
    b = registry.load(gzipped)
    assert a.name == "doc" and b.name == "doc2"
    assert a.sketch.num_nodes == b.sketch.num_nodes == sketch.num_nodes
    assert b.path == gzipped


def test_describe_all(sketch, tmp_path):
    registry = SketchRegistry(cache_size=7)
    registry.register("main", sketch)
    (described,) = registry.describe_all()
    assert described["name"] == "main"
    assert described["nodes"] == sketch.num_nodes
    assert described["size_bytes"] == sketch.size_bytes()
    assert described["cache"]["maxsize"] == 7
