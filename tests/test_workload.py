"""Unit tests for the workload container and runners."""

import pytest

from repro.core.build import build_treesketch
from repro.core.stable import build_stable
from repro.core.treesketch import TreeSketch
from repro.datagen.datasets import imdb_like
from repro.workload.runner import run_answer_quality, run_selectivity
from repro.workload.workload import make_workload


@pytest.fixture(scope="module")
def workload():
    tree = imdb_like(scale=0.4, seed=6)
    return make_workload(tree, num_queries=15, seed=2)


class TestWorkload:
    def test_length(self, workload):
        assert len(workload) == 15

    def test_truths_positive(self, workload):
        assert all(t > 0 for t in workload.truths)

    def test_truths_cached(self, workload):
        assert workload.truths is workload.truths

    def test_avg_binding_tuples(self, workload):
        assert workload.avg_binding_tuples() == pytest.approx(
            sum(workload.truths) / len(workload)
        )

    def test_nesting_trees_match_truths(self, workload):
        for nt, truth in zip(workload.nesting_trees[:5], workload.truths[:5]):
            assert nt.binding_tuple_count() == truth


class TestRunners:
    def test_selectivity_zero_error_on_stable(self, workload):
        sketch = TreeSketch.from_stable(workload.stable)
        quality = run_selectivity(sketch, workload)
        assert quality.avg_error == pytest.approx(0.0, abs=1e-9)
        assert len(quality.per_query) == len(workload)

    def test_answer_quality_zero_on_stable(self, workload):
        sketch = TreeSketch.from_stable(workload.stable)
        quality = run_answer_quality(sketch, workload, queries=range(5))
        assert quality.avg_esd == pytest.approx(0.0)
        assert quality.failures == 0

    def test_compressed_sketch_degrades(self, workload):
        stable_err = run_selectivity(
            TreeSketch.from_stable(workload.stable), workload
        ).avg_error
        tiny = build_treesketch(workload.stable, 512)
        tiny_err = run_selectivity(tiny, workload).avg_error
        assert tiny_err >= stable_err

    def test_query_slice(self, workload):
        sketch = TreeSketch.from_stable(workload.stable)
        quality = run_selectivity(sketch, workload, queries=[0, 3, 4])
        assert len(quality.per_query) == 3

    def test_xsketch_supported(self, workload):
        from repro.xsketch.atoms import build_atom_graph
        from repro.xsketch.synopsis import TwigXSketch

        atoms = build_atom_graph(workload.stable)
        labels = sorted(set(atoms.label))
        cid = {lab: i for i, lab in enumerate(labels)}
        xs = TwigXSketch.from_partition(
            atoms, [cid[lab] for lab in atoms.label], bucket_budget=8
        )
        quality = run_selectivity(xs, workload)
        assert quality.avg_error >= 0.0
        answers = run_answer_quality(xs, workload, queries=range(3))
        assert answers.avg_esd >= 0.0

    def test_unsupported_synopsis_rejected(self, workload):
        with pytest.raises(TypeError):
            run_selectivity(object(), workload)
