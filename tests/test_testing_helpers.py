"""Tests for the public repro.testing helpers."""

import random

import pytest

from repro.core.build import build_treesketch
from repro.core.stable import build_stable, expand_stable
from repro.testing import (
    assert_valid_synopsis,
    canonical_form,
    make_random_tree,
    summaries_equivalent,
    trees_isomorphic,
)
from repro.xmltree.tree import XMLTree


class TestTreesIsomorphic:
    def test_identical(self, paper_document):
        assert trees_isomorphic(paper_document, paper_document.copy())

    def test_sibling_order_ignored(self):
        t1 = XMLTree.from_nested(("r", ["a", ("b", ["c"])]))
        t2 = XMLTree.from_nested(("r", [("b", ["c"]), "a"]))
        assert trees_isomorphic(t1, t2)

    def test_different_structure(self):
        t1 = XMLTree.from_nested(("r", [("a", ["b"])]))
        t2 = XMLTree.from_nested(("r", ["a", "b"]))
        assert not trees_isomorphic(t1, t2)

    def test_size_shortcut(self):
        t1 = XMLTree.from_nested(("r", ["a"]))
        t2 = XMLTree.from_nested(("r", ["a", "a"]))
        assert not trees_isomorphic(t1, t2)

    def test_expand_stable_isomorphism(self, rng):
        """Lemma 3.1, now checkable as true isomorphism (not just summary
        equality): Expand(BUILD_STABLE(T)) ~ T."""
        for _ in range(5):
            tree = make_random_tree(rng, rng.randint(5, 120))
            assert trees_isomorphic(tree, expand_stable(build_stable(tree)))


class TestSummariesEquivalent:
    def test_same_document_two_builds(self, paper_document):
        a = build_stable(paper_document)
        b = build_stable(paper_document.copy())
        assert summaries_equivalent(a, b)

    def test_different_documents(self, figure3_t1, figure3_t2):
        assert not summaries_equivalent(
            build_stable(figure3_t1), build_stable(figure3_t2)
        )


class TestAssertValidSynopsis:
    def test_passes_on_good_synopsis(self, paper_document):
        stable = build_stable(paper_document)
        assert_valid_synopsis(stable, expect_elements=len(paper_document))

    def test_detects_wrong_element_total(self, paper_document):
        stable = build_stable(paper_document)
        with pytest.raises(AssertionError):
            assert_valid_synopsis(stable, expect_elements=len(paper_document) + 1)

    def test_works_on_compressed_sketch(self, paper_document):
        sketch = build_treesketch(paper_document, 120)
        assert_valid_synopsis(sketch, expect_elements=len(paper_document))


class TestCanonicalForm:
    def test_deterministic(self):
        t = XMLTree.from_nested(("r", ["b", "a"]))
        assert canonical_form(t.root) == canonical_form(t.copy().root)
