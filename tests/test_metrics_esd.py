"""Unit tests for the Element Simulation Distance."""

import pytest

from repro.metrics.esd import ESDCalculator, esd, esd_nesting_trees, nesting_tree_to_xmltree
from repro.metrics.tree_edit import tree_edit_distance
from repro.xmltree.tree import XMLTree


def doc(c1, d1, c2, d2, sc=("c", ["x"]), sd=("d", ["y", "z"])):
    """The Fig. 10 family: r with two a's carrying Sc/Sd multiplicities."""
    return XMLTree.from_nested(
        ("r", [("a", [sc] * c1 + [sd] * d1), ("a", [sc] * c2 + [sd] * d2)])
    )


class TestBasics:
    def test_self_distance_zero(self, paper_document):
        assert esd(paper_document, paper_document) == 0.0

    def test_isomorphic_zero(self, paper_document):
        assert esd(paper_document, paper_document.copy()) == 0.0

    def test_sibling_order_irrelevant(self):
        t1 = XMLTree.from_nested(("r", ["a", "b"]))
        t2 = XMLTree.from_nested(("r", ["b", "a"]))
        assert esd(t1, t2) == 0.0

    def test_symmetry(self):
        t1, t2 = doc(4, 1, 1, 4), doc(1, 1, 4, 4)
        assert esd(t1, t2) == esd(t2, t1)

    def test_positive_for_different_trees(self):
        assert esd(doc(4, 1, 1, 4), doc(1, 1, 4, 4)) > 0

    def test_different_root_labels(self):
        t1 = XMLTree.from_nested(("r", ["a"]))
        t2 = XMLTree.from_nested(("q", ["a"]))
        # Full delete + insert of both trees.
        assert esd(t1, t2) == 4.0

    def test_missing_subtree_charged_by_size(self):
        base = XMLTree.from_nested(("r", []))
        small = XMLTree.from_nested(("r", [("a", [])]))
        large = XMLTree.from_nested(("r", [("a", ["x", "y", "z"])]))
        assert esd(base, large) > esd(base, small)


class TestFigure10:
    """The paper's Fig. 10 / Example 5.1 argument."""

    def test_esd_prefers_correlation_preserving_answer(self):
        truth, t1, t2 = doc(4, 1, 1, 4), doc(1, 1, 4, 4), doc(6, 2, 2, 6)
        assert esd(truth, t2) < esd(truth, t1)

    def test_esd_prefers_t2_even_with_equal_subtree_sizes(self):
        kwargs = dict(sc=("c", ["x"]), sd=("d", ["y"]))
        truth = doc(4, 1, 1, 4, **kwargs)
        t1 = doc(1, 1, 4, 4, **kwargs)
        t2 = doc(6, 2, 2, 6, **kwargs)
        assert esd(truth, t2) < esd(truth, t1)

    def test_tree_edit_distance_cannot_discriminate(self):
        """Tree-edit rates T1 at least as close as T2 -- the metric the
        paper rejects: its per-node edit cost favours the decorrelated
        answer whose total node count is closer."""
        truth, t1, t2 = doc(4, 1, 1, 4), doc(1, 1, 4, 4), doc(6, 2, 2, 6)
        assert tree_edit_distance(truth, t1) <= tree_edit_distance(truth, t2)


class TestCalculatorReuse:
    def test_shared_calculator_consistent(self, paper_document):
        calc = ESDCalculator()
        t2 = paper_document.copy()
        assert calc.distance(paper_document, t2) == 0.0
        other = XMLTree.from_nested(("d", [("a", ["n"])]))
        d1 = calc.distance(paper_document, other)
        d2 = esd(paper_document, other)
        assert d1 == pytest.approx(d2)

    def test_emd_variant_runs(self):
        assert esd(doc(4, 1, 1, 4), doc(1, 1, 4, 4), set_distance="emd") > 0

    def test_unknown_set_distance_rejected(self):
        with pytest.raises(ValueError):
            ESDCalculator(set_distance="hamming")


class TestNestingTreeConversion:
    def test_by_variable_labels(self, paper_document):
        from repro.engine.exact import ExactEvaluator
        from repro.query.parser import parse_twig

        nt = ExactEvaluator(paper_document).evaluate(parse_twig("//a (//p)"))
        tree = nesting_tree_to_xmltree(nt, by_variable=True)
        labels = {n.label for n in tree}
        assert "a@q1" in labels
        assert "p@q2" in labels

    def test_plain_labels(self, paper_document):
        from repro.engine.exact import ExactEvaluator
        from repro.query.parser import parse_twig

        nt = ExactEvaluator(paper_document).evaluate(parse_twig("//a (//p)"))
        tree = nesting_tree_to_xmltree(nt, by_variable=False)
        assert {n.label for n in tree} == {"d", "a", "p"}

    def test_esd_nesting_trees_zero_for_same(self, paper_document):
        from repro.engine.exact import ExactEvaluator
        from repro.query.parser import parse_twig

        ev = ExactEvaluator(paper_document)
        nt1 = ev.evaluate(parse_twig("//a (//p)"))
        nt2 = ev.evaluate(parse_twig("//a (//p)"))
        assert esd_nesting_trees(nt1, nt2) == 0.0

    def test_variable_qualification_separates_bindings(self, paper_document):
        """With by_variable, the same element bound to different variables
        is not confused across answers."""
        from repro.engine.exact import ExactEvaluator
        from repro.query.parser import parse_twig

        ev = ExactEvaluator(paper_document)
        nt1 = ev.evaluate(parse_twig("//p (//k ?)"))
        nt2 = ev.evaluate(parse_twig("//p (//t ?)"))
        assert esd_nesting_trees(nt1, nt2) > 0
