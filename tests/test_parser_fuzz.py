"""Fuzz tests: the parsers must never crash, only raise QuerySyntaxError."""

import string

from hypothesis import given, settings, strategies as st

from repro.query.parser import QuerySyntaxError, parse_path, parse_twig

# Characters the grammar uses, plus noise.
ALPHABET = string.ascii_letters + "/[]()?,*|= \"'" + string.digits + ".-_"


@given(st.text(alphabet=ALPHABET, max_size=60))
@settings(max_examples=200, deadline=None)
def test_parse_path_total(text):
    try:
        path = parse_path(text)
    except QuerySyntaxError:
        return
    # A successful parse must round-trip through its own rendering.
    assert parse_path(str(path)) == path


@given(st.text(alphabet=ALPHABET, max_size=60))
@settings(max_examples=200, deadline=None)
def test_parse_twig_total(text):
    try:
        query = parse_twig(text)
    except QuerySyntaxError:
        return
    rendered = str(query)
    again = parse_twig(rendered)
    assert str(again) == rendered


@given(
    st.lists(
        st.sampled_from(["/a", "//b", "/c[/d]", "//e[//f]", '/g[/h = "v"]']),
        min_size=1,
        max_size=4,
    )
)
@settings(max_examples=100, deadline=None)
def test_concatenated_valid_fragments(fragments):
    text = "".join(fragments)
    path = parse_path(text)
    assert len(path) >= 1
    assert parse_path(str(path)) == path
