"""Unit tests for repro.xmltree.parser and serialize round-trips."""

import pytest

from repro.xmltree.parser import parse_compact, parse_xml
from repro.xmltree.serialize import to_compact, to_xml, xml_byte_size


class TestParseXML:
    def test_single_element(self):
        tree = parse_xml("<root/>")
        assert len(tree) == 1
        assert tree.root.label == "root"

    def test_nested_elements(self):
        tree = parse_xml("<a><b><c/></b><b/></a>")
        assert [n.label for n in tree] == ["a", "b", "c", "b"]

    def test_text_content_discarded(self):
        tree = parse_xml("<a>hello<b>world</b>tail</a>")
        assert len(tree) == 2

    def test_attributes_discarded(self):
        tree = parse_xml('<a x="1"><b y="2"/></a>')
        assert len(tree) == 2

    def test_document_order_preserved(self):
        tree = parse_xml("<r><x/><y/><z/></r>")
        assert [c.label for c in tree.root.children] == ["x", "y", "z"]

    def test_malformed_raises(self):
        with pytest.raises(Exception):
            parse_xml("<a><b></a>")

    def test_deep_document(self):
        text = "<x>" * 200 + "</x>" * 200
        tree = parse_xml(text)
        assert len(tree) == 200
        assert tree.height == 199


class TestXMLRoundTrip:
    def test_round_trip(self, paper_document):
        text = to_xml(paper_document)
        parsed = parse_xml(text)
        assert [n.label for n in parsed] == [n.label for n in paper_document]

    def test_byte_size_positive(self, small_tree):
        assert xml_byte_size(small_tree) == len(to_xml(small_tree).encode())


class TestParseCompact:
    def test_single_line(self):
        tree = parse_compact("r")
        assert len(tree) == 1

    def test_indented_children(self):
        tree = parse_compact("r\n a\n  b\n a")
        assert [n.label for n in tree] == ["r", "a", "b", "a"]

    def test_blank_lines_ignored(self):
        tree = parse_compact("r\n\n a\n\n b\n")
        assert len(tree) == 3

    def test_wider_indent_steps(self):
        tree = parse_compact("r\n    a\n        b")
        assert tree.height == 2

    def test_empty_input_raises(self):
        with pytest.raises(ValueError):
            parse_compact("   \n  ")

    def test_multiple_roots_raise(self):
        with pytest.raises(ValueError):
            parse_compact("r\nq")

    def test_indented_first_line_raises(self):
        with pytest.raises(ValueError):
            parse_compact("  r\n   a")

    def test_round_trip(self, paper_document):
        text = to_compact(paper_document)
        parsed = parse_compact(text)
        assert [n.label for n in parsed] == [n.label for n in paper_document]

    def test_round_trip_with_indent_4(self, small_tree):
        text = to_compact(small_tree, indent=4)
        parsed = parse_compact(text)
        assert len(parsed) == len(small_tree)
