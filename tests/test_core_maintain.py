"""Tests for incremental stable-summary maintenance."""

import random

import pytest

from repro.core.maintain import StableMaintainer
from repro.core.stable import build_stable, expand_stable
from repro.xmltree.tree import XMLTree
from tests.conftest import make_random_tree


def summaries_equivalent(a, b) -> bool:
    """Structural equality of two stable summaries up to class renaming.

    The canonical form of a class is computed bottom-up (label + sorted
    canonical child forms with counts), which is injective for stable
    summaries.
    """

    def canonical(summary):
        order = summary.topological_order()
        form = {}
        for nid in reversed(order):
            children = tuple(sorted(
                (form[c], int(k)) for c, k in summary.out.get(nid, {}).items()
            ))
            form[nid] = (summary.label[nid], children)
        return sorted((form[nid], summary.count[nid]) for nid in summary.label)

    return canonical(a) == canonical(b)


def rebuild(tree: XMLTree):
    return build_stable(XMLTree(tree.root))


class TestBasics:
    def test_initial_summary_matches_build_stable(self, paper_document):
        maintainer = StableMaintainer(paper_document)
        assert summaries_equivalent(maintainer.summary(), build_stable(paper_document))

    def test_insert_leaf(self, paper_document):
        maintainer = StableMaintainer(paper_document)
        author = paper_document.root.children[0]
        maintainer.insert_subtree(author, "n")
        assert summaries_equivalent(maintainer.summary(), rebuild(paper_document))

    def test_insert_subtree(self, paper_document):
        maintainer = StableMaintainer(paper_document)
        author = paper_document.root.children[1]
        maintainer.insert_subtree(author, ("p", ["y", "t", "k"]))
        assert summaries_equivalent(maintainer.summary(), rebuild(paper_document))

    def test_delete_subtree(self, paper_document):
        maintainer = StableMaintainer(paper_document)
        victim = paper_document.root.children[0].children[0]  # a paper
        maintainer.delete_subtree(victim)
        assert summaries_equivalent(maintainer.summary(), rebuild(paper_document))

    def test_delete_root_rejected(self, paper_document):
        maintainer = StableMaintainer(paper_document)
        with pytest.raises(ValueError):
            maintainer.delete_subtree(paper_document.root)

    def test_reattach_deleted_subtree(self, paper_document):
        maintainer = StableMaintainer(paper_document)
        victim = paper_document.root.children[0].children[0]
        maintainer.delete_subtree(victim)
        other_author = paper_document.root.children[2]
        maintainer.insert_subtree(other_author, victim)
        assert summaries_equivalent(maintainer.summary(), rebuild(paper_document))

    def test_attached_spec_rejected(self, paper_document):
        maintainer = StableMaintainer(paper_document)
        attached = paper_document.root.children[0]
        with pytest.raises(ValueError):
            maintainer.insert_subtree(paper_document.root, attached)


class TestClassGC:
    def test_empty_classes_collected(self):
        tree = XMLTree.from_nested(("r", [("a", ["x"]), ("a", ["x"])]))
        maintainer = StableMaintainer(tree)
        before = maintainer.num_classes
        # Make one 'a' unique, then revert: class count must return.
        inserted = maintainer.insert_subtree(tree.root.children[0], "y")
        grew = maintainer.num_classes
        assert grew > before
        maintainer.delete_subtree(inserted)
        assert maintainer.num_classes == before

    def test_counts_track_document(self, paper_document):
        maintainer = StableMaintainer(paper_document)
        total = sum(maintainer.summary().count.values())
        assert total == len(list(paper_document.root.iter_preorder()))
        maintainer.insert_subtree(paper_document.root.children[0], ("b", ["t"]))
        total = sum(maintainer.summary().count.values())
        assert total == len(list(paper_document.root.iter_preorder()))


class TestRandomEditSequences:
    @pytest.mark.parametrize("seed", [1, 2, 3])
    def test_equivalence_after_random_edits(self, seed):
        rng = random.Random(seed)
        tree = make_random_tree(rng, 60)
        maintainer = StableMaintainer(tree)
        for step in range(40):
            nodes = list(tree.root.iter_preorder())
            if rng.random() < 0.55 or len(nodes) < 5:
                parent = rng.choice(nodes)
                depth = rng.randint(0, 2)
                spec = _random_spec(rng, depth)
                maintainer.insert_subtree(parent, spec)
            else:
                victim = rng.choice(nodes[1:])
                maintainer.delete_subtree(victim)
            if step % 10 == 9:
                assert summaries_equivalent(maintainer.summary(), rebuild(tree))
        assert summaries_equivalent(maintainer.summary(), rebuild(tree))

    def test_summary_usable_downstream(self, paper_document):
        """The exported summary feeds the normal pipeline."""
        maintainer = StableMaintainer(paper_document)
        maintainer.insert_subtree(paper_document.root.children[2], ("p", ["y", "t"]))
        summary = maintainer.summary()
        expanded = expand_stable(summary)
        assert len(expanded) == len(list(paper_document.root.iter_preorder()))
        from repro.core.build import build_treesketch

        sketch = build_treesketch(summary, summary.size_bytes() // 2)
        sketch.validate()


def _random_spec(rng, depth):
    label = rng.choice("abcdef")
    if depth == 0:
        return label
    return (label, [_random_spec(rng, depth - 1) for _ in range(rng.randint(0, 3))])
