"""Edge cases for obs.report and crash-safety for JsonLinesSink."""

import json
import math
import os
import subprocess
import sys

import pytest

from repro import obs
from repro.obs import JsonLinesSink, FakeClock
from repro.obs.metrics import MetricsRegistry
from repro.obs.report import flatten_snapshot, render_registry, render_snapshot

pytestmark = pytest.mark.obs


class TestReportEdges:
    def test_empty_registry(self):
        text = render_registry(MetricsRegistry())
        assert "(no metrics recorded)" in text
        assert flatten_snapshot(MetricsRegistry().snapshot()) == {}

    def test_empty_sections_are_omitted(self):
        registry = MetricsRegistry()
        registry.counter("only.counter").inc()
        text = render_registry(registry)
        assert "counters" in text
        assert "gauges" not in text and "histograms" not in text

    def test_nan_histogram_stats_render(self):
        registry = MetricsRegistry()
        registry.histogram("h").observe(float("nan"))
        text = render_snapshot(registry.snapshot())
        assert "nan" in text.lower()
        flat = flatten_snapshot(registry.snapshot())
        assert math.isnan(flat["histograms.h.sum"])

    def test_inf_histogram_stats_render(self):
        registry = MetricsRegistry()
        hist = registry.histogram("h")
        hist.observe(float("inf"))
        hist.observe(1.0)
        text = render_snapshot(registry.snapshot())
        assert "inf" in text.lower()
        flat = flatten_snapshot(registry.snapshot())
        assert flat["histograms.h.max"] == float("inf")
        assert flat["histograms.h.count"] == 2

    def test_nan_gauge_flattens(self):
        registry = MetricsRegistry()
        registry.gauge("g").set(float("-inf"))
        assert flatten_snapshot(registry.snapshot())["gauges.g"] == float("-inf")

    def test_windowed_histogram_flattens(self):
        with obs.observed(clock=FakeClock()) as registry:
            registry.windowed("w").observe(3.0)
            flat = flatten_snapshot(registry.snapshot())
        assert flat["histograms.w.p99"] == 3.0
        assert flat["histograms.w.window_s"] == 60.0


class TestJsonLinesSinkSafety:
    def test_context_manager_closes(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        with JsonLinesSink(str(path)) as sink:
            sink.emit({"name": "a", "duration": 1.0})
        records = [json.loads(line) for line in path.read_text().splitlines()]
        assert [r["name"] for r in records] == ["a"]

    def test_emit_after_close_is_dropped(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        sink = JsonLinesSink(str(path))
        sink.emit({"name": "a"})
        sink.close()
        sink.emit({"name": "ghost"})  # silently dropped, no crash
        sink.close()  # idempotent
        assert len(path.read_text().splitlines()) == 1

    def test_every_record_survives_a_hard_kill(self, tmp_path):
        """Flush-per-record means an os._exit loses nothing already emitted.

        The child writes spans and dies without closing the sink or
        running atexit hooks; the parent must still read every record as
        complete, valid JSON (no torn trailing line).
        """
        path = tmp_path / "crash.jsonl"
        script = (
            "import os, sys\n"
            "from repro.obs import JsonLinesSink\n"
            "sink = JsonLinesSink(sys.argv[1])\n"
            "for i in range(50):\n"
            "    sink.emit({'name': 'span', 'seq': i})\n"
            "os._exit(1)\n"
        )
        env = dict(os.environ)
        env["PYTHONPATH"] = os.path.join(os.path.dirname(__file__), "..", "src")
        result = subprocess.run(
            [sys.executable, "-c", script, str(path)],
            env=env, timeout=60,
        )
        assert result.returncode == 1
        lines = path.read_text().splitlines()
        records = [json.loads(line) for line in lines]
        assert [r["seq"] for r in records] == list(range(50))

    def test_bounded_buffering_flushes_on_close(self, tmp_path):
        path = tmp_path / "buffered.jsonl"
        sink = JsonLinesSink(str(path), flush_every=10)
        for i in range(25):
            sink.emit({"seq": i})
        sink.close()
        assert len(path.read_text().splitlines()) == 25
