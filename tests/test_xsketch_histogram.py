"""Unit tests for the bucket-capped joint edge histograms."""

import random

import pytest

from repro.xsketch.histogram import EdgeHistogram


def make_hist(weighted, budget=100, targets=(7, 9)):
    return EdgeHistogram.from_weighted_vectors(targets, weighted, budget)


class TestExactHistogram:
    def test_total_weight(self):
        h = make_hist([((1.0, 2.0), 3.0), ((0.0, 1.0), 2.0)])
        assert h.total_weight == 5.0

    def test_duplicate_vectors_accumulate(self):
        h = make_hist([((1.0, 0.0), 2.0), ((1.0, 0.0), 3.0)])
        assert h.num_buckets == 1
        assert h.total_weight == 5.0

    def test_mean_per_target(self):
        h = make_hist([((2.0, 0.0), 1.0), ((4.0, 2.0), 1.0)])
        assert h.mean(7) == pytest.approx(3.0)
        assert h.mean(9) == pytest.approx(1.0)

    def test_mean_unknown_target_zero(self):
        h = make_hist([((1.0, 1.0), 1.0)])
        assert h.mean(999) == 0.0

    def test_prob_positive_single_dim(self):
        h = make_hist([((0.0, 1.0), 3.0), ((2.0, 1.0), 1.0)])
        assert h.prob_positive([0]) == pytest.approx(0.25)
        assert h.prob_positive([1]) == 1.0

    def test_prob_positive_any_dim(self):
        h = make_hist([((0.0, 0.0), 1.0), ((1.0, 0.0), 1.0), ((0.0, 2.0), 2.0)])
        assert h.prob_positive([0, 1]) == pytest.approx(0.75)


class TestBucketCap:
    def test_cap_collapses_rest(self):
        weighted = [((float(i), 0.0), 1.0) for i in range(10)]
        h = make_hist(weighted, budget=4)
        assert h.num_buckets == 4  # 3 exact + 1 rest
        assert h.total_weight == 10.0

    def test_rest_centroid_preserves_mean(self):
        rng = random.Random(3)
        weighted = [((float(rng.randint(0, 9)), float(rng.randint(0, 4))), 1.0)
                    for _ in range(50)]
        exact = make_hist(weighted, budget=1000)
        capped = make_hist(weighted, budget=4)
        assert capped.mean(7) == pytest.approx(exact.mean(7))
        assert capped.mean(9) == pytest.approx(exact.mean(9))

    def test_heaviest_buckets_kept(self):
        weighted = [((1.0, 1.0), 100.0)] + [((float(i + 2), 0.0), 1.0) for i in range(9)]
        h = make_hist(weighted, budget=3)
        assert (1.0, 1.0) in h.buckets

    def test_size_bytes(self):
        h = make_hist([((1.0, 2.0), 1.0)], budget=10)
        assert h.size_bytes() == 1 * 4 * 3  # one bucket, dims+1 floats


class TestSampling:
    def test_sample_deterministic_per_seed(self):
        weighted = [((float(i), 0.0), 1.0) for i in range(5)]
        h = make_hist(weighted)
        a = [h.sample_vector(random.Random(1)) for _ in range(5)]
        b = [h.sample_vector(random.Random(1)) for _ in range(5)]
        assert a == b

    def test_sample_respects_weights(self):
        h = make_hist([((0.0, 0.0), 99.0), ((5.0, 5.0), 1.0)])
        rng = random.Random(2)
        samples = [h.sample_vector(rng) for _ in range(200)]
        zeros = sum(1 for s in samples if s == (0.0, 0.0))
        assert zeros > 150

    def test_sample_empty_histogram(self):
        h = EdgeHistogram((1, 2), {})
        assert h.sample_vector(random.Random(0)) == (0.0, 0.0)
