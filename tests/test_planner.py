"""Tests for synopsis-guided twig planning."""

import pytest

from repro.core.stable import build_stable
from repro.core.treesketch import TreeSketch
from repro.datagen.datasets import imdb_like
from repro.engine.exact import ExactEvaluator
from repro.engine.planner import branch_survival, reorder_query
from repro.metrics.esd import esd_nesting_trees
from repro.query.parser import parse_twig


@pytest.fixture(scope="module")
def world():
    tree = imdb_like(scale=0.8, seed=4)
    stable = build_stable(tree)
    return tree, TreeSketch.from_stable(stable)


class TestBranchSurvival:
    def test_always_satisfied_branch_scores_one(self, world):
        tree, sketch = world
        q = parse_twig("//movie (/title)")
        survival = branch_survival(q, sketch)
        assert survival["q1"] == pytest.approx(1.0)

    def test_impossible_branch_scores_zero(self, world):
        _tree, sketch = world
        q = parse_twig("//movie (/zzz)")
        survival = branch_survival(q, sketch)
        assert survival["q1"] == 0.0

    def test_selective_branch_scores_lower(self, world):
        _tree, sketch = world
        q = parse_twig("//movie (/title, /award)")
        survival = branch_survival(q, sketch)
        title_var = next(
            n.var for n in q.nodes if n.path is not None and str(n.path) == "/title"
        )
        award_var = next(
            n.var for n in q.nodes if n.path is not None and str(n.path) == "/award"
        )
        assert survival[award_var] < survival[title_var]


class TestReorder:
    def test_semantics_preserved(self, world):
        tree, sketch = world
        ev = ExactEvaluator(tree)
        for text in [
            "//movie (/title, /award, /genre)",
            "//movie (/cast (/actor, /extra ?), /award)",
            "//movie (/review ?, /award, /title)",
        ]:
            original = parse_twig(text)
            planned = reorder_query(original, sketch)
            assert ev.selectivity(original) == ev.selectivity(planned), text
            nt_a = ev.evaluate(original)
            nt_b = ev.evaluate(planned)
            assert nt_a.size() == nt_b.size()

    def test_selective_branch_moved_first(self, world):
        _tree, sketch = world
        q = parse_twig("//movie (/title, /award)")
        planned = reorder_query(q, sketch)
        first_solid = planned.root.children[0].children[0]
        assert str(first_solid.path) == "/award"

    def test_optional_branches_last(self, world):
        _tree, sketch = world
        q = parse_twig("//movie (/genre ?, /award, /title)")
        planned = reorder_query(q, sketch)
        children = planned.root.children[0].children
        assert not children[0].optional
        assert children[-1].optional

    def test_reorder_idempotent_semantics(self, world):
        tree, sketch = world
        ev = ExactEvaluator(tree)
        q = parse_twig("//movie (/cast (/actor), /award)")
        once = reorder_query(q, sketch)
        twice = reorder_query(once, sketch)
        assert ev.selectivity(once) == ev.selectivity(twice)
