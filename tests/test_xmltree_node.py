"""Unit tests for repro.xmltree.node."""

import pytest

from repro.xmltree.node import XMLNode
from repro.xmltree.tree import XMLTree


def chain(*labels):
    root = XMLNode(labels[0])
    node = root
    for label in labels[1:]:
        node = node.new_child(label)
    return root


class TestBasics:
    def test_new_node_is_leaf_and_root(self):
        node = XMLNode("a")
        assert node.is_leaf
        assert node.is_root
        assert node.label == "a"

    def test_add_child_sets_parent(self):
        parent = XMLNode("a")
        child = XMLNode("b")
        returned = parent.add_child(child)
        assert returned is child
        assert child.parent is parent
        assert parent.children == [child]
        assert not parent.is_leaf
        assert not child.is_root

    def test_new_child_creates_labeled_node(self):
        parent = XMLNode("a")
        child = parent.new_child("b")
        assert child.label == "b"
        assert child.parent is parent


class TestTraversal:
    def test_preorder_order(self):
        root = XMLNode("r")
        a = root.new_child("a")
        b = root.new_child("b")
        a1 = a.new_child("a1")
        labels = [n.label for n in root.iter_preorder()]
        assert labels == ["r", "a", "a1", "b"]

    def test_postorder_order(self):
        root = XMLNode("r")
        a = root.new_child("a")
        root.new_child("b")
        a.new_child("a1")
        labels = [n.label for n in root.iter_postorder()]
        assert labels == ["a1", "a", "b", "r"]

    def test_postorder_children_before_parents(self):
        root = XMLNode("r")
        for i in range(3):
            c = root.new_child(f"c{i}")
            c.new_child("leaf")
        seen = set()
        for node in root.iter_postorder():
            for child in node.children:
                assert id(child) in seen
            seen.add(id(node))

    def test_deep_chain_does_not_recurse(self):
        # 50k-deep chain: would overflow a recursive traversal.
        root = chain(*["x"] * 50_000)
        assert sum(1 for _ in root.iter_preorder()) == 50_000
        assert sum(1 for _ in root.iter_postorder()) == 50_000


class TestMetrics:
    def test_subtree_size_single(self):
        assert XMLNode("a").subtree_size() == 1

    def test_subtree_size_nested(self):
        root = chain("a", "b", "c")
        assert root.subtree_size() == 3

    def test_depth_below_leaf(self):
        assert XMLNode("a").depth_below() == 0

    def test_depth_below_chain(self):
        assert chain("a", "b", "c").depth_below() == 2

    def test_depth_below_takes_max_branch(self):
        root = XMLNode("r")
        root.new_child("short")
        deep = root.new_child("deep")
        deep.new_child("leaf")
        assert root.depth_below() == 2

    def test_path_from_root(self):
        root = chain("a", "b", "c")
        leaf = root.children[0].children[0]
        assert leaf.path_from_root() == ["a", "b", "c"]

    def test_path_from_root_of_root(self):
        assert XMLNode("only").path_from_root() == ["only"]
