"""Unit tests for Zhang-Shasha tree-edit distance."""

import pytest

from repro.metrics.tree_edit import tree_edit_distance
from repro.xmltree.tree import XMLTree


def T(spec):
    return XMLTree.from_nested(spec)


class TestBaseCases:
    def test_identical_trees(self):
        t = T(("r", ["a", ("b", ["c"])]))
        assert tree_edit_distance(t, t.copy()) == 0.0

    def test_single_nodes_same_label(self):
        assert tree_edit_distance(T(("a", [])), T(("a", []))) == 0.0

    def test_single_nodes_different_label(self):
        assert tree_edit_distance(T(("a", [])), T(("b", []))) == 1.0

    def test_single_insertion(self):
        assert tree_edit_distance(T(("r", [])), T(("r", ["a"]))) == 1.0

    def test_single_deletion(self):
        assert tree_edit_distance(T(("r", ["a"])), T(("r", []))) == 1.0

    def test_relabel(self):
        assert tree_edit_distance(T(("r", ["a"])), T(("r", ["b"]))) == 1.0


class TestStructural:
    def test_chain_vs_star(self):
        chain = T(("r", [("a", [("a", [("a", [])])])]))
        star = T(("r", ["a", "a", "a"]))
        d = tree_edit_distance(chain, star)
        assert d > 0

    def test_subtree_insert_cost_is_size(self):
        t1 = T(("r", []))
        t2 = T(("r", [("a", ["b", "c"])]))
        assert tree_edit_distance(t1, t2) == 3.0

    def test_symmetry_with_unit_costs(self):
        t1 = T(("r", ["a", ("b", ["c", "d"])]))
        t2 = T(("r", [("a", ["x"]), "b"]))
        assert tree_edit_distance(t1, t2) == tree_edit_distance(t2, t1)

    def test_triangle_inequality_sample(self):
        t1 = T(("r", ["a", "b"]))
        t2 = T(("r", ["a", "c"]))
        t3 = T(("r", ["c", "c"]))
        d12 = tree_edit_distance(t1, t2)
        d23 = tree_edit_distance(t2, t3)
        d13 = tree_edit_distance(t1, t3)
        assert d13 <= d12 + d23

    def test_custom_costs(self):
        t1, t2 = T(("r", ["a"])), T(("r", []))
        assert tree_edit_distance(t1, t2, delete_cost=5.0) == 5.0
        assert tree_edit_distance(t2, t1, insert_cost=3.0) == 3.0

    def test_figure10_costs(self):
        """Fig. 10 with insertion/deletion only (the paper's setting):
        3 sub-trees inserted under one a, 3 deleted under the other."""
        sc, sd = ("c", ["x"]), ("d", ["y"])
        truth = T(("r", [("a", [sc] * 4 + [sd]), ("a", [sc] + [sd] * 4)]))
        t1 = T(("r", [("a", [sc] + [sd]), ("a", [sc] * 4 + [sd] * 4)]))
        # The naive script (3 sub-trees in, 3 out) costs 12; Zhang-Shasha
        # may find cheaper scripts via node promotion, but never cheaper
        # than the 6 structural node differences.
        d = tree_edit_distance(truth, t1)
        assert 6.0 <= d <= 12.0
