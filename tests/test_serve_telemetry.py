"""The serving daemon's telemetry plane, end to end.

Covers the acceptance bar for the operational-telemetry PR: client
request_ids appear verbatim on the matching server-side span records;
``/metrics`` is valid Prometheus exposition (checked with the parser
from test_obs_expo); windowed per-op latency feeds ``/statusz``; and the
shadow accuracy sampler is off by default and adds zero blocking work to
the request path (pinned by counter assertions while the reference is
wedged).
"""

import json
import threading
import time
import urllib.request

import pytest

from repro import obs
from repro.core.build import build_treesketch
from repro.core.stable import build_stable
from repro.engine.exact import ExactEvaluator
from repro.obs import ListSink
from repro.query.parser import parse_twig
from repro.serve import (
    ServeClient,
    ServeConfig,
    ShadowSampler,
    SketchRegistry,
    SketchServer,
    start_server_thread,
)
from repro.serve.shadow import load_reference, relative_error
from repro.workload.workload import make_workload
from repro.xmltree.tree import XMLTree

from tests.test_obs_expo import parse_exposition

pytestmark = pytest.mark.obs


def _tree() -> XMLTree:
    return XMLTree.from_nested(
        (
            "r",
            [
                ("a", [("p", ["k", "k"]), "n"]),
                ("a", [("p", ["k"]), "n", "n"]),
                ("a", [("b", ["t"])]),
            ],
        )
    )


@pytest.fixture(scope="module")
def sketch():
    return build_treesketch(build_stable(_tree()), 100 * 1024)


def _registry(sketch):
    registry = SketchRegistry()
    registry.register("main", sketch)
    return registry


def _wait_until(predicate, timeout=10.0, message="condition"):
    deadline = time.monotonic() + timeout
    while not predicate():
        if time.monotonic() > deadline:
            raise AssertionError(f"timed out waiting for {message}")
        time.sleep(0.01)


class TestRequestCorrelation:
    def test_client_id_echoed_verbatim(self, sketch):
        handle = start_server_thread(_registry(sketch), ServeConfig(port=0))
        try:
            with ServeClient("127.0.0.1", handle.port) as client:
                client.estimate("//a", request_id="my-req-007")
                assert client.last_request_id == "my-req-007"
        finally:
            handle.stop()

    def test_server_mints_unique_ids(self, sketch):
        handle = start_server_thread(_registry(sketch), ServeConfig(port=0))
        try:
            with ServeClient("127.0.0.1", handle.port) as client:
                client.estimate("//a")
                first = client.last_request_id
                client.estimate("//a")
                second = client.last_request_id
            assert first and second and first != second
            assert len(first) == 32  # uuid4 hex
        finally:
            handle.stop()

    def test_invalid_request_ids_rejected(self, sketch):
        handle = start_server_thread(_registry(sketch), ServeConfig(port=0))
        try:
            with ServeClient("127.0.0.1", handle.port) as client:
                for bad in ["", "x" * 129, 7]:
                    response = client.request("estimate", query="//a",
                                              request_id=bad)
                    assert response["ok"] is False
                    assert response["error"]["code"] == "bad_request"
                    # The connection survives; a minted id is echoed.
                    assert response.get("request_id")
        finally:
            handle.stop()

    def test_spans_carry_the_client_id(self, sketch):
        """A client-sent request_id appears verbatim on both the event-loop
        (serve.request) and worker-thread (serve.execute) span records."""
        sink = ListSink()
        with obs.observed(sink=sink):
            handle = start_server_thread(_registry(sketch), ServeConfig(port=0))
            try:
                with ServeClient("127.0.0.1", handle.port) as client:
                    client.estimate("//a", request_id="corr-42")
                    client.estimate("//a", request_id="corr-43")
            finally:
                handle.stop()
        by_id = {}
        for event in sink.events:
            attrs = event.get("attrs") or {}
            if attrs.get("request_id"):
                by_id.setdefault(attrs["request_id"], []).append(event["name"])
        assert sorted(by_id["corr-42"]) == ["serve.execute", "serve.request"]
        assert sorted(by_id["corr-43"]) == ["serve.execute", "serve.request"]

    def test_workload_replay_prefix_tags_spans(self, sketch):
        tree = _tree()
        workload = make_workload(tree, num_queries=4, seed=1,
                                 stable=build_stable(tree))
        sink = ListSink()
        with obs.observed(sink=sink):
            handle = start_server_thread(_registry(sketch), ServeConfig(port=0))
            try:
                from repro.workload.runner import run_selectivity_remote

                with ServeClient("127.0.0.1", handle.port) as client:
                    run_selectivity_remote(client, workload, sketch="main",
                                           request_id_prefix="wl")
            finally:
                handle.stop()
        ids = {(event.get("attrs") or {}).get("request_id")
               for event in sink.events
               if event.get("name") == "serve.request"}
        assert {"wl-0", "wl-1", "wl-2", "wl-3"} <= ids


class TestWindowedLatencyAndStatusz:
    def test_latency_percentiles_flow_to_statusz(self, sketch):
        with obs.observed():
            handle = start_server_thread(_registry(sketch), ServeConfig(port=0))
            try:
                with ServeClient("127.0.0.1", handle.port) as client:
                    for _ in range(5):
                        client.estimate("//a")
                status = handle.server.statusz()
            finally:
                handle.stop()
        latency = status["latency"]["estimate"]
        assert latency["count"] == 5
        assert set(latency) == {"count", "mean", "p50", "p95", "p99"}
        assert latency["p99"] >= latency["p50"] >= 0.0
        assert status["counters"]["serve.requests.estimate"] == 5
        assert status["admission"]["depth"] == 0
        assert status["protocol"] == 1
        assert [s["name"] for s in status["sketches"]] == ["main"]
        assert status["accuracy"] is None

    def test_statusz_works_with_obs_disabled(self, sketch):
        handle = start_server_thread(_registry(sketch), ServeConfig(port=0))
        try:
            with ServeClient("127.0.0.1", handle.port) as client:
                client.estimate("//a")
            status = handle.server.statusz()
        finally:
            handle.stop()
        assert status["latency"] == {}  # null registry records nothing
        assert status["counters"] == {}
        assert status["uptime_s"] >= 0.0


class TestMetricsSidecar:
    def test_scrape_parses_and_reflects_traffic(self, sketch):
        with obs.observed():
            handle = start_server_thread(
                _registry(sketch), ServeConfig(port=0, metrics_port=0))
            try:
                assert handle.metrics_port is not None
                with ServeClient("127.0.0.1", handle.port) as client:
                    for _ in range(3):
                        client.estimate("//a")
                base = f"http://{handle.metrics_host}:{handle.metrics_port}"
                with urllib.request.urlopen(base + "/metrics", timeout=5) as r:
                    body = r.read().decode("utf-8")
                with urllib.request.urlopen(base + "/healthz", timeout=5) as r:
                    health = json.loads(r.read().decode("utf-8"))
                with urllib.request.urlopen(base + "/statusz", timeout=5) as r:
                    status = json.loads(r.read().decode("utf-8"))
            finally:
                handle.stop()
        types, samples = parse_exposition(body)
        values = {name: value for name, labels, value in samples}
        assert types["treesketch_serve_requests_total"] == "counter"
        assert values["treesketch_serve_requests_total"] == "3"
        assert types["treesketch_serve_op_latency_estimate"] == "summary"
        assert health == {"status": "ok"}
        assert status["counters"]["serve.requests"] == 3

    def test_no_sidecar_without_metrics_port(self, sketch):
        handle = start_server_thread(_registry(sketch), ServeConfig(port=0))
        try:
            assert handle.metrics_port is None
            with pytest.raises(RuntimeError):
                handle.server.metrics_address
        finally:
            handle.stop()


class TestShadowSampler:
    def test_off_by_default(self, sketch):
        handle = start_server_thread(_registry(sketch), ServeConfig(port=0))
        try:
            assert handle.server.shadow is None
            with ServeClient("127.0.0.1", handle.port) as client:
                client.estimate("//a")
                stats = client.stats()
            assert stats["accuracy"] is None
            # Counter pin: no sampling work happened at all.
            assert not any(name.startswith("serve.accuracy")
                           for name in stats["metrics"]["counters"])
        finally:
            handle.stop()

    def test_fraction_requires_reference(self, sketch):
        with pytest.raises(ValueError):
            SketchServer(_registry(sketch),
                         ServeConfig(shadow_fraction=0.5))

    def test_deterministic_accumulator(self):
        sampler = ShadowSampler(lambda q: 0.0, fraction=0.5, max_queue=16)
        query = parse_twig("//a")
        outcomes = [sampler.offer("s", query, 1.0) for _ in range(6)]
        assert outcomes == [False, True, False, True, False, True]
        assert sampler.sampled_total == 3

    def test_fraction_validation(self):
        with pytest.raises(ValueError):
            ShadowSampler(lambda q: 0.0, fraction=1.5)
        with pytest.raises(ValueError):
            ShadowSampler(lambda q: 0.0, fraction=0.5, max_queue=0)

    def test_relative_error_is_sanity_bounded(self):
        assert relative_error(3.0, 2.0) == 0.5
        assert relative_error(0.5, 0.0) == 0.5  # denominator floored at 1

    def test_online_accuracy_end_to_end(self, sketch):
        """A lossless sketch shadow-scored against exact truth: error 0."""
        evaluator = ExactEvaluator(_tree())
        with obs.observed() as registry:
            handle = start_server_thread(_registry(sketch), ServeConfig(
                port=0,
                shadow_fraction=1.0,
                shadow_reference=lambda q: float(evaluator.selectivity(q)),
            ))
            try:
                sampler = handle.server.shadow
                with ServeClient("127.0.0.1", handle.port) as client:
                    for query in ["//a", "//a (//p)", "//a[//b]"]:
                        client.estimate(query)
                _wait_until(lambda: sampler.evaluated_total == 3,
                            message="shadow evaluations")
                info = sampler.info()
                stats_accuracy = handle.server.statusz()["accuracy"]
            finally:
                handle.stop()
            snapshot = registry.snapshot()
        assert info["sampled"] == 3
        assert info["evaluated"] == 3
        assert info["rel_error_mean"] == 0.0
        assert info["rel_error_max"] == 0.0
        assert stats_accuracy["evaluated"] == 3
        assert snapshot["counters"]["serve.accuracy.sampled"] == 3
        assert snapshot["counters"]["serve.accuracy.evaluated"] == 3
        assert snapshot["histograms"]["serve.accuracy.rel_error"]["max"] == 0.0
        assert "serve.accuracy.rel_error.window" in snapshot["histograms"]

    def test_shadow_adds_zero_blocking_work(self, sketch):
        """The counter pin behind the acceptance bar: with the reference
        completely wedged, sampled requests still answer immediately, the
        admission queue stays empty, and a full shadow queue drops (never
        blocks).  Evaluations only land after the reference is released.
        """
        wedged = threading.Event()
        release = threading.Event()

        def reference(query):
            wedged.set()
            release.wait(timeout=30)
            return 1.0

        with obs.observed() as registry:
            handle = start_server_thread(_registry(sketch), ServeConfig(
                port=0,
                shadow_fraction=1.0,
                shadow_reference=reference,
                shadow_max_queue=1,
            ))
            try:
                sampler = handle.server.shadow
                with ServeClient("127.0.0.1", handle.port) as client:
                    client.estimate("//a")        # drained -> wedges the thread
                    assert wedged.wait(timeout=10)
                    client.estimate("//a (//p)")  # sits in the queue (size 1)
                    client.estimate("//a[//b]")   # queue full -> dropped
                    # All three responses already returned: the wedged
                    # reference never slowed the request path.
                    assert sampler.sampled_total == 3
                    assert sampler.evaluated_total == 0
                    assert sampler.dropped_total == 1
                    assert handle.server.admission.depth == 0
                    # Data plane still live (this offer is dropped too:
                    # the queue is still full behind the wedged thread).
                    client.estimate("//a")
                release.set()
                _wait_until(lambda: sampler.evaluated_total == 2,
                            message="post-release evaluations")
            finally:
                release.set()
                handle.stop()
            snapshot = registry.snapshot()
        assert snapshot["counters"]["serve.admitted"] == 4
        assert snapshot["counters"]["serve.accuracy.sampled"] == 4
        assert snapshot["counters"]["serve.accuracy.dropped"] == 2

    def test_reference_failures_are_counted_not_fatal(self, sketch):
        def reference(query):
            raise RuntimeError("reference document is gone")

        with obs.observed() as registry:
            handle = start_server_thread(_registry(sketch), ServeConfig(
                port=0, shadow_fraction=1.0, shadow_reference=reference))
            try:
                sampler = handle.server.shadow
                with ServeClient("127.0.0.1", handle.port) as client:
                    client.estimate("//a")
                    _wait_until(lambda: sampler.failed_total == 1,
                                message="failed shadow evaluation")
                    # The sampler thread survived the exception.
                    client.estimate("//a (//p)")
                    _wait_until(lambda: sampler.failed_total == 2,
                                message="second failure")
            finally:
                handle.stop()
            snapshot = registry.snapshot()
        assert snapshot["counters"]["serve.accuracy.failed"] == 2
        assert "serve.accuracy.rel_error" not in snapshot["histograms"]


class TestLoadReference:
    def test_xml_reference_is_exact(self, tmp_path, sketch):
        from repro.xmltree.serialize import to_xml

        path = tmp_path / "doc.xml"
        path.write_text(to_xml(_tree()))
        reference = load_reference(str(path))
        query = parse_twig("//a (//p)")
        assert reference(query) == float(ExactEvaluator(_tree()).selectivity(query))

    def test_synopsis_reference(self, tmp_path, sketch):
        from repro.core.io import save_synopsis

        path = tmp_path / "stable.json"
        save_synopsis(build_stable(_tree()), str(path))
        reference = load_reference(str(path))
        assert reference(parse_twig("//a")) == 3.0
