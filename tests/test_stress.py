"""Stress and robustness tests: deep chains, wide nodes, unicode labels."""

import pytest

from repro.core.build import build_treesketch
from repro.core.estimate import estimate_selectivity
from repro.core.evaluate import eval_query
from repro.core.stable import build_stable, expand_stable
from repro.core.treesketch import TreeSketch
from repro.engine.exact import ExactEvaluator
from repro.query.parser import parse_twig
from repro.xmltree.node import XMLNode
from repro.xmltree.tree import XMLTree


class TestDeepDocuments:
    def make_chain(self, depth, label="x"):
        root = XMLNode("r")
        node = root
        for _ in range(depth):
            node = node.new_child(label)
        return XMLTree(root)

    def test_deep_chain_stable(self):
        tree = self.make_chain(3000)
        stable = build_stable(tree)
        # A uniform chain of one label has one class per depth.
        assert stable.num_nodes == 3001
        assert stable.doc_height == 3000

    def test_deep_chain_expand(self):
        tree = self.make_chain(2000)
        assert len(expand_stable(build_stable(tree))) == len(tree)

    def test_deep_chain_compression_and_query(self):
        tree = self.make_chain(800)
        sketch = build_treesketch(tree, 256)
        assert sketch.size_bytes() <= 256
        # The compressed synopsis is cyclic (recursive label merged);
        # evaluation must terminate.
        result = eval_query(sketch, parse_twig("//x"))
        assert estimate_selectivity(result) > 0

    def test_deep_exact_evaluation(self):
        tree = self.make_chain(1500)
        assert ExactEvaluator(tree).selectivity(parse_twig("//x")) == 1500


class TestWideDocuments:
    def test_wide_root(self):
        root = XMLNode("r")
        for i in range(20000):
            root.new_child("a" if i % 2 else "b")
        tree = XMLTree(root)
        stable = build_stable(tree)
        assert stable.num_nodes == 3
        ev = ExactEvaluator(tree)
        assert ev.selectivity(parse_twig("//a")) == 10000

    def test_wide_synopsis_evaluation(self):
        root = XMLNode("r")
        for i in range(5000):
            child = root.new_child(f"t{i % 50}")
            child.new_child("leaf")
        tree = XMLTree(root)
        sketch = TreeSketch.from_stable(build_stable(tree))
        result = eval_query(sketch, parse_twig("//t7 (/leaf)"))
        assert estimate_selectivity(result) == pytest.approx(100.0)


class TestUnicodeLabels:
    def test_unicode_pipeline(self):
        tree = XMLTree.from_nested(
            ("wörter", [("bücher", ["straße", "straße"]), ("bücher", ["straße"])])
        )
        stable = build_stable(tree)
        assert len(stable.nodes_with_label("bücher")) == 2
        expanded = expand_stable(stable)
        assert len(expanded) == len(tree)

    def test_unicode_serialization(self):
        from repro.xmltree.parser import parse_xml
        from repro.xmltree.serialize import to_xml

        tree = XMLTree.from_nested(("根", ["枝", "枝"]))
        again = parse_xml(to_xml(tree))
        assert [n.label for n in again] == ["根", "枝", "枝"]

    def test_exact_engine_with_unicode(self):
        tree = XMLTree.from_nested(("r", [("ä", ["ö"]), ("ä", [])]))
        ev = ExactEvaluator(tree)
        # Note: the twig *parser* restricts labels to NCName-ish ASCII;
        # programmatic construction supports any string label.
        from repro.query.path import Axis, Path, PathStep
        from repro.query.twig import TwigQuery

        query = TwigQuery()
        q1 = query.root.add_child(Path((PathStep(Axis.DESCENDANT, "ä"),)))
        q1.add_child(Path((PathStep(Axis.CHILD, "ö"),)))
        query.finalize()
        assert ev.selectivity(query) == 1
