"""Smoke test: the quickstart example must keep running end to end.

The heavier examples (minutes of generation + evaluation) are exercised
manually / in benchmarks; quickstart is cheap enough to guard in CI.
"""

import importlib.util
import pathlib
import sys


def load_example(name):
    path = pathlib.Path(__file__).parent.parent / "examples" / f"{name}.py"
    spec = importlib.util.spec_from_file_location(f"example_{name}", path)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


class TestQuickstart:
    def test_runs_and_reports(self, capsys):
        module = load_example("quickstart")
        module.main()
        out = capsys.readouterr().out
        assert "document: 28 elements" in out
        assert "count-stable summary" in out
        assert "approximate" in out
        assert "exact" in out
        assert "ESD" in out

    def test_quickstart_numbers(self, capsys):
        module = load_example("quickstart")
        module.main()
        out = capsys.readouterr().out
        # The exact side of the quickstart is deterministic.
        assert "2 binding tuples" in out
