"""Property-based tests (hypothesis) for the core invariants.

These encode the paper's formal claims:

* Lemma 3.1 -- the count-stable summary is lossless (Expand round-trips)
  and the induced partition is count-stable.
* Definition 3.2 / Section 3.2 -- the squared error of the stable sketch
  is zero; merge bookkeeping predicts applied error changes exactly.
* Section 4.3 -- EVALQUERY over a count-stable synopsis is exact, both
  for selectivities and for expanded nesting trees.
"""

from __future__ import annotations

import random

from hypothesis import given, settings, strategies as st

from repro.core.estimate import estimate_selectivity
from repro.core.evaluate import eval_query
from repro.core.expand import expand_result
from repro.core.partition import MergePartition
from repro.core.stable import build_stable, expand_stable, is_count_stable
from repro.core.treesketch import TreeSketch
from repro.engine.exact import ExactEvaluator
from repro.metrics.esd import esd, esd_nesting_trees
from repro.metrics.mac import mac_distance
from repro.query.generator import WorkloadGenerator, WorkloadOptions
from repro.xmltree.node import XMLNode
from repro.xmltree.tree import XMLTree


# ----------------------------------------------------------------------
# Strategies
# ----------------------------------------------------------------------

@st.composite
def random_trees(draw, max_size=60, labels="abcd"):
    """Random attachment trees; sizes small enough for exhaustive checks."""
    size = draw(st.integers(min_value=1, max_value=max_size))
    seed = draw(st.integers(min_value=0, max_value=2**32 - 1))
    rng = random.Random(seed)
    root = XMLNode("r")
    nodes = [root]
    for _ in range(size):
        parent = rng.choice(nodes)
        nodes.append(parent.new_child(rng.choice(labels)))
    return XMLTree(root)


# ----------------------------------------------------------------------
# Lemma 3.1
# ----------------------------------------------------------------------

@given(random_trees())
@settings(max_examples=40, deadline=None)
def test_stable_partition_is_count_stable(tree):
    summary = build_stable(tree, keep_extents=True)
    assert is_count_stable(tree, summary.class_of())


@given(random_trees())
@settings(max_examples=40, deadline=None)
def test_expand_round_trip(tree):
    summary = build_stable(tree)
    rebuilt = expand_stable(summary)
    assert len(rebuilt) == len(tree)
    again = build_stable(rebuilt)
    assert again.num_nodes == summary.num_nodes
    assert again.num_edges == summary.num_edges
    assert sorted(again.count.values()) == sorted(summary.count.values())


@given(random_trees())
@settings(max_examples=30, deadline=None)
def test_expand_preserves_esd_zero(tree):
    rebuilt = expand_stable(build_stable(tree))
    assert esd(tree, rebuilt) == 0.0


# ----------------------------------------------------------------------
# Squared error and merge bookkeeping
# ----------------------------------------------------------------------

@given(random_trees())
@settings(max_examples=30, deadline=None)
def test_stable_sketch_zero_error(tree):
    assert TreeSketch.from_stable(build_stable(tree)).squared_error() == 0.0


@given(random_trees(max_size=40), st.integers(min_value=0, max_value=2**16))
@settings(max_examples=25, deadline=None)
def test_merge_bookkeeping_consistent(tree, seed):
    rng = random.Random(seed)
    part = MergePartition(build_stable(tree))
    for _ in range(10):
        by_label = {}
        for cid, lab in part.cluster_label.items():
            by_label.setdefault(lab, []).append(cid)
        groups = [g for g in by_label.values() if len(g) >= 2]
        if not groups:
            break
        u, v = rng.sample(rng.choice(groups), 2)
        predicted = part.evaluate_merge(u, v)
        before_sq = part.total_sq
        before_size = part.size_bytes()
        part.apply_merge(u, v)
        assert abs((part.total_sq - before_sq) - predicted.errd) < 1e-6
        assert before_size - part.size_bytes() == predicted.sized
    part.check_invariants()
    exported = part.to_treesketch()
    exported.validate()
    assert abs(exported.squared_error() - max(0.0, part.total_sq)) < 1e-6


# ----------------------------------------------------------------------
# Exactness of EVALQUERY on stable synopses
# ----------------------------------------------------------------------

@given(random_trees(max_size=50), st.integers(min_value=0, max_value=2**16))
@settings(max_examples=25, deadline=None)
def test_evalquery_exact_on_stable(tree, seed):
    stable = build_stable(tree)
    generator = WorkloadGenerator(
        stable, WorkloadOptions(num_queries=3, seed=seed)
    )
    rng = random.Random(seed)
    queries = []
    for _ in range(12):
        query = generator.sample_query(rng)
        if query is not None:
            queries.append(query)
        if len(queries) == 3:
            break
    evaluator = ExactEvaluator(tree)
    sketch = TreeSketch.from_stable(stable)
    for query in queries:
        truth = evaluator.selectivity(query)
        result = eval_query(sketch, query)
        estimate = estimate_selectivity(result)
        assert abs(estimate - truth) <= 1e-6 * max(1.0, truth), str(query)
        nt_truth = evaluator.evaluate(query)
        nt_approx = expand_result(result, max_nodes=500_000)
        assert esd_nesting_trees(nt_truth, nt_approx) == 0.0, str(query)


# ----------------------------------------------------------------------
# Metric properties
# ----------------------------------------------------------------------

@given(random_trees(max_size=30))
@settings(max_examples=25, deadline=None)
def test_esd_identity(tree):
    assert esd(tree, tree.copy()) == 0.0


@given(random_trees(max_size=20), random_trees(max_size=20))
@settings(max_examples=25, deadline=None)
def test_esd_symmetric_nonnegative(t1, t2):
    d12 = esd(t1, t2)
    d21 = esd(t2, t1)
    assert d12 >= 0.0
    assert abs(d12 - d21) < 1e-9


@given(
    st.lists(st.tuples(st.integers(0, 5), st.integers(1, 4)), max_size=5),
    st.lists(st.tuples(st.integers(0, 5), st.integers(1, 4)), max_size=5),
)
@settings(max_examples=50, deadline=None)
def test_mac_symmetric_nonnegative(u, v):
    dist = lambda a, b: abs(a - b)
    mag = lambda a: 1.0
    assert mac_distance(u, v, dist, mag) >= 0.0
    assert abs(mac_distance(u, v, dist, mag) - mac_distance(v, u, dist, mag)) < 1e-9


@given(st.lists(st.tuples(st.integers(0, 5), st.integers(1, 4)), max_size=5))
@settings(max_examples=50, deadline=None)
def test_mac_identity(u):
    dist = lambda a, b: abs(a - b)
    assert mac_distance(u, u, dist, lambda a: 1.0) == 0.0
