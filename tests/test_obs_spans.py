"""Span timers with a fake clock, trace sinks, and the no-op tracer."""

import json

import pytest

from repro import obs
from repro.obs import FakeClock, JsonLinesSink, ListSink, MetricsRegistry, Tracer
from repro.obs.spans import NULL_TRACER

pytestmark = pytest.mark.obs


@pytest.fixture
def clock():
    return FakeClock()


@pytest.fixture
def sink():
    return ListSink()


@pytest.fixture
def tracer(clock, sink):
    return Tracer(clock=clock, sink=sink)


class TestSpans:
    def test_duration_from_fake_clock(self, tracer, clock, sink):
        with tracer.span("work"):
            clock.advance(2.5)
        (event,) = sink.events
        assert event["name"] == "work"
        assert event["duration"] == 2.5
        assert event["start"] == 0.0
        assert event["depth"] == 0

    def test_nested_spans_paths_and_depths(self, tracer, clock, sink):
        with tracer.span("outer"):
            clock.advance(1.0)
            with tracer.span("inner"):
                clock.advance(0.5)
            assert tracer.current_path() == "outer"
        assert tracer.current_path() == ""
        inner, outer = sink.events  # children finish (and emit) first
        assert inner["path"] == "outer/inner"
        assert inner["depth"] == 1
        assert inner["duration"] == 0.5
        assert outer["path"] == "outer"
        assert outer["duration"] == 1.5

    def test_sibling_spans_share_parent_path(self, tracer, clock, sink):
        with tracer.span("parent"):
            with tracer.span("a"):
                clock.advance(1.0)
            with tracer.span("b"):
                clock.advance(2.0)
        paths = [e["path"] for e in sink.events]
        assert paths == ["parent/a", "parent/b", "parent"]

    def test_annotate_lands_on_event(self, tracer, clock, sink):
        with tracer.span("work", phase="compress") as span:
            span.annotate(merges=7)
        (event,) = sink.events
        assert event["attrs"] == {"phase": "compress", "merges": 7}

    def test_exception_marks_event_and_unwinds_stack(self, tracer, clock, sink):
        with pytest.raises(RuntimeError):
            with tracer.span("work"):
                raise RuntimeError("boom")
        (event,) = sink.events
        assert event["error"] is True
        assert tracer.current_path() == ""

    def test_durations_recorded_as_histograms(self, clock, sink):
        registry = MetricsRegistry()
        tracer = Tracer(clock=clock, sink=sink, metrics=registry)
        for seconds in (1.0, 3.0):
            with tracer.span("work"):
                clock.advance(seconds)
        hist = registry.histogram("span.work.seconds")
        assert hist.count == 2
        assert hist.total == 4.0


class TestJsonLinesRoundTrip:
    def test_events_round_trip_through_file(self, tmp_path, clock):
        path = str(tmp_path / "trace.jsonl")
        sink = JsonLinesSink(path)
        tracer = Tracer(clock=clock, sink=sink)
        with tracer.span("outer", budget=1024):
            clock.advance(1.0)
            with tracer.span("inner"):
                clock.advance(0.25)
        sink.close()
        assert sink.events_written == 2

        lines = [line for line in open(path, encoding="utf-8").read().splitlines()]
        events = [json.loads(line) for line in lines]
        assert [e["path"] for e in events] == ["outer/inner", "outer"]
        assert events[1]["attrs"] == {"budget": 1024}
        assert events[0]["duration"] == 0.25
        assert all(e["type"] == "span" for e in events)


class TestNullTracer:
    def test_default_tracer_is_null(self):
        assert obs.get_tracer() is NULL_TRACER

    def test_null_span_is_shared_and_inert(self):
        cm1 = NULL_TRACER.span("a", attr=1)
        cm2 = NULL_TRACER.span("b")
        assert cm1 is cm2  # shared singleton: nothing allocated per span
        with cm1 as span:
            span.annotate(anything=True)  # swallowed
        assert NULL_TRACER.current_path() == ""

    def test_null_span_reentrant(self):
        with NULL_TRACER.span("a"):
            with NULL_TRACER.span("b"):
                pass  # nesting the shared singleton must not blow up


class TestObservedWiring:
    def test_observed_installs_tracer_clock_and_sink(self):
        clock, sink = FakeClock(), ListSink()
        with obs.observed(clock=clock, sink=sink) as registry:
            assert obs.get_clock() is clock
            with obs.get_tracer().span("work"):
                clock.advance(1.0)
        assert sink.events[0]["duration"] == 1.0
        # Span durations also land in the installed registry.
        assert registry.snapshot()["histograms"]["span.work.seconds"]["count"] == 1
        assert obs.get_tracer() is NULL_TRACER
