"""Integration tests: the full pipeline on generated data sets.

These mirror the experimental protocol end to end on scaled-down inputs:
generate data -> stable summary -> compress -> evaluate workload ->
score approximate answers and estimates against the exact engine.
"""

import pytest

from repro.core.build import TreeSketchBuilder
from repro.core.estimate import estimate_selectivity
from repro.core.evaluate import eval_query
from repro.core.expand import expand_result
from repro.core.stable import build_stable
from repro.core.treesketch import TreeSketch
from repro.datagen.datasets import sprot_like, xmark_like
from repro.metrics.error import average_error
from repro.metrics.esd import ESDCalculator, esd_nesting_trees
from repro.workload.workload import make_workload
from repro.xsketch.build import XSketchBuildOptions, build_twig_xsketch
from repro.xsketch.answers import sampled_answer
from repro.xsketch.synopsis import xsketch_selectivity


@pytest.fixture(scope="module")
def pipeline():
    tree = xmark_like(scale=1.5, seed=17)
    stable = build_stable(tree)
    workload = make_workload(tree, num_queries=25, seed=5, stable=stable)
    return tree, stable, workload


class TestTreeSketchPipeline:
    def test_compression_budget_ladder(self, pipeline):
        _tree, stable, workload = pipeline
        builder = TreeSketchBuilder(stable)
        errors = []
        for fraction in (0.6, 0.3, 0.12):
            budget = int(stable.size_bytes() * fraction)
            sketch = builder.compress_to(budget)
            assert sketch.size_bytes() <= budget
            pairs = [
                (float(t), estimate_selectivity(eval_query(sketch, q)))
                for q, t in zip(workload.queries, workload.truths)
            ]
            errors.append(average_error(pairs))
        # Tighter budgets cannot get (much) better.
        assert errors[-1] >= errors[0] - 0.02

    def test_estimates_reasonable_at_low_budget(self, pipeline):
        _tree, stable, workload = pipeline
        sketch = TreeSketchBuilder(stable).compress_to(stable.size_bytes() // 8)
        pairs = [
            (float(t), estimate_selectivity(eval_query(sketch, q)))
            for q, t in zip(workload.queries, workload.truths)
        ]
        # The paper reports < 10% at comparable compression.
        assert average_error(pairs) < 0.25

    def test_answers_close_at_low_budget(self, pipeline):
        _tree, stable, workload = pipeline
        sketch = TreeSketchBuilder(stable).compress_to(stable.size_bytes() // 8)
        calc = ESDCalculator()
        esds = []
        for i in range(10):
            truth = workload.evaluator.evaluate(workload.queries[i])
            approx = expand_result(eval_query(sketch, workload.queries[i]))
            esds.append(esd_nesting_trees(truth, approx, calculator=calc))
        stable_esds = []
        zero = TreeSketch.from_stable(stable)
        for i in range(10):
            truth = workload.evaluator.evaluate(workload.queries[i])
            approx = expand_result(eval_query(zero, workload.queries[i]))
            stable_esds.append(esd_nesting_trees(truth, approx, calculator=calc))
        assert sum(stable_esds) == 0.0
        assert all(d >= 0 for d in esds)


class TestHeadToHead:
    """The paper's central comparison on one scaled-down data set."""

    @pytest.fixture(scope="class")
    def contest(self, pipeline):
        tree, stable, workload = pipeline
        budget = stable.size_bytes() // 6
        treesketch = TreeSketchBuilder(stable).compress_to(budget)
        # Held-out training workload: the baseline must not be scored on
        # the queries it was fit to.
        training = make_workload(tree, num_queries=20, seed=99, stable=stable)
        xsketch = build_twig_xsketch(
            stable,
            budget,
            training.queries,
            training.truths,
            XSketchBuildOptions(sample_size=8, candidate_clusters=3),
        )[budget]
        return treesketch, xsketch, workload

    def test_treesketch_wins_selectivity(self, contest):
        treesketch, xsketch, workload = contest
        ts_pairs = [
            (float(t), estimate_selectivity(eval_query(treesketch, q)))
            for q, t in zip(workload.queries, workload.truths)
        ]
        xs_pairs = [
            (float(t), xsketch_selectivity(xsketch, q))
            for q, t in zip(workload.queries, workload.truths)
        ]
        # Allow slack: the claim is "consistently better", tested on a
        # small sample here; equality can occur on easy workloads.
        assert average_error(ts_pairs) <= average_error(xs_pairs) + 0.02

    def test_treesketch_wins_answers(self, contest):
        treesketch, xsketch, workload = contest
        calc = ESDCalculator()
        ts_total = xs_total = 0.0
        for i in range(12):
            truth = workload.evaluator.evaluate(workload.queries[i])
            ts_nt = expand_result(eval_query(treesketch, workload.queries[i]))
            xs_nt = sampled_answer(xsketch, workload.queries[i], seed=3)
            ts_total += esd_nesting_trees(truth, ts_nt, calculator=calc)
            xs_total += esd_nesting_trees(truth, xs_nt, calculator=calc)
        assert ts_total <= xs_total


class TestSProtPipeline:
    def test_sprot_smoke(self):
        tree = sprot_like(scale=0.8, seed=4)
        stable = build_stable(tree)
        workload = make_workload(tree, num_queries=10, seed=0, stable=stable)
        sketch = TreeSketchBuilder(stable).compress_to(stable.size_bytes() // 4)
        pairs = [
            (float(t), estimate_selectivity(eval_query(sketch, q)))
            for q, t in zip(workload.queries, workload.truths)
        ]
        assert average_error(pairs) < 0.4
