"""Corrupt/truncated ``.tsb`` stores and stale cache sidecars.

Every way a store file can be wrong must surface as a clean
:class:`SynopsisFormatError` (a ValueError, so existing CLI/registry
error handling catches it) -- never a raw ``struct.error``, an mmap
crash, or silently garbled tables.  And a cache sidecar that does not
match its synopsis checksum must be ignored, never served.
"""

import json
import struct

import pytest

from repro.core.build import build_treesketch
from repro.core.io import load_synopsis, save_synopsis
from repro.core.store import (
    TSB_MAGIC,
    SynopsisFormatError,
    file_checksum,
    load_cache_sidecar,
    read_tsb_info,
    save_cache_sidecar,
    sidecar_path,
    write_tsb,
)


@pytest.fixture
def tsb_path(paper_document, tmp_path):
    sketch = build_treesketch(paper_document, 120)
    path = tmp_path / "sketch.tsb"
    write_tsb(sketch, str(path))
    return path


def _corrupt(path, offset, data):
    raw = bytearray(path.read_bytes())
    raw[offset:offset + len(data)] = data
    path.write_bytes(bytes(raw))


class TestCorruptStores:
    def test_bad_magic(self, tsb_path):
        _corrupt(tsb_path, 0, b"NOTASYN\x00")
        with pytest.raises(SynopsisFormatError, match="bad magic"):
            load_synopsis(str(tsb_path))

    def test_wrong_version(self, tsb_path):
        _corrupt(tsb_path, len(TSB_MAGIC), struct.pack("<I", 99))
        with pytest.raises(SynopsisFormatError, match="version 99"):
            load_synopsis(str(tsb_path))

    def test_header_checksum_mismatch(self, tsb_path):
        # Flip the root_id field without re-signing the header.
        _corrupt(tsb_path, 16, struct.pack("<q", 12345))
        with pytest.raises(SynopsisFormatError, match="header checksum"):
            load_synopsis(str(tsb_path))

    def test_payload_checksum_mismatch(self, tsb_path):
        # Flip one byte deep inside a section: the header parses fine,
        # the payload CRC catches the damage before any table is built.
        size = tsb_path.stat().st_size
        _corrupt(tsb_path, size - 3, b"\xff")
        with pytest.raises(SynopsisFormatError, match="payload checksum"):
            load_synopsis(str(tsb_path))

    def test_truncated_mid_section(self, tsb_path):
        raw = tsb_path.read_bytes()
        tsb_path.write_bytes(raw[: len(raw) // 2])
        with pytest.raises(SynopsisFormatError,
                           match="past end of file|truncated"):
            load_synopsis(str(tsb_path))

    def test_truncated_to_header_only(self, tsb_path):
        raw = tsb_path.read_bytes()
        tsb_path.write_bytes(raw[:64])
        with pytest.raises(SynopsisFormatError):
            load_synopsis(str(tsb_path))

    def test_truncated_below_header(self, tsb_path):
        tsb_path.write_bytes(tsb_path.read_bytes()[:17])
        with pytest.raises(SynopsisFormatError, match="too small"):
            load_synopsis(str(tsb_path))

    def test_empty_file(self, tmp_path):
        path = tmp_path / "empty.tsb"
        path.write_bytes(b"")
        with pytest.raises(SynopsisFormatError, match="too small"):
            read_tsb_info(str(path))

    def test_inspect_info_rejects_corruption_too(self, tsb_path):
        _corrupt(tsb_path, 0, b"NOTASYN\x00")
        with pytest.raises(SynopsisFormatError):
            read_tsb_info(str(tsb_path))

    def test_valid_file_still_loads_after_suite_setup(self, tsb_path):
        # Guard against the fixture itself being subtly wrong.
        info = read_tsb_info(str(tsb_path))
        assert info["kind"] == "treesketch"
        loaded = load_synopsis(str(tsb_path))
        loaded.validate()


class TestCacheSidecar:
    def test_round_trip(self, tsb_path):
        checksum = file_checksum(str(tsb_path))
        save_cache_sidecar(str(tsb_path), checksum,
                           selectivities={"//a (//p)": 12.5})
        doc = load_cache_sidecar(str(tsb_path), checksum)
        assert doc is not None
        assert doc["selectivities"] == {"//a (//p)": 12.5}

    def test_float_exactness(self, tsb_path):
        # "Never wrong" requires the persisted selectivity to round-trip
        # bit-for-bit, including awkward values.
        checksum = file_checksum(str(tsb_path))
        awkward = {"q1": 0.1 + 0.2, "q2": 1e-308, "q3": 12345678.000000001}
        save_cache_sidecar(str(tsb_path), checksum, selectivities=awkward)
        doc = load_cache_sidecar(str(tsb_path), checksum)
        assert doc["selectivities"] == awkward

    def test_stale_checksum_ignored(self, tsb_path):
        checksum = file_checksum(str(tsb_path))
        save_cache_sidecar(str(tsb_path), checksum,
                           selectivities={"//a": 3.0})
        assert load_cache_sidecar(str(tsb_path), checksum + 1) is None

    def test_corrupt_sidecar_ignored(self, tsb_path):
        checksum = file_checksum(str(tsb_path))
        sidecar = sidecar_path(str(tsb_path))
        with open(sidecar, "w") as handle:
            handle.write("{not json")
        assert load_cache_sidecar(str(tsb_path), checksum) is None

    def test_absent_sidecar_is_none(self, tsb_path):
        assert load_cache_sidecar(
            str(tsb_path), file_checksum(str(tsb_path))) is None

    def test_update_preserves_other_payload(self, tsb_path):
        checksum = file_checksum(str(tsb_path))
        save_cache_sidecar(str(tsb_path), checksum,
                           memo={"options": "v1:x", "entries": [[1, 2, 0, 0, 0.5, 1.0, 2]]})
        save_cache_sidecar(str(tsb_path), checksum,
                           selectivities={"//a": 3.0})
        doc = load_cache_sidecar(str(tsb_path), checksum)
        assert doc["memo"]["options"] == "v1:x"
        assert doc["selectivities"] == {"//a": 3.0}

    def test_update_drops_payload_of_stale_sidecar(self, tsb_path):
        checksum = file_checksum(str(tsb_path))
        save_cache_sidecar(str(tsb_path), checksum - 7,
                           memo={"options": "v1:x", "entries": []})
        save_cache_sidecar(str(tsb_path), checksum,
                           selectivities={"//a": 3.0})
        doc = load_cache_sidecar(str(tsb_path), checksum)
        assert "memo" not in doc

    def test_stale_sidecar_counts_metric(self, tsb_path):
        from repro import obs

        obs.enable()
        try:
            load_cache_sidecar(str(tsb_path), 0xDEAD)  # no sidecar: absent
            save_cache_sidecar(str(tsb_path), 123, selectivities={"//a": 1.0})
            assert load_cache_sidecar(str(tsb_path), 456) is None
            counter = obs.get_metrics().counter("store.cache.ignored_stale")
            assert counter.value >= 1
        finally:
            obs.disable()


class TestRegistryWarmRestart:
    """The registry-level warm path: seed on load, persist on save."""

    def _register(self, tmp_path, paper_document, name="xm"):
        from repro.serve.registry import SketchRegistry

        sketch = build_treesketch(paper_document, 120)
        path = tmp_path / f"{name}.tsb"
        write_tsb(sketch, str(path))
        registry = SketchRegistry()
        return registry, registry.load(str(path), name=name), path

    def test_save_then_reload_warms_cache(self, tmp_path, paper_document):
        from repro.query.parser import parse_twig
        from repro.serve.registry import SketchRegistry

        registry, entry, path = self._register(tmp_path, paper_document)
        query = parse_twig("//a (//p)")
        want = entry.cache.selectivity(query)
        assert registry.save_caches() == 1
        assert sidecar_path(str(path))

        fresh = SketchRegistry()
        warmed = fresh.load(str(path), name="xm")
        assert warmed.cache.peek_selectivity(query) == want
        # First request was a hit -- the warm-restart pin.
        assert warmed.cache.hits == 1 and warmed.cache.misses == 0

    def test_stale_sidecar_not_served(self, tmp_path, paper_document):
        from repro.query.parser import parse_twig
        from repro.serve.registry import SketchRegistry

        registry, entry, path = self._register(tmp_path, paper_document)
        query = parse_twig("//a (//p)")
        entry.cache.selectivity(query)
        registry.save_caches()
        # The synopsis changes out from under its sidecar.
        sketch2 = build_treesketch(paper_document, 200)
        write_tsb(sketch2, str(path))

        fresh = SketchRegistry()
        cold = fresh.load(str(path), name="xm")
        assert cold.cache.peek_selectivity(query) is None
        assert cold.cache.hits == 0

    def test_json_loads_have_no_sidecar_path(self, tmp_path, paper_document):
        from repro.serve.registry import SketchRegistry

        sketch = build_treesketch(paper_document, 120)
        path = tmp_path / "plain.json"
        save_synopsis(sketch, str(path))
        registry = SketchRegistry()
        entry = registry.load(str(path))
        assert entry.checksum is None
        assert registry.save_caches() == 0
