"""Shared configuration for the benchmark suite.

Each benchmark regenerates one of the paper's tables or figures, printing
the rows and persisting them under ``benchmarks/results/`` so the numbers
survive pytest's output capture.  Timings of the representative operations
are taken with pytest-benchmark.

Scaling knobs (see repro.experiments): REPRO_WORKLOAD_SIZE,
REPRO_ESD_QUERIES, REPRO_BUDGETS_KB.
"""

from __future__ import annotations

import os
import pathlib

import pytest

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


def emit(name: str, text: str) -> None:
    """Print a result table and persist it under benchmarks/results/."""
    print("\n" + text + "\n")
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")


def emit_metrics(name: str, registry) -> dict:
    """Persist a registry's snapshot: text table + flat JSON.

    Writes ``results/<name>.txt`` (the --stats style table) and
    ``results/<name>.json`` (dotted scalar keys, ready to merge into a
    ``BENCH_*.json`` trajectory next to wall-clock numbers).  Returns the
    flat dict.
    """
    import json

    from repro.obs.report import flatten_snapshot, render_registry

    emit(name, render_registry(registry, title=f"{name} (internal counters)"))
    flat = flatten_snapshot(registry.snapshot())
    (RESULTS_DIR / f"{name}.json").write_text(json.dumps(flat, indent=2) + "\n")
    return flat


@pytest.fixture
def obs_registry():
    """Opt-in live metrics for one benchmark; restores the no-op default."""
    from repro import obs

    with obs.observed() as registry:
        yield registry


@pytest.fixture(scope="session")
def budgets_kb():
    from repro.experiments.harness import budgets_kb as _budgets

    return _budgets()
