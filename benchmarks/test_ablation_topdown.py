"""Ablation A1: bottom-up merging vs top-down splitting (Section 4.2).

The paper: "In the clustering literature, bottom-up algorithms have been
shown to perform better than their top-down counterparts; in addition, we
have experimentally verified that bottom-up TREESKETCH construction yields
much better results".  This benchmark verifies that claim with a top-down
comparator that greedily splits the label-split graph by squared-error
reduction -- same objective and size model, opposite search direction.
"""

from benchmarks.conftest import emit
from repro.experiments.ablations import topdown_vs_bottomup
from repro.experiments.harness import load_bundle
from repro.experiments.reporting import format_table


def test_bottom_up_beats_top_down(benchmark):
    bundle = load_bundle("XMark-TX")
    budgets = [10, 25]
    rows = topdown_vs_bottomup(bundle, budgets, esd_queries=20)
    emit(
        "ablation_topdown",
        format_table(
            "Ablation A1: bottom-up vs top-down TreeSketch construction (XMark-TX)",
            ["budget KB", "bottom-up err %", "top-down err %",
             "bottom-up ESD", "top-down ESD"],
            rows,
        ),
    )
    bu_err = sum(r[1] for r in rows)
    td_err = sum(r[2] for r in rows)
    assert bu_err <= td_err + 1.0, rows  # bottom-up at least as accurate
    bu_esd = sum(r[3] for r in rows)
    td_esd = sum(r[4] for r in rows)
    assert bu_esd <= td_esd * 1.1, rows

    from repro.experiments.ablations import build_treesketch_topdown

    benchmark.pedantic(
        lambda: build_treesketch_topdown(bundle.stable, 10 * 1024),
        rounds=1,
        iterations=1,
    )
