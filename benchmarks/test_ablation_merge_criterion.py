"""Ablation A4: does the marginal-gain merge criterion matter?

TSBUILD orders merges by ``errd / sized`` (Fig. 5).  This ablation
replaces the criterion with two degenerate policies at the same budget:

* **random** -- merge uniformly random same-label pairs;
* **size-greedy** -- always merge the pair saving the most bytes,
  ignoring error (``errd`` weight zero).

Both meet the budget; only the marginal-gain policy should meet it with
low squared error and low estimation error, quantifying how much of the
paper's quality comes from the criterion rather than from merging per se.
"""

import random

from benchmarks.conftest import emit
from repro.core.build import TreeSketchBuilder
from repro.core.partition import MergePartition
from repro.experiments.harness import load_bundle
from repro.experiments.reporting import format_table
from repro.workload.runner import run_selectivity

BUDGET_KB = 15


def merge_randomly(stable, budget_bytes, seed=0):
    rng = random.Random(seed)
    part = MergePartition(stable)
    while part.size_bytes() > budget_bytes:
        by_label = {}
        for cid, lab in part.cluster_label.items():
            by_label.setdefault(lab, []).append(cid)
        groups = [g for g in by_label.values() if len(g) >= 2]
        if not groups:
            break
        u, v = rng.sample(rng.choice(groups), 2)
        part.apply_merge(u, v)
    return part.to_treesketch()


def merge_size_greedy(stable, budget_bytes, sample=64, seed=0):
    """Always apply the candidate saving the most bytes (errd ignored)."""
    rng = random.Random(seed)
    part = MergePartition(stable)
    while part.size_bytes() > budget_bytes:
        by_label = {}
        for cid, lab in part.cluster_label.items():
            by_label.setdefault(lab, []).append(cid)
        groups = [g for g in by_label.values() if len(g) >= 2]
        if not groups:
            break
        best = None
        for _ in range(sample):
            u, v = rng.sample(rng.choice(groups), 2)
            saved = part.evaluate_merge(u, v).sized
            if best is None or saved > best[0]:
                best = (saved, u, v)
        part.apply_merge(best[1], best[2])
    return part.to_treesketch()


def test_merge_criterion_matters(benchmark):
    bundle = load_bundle("XMark-TX")
    budget = BUDGET_KB * 1024

    marginal = TreeSketchBuilder(bundle.stable).compress_to(budget)
    randomized = merge_randomly(bundle.stable, budget)
    size_greedy = merge_size_greedy(bundle.stable, budget)

    rows = []
    for name, sketch in [
        ("marginal gain (paper)", marginal),
        ("size-greedy", size_greedy),
        ("random", randomized),
    ]:
        quality = run_selectivity(sketch, bundle.workload)
        rows.append(
            [name, sketch.num_nodes, sketch.squared_error(),
             quality.avg_error * 100]
        )
    emit(
        "ablation_merge_criterion",
        format_table(
            f"Ablation A4: merge-selection policy at {BUDGET_KB}KB (XMark-TX)",
            ["policy", "nodes", "sq(TS)", "sel err %"],
            rows,
        ),
    )

    paper_err = rows[0][3]
    for name, _n, _sq, err in rows[1:]:
        assert paper_err <= err, (name, paper_err, err)
    # The criterion should beat *random* by a wide margin.
    assert rows[2][3] > 1.5 * paper_err or rows[2][2] > 2 * rows[0][2], rows

    benchmark.pedantic(
        lambda: merge_randomly(bundle.stable, budget), rounds=1, iterations=1
    )
