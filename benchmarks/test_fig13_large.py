"""Figure 13: TreeSketch estimation error on the large data sets.

Paper (Fig. 13): across IMDB, XMark, SwissProt, and DBLP, estimation error
drops below 5% at a 50 KB budget -- a tiny fraction of each document --
and degrades gracefully toward 10 KB.  The reproduced claims are the
<~5% @ 50 KB point and the monotone-ish improvement with budget.

The timed operation is the budget-sweep compression on the largest stable
summary (one pass serves all budgets).
"""

from benchmarks.conftest import emit
from repro.core.build import TreeSketchBuilder
from repro.experiments.figures import fig13_series
from repro.experiments.harness import load_bundle
from repro.experiments.reporting import format_table


def test_fig13_large_datasets(benchmark):
    series = fig13_series()
    rows = []
    names = list(series)
    budgets = [row[0] for row in series[names[0]]]
    for i, kb in enumerate(budgets):
        rows.append([kb] + [series[name][i][1] for name in names])
    emit(
        "fig13",
        format_table(
            "Figure 13: TreeSketch estimation error (%), large data sets",
            ["budget KB"] + names,
            rows,
        ),
    )

    for name in names:
        errors = {kb: err for kb, err in series[name]}
        top_budget = max(errors)
        assert errors[top_budget] < 8.0, (
            f"{name}: expected <~5-8% at {top_budget}KB, got {errors[top_budget]:.1f}%"
        )
        # Graceful degradation: the largest budget is never (much) worse
        # than the smallest.
        assert errors[top_budget] <= errors[min(errors)] + 1.0, errors

    bundle = load_bundle("SProt")
    benchmark.pedantic(
        lambda: TreeSketchBuilder(bundle.stable).compress_to(10 * 1024),
        rounds=1,
        iterations=1,
    )
