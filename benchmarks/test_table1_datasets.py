"""Table 1: data-set characteristics.

Paper (Table 1): four data sets, 100k-2M elements, 3-100 MB files, with
count-stable summaries of 77 KB - 2.6 MB -- i.e. the lossless structural
summary is orders of magnitude smaller than the document but much larger
than the 10-50 KB synopsis budgets.  The generated stand-ins must (and do)
reproduce that ordering; see DESIGN.md for the data substitution.

The timed operation is BUILD_STABLE (Fig. 4), which the paper claims is
linear in the document size.
"""

from benchmarks.conftest import emit
from repro.core.stable import build_stable
from repro.experiments.harness import dataset_names, load_bundle
from repro.experiments.reporting import format_table
from repro.experiments.tables import table1_rows


def test_table1_dataset_characteristics(benchmark):
    rows = table1_rows()
    emit(
        "table1",
        format_table(
            "Table 1: data set characteristics (cf. paper Table 1)",
            ["data set", "elements", "file size (MB)", "stable synopsis (KB)"],
            rows,
        ),
    )
    # Sanity: every stable summary losslessly compresses its document.
    for _name, elements, _mb, stable_kb in rows:
        assert stable_kb * 1024 < elements * 8

    bundle = load_bundle(dataset_names(tx_only=True)[0])
    benchmark.pedantic(build_stable, args=(bundle.tree,), rounds=3, iterations=1)
