"""Value-predicate estimation accuracy (the values extension at scale).

Generates a movie data set with skewed categorical leaf values, samples a
workload where a quarter of the predicates are value tests
``[path = "v"]``, and compares three estimators:

* a value-annotated TreeSketch (heavy hitters + uniform tail),
* the same TreeSketch without annotation (structural upper bound),
* exact evaluation (truth).

The claim: annotation cuts the average error on value-test queries by a
large factor at negligible space cost, and leaves purely structural
queries untouched.
"""

import random

from benchmarks.conftest import emit
from repro.core.build import TreeSketchBuilder
from repro.core.estimate import estimate_selectivity
from repro.core.evaluate import eval_query
from repro.core.stable import build_stable
from repro.datagen.datasets import imdb_like
from repro.engine.exact import ExactEvaluator
from repro.experiments.reporting import format_table
from repro.metrics.error import average_error
from repro.query.generator import WorkloadGenerator, WorkloadOptions
from repro.query.path import ValueTest
from repro.values import annotate_sketch_values, annotate_stable_values

GENRES = ["scifi", "crime", "drama", "comedy", "horror", "romance", "war"]


def has_value_test(query) -> bool:
    return any(
        isinstance(pred, ValueTest)
        for node in query.nodes
        if node.path is not None
        for step in node.path.steps
        for pred in step.predicates
    )


def test_value_annotation_accuracy(benchmark):
    tree = imdb_like(scale=4.0, seed=31)
    rng = random.Random(7)
    weights = [1 / (r ** 1.2) for r in range(1, len(GENRES) + 1)]
    for node in tree.nodes_with_label("genre"):
        node.value = rng.choices(GENRES, weights=weights, k=1)[0]

    stable = build_stable(tree, keep_extents=True)
    summaries = annotate_stable_values(stable, tree, top_k=8)

    generator = WorkloadGenerator(
        stable,
        WorkloadOptions(
            num_queries=120, seed=5, predicate_prob=0.5, value_predicate_prob=0.6
        ),
    )
    queries = generator.generate()
    value_queries = [q for q in queries if has_value_test(q)]
    assert len(value_queries) >= 20, "workload must exercise value tests"

    evaluator = ExactEvaluator(tree)
    truths = {id(q): float(evaluator.selectivity(q)) for q in queries}

    sketch = TreeSketchBuilder(stable).compress_to(12 * 1024)
    annotate_sketch_values(sketch, summaries, top_k=8)
    bare = TreeSketchBuilder(stable).compress_to(12 * 1024)  # no values

    def err(synopsis, subset):
        pairs = [
            (truths[id(q)], estimate_selectivity(eval_query(synopsis, q)))
            for q in subset
        ]
        return average_error(pairs) * 100

    structural_queries = [q for q in queries if not has_value_test(q)]
    rows = [
        ["value-test queries", len(value_queries),
         err(sketch, value_queries), err(bare, value_queries)],
        ["structural queries", len(structural_queries),
         err(sketch, structural_queries), err(bare, structural_queries)],
    ]
    extra_kb = sum(s.size_bytes() for s in sketch.values.values()) / 1024
    emit(
        "values_accuracy",
        format_table(
            f"Value-predicate estimation (12KB sketch + {extra_kb:.2f}KB values)",
            ["query class", "n", "annotated err %", "unannotated err %"],
            rows,
        ),
    )

    annotated_err, bare_err = rows[0][2], rows[0][3]
    assert annotated_err < bare_err * 0.6, rows  # large improvement
    assert abs(rows[1][2] - rows[1][3]) < 1e-9  # structural untouched

    query = value_queries[0]
    benchmark.pedantic(
        lambda: estimate_selectivity(eval_query(sketch, query)),
        rounds=5,
        iterations=1,
    )
