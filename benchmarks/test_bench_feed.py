"""The perf-trajectory feed: BENCH_build.json / BENCH_eval.json.

Runs the seed ("before") and optimized ("after") implementations of the
two hot paths back to back on the same machine, in the same process, and
records wall-clock plus the observability counters into ``BENCH_*.json``
at the repository root.  Future PRs append to this trajectory rather than
re-claiming speedups in prose; docs/PERFORMANCE.md explains the knobs and
how to reproduce these numbers.

* Construction: TSBUILD on the largest bundled dataset (XMark, the
  biggest count-stable summary of repro.datagen.DATASETS) at the paper's
  10 KB budget, three arms: before = ``TSBuildOptions(reference=True)``
  (the seed scorer and from-scratch CREATEPOOL, verbatim); after = the
  optimized dict path (``kernel="dicts"``); kernel = the flat-array
  scoring kernel (``kernel="arrays"``, the shipping default via
  ``"auto"``).  All three sketches are asserted identical; the dict-path
  speedup must hold the >= 1.5x acceptance bar of the perf overhaul and
  the arrays kernel must be strictly faster than the dict path.

* Serving: a repeated selectivity workload over the built sketch, with
  and without the canonical-query LRU cache.

``REPRO_BENCH_ROUNDS`` scales the eval-side repetition (default 3).
"""

from __future__ import annotations

import json
import os
import pathlib
import platform

from benchmarks.conftest import emit
from repro import obs
from repro.core.build import TSBuildOptions, TreeSketchBuilder
from repro.core.qcache import QueryCache
from repro.core.stable import build_stable
from repro.datagen.datasets import DATASETS
from repro.obs import get_clock
from repro.obs.report import flatten_snapshot
from repro.workload.runner import run_selectivity
from repro.workload.workload import make_workload

REPO_ROOT = pathlib.Path(__file__).resolve().parents[1]
DATASET = "XMark"
BUDGET_KB = 10
EVAL_QUERIES = 30
MIN_BUILD_SPEEDUP = 1.5


def _machine() -> dict:
    return {
        "platform": platform.platform(),
        "python": platform.python_version(),
        "cpus": os.cpu_count(),
    }


def _sketch_state(sketch):
    return (dict(sketch.label), dict(sketch.count), dict(sketch.stats),
            sketch.root_id)


def _timed_build(stable, options):
    clock = get_clock()
    with obs.observed() as registry:
        start = clock.now()
        builder = TreeSketchBuilder(stable, options)
        sketch = builder.compress_to(BUDGET_KB * 1024)
        seconds = clock.now() - start
    return sketch, seconds, flatten_snapshot(registry.snapshot())


def test_bench_feed():
    clock = get_clock()
    rounds = int(os.environ.get("REPRO_BENCH_ROUNDS", "3"))
    tree = DATASETS[DATASET]()
    stable = build_stable(tree)

    # ------------------------------------------------------------------
    # Construction: seed vs dict path vs array kernel, same machine,
    # same process.
    # ------------------------------------------------------------------
    before_sketch, before_s, before_counters = _timed_build(
        stable, TSBuildOptions(reference=True)
    )
    after_sketch, after_s, after_counters = _timed_build(
        stable, TSBuildOptions(kernel="dicts")
    )
    kernel_sketch, kernel_s, kernel_counters = _timed_build(
        stable, TSBuildOptions(kernel="arrays")
    )
    assert _sketch_state(before_sketch) == _sketch_state(after_sketch), (
        "optimized TSBUILD diverged from the seed implementation"
    )
    assert _sketch_state(before_sketch) == _sketch_state(kernel_sketch), (
        "array-kernel TSBUILD diverged from the seed implementation"
    )
    build_speedup = before_s / after_s
    kernel_speedup = before_s / kernel_s

    def _tsbuild_counters(flat):
        return {k: v for k, v in flat.items()
                if k.startswith("counters.tsbuild.")}

    build_doc = {
        "benchmark": "tsbuild_construction",
        "dataset": DATASET,
        "budget_kb": BUDGET_KB,
        "elements": len(tree),
        "stable_summary_kb": round(stable.size_bytes() / 1024, 1),
        "machine": _machine(),
        "before": {
            "impl": "seed (TSBuildOptions(reference=True))",
            "seconds": round(before_s, 3),
            "counters": _tsbuild_counters(before_counters),
        },
        "after": {
            "impl": "optimized dict path (memoize + incremental_pool + "
                    "fast scorer, kernel='dicts')",
            "seconds": round(after_s, 3),
            "counters": _tsbuild_counters(after_counters),
        },
        "kernel": {
            "impl": "array kernel (flat CSR partition state, "
                    "kernel='arrays')",
            "seconds": round(kernel_s, 3),
            "counters": _tsbuild_counters(kernel_counters),
        },
        "speedup": round(build_speedup, 2),
        "speedup_kernel": round(kernel_speedup, 2),
        "kernel_vs_dicts": round(after_s / kernel_s, 2),
    }
    (REPO_ROOT / "BENCH_build.json").write_text(
        json.dumps(build_doc, indent=2) + "\n"
    )

    # ------------------------------------------------------------------
    # Serving: repeated workload, uncached vs QueryCache.
    # ------------------------------------------------------------------
    workload = make_workload(tree, num_queries=EVAL_QUERIES, seed=7,
                             stable=stable)
    sketch = after_sketch

    with obs.observed() as registry:
        start = clock.now()
        for _ in range(rounds):
            uncached = run_selectivity(sketch, workload)
        uncached_s = clock.now() - start
    uncached_counters = flatten_snapshot(registry.snapshot())

    with obs.observed() as registry:
        cache = QueryCache(sketch, maxsize=4 * EVAL_QUERIES)
        start = clock.now()
        for _ in range(rounds):
            cached = run_selectivity(sketch, workload, cache=cache)
        cached_s = clock.now() - start
    cached_counters = flatten_snapshot(registry.snapshot())

    assert cached.per_query == uncached.per_query, (
        "cached selectivity run changed the workload's answers"
    )
    eval_speedup = uncached_s / cached_s

    eval_doc = {
        "benchmark": "workload_selectivity_serving",
        "dataset": DATASET,
        "budget_kb": BUDGET_KB,
        "queries": EVAL_QUERIES,
        "rounds": rounds,
        "machine": _machine(),
        "before": {
            "impl": "uncached eval_query + estimate_selectivity",
            "seconds": round(uncached_s, 4),
            "counters": {k: v for k, v in uncached_counters.items()
                         if k.startswith(("counters.eval.",
                                          "counters.estimate."))},
        },
        "after": {
            "impl": f"QueryCache(maxsize={4 * EVAL_QUERIES})",
            "seconds": round(cached_s, 4),
            "counters": {k: v for k, v in cached_counters.items()
                         if k.startswith(("counters.eval.",
                                          "counters.estimate."))},
        },
        "speedup": round(eval_speedup, 2),
    }
    (REPO_ROOT / "BENCH_eval.json").write_text(
        json.dumps(eval_doc, indent=2) + "\n"
    )

    emit(
        "bench_feed",
        "\n".join([
            "Perf feed (before -> after -> kernel, same machine & process)",
            f"  build  {DATASET}@{BUDGET_KB}KB: "
            f"{before_s:.2f}s -> {after_s:.2f}s ({build_speedup:.2f}x) "
            f"-> {kernel_s:.2f}s ({kernel_speedup:.2f}x cumulative, "
            f"{after_s / kernel_s:.2f}x over dicts)",
            f"  eval   {EVAL_QUERIES} queries x {rounds} rounds: "
            f"{uncached_s:.3f}s -> {cached_s:.3f}s  ({eval_speedup:.2f}x)",
            "  -> BENCH_build.json, BENCH_eval.json",
        ]),
    )

    assert build_speedup >= MIN_BUILD_SPEEDUP, (
        f"construction speedup {build_speedup:.2f}x fell below the "
        f"{MIN_BUILD_SPEEDUP}x acceptance bar (before {before_s:.2f}s, "
        f"after {after_s:.2f}s)"
    )
    assert kernel_s < after_s, (
        f"the arrays kernel ({kernel_s:.2f}s) must beat the dict path "
        f"({after_s:.2f}s) on {DATASET}"
    )
    assert eval_speedup > 1.0
