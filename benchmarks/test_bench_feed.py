"""The perf-trajectory feed: BENCH_build.json / BENCH_eval.json.

Runs the seed ("before") and optimized ("after") implementations of the
two hot paths back to back on the same machine, in the same process, and
records wall-clock plus the observability counters into ``BENCH_*.json``
at the repository root.  Future PRs append to this trajectory rather than
re-claiming speedups in prose; docs/PERFORMANCE.md explains the knobs and
how to reproduce these numbers.

* Construction: TSBUILD on the largest bundled dataset (XMark, the
  biggest count-stable summary of repro.datagen.DATASETS) at the paper's
  10 KB budget, four arms: before = ``TSBuildOptions(reference=True)``
  (the seed scorer and from-scratch CREATEPOOL, verbatim); after = the
  optimized dict path (``kernel="dicts"``); kernel = the flat-array
  scoring kernel (``kernel="arrays"``); numpy = the block-vectorized
  rescoring path (``kernel="numpy"``, the shipping default via
  ``"auto"`` when numpy is present; skipped without numpy).  Every arm
  records which backend produced it under its ``"kernel"`` key.  All
  sketches are asserted identical; the dict-path speedup must hold the
  >= 1.5x acceptance bar of the perf overhaul, the arrays kernel must be
  strictly faster than the dict path, and the numpy arm must stay within
  a 1.10x parity envelope of the arrays arm (it missed its 1.3x target;
  docs/PERFORMANCE.md "Block-vectorized merge scoring" has the honest
  analysis).

* Maintenance: a 100-edit mutation workload applied to the live sketch
  (``repro.core.live.SketchMaintainer``) versus the cost of rebuilding
  (build_stable + TSBUILD) once per edit -- the ``maintain`` arm, which
  must clear a 10x acceptance bar against 100 rebuilds.

* Serving: a repeated selectivity workload over the built sketch, with
  and without the canonical-query LRU cache; plus a **fleet throughput
  arm** -- the same concurrent estimate workload replayed against a
  single-process daemon and against a 2-worker supervised fleet
  (``treesketch serve --workers 2``), both real subprocesses.  On
  multi-core machines the fleet should win; on the single-core
  containers this repo often runs in it cannot, and the recorded
  ``note`` says so instead of pretending.

* Cold start: the same sketch loaded from JSON vs the binary ``.tsb``
  store (mmap, O(header) -- must clear the 20x acceptance bar), and a
  real daemon's first-request latency before and after a SIGTERM
  restart with the persisted ``.tsb.cache`` sidecar.

``REPRO_BENCH_ROUNDS`` scales the eval-side repetition (default 3).
"""

from __future__ import annotations

import json
import os
import pathlib
import platform
import re
import signal
import subprocess
import sys
import threading
import time

from benchmarks.conftest import emit
from repro import obs
from repro.core.build import TSBuildOptions, TreeSketchBuilder
from repro.core.qcache import QueryCache
from repro.core.stable import build_stable
from repro.datagen.datasets import DATASETS
from repro.obs import get_clock
from repro.obs.report import flatten_snapshot
from repro.workload.runner import run_selectivity
from repro.workload.workload import make_workload

REPO_ROOT = pathlib.Path(__file__).resolve().parents[1]
DATASET = "XMark"
BUDGET_KB = 10
EVAL_QUERIES = 30
MIN_BUILD_SPEEDUP = 1.5
MIN_MAINTAIN_SPEEDUP = 10.0


def _machine() -> dict:
    return {
        "platform": platform.platform(),
        "python": platform.python_version(),
        "cpus": os.cpu_count(),
    }


def _sketch_state(sketch):
    return (dict(sketch.label), dict(sketch.count), dict(sketch.stats),
            sketch.root_id)


_FLEET_CLIENTS = 4
_FLEET_REQUESTS = 80  # per client thread

_CONTROL_RE = re.compile(r"control on ([\d.]+):(\d+) \(protocol")
_SERVE_RE = re.compile(r"on (\d+\.\d+\.\d+\.\d+):(\d+) \(protocol")


def _spawn(argv, ready_re):
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO_ROOT / "src") + os.pathsep + \
        env.get("PYTHONPATH", "")
    proc = subprocess.Popen(
        [sys.executable, "-m", "repro", "serve", *argv],
        stdout=subprocess.PIPE, stderr=subprocess.STDOUT, text=True, env=env)
    deadline = time.monotonic() + 90
    while time.monotonic() < deadline:
        line = proc.stdout.readline()
        if not line:
            break
        match = ready_re.search(line)
        if match:
            threading.Thread(  # keep the pipe drained
                target=lambda: [None for _ in iter(proc.stdout.readline, "")],
                daemon=True).start()
            return proc, (match.group(1), int(match.group(2)))
    proc.kill()
    raise AssertionError("serving process did not report readiness")


def _drive(make_client, queries, sketch_names):
    """``_FLEET_CLIENTS`` threads replaying estimates; returns seconds."""
    clock = get_clock()
    barrier = threading.Barrier(_FLEET_CLIENTS)
    errors = []

    def worker(i):
        try:
            client = make_client()
            try:
                barrier.wait(timeout=30)
                for n in range(_FLEET_REQUESTS):
                    query = queries[(i + n) % len(queries)]
                    name = sketch_names[(i + n) % len(sketch_names)]
                    client.estimate(query, sketch=name)
            finally:
                client.close()
        except Exception as exc:  # noqa: BLE001 - surfaced via assert
            errors.append(exc)

    threads = [threading.Thread(target=worker, args=(i,))
               for i in range(_FLEET_CLIENTS)]
    start = clock.now()
    for t in threads:
        t.start()
    for t in threads:
        t.join(300)
    seconds = clock.now() - start
    assert not errors, errors
    return seconds


def _fleet_throughput(sketch, queries, tmp_dir):
    """Single-process vs 2-worker fleet on the same concurrent workload."""
    from repro.core.io import save_synopsis
    from repro.serve.client import PooledClient, ServeClient

    path = tmp_dir / "bench_sketch.json"
    save_synopsis(sketch, str(path))
    specs = [f"alpha={path}", f"beta={path}"]
    names = ["alpha", "beta"]
    total = _FLEET_CLIENTS * _FLEET_REQUESTS

    proc, address = _spawn([*specs, "--port", "0"], _SERVE_RE)
    try:
        single_s = _drive(
            lambda: ServeClient(*address, retries=10), queries, names)
    finally:
        proc.send_signal(signal.SIGTERM)
        proc.wait(60)

    proc, control = _spawn(
        [*specs, "--port", "0", "--workers", "2"], _CONTROL_RE)
    try:
        fleet_s = _drive(
            lambda: PooledClient(*control, retries=10), queries, names)
    finally:
        proc.send_signal(signal.SIGTERM)
        proc.wait(60)

    speedup = single_s / fleet_s
    cpus = os.cpu_count() or 1
    if cpus <= 2 and speedup < 1.2:
        note = (f"measured on {cpus} cpu(s): the workers contend for the "
                "same core(s), so multi-process serving cannot show its "
                "throughput win here; the arm records honest numbers, not "
                "a claim")
    elif speedup < 1.0:
        note = (f"fleet slower ({speedup:.2f}x) despite {cpus} cpus -- "
                "per-request supervisor/pool overhead dominates this "
                "small workload")
    else:
        note = f"measured on {cpus} cpu(s)"
    return {
        "clients": _FLEET_CLIENTS,
        "requests": total,
        "workers_1": {
            "impl": "single-process daemon (treesketch serve)",
            "seconds": round(single_s, 4),
            "rps": round(total / single_s, 1),
        },
        "workers_2": {
            "impl": "2-worker sharded fleet (treesketch serve --workers 2) "
                    "via PooledClient",
            "seconds": round(fleet_s, 4),
            "rps": round(total / fleet_s, 1),
        },
        "speedup": round(speedup, 2),
        "note": note,
    }


MIN_LOAD_SPEEDUP = 20.0


def _cold_start(sketch, query_text, tmp_dir):
    """JSON vs ``.tsb`` load time, and daemon first-request latency.

    Three measurements: (1) best-of-N ``load_synopsis`` wall-clock for
    the same sketch stored as JSON and as a binary ``.tsb`` store (the
    mmap path is O(header), so it must clear ``MIN_LOAD_SPEEDUP``);
    (2) first-request latency of a freshly started daemon with no cache
    sidecar (a full evaluation); (3) the same after a SIGTERM restart,
    where the persisted ``.tsb.cache`` sidecar answers the repeated
    query without evaluating anything.
    """
    from repro.core.io import load_synopsis, save_synopsis
    from repro.serve.client import ServeClient

    clock = get_clock()
    json_path = tmp_dir / "cold_sketch.json"
    tsb_path = tmp_dir / "cold_sketch.tsb"
    save_synopsis(sketch, str(json_path))
    save_synopsis(sketch, str(tsb_path))

    def best_load(path, repeats=7):
        best = float("inf")
        for _ in range(repeats):
            start = clock.now()
            load_synopsis(str(path))
            best = min(best, clock.now() - start)
        return best

    json_load_s = best_load(json_path)
    tsb_load_s = best_load(tsb_path)
    load_speedup = json_load_s / tsb_load_s

    def first_request(expect_seeded):
        proc, address = _spawn([str(tsb_path), "--port", "0"], _SERVE_RE)
        try:
            with ServeClient(*address, retries=10) as client:
                start = clock.now()
                client.estimate(query_text, sketch="cold_sketch")
                latency = clock.now() - start
                cache = client.call("stats")["sketches"][0]["cache"]
        finally:
            proc.send_signal(signal.SIGTERM)
            proc.wait(60)
        assert (cache["seeded"] > 0) == expect_seeded, cache
        return latency

    # Generation one evaluates from scratch and persists its sidecar on
    # the SIGTERM drain; generation two answers the repeat from it.
    cold_latency_s = first_request(expect_seeded=False)
    warm_latency_s = first_request(expect_seeded=True)

    doc = {
        "json_bytes": os.path.getsize(json_path),
        "tsb_bytes": os.path.getsize(tsb_path),
        "load_json": {
            "impl": "load_synopsis on JSON (parse + dict build)",
            "seconds": round(json_load_s, 6),
        },
        "load_tsb": {
            "impl": "load_synopsis on .tsb (mmap, O(header) lazy)",
            "seconds": round(tsb_load_s, 6),
        },
        "load_speedup": round(load_speedup, 1),
        "first_request_cold": {
            "impl": "fresh daemon, no cache sidecar (full evaluation)",
            "seconds": round(cold_latency_s, 6),
        },
        "first_request_warm": {
            "impl": "restarted daemon, persisted .tsb.cache sidecar "
                    "(seeded cache hit, no evaluation)",
            "seconds": round(warm_latency_s, 6),
        },
        "first_request_speedup": round(cold_latency_s / warm_latency_s, 2),
    }
    return doc, load_speedup


def _timed_build(stable, options):
    clock = get_clock()
    with obs.observed() as registry:
        start = clock.now()
        builder = TreeSketchBuilder(stable, options)
        sketch = builder.compress_to(BUDGET_KB * 1024)
        seconds = clock.now() - start
    return sketch, seconds, flatten_snapshot(registry.snapshot())


def test_bench_feed(tmp_path):
    clock = get_clock()
    rounds = int(os.environ.get("REPRO_BENCH_ROUNDS", "3"))
    tree = DATASETS[DATASET]()
    stable = build_stable(tree)

    # ------------------------------------------------------------------
    # Construction: seed vs dict path vs array kernel, same machine,
    # same process.
    # ------------------------------------------------------------------
    from repro.core.npsupport import have_numpy

    before_sketch, before_s, before_counters = _timed_build(
        stable, TSBuildOptions(reference=True)
    )
    after_sketch, after_s, after_counters = _timed_build(
        stable, TSBuildOptions(kernel="dicts")
    )
    kernel_sketch, kernel_s, kernel_counters = _timed_build(
        stable, TSBuildOptions(kernel="arrays")
    )
    assert _sketch_state(before_sketch) == _sketch_state(after_sketch), (
        "optimized TSBUILD diverged from the seed implementation"
    )
    assert _sketch_state(before_sketch) == _sketch_state(kernel_sketch), (
        "array-kernel TSBUILD diverged from the seed implementation"
    )
    numpy_s = numpy_counters = None
    if have_numpy():
        numpy_sketch, numpy_s, numpy_counters = _timed_build(
            stable, TSBuildOptions(kernel="numpy")
        )
        assert _sketch_state(before_sketch) == _sketch_state(numpy_sketch), (
            "block-vectorized TSBUILD diverged from the seed implementation"
        )
    build_speedup = before_s / after_s
    kernel_speedup = before_s / kernel_s

    def _tsbuild_counters(flat):
        return {k: v for k, v in flat.items()
                if k.startswith("counters.tsbuild.")}

    # ------------------------------------------------------------------
    # Maintenance: 100 edits on the live sketch vs 100 full rebuilds
    # (build_stable + TSBUILD) of the mutated document.
    # ------------------------------------------------------------------
    import random as _random

    from repro.core.live import SketchMaintainer
    from repro.xmltree.tree import XMLTree

    maintain_edits = 100
    live_tree = tree.copy()
    maintainer = SketchMaintainer(live_tree, BUDGET_KB * 1024)
    rng = _random.Random(17)
    donors = [
        ("listitem", [("text", []), ("keyword", [])]),
        ("bidder", [("date", []), ("time", []), ("personref", [])]),
        ("keyword", []),
    ]
    # Pre-select edit targets so only maintenance itself is timed;
    # inserted sub-trees are the only deletion victims, keeping the
    # pre-selected parents valid throughout.
    initial_nodes = list(live_tree.root.iter_preorder())
    edit_parents = [rng.choice(initial_nodes) for _ in range(maintain_edits)]
    start = clock.now()
    edit_inserted = []
    for i in range(maintain_edits):
        if i % 3 != 2 or not edit_inserted:
            edit_inserted.append(maintainer.insert_subtree(
                edit_parents[i], rng.choice(donors)))
        else:
            maintainer.delete_subtree(
                edit_inserted.pop(rng.randrange(len(edit_inserted))))
    maintain_s = clock.now() - start
    start = clock.now()
    TreeSketchBuilder(
        build_stable(XMLTree(live_tree.root))
    ).compress_to(BUDGET_KB * 1024)
    rebuild_s = clock.now() - start
    maintain_speedup = (rebuild_s * maintain_edits) / maintain_s

    build_doc = {
        "benchmark": "tsbuild_construction",
        "dataset": DATASET,
        "budget_kb": BUDGET_KB,
        "elements": len(tree),
        "stable_summary_kb": round(stable.size_bytes() / 1024, 1),
        "machine": _machine(),
        "before": {
            "impl": "seed (TSBuildOptions(reference=True))",
            "kernel": "dicts",
            "seconds": round(before_s, 3),
            "counters": _tsbuild_counters(before_counters),
        },
        "after": {
            "impl": "optimized dict path (memoize + incremental_pool + "
                    "fast scorer, kernel='dicts')",
            "kernel": "dicts",
            "seconds": round(after_s, 3),
            "counters": _tsbuild_counters(after_counters),
        },
        "kernel": {
            "impl": "array kernel (flat CSR partition state, "
                    "kernel='arrays')",
            "kernel": "arrays",
            "seconds": round(kernel_s, 3),
            "counters": _tsbuild_counters(kernel_counters),
        },
        "maintain": {
            "impl": "live sketch maintenance (SketchMaintainer, "
                    "repro.core.live)",
            "edits": maintain_edits,
            "seconds": round(maintain_s, 3),
            "per_edit_ms": round(maintain_s * 1000 / maintain_edits, 3),
            "rebuild_seconds_each": round(rebuild_s, 3),
            "speedup_vs_rebuilds": round(maintain_speedup, 1),
        },
        "speedup": round(build_speedup, 2),
        "speedup_kernel": round(kernel_speedup, 2),
        "kernel_vs_dicts": round(after_s / kernel_s, 2),
    }
    if numpy_s is not None:
        build_doc["numpy"] = {
            "impl": "block-vectorized merge scoring (numpy batch rescoring "
                    "of large-union stale candidates, kernel='numpy')",
            "kernel": "numpy",
            "seconds": round(numpy_s, 3),
            "counters": _tsbuild_counters(numpy_counters),
        }
        build_doc["speedup_numpy"] = round(before_s / numpy_s, 2)
        build_doc["numpy_vs_arrays"] = round(kernel_s / numpy_s, 2)
        build_doc["numpy"]["note"] = (
            "missed its 1.3x-over-arrays target: the vectorizable source "
            "loop is ~1/3 of big-pair scoring cost and per-pair numpy "
            "marshalling eats the savings; defaults admit only the "
            "giant-union tail, so this arm records parity, not a win "
            "(docs/PERFORMANCE.md, 'Block-vectorized merge scoring')"
        )
    (REPO_ROOT / "BENCH_build.json").write_text(
        json.dumps(build_doc, indent=2) + "\n"
    )

    # ------------------------------------------------------------------
    # Serving: repeated workload, uncached vs QueryCache.
    # ------------------------------------------------------------------
    workload = make_workload(tree, num_queries=EVAL_QUERIES, seed=7,
                             stable=stable)
    sketch = after_sketch

    with obs.observed() as registry:
        start = clock.now()
        for _ in range(rounds):
            uncached = run_selectivity(sketch, workload)
        uncached_s = clock.now() - start
    uncached_counters = flatten_snapshot(registry.snapshot())

    with obs.observed() as registry:
        cache = QueryCache(sketch, maxsize=4 * EVAL_QUERIES)
        start = clock.now()
        for _ in range(rounds):
            cached = run_selectivity(sketch, workload, cache=cache)
        cached_s = clock.now() - start
    cached_counters = flatten_snapshot(registry.snapshot())

    assert cached.per_query == uncached.per_query, (
        "cached selectivity run changed the workload's answers"
    )
    eval_speedup = uncached_s / cached_s

    eval_doc = {
        "benchmark": "workload_selectivity_serving",
        "dataset": DATASET,
        "budget_kb": BUDGET_KB,
        "queries": EVAL_QUERIES,
        "rounds": rounds,
        "machine": _machine(),
        "before": {
            "impl": "uncached eval_query + estimate_selectivity",
            "seconds": round(uncached_s, 4),
            "counters": {k: v for k, v in uncached_counters.items()
                         if k.startswith(("counters.eval.",
                                          "counters.estimate."))},
        },
        "after": {
            "impl": f"QueryCache(maxsize={4 * EVAL_QUERIES})",
            "seconds": round(cached_s, 4),
            "counters": {k: v for k, v in cached_counters.items()
                         if k.startswith(("counters.eval.",
                                          "counters.estimate."))},
        },
        "speedup": round(eval_speedup, 2),
    }

    # ------------------------------------------------------------------
    # Fleet throughput: 1 serving process vs a 2-worker supervised
    # fleet, same concurrent workload over real sockets.
    # ------------------------------------------------------------------
    wire_queries = [str(q) for q in workload.queries[:10]]
    fleet = _fleet_throughput(sketch, wire_queries, tmp_path)
    eval_doc["fleet"] = fleet

    # ------------------------------------------------------------------
    # Cold start: JSON vs .tsb load, and first-request latency across a
    # real daemon restart with the persisted cache sidecar.
    # ------------------------------------------------------------------
    cold_doc, load_speedup = _cold_start(sketch, wire_queries[0], tmp_path)
    eval_doc["cold_start"] = cold_doc
    (REPO_ROOT / "BENCH_eval.json").write_text(
        json.dumps(eval_doc, indent=2) + "\n"
    )

    emit(
        "bench_feed",
        "\n".join([
            "Perf feed (before -> after -> kernel -> numpy, same machine "
            "& process)",
            f"  build  {DATASET}@{BUDGET_KB}KB: "
            f"{before_s:.2f}s -> {after_s:.2f}s ({build_speedup:.2f}x) "
            f"-> {kernel_s:.2f}s ({kernel_speedup:.2f}x cumulative, "
            f"{after_s / kernel_s:.2f}x over dicts)"
            + (f" -> {numpy_s:.2f}s ({before_s / numpy_s:.2f}x cumulative, "
               f"{kernel_s / numpy_s:.2f}x over arrays)"
               if numpy_s is not None else " (numpy arm skipped: no numpy)"),
            f"  maintain {maintain_edits} live edits: {maintain_s:.2f}s vs "
            f"{rebuild_s:.2f}s/rebuild "
            f"({maintain_speedup:.0f}x vs {maintain_edits} rebuilds)",
            f"  eval   {EVAL_QUERIES} queries x {rounds} rounds: "
            f"{uncached_s:.3f}s -> {cached_s:.3f}s  ({eval_speedup:.2f}x)",
            f"  fleet  {fleet['requests']} reqs x {fleet['clients']} "
            f"clients: 1 proc {fleet['workers_1']['rps']} rps -> "
            f"2 workers {fleet['workers_2']['rps']} rps "
            f"({fleet['speedup']:.2f}x; {fleet['note']})",
            f"  cold   load json {cold_doc['load_json']['seconds'] * 1e3:.2f}ms"
            f" -> tsb {cold_doc['load_tsb']['seconds'] * 1e3:.2f}ms "
            f"({load_speedup:.0f}x); first request cold "
            f"{cold_doc['first_request_cold']['seconds'] * 1e3:.2f}ms -> warm "
            f"{cold_doc['first_request_warm']['seconds'] * 1e3:.2f}ms "
            f"({cold_doc['first_request_speedup']:.2f}x)",
            "  -> BENCH_build.json, BENCH_eval.json",
        ]),
    )

    assert build_speedup >= MIN_BUILD_SPEEDUP, (
        f"construction speedup {build_speedup:.2f}x fell below the "
        f"{MIN_BUILD_SPEEDUP}x acceptance bar (before {before_s:.2f}s, "
        f"after {after_s:.2f}s)"
    )
    assert maintain_speedup >= MIN_MAINTAIN_SPEEDUP, (
        f"live maintenance must beat {maintain_edits} rebuilds by "
        f">= {MIN_MAINTAIN_SPEEDUP}x (got {maintain_speedup:.1f}x)"
    )
    assert kernel_s < after_s, (
        f"the arrays kernel ({kernel_s:.2f}s) must beat the dict path "
        f"({after_s:.2f}s) on {DATASET}"
    )
    if numpy_s is not None:
        # The block-vectorized path did NOT clear its 1.3x-over-arrays
        # target: per-pair numpy marshalling exceeds what vectorizing the
        # source loop saves, and lookahead warming loses to invalidation
        # (the full analysis lives in docs/PERFORMANCE.md,
        # "Block-vectorized merge scoring").  The honest bar is therefore
        # parity: the shipping defaults admit only break-even-or-better
        # giant-union pairs, so the numpy arm must never cost more than
        # noise over the arrays arm.
        assert numpy_s <= kernel_s * 1.10, (
            f"block-vectorized scoring ({numpy_s:.2f}s) regressed past "
            f"the 10% parity envelope of the arrays kernel "
            f"({kernel_s:.2f}s) on {DATASET}; its admission thresholds "
            "exist to make it free when it cannot win -- see "
            "docs/PERFORMANCE.md"
        )
    assert eval_speedup > 1.0
    assert load_speedup >= MIN_LOAD_SPEEDUP, (
        f".tsb load speedup {load_speedup:.1f}x fell below the "
        f"{MIN_LOAD_SPEEDUP}x acceptance bar (json "
        f"{cold_doc['load_json']['seconds'] * 1e3:.2f}ms, tsb "
        f"{cold_doc['load_tsb']['seconds'] * 1e3:.2f}ms)"
    )
