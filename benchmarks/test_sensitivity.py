"""Workload-shape sensitivity (beyond the paper).

Robustness check: the paper's Fig. 12 accuracy should not hinge on the
particular query-shape distribution of the sampled workload.  This
benchmark regenerates workloads with each shape parameter pushed to an
extreme (child-only, descendant-heavy, deep, branchy, predicate-heavy,
all/none optional) and measures a fixed 20 KB TreeSketch's estimation
error on each.
"""

from benchmarks.conftest import emit
from repro.experiments.harness import load_bundle
from repro.experiments.reporting import format_table
from repro.experiments.sensitivity import workload_sensitivity


def test_workload_shape_sensitivity(benchmark):
    bundle = load_bundle("XMark-TX")
    rows = workload_sensitivity(bundle, budget_kb=20, num_queries=50)
    emit(
        "sensitivity",
        format_table(
            "Workload-shape sensitivity of a 20KB TreeSketch (XMark-TX)",
            ["variation", "avg err %", "max err %"],
            rows,
        ),
    )
    for name, avg_err, _max_err in rows:
        assert avg_err < 15.0, (name, avg_err)

    benchmark.pedantic(
        lambda: workload_sensitivity(
            bundle, budget_kb=20, num_queries=5,
            variations={"default": {}},
        ),
        rounds=1,
        iterations=1,
    )
