"""Extra baseline: Markov tables vs TreeSketch on simple path workloads.

The paper's related work ([1], [12]) estimates *simple path* selectivity
with pruned path statistics.  This benchmark levels the field on the one
workload those techniques support -- rooted child-axis label paths -- and
compares an order-2/3 Markov table against a TreeSketch compressed to the
same byte size.  TreeSketch should at least match the specialized
estimator on its home turf while additionally supporting twigs, branches,
descendants, and approximate answers (the paper's point about generality).
"""

import random

from benchmarks.conftest import emit
from repro.core.estimate import estimate_selectivity
from repro.core.evaluate import eval_query
from repro.experiments.harness import load_bundle
from repro.experiments.reporting import format_table
from repro.markov import MarkovPathEstimator
from repro.metrics.error import average_error
from repro.query.parser import parse_twig


def sample_rooted_paths(stable, count, max_len, seed):
    """Random rooted child-axis label paths (positive by count stability)."""
    rng = random.Random(seed)
    paths = []
    while len(paths) < count:
        labels = []
        current = stable.root_id
        length = rng.randint(2, max_len)
        for _ in range(length):
            targets = sorted(stable.out.get(current, {}).keys())
            if not targets:
                break
            current = rng.choice(targets)
            labels.append(stable.label[current])
        if labels:
            paths.append(labels)
    return paths


def test_markov_baseline_vs_treesketch(benchmark):
    bundle = load_bundle("XMark-TX")
    paths = sample_rooted_paths(bundle.stable, count=80, max_len=6, seed=3)
    evaluator = bundle.workload.evaluator

    def twig_of(labels):
        return parse_twig("/" + "/".join(labels))

    truths = [float(evaluator.selectivity(twig_of(p))) for p in paths]

    rows = []
    for order in (2, 3):
        markov = MarkovPathEstimator.from_tree(bundle.tree, order=order)
        budget = markov.size_bytes()
        sketch = bundle.treesketch(budget)
        # Markov tables are unrooted; prepend the root label for rooted
        # comparison (the root occurs once, so counts coincide).
        markov_pairs = [
            (t, markov.estimate([bundle.tree.root.label] + p))
            for p, t in zip(paths, truths)
        ]
        ts_pairs = [
            (t, estimate_selectivity(eval_query(sketch, twig_of(p))))
            for p, t in zip(paths, truths)
        ]
        rows.append(
            [order, budget / 1024,
             average_error(markov_pairs) * 100, average_error(ts_pairs) * 100]
        )

    emit(
        "baseline_markov",
        format_table(
            "Markov tables vs equal-size TreeSketch on rooted paths "
            "(XMark-TX, err %)",
            ["order", "size KB", "Markov err %", "TreeSketch err %"],
            rows,
        ),
    )
    # TreeSketch must be competitive on the specialist's home turf.
    for _order, _kb, markov_err, ts_err in rows:
        assert ts_err <= markov_err + 2.0, rows

    markov = MarkovPathEstimator.from_tree(bundle.tree, order=2)
    benchmark.pedantic(
        lambda: markov.estimate(["site", "people", "person", "profile"]),
        rounds=10,
        iterations=1,
    )
