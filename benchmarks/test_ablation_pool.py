"""Ablation A2: CREATEPOOL candidate-generation heuristics.

Two knobs bound candidate generation (Section 4.2 / Fig. 6):

* the pair window, which thins same-(label, depth) groups to structural
  nearest neighbours -- the quality cost should be small while the
  exhaustive variant scales quadratically in group size;
* the literal "stop once the heap is full" early termination vs the
  default scan-all-levels behaviour (see DESIGN.md): stopping early
  starves upper-level merges when the budget is met before the first pool
  regeneration.
"""

from benchmarks.conftest import emit
from repro.core.build import TreeSketchBuilder, TSBuildOptions
from repro.experiments.ablations import pool_window_ablation
from repro.experiments.harness import load_bundle
from repro.experiments.reporting import format_table
from repro.workload.runner import run_selectivity


def test_pair_window_quality_vs_time(benchmark):
    bundle = load_bundle("XMark-TX")
    rows = pool_window_ablation(bundle, budget_kb=15, windows=(8, 32, 128, None))
    emit(
        "ablation_pool_window",
        format_table(
            "Ablation A2a: CREATEPOOL pair window (XMark-TX, 15KB)",
            ["window", "build s", "sq(TS)", "sel err %"],
            rows,
        ),
    )
    # Windowed construction must stay within ~2x the exhaustive quality.
    exhaustive_err = rows[-1][3]
    for row in rows[:-1]:
        assert row[3] <= max(2.0 * exhaustive_err, exhaustive_err + 3.0), rows

    benchmark.pedantic(
        lambda: TreeSketchBuilder(
            bundle.stable, TSBuildOptions(pair_window=32)
        ).compress_to(15 * 1024),
        rounds=1,
        iterations=1,
    )


def test_early_stop_vs_scan_all(benchmark):
    bundle = load_bundle("XMark-TX")
    rows = []
    for label, options in [
        ("scan-all (default)", TSBuildOptions()),
        ("stop-when-full (Fig. 6)", TSBuildOptions(stop_when_full=True)),
    ]:
        sketch = TreeSketchBuilder(bundle.stable, options).compress_to(15 * 1024)
        quality = run_selectivity(sketch, bundle.workload)
        rows.append([label, sketch.squared_error(), quality.avg_error * 100])
    emit(
        "ablation_pool_stop",
        format_table(
            "Ablation A2b: candidate generation termination (XMark-TX, 15KB)",
            ["variant", "sq(TS)", "sel err %"],
            rows,
        ),
    )
    # Scanning all levels never hurts squared error.
    assert rows[0][1] <= rows[1][1] * 1.05, rows

    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
