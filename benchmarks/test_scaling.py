"""Scaling behaviour (paper Section 6.2, scaling discussion).

The paper reports affordable construction on documents up to 100 MB
(Table 1 + the timing paragraph: BUILD_STABLE is linear, TSBUILD scales
with the stable summary, not the document).  This benchmark sweeps the
XMark generator over document scales and reports:

* elements, stable-summary size;
* BUILD_STABLE seconds (expected ~linear in elements);
* TSBUILD seconds down to 10 KB (expected to track stable size, not
  document size).
"""

from benchmarks.conftest import emit
from repro.core.build import TreeSketchBuilder
from repro.core.stable import build_stable
from repro.datagen.datasets import xmark_like
from repro.obs import get_clock
from repro.experiments.reporting import format_table

SCALES = [2.0, 4.0, 8.0, 16.0]


def test_scaling_construction(benchmark):
    clock = get_clock()
    rows = []
    seconds_per_element = []
    for scale in SCALES:
        tree = xmark_like(scale=scale, seed=12)
        start = clock.now()
        stable = build_stable(tree)
        stable_seconds = clock.now() - start

        start = clock.now()
        TreeSketchBuilder(stable).compress_to(10 * 1024)
        build_seconds = clock.now() - start

        rows.append(
            [scale, len(tree), stable.size_bytes() / 1024,
             stable_seconds, build_seconds]
        )
        seconds_per_element.append(stable_seconds / len(tree))

    emit(
        "scaling",
        format_table(
            "Scaling: construction cost vs document size (XMark generator)",
            ["scale", "elements", "stable KB", "BUILD_STABLE s", "TSBUILD s"],
            rows,
        ),
    )

    # BUILD_STABLE stays ~linear: per-element cost varies < 4x across an
    # 8x size range (generous bound for noisy CI machines).
    assert max(seconds_per_element) <= 4 * min(seconds_per_element), rows

    tree = xmark_like(scale=4.0, seed=12)
    benchmark.pedantic(build_stable, args=(tree,), rounds=3, iterations=1)
