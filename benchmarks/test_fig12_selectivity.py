"""Figure 12: average selectivity-estimation error vs synopsis size.

Paper (Fig. 12 a,b): on the TX data sets, TreeSketch estimation error
stays well below 10% across 10-50 KB budgets, consistently below
twig-XSketch, with a flatter (more stable) curve.

The timed operation is one selectivity estimate (EVALQUERY + the
post-order estimator of Section 4.4).
"""

import pytest

from benchmarks.conftest import emit
from repro.core.estimate import estimate_selectivity
from repro.core.evaluate import eval_query
from repro.experiments.figures import fig12_series
from repro.experiments.harness import load_bundle
from repro.experiments.reporting import format_table

DATASETS = ["XMark-TX", "IMDB-TX", "SProt-TX"]


@pytest.mark.parametrize("name", DATASETS)
def test_fig12_selectivity_error(benchmark, name):
    rows = fig12_series(name)
    emit(
        f"fig12_{name}",
        format_table(
            f"Figure 12 ({name}): avg relative selectivity error (%)",
            ["budget KB", "TreeSketch %", "twig-XSketch %"],
            rows,
        ),
    )

    # Reproduced claims: TreeSketch error stays below ~10% at every
    # budget and wins against the baseline on (nearly) every point.
    for _kb, ts, _xs in rows:
        assert ts < 12.0, f"TreeSketch error unexpectedly high: {rows}"
    wins = sum(1 for _kb, ts, xs in rows if ts <= xs + 0.5)
    assert wins >= len(rows) - 1, rows

    bundle = load_bundle(name)
    sketch = bundle.treesketch(10 * 1024)
    query = bundle.workload.queries[0]
    benchmark.pedantic(
        lambda: estimate_selectivity(eval_query(sketch, query)),
        rounds=5,
        iterations=1,
    )
