"""Synopsis maintenance under updates (beyond the paper).

A production deployment must keep summaries fresh as documents change.
Count stability localizes edits to a root path, so incremental
maintenance (`repro.core.maintain`) should beat a from-scratch
BUILD_STABLE by orders of magnitude per edit.  The benchmark applies a
stream of random sub-tree insertions/deletions to a generated document
and compares per-edit cost against rebuilds, asserting correctness
(equivalence to a fresh summary) at the end.
"""

import random

from benchmarks.conftest import emit
from repro.core.maintain import StableMaintainer
from repro.core.stable import build_stable
from repro.datagen.datasets import sprot_like
from repro.experiments.reporting import format_table
from repro.obs import get_clock
from repro.xmltree.tree import XMLTree

EDITS = 200


def _canonical(summary):
    order = summary.topological_order()
    form = {}
    for nid in reversed(order):
        children = tuple(sorted(
            (form[c], int(k)) for c, k in summary.out.get(nid, {}).items()
        ))
        form[nid] = (summary.label[nid], children)
    return sorted((form[nid], summary.count[nid]) for nid in summary.label)


def test_incremental_maintenance_vs_rebuild(benchmark):
    clock = get_clock()
    tree = sprot_like(scale=3.0, seed=6)
    rng = random.Random(11)
    maintainer = StableMaintainer(tree)

    donors = [
        ("feature", [("ftype", []), ("location", ["begin", "end"])]),
        ("ref", [("citation", []), "author", "author"]),
        ("keyword", []),
    ]

    # Pre-select edit targets so only maintenance itself is timed
    # (inserted sub-trees are also the only deletion victims, keeping the
    # pre-selected parents valid throughout).
    initial_nodes = list(tree.root.iter_preorder())
    parents = [rng.choice(initial_nodes) for _ in range(EDITS)]

    start = clock.now()
    inserted = []
    for i in range(EDITS):
        if i % 3 != 2 or not inserted:
            inserted.append(
                maintainer.insert_subtree(parents[i], rng.choice(donors))
            )
        else:
            maintainer.delete_subtree(inserted.pop(rng.randrange(len(inserted))))
    incremental_total = clock.now() - start
    per_edit_ms = incremental_total * 1000 / EDITS

    start = clock.now()
    fresh = build_stable(XMLTree(tree.root))
    rebuild_ms = (clock.now() - start) * 1000

    emit(
        "maintenance",
        format_table(
            "Synopsis maintenance: incremental edit vs full rebuild",
            ["edits", "per-edit (ms)", "full rebuild (ms)", "speedup/edit"],
            [[EDITS, per_edit_ms, rebuild_ms, rebuild_ms / max(per_edit_ms, 1e-9)]],
        ),
    )

    # Correctness: the maintained summary equals a fresh rebuild.
    assert _canonical(maintainer.summary()) == _canonical(fresh)
    # Performance: an edit must be much cheaper than a rebuild.
    assert per_edit_ms * 10 < rebuild_ms

    benchmark.pedantic(
        lambda: maintainer.insert_subtree(tree.root.children[0], ("keyword", [])),
        rounds=5,
        iterations=1,
    )


def test_sketch_maintenance_vs_rebuild(benchmark):
    """The live tier (repro.core.live): the *compressed* sketch is kept
    fresh through the same edit stream, and a maintained edit must beat a
    full build_stable + TSBUILD rebuild by an order of magnitude."""
    from repro.core.build import TreeSketchBuilder
    from repro.core.live import SketchMaintainer

    clock = get_clock()
    tree = sprot_like(scale=2.0, seed=6)
    budget = 10 * 1024
    rng = random.Random(11)
    maintainer = SketchMaintainer(tree, budget)
    donors = [
        ("feature", [("ftype", []), ("location", ["begin", "end"])]),
        ("ref", [("citation", []), "author", "author"]),
        ("keyword", []),
    ]
    initial_nodes = list(tree.root.iter_preorder())
    parents = [rng.choice(initial_nodes) for _ in range(EDITS)]

    start = clock.now()
    inserted = []
    for i in range(EDITS):
        if i % 3 != 2 or not inserted:
            inserted.append(
                maintainer.insert_subtree(parents[i], rng.choice(donors)))
        else:
            maintainer.delete_subtree(
                inserted.pop(rng.randrange(len(inserted))))
    incremental_total = clock.now() - start
    per_edit_ms = incremental_total * 1000 / EDITS

    start = clock.now()
    fresh = TreeSketchBuilder(
        build_stable(XMLTree(tree.root))).compress_to(budget)
    rebuild_ms = (clock.now() - start) * 1000

    emit(
        "maintenance_sketch",
        format_table(
            "Live sketch maintenance: incremental edit vs full rebuild",
            ["edits", "per-edit (ms)", "full rebuild (ms)", "speedup/edit"],
            [[EDITS, per_edit_ms, rebuild_ms,
              rebuild_ms / max(per_edit_ms, 1e-9)]],
        ),
    )

    # Correctness: the maintained sketch is servable and honoured its
    # debt bound (auto_remerge settles drift as it crosses threshold).
    maintainer.check()
    maintainer.snapshot().validate()
    assert maintainer.max_debt() <= maintainer.options.debt_threshold + 1e-9
    assert fresh.size_bytes() <= budget
    # Performance: an edit must be much cheaper than a rebuild.
    assert per_edit_ms * 10 < rebuild_ms

    benchmark.pedantic(
        lambda: maintainer.insert_subtree(
            tree.root.children[0], ("keyword", [])),
        rounds=5,
        iterations=1,
    )
