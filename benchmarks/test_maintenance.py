"""Synopsis maintenance under updates (beyond the paper).

A production deployment must keep summaries fresh as documents change.
Count stability localizes edits to a root path, so incremental
maintenance (`repro.core.maintain`) should beat a from-scratch
BUILD_STABLE by orders of magnitude per edit.  The benchmark applies a
stream of random sub-tree insertions/deletions to a generated document
and compares per-edit cost against rebuilds, asserting correctness
(equivalence to a fresh summary) at the end.
"""

import random

from benchmarks.conftest import emit
from repro.core.maintain import StableMaintainer
from repro.core.stable import build_stable
from repro.datagen.datasets import sprot_like
from repro.experiments.reporting import format_table
from repro.obs import get_clock
from repro.xmltree.tree import XMLTree

EDITS = 200


def _canonical(summary):
    order = summary.topological_order()
    form = {}
    for nid in reversed(order):
        children = tuple(sorted(
            (form[c], int(k)) for c, k in summary.out.get(nid, {}).items()
        ))
        form[nid] = (summary.label[nid], children)
    return sorted((form[nid], summary.count[nid]) for nid in summary.label)


def test_incremental_maintenance_vs_rebuild(benchmark):
    clock = get_clock()
    tree = sprot_like(scale=3.0, seed=6)
    rng = random.Random(11)
    maintainer = StableMaintainer(tree)

    donors = [
        ("feature", [("ftype", []), ("location", ["begin", "end"])]),
        ("ref", [("citation", []), "author", "author"]),
        ("keyword", []),
    ]

    # Pre-select edit targets so only maintenance itself is timed
    # (inserted sub-trees are also the only deletion victims, keeping the
    # pre-selected parents valid throughout).
    initial_nodes = list(tree.root.iter_preorder())
    parents = [rng.choice(initial_nodes) for _ in range(EDITS)]

    start = clock.now()
    inserted = []
    for i in range(EDITS):
        if i % 3 != 2 or not inserted:
            inserted.append(
                maintainer.insert_subtree(parents[i], rng.choice(donors))
            )
        else:
            maintainer.delete_subtree(inserted.pop(rng.randrange(len(inserted))))
    incremental_total = clock.now() - start
    per_edit_ms = incremental_total * 1000 / EDITS

    start = clock.now()
    fresh = build_stable(XMLTree(tree.root))
    rebuild_ms = (clock.now() - start) * 1000

    emit(
        "maintenance",
        format_table(
            "Synopsis maintenance: incremental edit vs full rebuild",
            ["edits", "per-edit (ms)", "full rebuild (ms)", "speedup/edit"],
            [[EDITS, per_edit_ms, rebuild_ms, rebuild_ms / max(per_edit_ms, 1e-9)]],
        ),
    )

    # Correctness: the maintained summary equals a fresh rebuild.
    assert _canonical(maintainer.summary()) == _canonical(fresh)
    # Performance: an edit must be much cheaper than a rebuild.
    assert per_edit_ms * 10 < rebuild_ms

    benchmark.pedantic(
        lambda: maintainer.insert_subtree(tree.root.children[0], ("keyword", [])),
        rounds=5,
        iterations=1,
    )


def test_sketch_maintenance_vs_rebuild(benchmark):
    """The live tier (repro.core.live): the *compressed* sketch is kept
    fresh through the same edit stream, and a maintained edit must beat a
    full build_stable + TSBUILD rebuild by an order of magnitude."""
    from repro.core.build import TreeSketchBuilder
    from repro.core.live import SketchMaintainer

    clock = get_clock()
    tree = sprot_like(scale=2.0, seed=6)
    budget = 10 * 1024
    rng = random.Random(11)
    maintainer = SketchMaintainer(tree, budget)
    donors = [
        ("feature", [("ftype", []), ("location", ["begin", "end"])]),
        ("ref", [("citation", []), "author", "author"]),
        ("keyword", []),
    ]
    initial_nodes = list(tree.root.iter_preorder())
    parents = [rng.choice(initial_nodes) for _ in range(EDITS)]

    start = clock.now()
    inserted = []
    for i in range(EDITS):
        if i % 3 != 2 or not inserted:
            inserted.append(
                maintainer.insert_subtree(parents[i], rng.choice(donors)))
        else:
            maintainer.delete_subtree(
                inserted.pop(rng.randrange(len(inserted))))
    incremental_total = clock.now() - start
    per_edit_ms = incremental_total * 1000 / EDITS

    start = clock.now()
    fresh = TreeSketchBuilder(
        build_stable(XMLTree(tree.root))).compress_to(budget)
    rebuild_ms = (clock.now() - start) * 1000

    emit(
        "maintenance_sketch",
        format_table(
            "Live sketch maintenance: incremental edit vs full rebuild",
            ["edits", "per-edit (ms)", "full rebuild (ms)", "speedup/edit"],
            [[EDITS, per_edit_ms, rebuild_ms,
              rebuild_ms / max(per_edit_ms, 1e-9)]],
        ),
    )

    # Correctness: the maintained sketch is servable and honoured its
    # debt bound (auto_remerge settles drift as it crosses threshold).
    maintainer.check()
    maintainer.snapshot().validate()
    assert maintainer.max_debt() <= maintainer.options.debt_threshold + 1e-9
    assert fresh.size_bytes() <= budget
    # Performance: an edit must be much cheaper than a rebuild.
    assert per_edit_ms * 10 < rebuild_ms

    benchmark.pedantic(
        lambda: maintainer.insert_subtree(
            tree.root.children[0], ("keyword", [])),
        rounds=5,
        iterations=1,
    )


def test_adaptive_debt_threshold_vs_fixed():
    """Drift-adaptive maintenance (repro.core.live.DebtController) vs the
    fixed ``debt_threshold`` knob, over one shared mutation stream.

    A delete-heavy stream shrinks a SwissProt-like document by most of
    its nodes while the synopsis budget stays fixed, so the seed
    clustering goes stale: branch-predicate probes measured against
    exact truth drift past a tight error budget unless re-merges keep
    repairing the partition.  Three arms replay the same ops:

    * ``fixed-loose``  -- a threshold drift never crosses: the error
      budget burns for long stretches and never recovers;
    * ``adaptive``     -- starts identically loose, but the controller
      tightens from *measured* burn (exactly what the serving tier
      feeds it via the accuracy ledger) and repairs on the spot;
    * ``always-tight`` -- the hand-tuned ideal: accurate, but it pays a
      re-merge for nearly every edit.

    The claim: adaptive matches (here: beats) always-tight's budget
    outcome at roughly half the re-merge work, with no hand-tuning.
    Burn accounting starts after a warm-up: the first probes measure the
    *initial compression's* error at this budget, which no maintenance
    policy can repair and every arm shares.
    """
    from repro.core.estimate import estimate_selectivity
    from repro.core.evaluate import eval_query
    from repro.core.live import LiveOptions, SketchMaintainer
    from repro.engine.exact import ExactEvaluator
    from repro.obs.accuracy import STATE_BURNING, AccuracyLedger
    from repro.query.parser import parse_twig
    from repro.workload.mutations import apply_mutation, make_mutation_workload

    target = 0.02          # 2% trailing-window rel-error budget
    budget = 2048
    base_threshold = 512.0  # "loose": drift never crosses it
    warmup = 50             # probes before burn accounting starts

    base_tree = sprot_like(scale=0.3, seed=9)
    ops = make_mutation_workload(base_tree, num_ops=500, seed=7,
                                 insert_fraction=0.0, max_subtree_nodes=10)
    probes = [parse_twig(q) for q in [
        "//entry[//ref] (//feature)",
        "//entry[//feature] (//ref (/author))",
        "//feature (/location)",
    ]]

    def run_arm(name, threshold, adaptive):
        maintainer = SketchMaintainer(
            base_tree.copy(), budget, LiveOptions(debt_threshold=threshold))
        if adaptive:
            maintainer.enable_adaptive(
                target_rel_error=target, window=8, min_samples=4,
                cooldown=16)
        ledger = AccuracyLedger(target_rel_error=target, window=8)
        probed = burning = streak = max_streak = 0
        errors = []
        for i, op in enumerate(ops):
            apply_mutation(maintainer, op)
            if i % 2:
                continue  # probe every other edit
            # copy() reindexes; the maintainer's in-place edits leave the
            # tree's oid index stale, which ExactEvaluator relies on.
            truth_ev = ExactEvaluator(maintainer.stable.tree.copy())
            snapshot = maintainer.snapshot()
            per_probe = []
            for query in probes:
                truth = float(truth_ev.selectivity(query))
                estimate = estimate_selectivity(eval_query(snapshot, query))
                per_probe.append(abs(estimate - truth) / max(truth, 1.0))
            error = sum(per_probe) / len(per_probe)
            errors.append(error)
            state = ledger.record(name, error)
            maintainer.observe_error(error)  # no-op unless adaptive
            probed += 1
            if state == STATE_BURNING:
                if probed > warmup:
                    burning += 1
                    streak += 1
                    max_streak = max(max_streak, streak)
            elif probed > warmup:
                streak = 0
        return {
            "name": name,
            "remerges": maintainer.remerges,
            "threshold": maintainer.options.debt_threshold,
            "mean_error": sum(errors) / len(errors),
            "burning": burning,
            "max_streak": max_streak,
            "final_state": ledger.state(name),
            "probes": probed - warmup,
        }

    loose = run_arm("fixed-loose", base_threshold, adaptive=False)
    adaptive = run_arm("adaptive", base_threshold, adaptive=True)
    tight = run_arm("always-tight", 0.5, adaptive=False)

    emit(
        "maintenance_adaptive",
        format_table(
            "Drift-adaptive debt_threshold vs fixed (shared edit stream, "
            f"{target:.0%} budget, post-warmup burn)",
            ["arm", "re-merges", "final threshold", "mean rel-err",
             "burning probes", "worst burn streak", "final state"],
            [[a["name"], a["remerges"], a["threshold"],
              round(a["mean_error"], 4), a["burning"], a["max_streak"],
              a["final_state"]]
             for a in (loose, adaptive, tight)],
        ),
    )

    # The loose fixed threshold lets windowed error blow the budget --
    # for sustained stretches, not blips.
    assert loose["burning"] >= 40
    assert loose["max_streak"] >= 16
    # Adaptive control holds the budget: at most stray blips past
    # warm-up, never a sustained burn, and it ends healthy.
    assert adaptive["burning"] <= 5
    assert adaptive["max_streak"] <= 4
    assert adaptive["final_state"] != STATE_BURNING
    assert adaptive["threshold"] < base_threshold  # it really tightened
    # ... at meaningfully less re-merge work than the hand-tuned tight
    # knob needs for a worse burn outcome.
    assert adaptive["remerges"] < tight["remerges"]
    assert adaptive["burning"] <= tight["burning"]
