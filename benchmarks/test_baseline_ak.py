"""Extra baseline: A(k)-index average-count summaries vs TreeSketch.

Section 3.1 frames 1-indexes and A(k)-indexes as instances of the same
node-partitioning model; this benchmark quantifies the paper's implicit
argument that *choosing the partition by clustering quality* (TSBUILD)
beats choosing it by fixed backward path context (A(k)) at comparable
sizes: for each k we build the A(k) average-count summary, then a
TreeSketch compressed to the same byte size, and compare selectivity
errors on the shared workload.
"""

from benchmarks.conftest import emit
from repro.experiments.harness import load_bundle
from repro.experiments.reporting import format_table
from repro.indexes.ak import ak_sketch
from repro.workload.runner import run_selectivity


def test_ak_baseline_vs_treesketch(benchmark):
    bundle = load_bundle("XMark-TX")
    rows = []
    for k in (0, 1, 2, 3):
        ak = ak_sketch(bundle.tree, k)
        ts = bundle.treesketch(ak.size_bytes())
        ak_quality = run_selectivity(ak, bundle.workload)
        ts_quality = run_selectivity(ts, bundle.workload)
        rows.append(
            [k, ak.size_bytes() / 1024, ak.num_nodes,
             ak_quality.avg_error * 100, ts_quality.avg_error * 100]
        )
    emit(
        "baseline_ak",
        format_table(
            "A(k)-index summaries vs equal-size TreeSketch (XMark-TX, err %)",
            ["k", "size KB", "A(k) nodes", "A(k) err %", "TreeSketch err %"],
            rows,
        ),
    )
    # TreeSketch at equal size should win for every k (ties allowed at
    # the trivial A(0) = label-split size floor).
    better = sum(1 for row in rows if row[4] <= row[3] + 0.5)
    assert better >= len(rows) - 1, rows

    benchmark.pedantic(lambda: ak_sketch(bundle.tree, 2), rounds=3, iterations=1)
