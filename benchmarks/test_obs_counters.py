"""Internal-counter trajectory for a representative build + workload run.

Complements the wall-clock micro-benchmarks: the numbers recorded here
(merge counts, heap traffic, node visits per query) explain *why* the
timings move between commits.  Runs with observability enabled; every
other benchmark keeps the default disabled path, so `test_micro.py`
continues to measure the allocation-free configuration.
"""

from benchmarks.conftest import emit_metrics

from repro.core.build import TreeSketchBuilder
from repro.experiments.harness import load_bundle
from repro.workload.runner import run_selectivity


def test_obs_counters(obs_registry):
    bundle = load_bundle("XMark-TX")
    builder = TreeSketchBuilder(bundle.stable)
    sketch = builder.compress_to(20 * 1024)
    quality = run_selectivity(sketch, bundle.workload)

    flat = emit_metrics("obs_counters", obs_registry)

    assert flat["counters.tsbuild.merges_applied"] == builder.merges_applied > 0
    assert flat["counters.eval.queries"] == len(bundle.workload)
    assert flat["histograms.workload.selectivity.query_seconds.count"] == len(
        bundle.workload
    )
    assert quality.avg_error >= 0.0
