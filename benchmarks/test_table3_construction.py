"""Table 3: construction times, TreeSketch vs twig-XSketch.

Paper (Table 3): TreeSketch construction takes 0.7-10 minutes where
twig-XSketch construction takes 13-55 minutes on the same (TX) data sets
-- a 5-20x gap, because TSBUILD optimizes the workload-independent squared
error while the baseline evaluates candidate refinements against a sample
query workload.  Absolute seconds differ on our scaled-down documents; the
*ratio* is the reproduced claim.
"""

import pytest

from benchmarks.conftest import emit
from repro.experiments.reporting import format_table
from repro.experiments.tables import table3_rows
from repro.xsketch.build import XSketchBuildOptions


def test_table3_construction_times(benchmark):
    rows = table3_rows(
        xsketch_options=XSketchBuildOptions(sample_size=12, candidate_clusters=4),
    )
    emit(
        "table3",
        format_table(
            "Table 3: construction seconds (cf. paper Table 3, minutes)",
            ["data set", "TreeSketch (s)", "twig-XSketch (s)", "ratio"],
            rows,
        ),
    )
    # The reproduced claim: TreeSketch construction is multiple times
    # faster on every data set.
    for _name, ts_s, xs_s, ratio in rows:
        assert ratio > 2.0, f"expected construction-time gap, got {ratio:.1f}x"

    # Timed operation: the full TSBUILD compression (stable -> label-split).
    from repro.core.build import TreeSketchBuilder
    from repro.experiments.harness import dataset_names, load_bundle

    bundle = load_bundle(dataset_names(tx_only=True)[0])
    benchmark.pedantic(
        lambda: TreeSketchBuilder(bundle.stable).compress_to(0),
        rounds=1,
        iterations=1,
    )
