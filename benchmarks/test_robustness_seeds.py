"""Seed robustness (beyond the paper): results are not one lucky draw.

Regenerates the XMark-TX data set under five different generator seeds,
rebuilds workload + synopsis for each, and reports the spread of the
10 KB selectivity error.  The reproduced claims must hold for every seed,
not just the seed the benchmarks happen to use.
"""

import statistics

from benchmarks.conftest import emit
from repro.core.build import TreeSketchBuilder
from repro.core.estimate import estimate_selectivity
from repro.core.evaluate import eval_query
from repro.core.stable import build_stable
from repro.datagen.datasets import xmark_like
from repro.experiments.reporting import format_table
from repro.metrics.error import average_error
from repro.workload.workload import make_workload

SEEDS = [12, 101, 202, 303, 404]


def test_seed_robustness(benchmark):
    errors = []
    rows = []
    for seed in SEEDS:
        tree = xmark_like(scale=4.0, seed=seed)
        stable = build_stable(tree)
        workload = make_workload(tree, num_queries=50, seed=seed + 1, stable=stable)
        sketch = TreeSketchBuilder(stable).compress_to(10 * 1024)
        pairs = [
            (float(t), estimate_selectivity(eval_query(sketch, q)))
            for q, t in zip(workload.queries, workload.truths)
        ]
        err = average_error(pairs) * 100
        errors.append(err)
        rows.append([seed, len(tree), stable.size_bytes() // 1024, err])

    rows.append(["mean", "", "", statistics.mean(errors)])
    rows.append(["stdev", "", "", statistics.pstdev(errors)])
    emit(
        "robustness_seeds",
        format_table(
            "Seed robustness: 10KB TreeSketch error across XMark generator seeds",
            ["seed", "elements", "stable KB", "err %"],
            rows,
        ),
    )
    # The paper-level claim (< 10%) must hold for every seed.
    assert all(err < 10.0 for err in errors), errors
    # And the spread should be modest relative to the mean.
    assert statistics.pstdev(errors) < max(2.0, statistics.mean(errors)), errors

    benchmark.pedantic(lambda: xmark_like(scale=1.0, seed=9), rounds=3, iterations=1)
