"""Table 2: workload characteristics.

Paper (Table 2): the sampled positive workloads have large average numbers
of binding tuples per query (thousands to hundreds of thousands) --
evidence that the twigs are complex enough for approximate answering to
matter.  The timed operation is the exact evaluator's binding-tuple count
(the quantity every experiment needs as ground truth).
"""

from benchmarks.conftest import emit
from repro.experiments.harness import dataset_names, load_bundle
from repro.experiments.reporting import format_table
from repro.experiments.tables import table2_rows


def test_table2_workload_characteristics(benchmark):
    rows = table2_rows()
    emit(
        "table2",
        format_table(
            "Table 2: avg binding tuples per workload query (cf. paper Table 2)",
            ["data set", "avg binding tuples"],
            rows,
        ),
    )
    for _name, avg in rows:
        assert avg >= 1.0  # all queries are positive by construction

    bundle = load_bundle(dataset_names(tx_only=True)[0])
    query = bundle.workload.queries[0]
    benchmark.pedantic(
        bundle.workload.evaluator.selectivity, args=(query,), rounds=5, iterations=1
    )
