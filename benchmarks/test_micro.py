"""Micro-benchmarks of the core operations.

Not tied to a specific table/figure; these quantify the per-operation
costs behind the paper's "interactive" claim: building the stable summary,
compressing it, evaluating a twig approximately, estimating selectivity,
expanding an answer, and scoring it with ESD -- all on one TX data set.
"""

import pytest

from repro.core.build import TreeSketchBuilder
from repro.core.estimate import estimate_selectivity
from repro.core.evaluate import eval_query
from repro.core.expand import expand_result
from repro.core.stable import build_stable, expand_stable
from repro.experiments.harness import load_bundle
from repro.metrics.esd import ESDCalculator, esd_nesting_trees


@pytest.fixture(scope="module")
def env():
    bundle = load_bundle("XMark-TX")
    sketch = bundle.treesketch(20 * 1024)
    query = bundle.workload.queries[1]
    return bundle, sketch, query


def test_bench_build_stable(benchmark, env):
    bundle, _sketch, _query = env
    benchmark.pedantic(build_stable, args=(bundle.tree,), rounds=3, iterations=1)


def test_bench_expand_stable(benchmark, env):
    bundle, _sketch, _query = env
    benchmark.pedantic(expand_stable, args=(bundle.stable,), rounds=3, iterations=1)


def test_bench_tsbuild_20kb(benchmark, env):
    bundle, _sketch, _query = env
    benchmark.pedantic(
        lambda: TreeSketchBuilder(bundle.stable).compress_to(20 * 1024),
        rounds=1,
        iterations=1,
    )


def test_bench_eval_query(benchmark, env):
    _bundle, sketch, query = env
    benchmark.pedantic(eval_query, args=(sketch, query), rounds=10, iterations=1)


def test_bench_estimate(benchmark, env):
    _bundle, sketch, query = env
    benchmark.pedantic(
        lambda: estimate_selectivity(eval_query(sketch, query)),
        rounds=10,
        iterations=1,
    )


def test_bench_expand_answer(benchmark, env):
    _bundle, sketch, query = env
    result = eval_query(sketch, query)
    benchmark.pedantic(
        lambda: expand_result(result, max_nodes=3_000_000), rounds=3, iterations=1
    )


def test_bench_exact_evaluation(benchmark, env):
    bundle, _sketch, query = env
    benchmark.pedantic(
        bundle.workload.evaluator.evaluate, args=(query,), rounds=3, iterations=1
    )


def test_bench_esd(benchmark, env):
    bundle, sketch, query = env
    truth = bundle.workload.evaluator.evaluate(query)
    approx = expand_result(eval_query(sketch, query), max_nodes=3_000_000)
    calc = ESDCalculator()

    benchmark.pedantic(
        lambda: esd_nesting_trees(truth, approx, calculator=ESDCalculator()),
        rounds=3,
        iterations=1,
    )
