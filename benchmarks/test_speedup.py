"""Approximate vs exact query latency: the interactivity motivation.

Not a numbered figure, but the paper's raison d'etre (Section 1): an
approximate answer must arrive much faster than the exact one for the
preview workflow to make sense.  This benchmark measures, per TX data set,
the average wall-clock of (a) exact evaluation over the document and
(b) approximate evaluation + estimation over a 10 KB TreeSketch, and
reports the speedup.  The gap widens with document size since the synopsis
cost is independent of it.
"""

from benchmarks.conftest import emit
from repro.core.estimate import estimate_selectivity
from repro.core.evaluate import eval_query
from repro.experiments.harness import dataset_names, load_bundle
from repro.obs import get_clock
from repro.experiments.reporting import format_table

QUERIES_TIMED = 40


def test_approximate_vs_exact_latency(benchmark):
    clock = get_clock()
    rows = []
    for name in dataset_names(tx_only=True):
        bundle = load_bundle(name)
        sketch = bundle.treesketch(10 * 1024)
        queries = bundle.workload.queries[:QUERIES_TIMED]

        start = clock.now()
        for query in queries:
            bundle.workload.evaluator.selectivity(query)
        exact_ms = (clock.now() - start) * 1000 / len(queries)

        start = clock.now()
        for query in queries:
            estimate_selectivity(eval_query(sketch, query))
        approx_ms = (clock.now() - start) * 1000 / len(queries)

        rows.append([name, exact_ms, approx_ms, exact_ms / max(approx_ms, 1e-9)])

    emit(
        "speedup",
        format_table(
            "Approximate vs exact evaluation latency (avg ms per query)",
            ["data set", "exact ms", "approx ms", "speedup"],
            rows,
        ),
    )
    for _name, _e, _a, speedup in rows:
        assert speedup > 1.0, rows

    bundle = load_bundle(dataset_names(tx_only=True)[0])
    sketch = bundle.treesketch(10 * 1024)
    query = bundle.workload.queries[0]
    benchmark.pedantic(
        lambda: estimate_selectivity(eval_query(sketch, query)),
        rounds=10,
        iterations=1,
    )
