"""Ablation A3: squared error tracks answer quality (Section 4.3).

The paper's "missing link": TSBUILD optimizes the workload-independent
squared error sq(TS), and this is claimed to be a faithful proxy for the
quality of approximate answers because low clustering error makes the
evaluator's independence assumptions valid.  This benchmark compresses one
data set through a ladder of budgets and checks that sq(TS) and the
average ESD of answers are strongly rank-correlated.
"""

from benchmarks.conftest import emit
from repro.experiments.ablations import spearman_rank_correlation, sq_error_vs_esd
from repro.experiments.harness import load_bundle
from repro.experiments.reporting import format_table


def test_squared_error_correlates_with_esd(benchmark):
    bundle = load_bundle("XMark-TX")
    budgets = [50, 35, 25, 15, 10, 6]
    rows = sq_error_vs_esd(bundle, budgets, esd_queries=20)
    correlation = spearman_rank_correlation(
        [row[1] for row in rows], [row[2] for row in rows]
    )
    rows_out = rows + [["spearman", "", round(correlation, 3)]]
    emit(
        "ablation_sqerror",
        format_table(
            "Ablation A3: sq(TS) vs avg answer ESD across budgets (XMark-TX)",
            ["budget KB", "sq(TS)", "avg ESD"],
            rows_out,
        ),
    )
    assert correlation >= 0.7, (
        f"squared error should track answer quality; spearman={correlation:.2f}"
    )

    sketch = bundle.treesketch(10 * 1024)
    benchmark.pedantic(sketch.squared_error, rounds=5, iterations=1)
