"""Negative workloads (paper Section 6.1, omitted figures).

The paper: "Our experiments with negative workloads have shown that
TREESKETCHes consistently produce empty answers as approximations and we
therefore omit these workloads".  We regenerate the omitted experiment:
on every TX data set, a workload of 60 provably-empty twig queries is
answered by a 10 KB TreeSketch; the benchmark asserts (and reports) that
every single approximate answer is empty.
"""

import pytest

from benchmarks.conftest import emit
from repro.core.estimate import estimate_selectivity
from repro.core.evaluate import eval_query
from repro.experiments.harness import dataset_names, load_bundle
from repro.experiments.reporting import format_table
from repro.query.generator import generate_negative_workload


def test_negative_workloads_answer_empty(benchmark):
    rows = []
    for name in dataset_names(tx_only=True):
        bundle = load_bundle(name)
        negatives = generate_negative_workload(bundle.stable, num_queries=60, seed=4)
        sketch = bundle.treesketch(10 * 1024)
        empty = sum(1 for q in negatives if eval_query(sketch, q).empty)
        zero_estimates = sum(
            1
            for q in negatives
            if estimate_selectivity(eval_query(sketch, q)) == 0.0
        )
        rows.append([name, len(negatives), empty, zero_estimates])
    emit(
        "negative_workloads",
        format_table(
            "Negative workloads: empty-answer rate of a 10KB TreeSketch",
            ["data set", "queries", "empty answers", "zero estimates"],
            rows,
        ),
    )
    for _name, total, empty, zeros in rows:
        assert empty == total
        assert zeros == total

    bundle = load_bundle(dataset_names(tx_only=True)[0])
    negatives = generate_negative_workload(bundle.stable, num_queries=5, seed=4)
    sketch = bundle.treesketch(10 * 1024)
    benchmark.pedantic(
        lambda: [eval_query(sketch, q) for q in negatives], rounds=3, iterations=1
    )
