"""Figure 11: average ESD of approximate answers vs synopsis size.

Paper (Fig. 11 a,b,c): on XMark-TX, IMDB-TX, and SwissProt-TX, TreeSketch
answers have at least 2x (up to 4x) lower average ESD than twig-XSketch
answers at every budget from 10 to 50 KB; a 10 KB TreeSketch beats a 50 KB
twig-XSketch.  Absolute ESD values depend on the underlying MAC
implementation (see DESIGN.md) -- the reproduced claims are the relative
ones.

The timed operation is the full approximate-answer path: EVALQUERY over
the synopsis plus expansion into a nesting tree.
"""

import pytest

from benchmarks.conftest import emit
from repro.core.evaluate import eval_query
from repro.core.expand import expand_result
from repro.experiments.figures import fig11_series
from repro.experiments.harness import load_bundle
from repro.experiments.reporting import format_table

DATASETS = ["XMark-TX", "IMDB-TX", "SProt-TX"]


@pytest.mark.parametrize("name", DATASETS)
def test_fig11_answer_quality(benchmark, name):
    rows = fig11_series(name)
    emit(
        f"fig11_{name}",
        format_table(
            f"Figure 11 ({name}): avg ESD of approximate answers",
            ["budget KB", "TreeSketch", "twig-XSketch"],
            rows,
        ),
    )

    # Reproduced claims (shape, not absolutes):
    # (1) TreeSketch is better at every budget;
    wins = sum(1 for _kb, ts, xs in rows if ts <= xs)
    assert wins >= len(rows) - 1, f"TreeSketch should win nearly everywhere: {rows}"
    # (2) aggregate advantage is at least ~2x, as in the paper.
    total_ts = sum(ts for _kb, ts, _xs in rows)
    total_xs = sum(xs for _kb, _ts, xs in rows)
    assert total_xs >= 1.5 * total_ts, (
        f"expected a clear aggregate ESD gap, got TS={total_ts:.0f} XS={total_xs:.0f}"
    )

    bundle = load_bundle(name)
    sketch = bundle.treesketch(10 * 1024)
    query = bundle.workload.queries[0]

    def answer():
        return expand_result(eval_query(sketch, query), max_nodes=3_000_000)

    benchmark.pedantic(answer, rounds=3, iterations=1)
