#!/usr/bin/env python3
"""Keeping synopses fresh: incremental maintenance under updates.

The paper builds synopses offline; a live system must also track inserts
and deletes.  Count stability localizes every edit to a root path, so the
stable summary can follow a change stream at microsecond cost per edit
and the query-time TreeSketch can be recompressed on demand.

This script simulates a day of auction activity on an XMark-like site --
new auctions open, bidders arrive, auctions close and are deleted -- and
shows (a) per-edit maintenance cost vs a full rebuild, and (b) that
estimates served from a freshly recompressed sketch track the moving
truth.

Run:  python examples/live_maintenance.py
"""

import random
import time

from repro import ExactEvaluator, parse_twig
from repro.core.build import build_treesketch
from repro.core.evaluate import eval_query
from repro.core.estimate import estimate_selectivity
from repro.core.maintain import StableMaintainer
from repro.core.stable import build_stable
from repro.datagen import xmark_like
from repro.xmltree.tree import XMLTree

MONITOR_QUERY = "//open_auction (/bidder (/increase ?))"
EDIT_BATCHES = 4
EDITS_PER_BATCH = 150


def new_auction(rng):
    bidders = [("bidder", [("date", []), ("personref", []), ("increase", [])])
               for _ in range(rng.randint(0, 6))]
    return ("open_auction", [("initial", []), ("itemref", [])] + bidders)


def main() -> None:
    print("generating auction site ...")
    tree = xmark_like(scale=4.0, seed=12)
    maintainer = StableMaintainer(tree)
    rng = random.Random(9)
    query = parse_twig(MONITOR_QUERY)

    open_auctions = tree.nodes_with_label("open_auctions")[0]
    inserted = list(open_auctions.children)
    print(f"  {len(list(tree.root.iter_preorder())):,} elements, "
          f"{maintainer.num_classes} stable classes\n")

    print(f"monitored query: {MONITOR_QUERY}")
    print(f"{'batch':>6} {'edits':>6} {'ms/edit':>8} {'truth':>9} "
          f"{'estimate':>10} {'err':>6} {'rebuild ms':>11}")
    print("-" * 64)

    for batch in range(1, EDIT_BATCHES + 1):
        start = time.perf_counter()
        for _ in range(EDITS_PER_BATCH):
            if rng.random() < 0.6 or len(inserted) < 10:
                inserted.append(
                    maintainer.insert_subtree(open_auctions, new_auction(rng))
                )
            else:
                maintainer.delete_subtree(
                    inserted.pop(rng.randrange(len(inserted)))
                )
        per_edit_ms = (time.perf_counter() - start) * 1000 / EDITS_PER_BATCH

        # Recompress a fresh 10 KB sketch from the maintained summary and
        # serve an estimate; compare against the moving ground truth.
        summary = maintainer.summary()
        sketch = build_treesketch(summary, 10 * 1024)
        estimate = estimate_selectivity(eval_query(sketch, query))

        current = XMLTree(tree.root)
        start = time.perf_counter()
        rebuilt = build_stable(current)
        rebuild_ms = (time.perf_counter() - start) * 1000
        truth = ExactEvaluator(current).selectivity(query)
        err = abs(estimate - truth) / max(truth, 1)

        print(f"{batch:>6} {EDITS_PER_BATCH:>6} {per_edit_ms:>8.3f} "
              f"{truth:>9,} {estimate:>10,.0f} {err:>5.1%} {rebuild_ms:>11.1f}")
        assert rebuilt.num_nodes == summary.num_nodes  # maintained == fresh

    print("\nper-edit maintenance stays microseconds-to-milliseconds while a")
    print("full rebuild costs ~the document size -- and the recompressed")
    print("sketch keeps tracking the moving answer.")


if __name__ == "__main__":
    main()
