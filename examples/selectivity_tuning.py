#!/usr/bin/env python3
"""Selectivity estimation for query optimization (paper Section 4.4).

An XML query optimizer needs cardinality estimates for twig patterns to
order structural joins.  This example plays that role: it builds
TreeSketches at several space budgets over an auction data set, estimates
a workload of twig selectivities at each budget, and prints the
accuracy/space trade-off -- the practical knob a DBA would tune.

It also demonstrates the one-pass budget sweep (`compress_to_budgets`):
merging is monotone, so all budgets come from a single compression run.

Run:  python examples/selectivity_tuning.py
"""

from repro import build_stable, compress_to_budgets, eval_query, estimate_selectivity
from repro.datagen import xmark_like
from repro.metrics.error import average_error, sanity_bound, workload_errors
from repro.workload import make_workload

BUDGETS_KB = [5, 10, 20, 40]
NUM_QUERIES = 80


def main() -> None:
    print("generating auction data set ...")
    tree = xmark_like(scale=8.0, seed=12)
    stable = build_stable(tree)
    print(f"  {len(tree):,} elements; stable summary "
          f"{stable.size_bytes() / 1024:.0f} KB\n")

    workload = make_workload(tree, num_queries=NUM_QUERIES, seed=3, stable=stable)
    sanity = sanity_bound(workload.truths)
    print(f"workload: {len(workload)} positive twig queries, "
          f"avg {workload.avg_binding_tuples():,.0f} binding tuples, "
          f"sanity bound {sanity:.0f}\n")

    print("one compression pass, snapshots at every budget:")
    sketches = compress_to_budgets(stable, [kb * 1024 for kb in BUDGETS_KB])

    header = f"{'budget':>8}  {'nodes':>6}  {'sq error':>10}  {'avg err':>8}  {'p90 err':>8}"
    print(header)
    print("-" * len(header))
    for kb in sorted(BUDGETS_KB, reverse=True):
        sketch = sketches[kb * 1024]
        pairs = [
            (float(truth), estimate_selectivity(eval_query(sketch, query)))
            for query, truth in zip(workload.queries, workload.truths)
        ]
        errors = sorted(workload_errors(pairs))
        p90 = errors[int(0.9 * (len(errors) - 1))]
        print(f"{kb:>6}KB  {sketch.num_nodes:>6}  {sketch.squared_error():>10.0f}  "
              f"{average_error(pairs):>7.1%}  {p90:>7.1%}")

    print("\nreading the table: pick the smallest budget whose error your")
    print("optimizer tolerates -- the paper's headline is that ~10 KB")
    print("already estimates complex twigs within a few percent.")


if __name__ == "__main__":
    main()
