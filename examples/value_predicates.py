#!/usr/bin/env python3
"""Value predicates: the paper's future-work direction, implemented.

The paper summarizes *structure* and defers value content to future work
(Sections 1, 7).  This example exercises the library's value extension:
per-synopsis-node value summaries (top-k heavy hitters + uniform tail)
enable approximate answers for twigs with value-equality predicates like
``//movie[/genre = "scifi"] ( /cast ( /actor ) )``.

Run:  python examples/value_predicates.py
"""

import random

from repro import ExactEvaluator, build_stable, eval_query, estimate_selectivity, parse_twig
from repro.core.build import TreeSketchBuilder
from repro.datagen import imdb_like
from repro.values import annotate_sketch_values, annotate_stable_values

GENRES = ["scifi", "crime", "drama", "comedy", "horror", "romance", "war"]
YEARS = [str(y) for y in range(1990, 2010)]

QUERIES = [
    '//movie[/genre = "scifi"] ( /cast ( /actor ) )',
    '//movie[/genre = "crime"] ( /award ? )',
    '//movie[/year = "1999"] ( /genre )',
    '//movie[/genre = "romance"][/award] ( /cast ( /director ) )',
    '//movie[/genre = "jazz"] ( /cast )',   # value never occurs
]


def attach_values(tree, seed: int) -> None:
    """Give genre/year leaves skewed categorical values (Zipf-ish)."""
    rng = random.Random(seed)
    genre_weights = [1 / (r ** 1.2) for r in range(1, len(GENRES) + 1)]
    for node in tree.nodes_with_label("genre"):
        node.value = rng.choices(GENRES, weights=genre_weights, k=1)[0]
    for node in tree.nodes_with_label("year"):
        node.value = rng.choice(YEARS)


def main() -> None:
    print("generating movie database with genre/year values ...")
    tree = imdb_like(scale=4.0, seed=21)
    attach_values(tree, seed=5)

    stable = build_stable(tree, keep_extents=True)
    value_summaries = annotate_stable_values(stable, tree, top_k=8)
    print(f"  {len(tree):,} elements; {len(value_summaries)} stable classes "
          f"carry values\n")

    sketch = TreeSketchBuilder(stable).compress_to(12 * 1024)
    annotate_sketch_values(sketch, value_summaries, top_k=8)
    extra = sum(s.size_bytes() for s in sketch.values.values())
    print(f"TreeSketch: {sketch.size_bytes() / 1024:.1f} KB structural "
          f"+ {extra / 1024:.1f} KB value summaries\n")

    exact = ExactEvaluator(tree)
    print(f"{'query':62s} {'exact':>8} {'estimate':>10} {'err':>7}")
    print("-" * 92)
    for text in QUERIES:
        query = parse_twig(text)
        truth = exact.selectivity(query)
        estimate = estimate_selectivity(eval_query(sketch, query))
        err = abs(estimate - truth) / max(truth, 1)
        print(f"{text:62s} {truth:>8,} {estimate:>10,.1f} {err:>6.0%}")

    print("\nthe summaries answer frequent values well (heavy hitters are")
    print("exact) and rare/unseen values conservatively (uniform tail).")


if __name__ == "__main__":
    main()
