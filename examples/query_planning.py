#!/usr/bin/env python3
"""Synopsis-guided query planning: selectivity estimates at work.

Section 4.4 motivates TreeSketch selectivity estimation with query
optimization.  This example closes the loop: a twig's solid branches are
reordered most-selective-first using only the 10 KB synopsis, and the
exact engine -- whose satisfaction checks short-circuit on the first
failing branch -- evaluates the planned query faster whenever a later
branch rejects many candidates.  The answers are identical by
construction.  (Selectivity alone is half of a real cost model: a branch
that rejects a lot but is expensive to probe can still lose, as one of
the queries below shows -- estimating *evaluation cost* per branch is the
natural next step.)

Run:  python examples/query_planning.py
"""

import time

from repro import ExactEvaluator, build_stable, build_treesketch, parse_twig
from repro.datagen import sprot_like
from repro.engine.planner import branch_survival, reorder_query

# Queries whose first-written branch is unselective (matches everything)
# while a later branch rejects most candidates -- the worst case for
# naive left-to-right evaluation.
QUERIES = [
    "//entry (/protein, /organism, /ref (/comment, /author))",
    "//entry (/protein (/name), /feature (/evidence), /keyword)",
    "//ref (/citation, /author, /comment)",
    "//entry (/organism (/lineage), /feature (/location (/position)))",
]
REPEATS = 5


def timed(evaluator, query) -> float:
    start = time.perf_counter()
    for _ in range(REPEATS):
        evaluator.selectivity(query)
    return (time.perf_counter() - start) * 1000 / REPEATS


def main() -> None:
    print("generating protein data set ...")
    tree = sprot_like(scale=5.0, seed=13)
    stable = build_stable(tree)
    sketch = build_treesketch(stable, 10 * 1024)
    evaluator = ExactEvaluator(tree)
    print(f"  {len(tree):,} elements; planner synopsis "
          f"{sketch.size_bytes() / 1024:.1f} KB\n")

    print(f"{'query':58s} {'naive ms':>9} {'planned ms':>11} {'speedup':>8}")
    print("-" * 90)
    for text in QUERIES:
        query = parse_twig(text)
        planned = reorder_query(query, sketch)
        assert evaluator.selectivity(query) == evaluator.selectivity(planned)
        naive_ms = timed(evaluator, query)
        planned_ms = timed(evaluator, planned)
        print(f"{text:58s} {naive_ms:>9.1f} {planned_ms:>11.1f} "
              f"{naive_ms / max(planned_ms, 1e-9):>7.2f}x")

    query = parse_twig(QUERIES[0])
    survival = branch_survival(query, sketch)
    print("\nestimated branch survival for the first query "
          "(lower = more selective = test first):")
    for node in query.nodes:
        if node.path is not None:
            print(f"  {node.var}: {str(node.path):22s} -> {survival.get(node.var, 1):.2f}")


if __name__ == "__main__":
    main()
