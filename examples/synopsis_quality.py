#!/usr/bin/env python3
"""Anatomy of synopsis quality: TreeSketch vs twig-XSketch.

Reproduces the paper's central comparison in miniature on a protein data
set: at the same byte budget, a clustering-based TreeSketch and a
histogram-based twig-XSketch answer the same workload, scored on

* selectivity estimation error (the baseline's home turf), and
* ESD of approximate answers (where edge-histogram summaries fall short
  because independent per-element sampling destroys sibling correlations).

It also shows the paper's "missing link" (Section 4.3): the synopsis'
internal squared error tracks the external answer quality, which is why
TSBUILD can optimize a workload-independent objective and still win.

Run:  python examples/synopsis_quality.py        (takes a minute or two)
"""

import time

from repro import build_stable
from repro.core.build import TreeSketchBuilder
from repro.datagen import sprot_like
from repro.metrics.esd import ESDCalculator
from repro.workload import make_workload, run_answer_quality, run_selectivity
from repro.xsketch import XSketchBuildOptions, build_twig_xsketch

BUDGETS_KB = [8, 16, 32]
ESD_QUERIES = 20


def main() -> None:
    print("generating protein data set ...")
    tree = sprot_like(scale=3.0, seed=13)
    stable = build_stable(tree)
    print(f"  {len(tree):,} elements; stable summary "
          f"{stable.size_bytes() / 1024:.0f} KB\n")

    workload = make_workload(tree, num_queries=60, seed=2, stable=stable)
    training = make_workload(tree, num_queries=25, seed=77, stable=stable)

    print("building synopses ...")
    builder = TreeSketchBuilder(stable)
    start = time.perf_counter()
    tsketches = {
        kb: builder.compress_to(kb * 1024) for kb in sorted(BUDGETS_KB, reverse=True)
    }
    ts_seconds = time.perf_counter() - start

    start = time.perf_counter()
    xsketches_by_bytes = build_twig_xsketch(
        stable,
        max(BUDGETS_KB) * 1024,
        training.queries,
        training.truths,
        XSketchBuildOptions(sample_size=12, candidate_clusters=4),
        snapshot_budgets=[kb * 1024 for kb in BUDGETS_KB],
    )
    xs_seconds = time.perf_counter() - start
    print(f"  TreeSketch sweep: {ts_seconds:.1f}s   "
          f"twig-XSketch sweep: {xs_seconds:.1f}s  "
          f"(workload-driven construction is the baseline's bottleneck)\n")

    calc = ESDCalculator()
    query_ids = list(range(ESD_QUERIES))
    header = (f"{'budget':>8}  {'TS err':>8}  {'XS err':>8}  "
              f"{'TS ESD':>9}  {'XS ESD':>9}  {'TS sq(TS)':>10}")
    print(header)
    print("-" * len(header))
    for kb in sorted(BUDGETS_KB, reverse=True):
        ts, xs = tsketches[kb], xsketches_by_bytes[kb * 1024]
        ts_sel = run_selectivity(ts, workload)
        xs_sel = run_selectivity(xs, workload)
        ts_ans = run_answer_quality(ts, workload, query_ids, calculator=calc)
        xs_ans = run_answer_quality(xs, workload, query_ids, calculator=calc)
        print(f"{kb:>6}KB  {ts_sel.avg_error:>7.1%}  {xs_sel.avg_error:>7.1%}  "
              f"{ts_ans.avg_esd:>9.0f}  {xs_ans.avg_esd:>9.0f}  "
              f"{ts.squared_error():>10.0f}")

    print("\nsq(TS) falls as budgets grow and the ESD column falls with it:")
    print("low clustering error makes the evaluator's independence")
    print("assumptions valid, which is exactly the paper's argument for a")
    print("workload-independent build objective.")


if __name__ == "__main__":
    main()
