#!/usr/bin/env python3
"""Interactive data exploration with approximate answers.

The paper's motivating scenario: an analyst explores a large XML data set
by issuing successive twig queries.  Instead of paying the full evaluation
cost for every exploratory step, each query is first answered
*approximately* over a small TreeSketch; only the final query -- once the
analyst has zeroed in -- is evaluated exactly.

The script replays such a session over a generated movie database and
reports, per step, the approximate preview, its accuracy, and the speedup
over exact evaluation.

Run:  python examples/data_exploration.py
"""

import time

from repro import (
    ExactEvaluator,
    build_stable,
    build_treesketch,
    eval_query,
    estimate_selectivity,
    expand_result,
    parse_twig,
)
from repro.datagen import imdb_like
from repro.metrics.esd import ESDCalculator, esd_nesting_trees

# The exploratory session: each step narrows the previous question.
SESSION = [
    ("How are movies structured?",
     "//movie ( /genre ?, /cast ? )"),
    ("Movies that actually have a cast -- how big are the casts?",
     "//movie[/cast] ( /cast ( /actor ) )"),
    ("Among those, award-winners with their directors",
     "//movie[/award] ( /cast ( /actor ?, /director ), /award )"),
    ("Finally: award-winning movies where actors have named roles",
     "//movie[/award] ( /cast ( /actor ( /role ) ), /award ( /category ? ) )"),
]

BUDGET_KB = 15


def main() -> None:
    print("generating movie database ...")
    tree = imdb_like(scale=8.0, seed=11)
    stable = build_stable(tree)
    print(f"  {len(tree):,} elements; stable summary "
          f"{stable.size_bytes() / 1024:.0f} KB")

    start = time.perf_counter()
    sketch = build_treesketch(stable, BUDGET_KB * 1024)
    build_seconds = time.perf_counter() - start
    print(f"  TreeSketch: {BUDGET_KB} KB budget -> "
          f"{sketch.size_bytes() / 1024:.1f} KB, built in {build_seconds:.1f}s\n")

    exact = ExactEvaluator(tree)
    calc = ESDCalculator()

    for step, (question, text) in enumerate(SESSION, start=1):
        query = parse_twig(text)
        print(f"step {step}: {question}")
        print(f"  twig: {text}")

        start = time.perf_counter()
        result = eval_query(sketch, query)
        estimate = estimate_selectivity(result)
        preview = expand_result(result)
        approx_seconds = time.perf_counter() - start

        start = time.perf_counter()
        truth_count = exact.selectivity(query)
        truth = exact.evaluate(query)
        exact_seconds = time.perf_counter() - start

        distance = esd_nesting_trees(truth, preview, calculator=calc)
        speedup = exact_seconds / max(approx_seconds, 1e-9)
        error = abs(estimate - truth_count) / max(truth_count, 1)
        print(f"  approximate: ~{estimate:,.0f} tuples, preview "
              f"{preview.size():,} elements   [{approx_seconds * 1e3:.1f} ms]")
        print(f"  exact:       {truth_count:,} tuples, answer "
              f"{truth.size():,} elements   [{exact_seconds * 1e3:.1f} ms]")
        print(f"  estimate error {error:.1%}, answer ESD {distance:,.0f}, "
              f"speedup x{speedup:.1f}\n")

    print("the analyst inspected 4 previews but paid full evaluation cost")
    print("only when this script compared against ground truth -- in a real")
    print("session, only the final query would be evaluated exactly.")


if __name__ == "__main__":
    main()
