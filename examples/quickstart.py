#!/usr/bin/env python3
"""Quickstart: approximate XML query answers in five steps.

1. Load (or generate) an XML document.
2. Build a TreeSketch synopsis under a space budget.
3. Write a twig query.
4. Get an *approximate* answer and selectivity estimate from the synopsis.
5. Compare with the exact answer.

Run:  python examples/quickstart.py
"""

from repro import (
    ExactEvaluator,
    build_stable,
    build_treesketch,
    eval_query,
    estimate_selectivity,
    expand_result,
    parse_twig,
    parse_xml,
)
from repro.metrics.esd import esd_nesting_trees

# ---------------------------------------------------------------- 1. data
# Any XML text works; only the element structure is kept.  Here: a tiny
# bibliography in the spirit of the paper's running example.
DOCUMENT = """
<dblp>
  <author><name/><paper><year/><title/><keyword/></paper>
          <paper><year/><title/><keyword/><keyword/></paper></author>
  <author><name/><book><title/></book>
          <paper><year/><title/><keyword/></paper></author>
  <author><name/><book><title/></book>
          <paper><year/><title/><keyword/></paper></author>
</dblp>
"""


def main() -> None:
    tree = parse_xml(DOCUMENT)
    print(f"document: {len(tree)} elements, height {tree.height}")

    # ------------------------------------------------------- 2. synopsis
    stable = build_stable(tree)
    print(f"count-stable summary: {stable.num_nodes} nodes "
          f"({stable.size_bytes()} bytes, lossless)")

    sketch = build_treesketch(stable, budget_bytes=128)
    print(f"TreeSketch at 128 B: {sketch.num_nodes} nodes, "
          f"squared error {sketch.squared_error():.2f}")

    # ---------------------------------------------------------- 3. query
    # Twig syntax: path ( children ) with '?' marking optional branches.
    # "authors with a book; return their papers (with keywords) and name".
    query = parse_twig("//author[//book] ( //paper ( //keyword ? ), //name ? )")
    print(f"query: {query}")

    # ----------------------------------------- 4. approximate evaluation
    result = eval_query(sketch, query)
    estimate = estimate_selectivity(result)
    preview = expand_result(result)
    print(f"approximate: ~{estimate:.1f} binding tuples, "
          f"preview tree of {preview.size()} elements")

    # ------------------------------------------------------- 5. compare
    exact = ExactEvaluator(tree)
    truth = exact.evaluate(query)
    print(f"exact:        {truth.binding_tuple_count()} binding tuples, "
          f"answer tree of {truth.size()} elements")
    print(f"answer distance (ESD, 0 = structurally exact): "
          f"{esd_nesting_trees(truth, preview):.1f}")


if __name__ == "__main__":
    main()
