"""Workload generation by sampling the count-stable summary (Section 6.1).

The paper generates query workloads "by sampling sub-trees from the stable
synopsis and converting them to twig queries".  Count stability makes
positivity automatic: every edge ``(u, v, k)`` of the stable summary means
*every* element of ``u`` has ``k >= 1`` children in ``v``, so any twig whose
paths follow stable edges has a non-empty result on the document.

A sampled query is built recursively: pick a downward label walk for each
query edge (rendered either as an explicit child-axis chain or collapsed to
a descendant step), optionally attach existential branch predicates sampled
beneath intermediate classes, and mark non-first branches as dashed
(optional) with some probability -- mirroring return-clause paths.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.core.stable import StableSummary
from repro.query.path import Axis, Path, PathStep, ValueTest
from repro.query.twig import QueryNode, TwigQuery


@dataclass
class WorkloadOptions:
    """Shape parameters of sampled twig queries."""

    num_queries: int = 1000
    seed: int = 0
    max_branches: int = 2       # extra children per query node
    max_query_depth: int = 3    # depth of the query tree
    min_path_len: int = 1
    max_path_len: int = 3
    descendant_prob: float = 0.5
    optional_prob: float = 0.4
    predicate_prob: float = 0.25
    branch_prob: float = 0.6    # probability of growing extra branches
    # Fraction of generated structural predicates upgraded to value tests
    # ``[path = "v"]`` when the stable summary carries value summaries
    # (see repro.values).  At most one value test per query, with the
    # value drawn from the terminal class's retained heavy hitters, which
    # keeps queries positive.
    value_predicate_prob: float = 0.0


class WorkloadGenerator:
    """Samples positive twig queries from one document's stable summary."""

    def __init__(self, stable: StableSummary, options: Optional[WorkloadOptions] = None):
        self.stable = stable
        self.options = options or WorkloadOptions()
        # Pre-compute out-edge lists for uniform sampling.
        self._out: dict = {
            nid: sorted(stable.out.get(nid, {}).keys())
            for nid in stable.node_ids()
        }
        self._value_test_used = False

    # ------------------------------------------------------------------

    def generate(self) -> List[TwigQuery]:
        """The full workload (deterministic per options.seed)."""
        rng = random.Random(self.options.seed)
        queries = []
        attempts = 0
        while len(queries) < self.options.num_queries:
            attempts += 1
            if attempts > 50 * self.options.num_queries:
                raise RuntimeError("workload generation is not converging")
            query = self.sample_query(rng)
            if query is not None:
                queries.append(query)
        return queries

    def sample_query(self, rng: random.Random) -> Optional[TwigQuery]:
        """One random positive twig query (None if sampling dead-ends)."""
        self._value_test_used = False
        query = TwigQuery()
        target = self._grow_edge(query.root, self.stable.root_id, rng, optional=False)
        if target is None:
            return None
        self._grow_branches(query.root.children[0], target, rng, depth=1)
        return query.finalize()

    # ------------------------------------------------------------------

    def _grow_branches(
        self, qnode: QueryNode, cls: int, rng: random.Random, depth: int
    ) -> None:
        opts = self.options
        if depth >= opts.max_query_depth:
            return
        first = True
        for _ in range(opts.max_branches):
            if not first and rng.random() > opts.branch_prob:
                break
            optional = (not first) and rng.random() < opts.optional_prob
            target = self._grow_edge(qnode, cls, rng, optional)
            if target is None:
                break
            self._grow_branches(qnode.children[-1], target, rng, depth + 1)
            first = False

    def _grow_edge(
        self, qnode: QueryNode, cls: int, rng: random.Random, optional: bool
    ) -> Optional[int]:
        """Attach one sampled child edge under ``qnode``; returns its class."""
        walked = self._sample_walk(cls, rng)
        if walked is None:
            return None
        steps, end_cls = walked
        qnode.add_child(Path(tuple(steps)), optional=optional)
        return end_cls

    def _sample_walk(
        self, cls: int, rng: random.Random
    ) -> Optional[Tuple[List[PathStep], int]]:
        """Random downward walk from ``cls`` rendered as path steps."""
        opts = self.options
        length = rng.randint(opts.min_path_len, opts.max_path_len)
        steps: List[PathStep] = []
        current = cls
        hops: List[int] = []
        for _ in range(length):
            targets = self._out.get(current)
            if not targets:
                break
            current = rng.choice(targets)
            hops.append(current)
        if not hops:
            return None

        # Render: collapse the whole walk into one descendant step, or emit
        # an explicit child chain (possibly with a descendant first step).
        if rng.random() < opts.descendant_prob:
            final = hops[-1]
            step = PathStep(
                Axis.DESCENDANT,
                self.stable.label[final],
                self._maybe_predicate(final, rng),
            )
            return [step], final
        for hop in hops:
            steps.append(
                PathStep(
                    Axis.CHILD,
                    self.stable.label[hop],
                    self._maybe_predicate(hop, rng),
                )
            )
        return steps, hops[-1]

    def _maybe_predicate(self, cls: int, rng: random.Random) -> Tuple[object, ...]:
        """With some probability, a 1-2 hop existence predicate under cls."""
        opts = self.options
        if rng.random() >= opts.predicate_prob:
            return ()
        targets = self._out.get(cls)
        if not targets:
            return ()
        value_test = self._maybe_value_test(cls, targets, rng)
        if value_test is not None:
            return (value_test,)
        first = rng.choice(targets)
        steps = [PathStep(Axis.CHILD, self.stable.label[first])]
        deeper = self._out.get(first)
        if deeper and rng.random() < 0.5:
            second = rng.choice(deeper)
            if rng.random() < 0.5:
                steps = [PathStep(Axis.DESCENDANT, self.stable.label[second])]
            else:
                steps.append(PathStep(Axis.CHILD, self.stable.label[second]))
        return (Path(tuple(steps)),)

    def _maybe_value_test(
        self, cls: int, targets, rng: random.Random
    ) -> Optional[ValueTest]:
        """Upgrade a predicate to ``[child = "v"]`` when values allow it.

        ``v`` comes from the retained heavy hitters of a valued child
        class, so at least one element carries it -- with at most one
        value test per query this preserves workload positivity.
        """
        opts = self.options
        if opts.value_predicate_prob <= 0 or self._value_test_used:
            return None
        summaries = getattr(self.stable, "values", None)
        if not summaries:
            return None
        if rng.random() >= opts.value_predicate_prob:
            return None
        valued = [t for t in targets if summaries.get(t) and summaries[t].top]
        if not valued:
            return None
        target = rng.choice(valued)
        value = rng.choice(sorted(summaries[target].top))
        self._value_test_used = True
        return ValueTest(
            Path((PathStep(Axis.CHILD, self.stable.label[target]),)), value
        )


def generate_workload(
    stable: StableSummary, options: Optional[WorkloadOptions] = None
) -> List[TwigQuery]:
    """Convenience wrapper: sample a workload from a stable summary."""
    return WorkloadGenerator(stable, options).generate()


def generate_negative_workload(
    stable: StableSummary,
    num_queries: int = 100,
    seed: int = 0,
) -> List[TwigQuery]:
    """Twig queries guaranteed to have *empty* results on the document.

    The paper reports that TreeSketches "consistently produce empty
    answers" on negative workloads; this generator supplies such workloads
    by two corruption modes:

    * a child-axis label pair ``/l1/l2`` that occurs nowhere in the
      document (absent from the stable summary, hence absent from the
      data);
    * a positive query prefix extended with such an impossible pair, so
      part of the query does match data before the dead end.
    """
    rng = random.Random(seed)
    labels = sorted(set(stable.label.values()))
    present_pairs = {
        (stable.label[src], stable.label[dst]) for src, dst, _ in stable.edges()
    }
    absent_pairs = [
        (a, b)
        for a in labels
        for b in labels
        if (a, b) not in present_pairs
    ]
    if not absent_pairs:
        raise ValueError("document realizes every label pair; cannot build negatives")
    positive = WorkloadGenerator(
        stable, WorkloadOptions(num_queries=1, seed=seed)
    )

    queries: List[TwigQuery] = []
    while len(queries) < num_queries:
        a, b = rng.choice(absent_pairs)
        dead_end = [
            PathStep(Axis.DESCENDANT, a),
            PathStep(Axis.CHILD, b),
        ]
        query = TwigQuery()
        if rng.random() < 0.5:
            # Pure dead end from the root.
            query.root.add_child(Path(tuple(dead_end)))
        else:
            # Positive prefix, then the impossible pair as a solid child.
            prefix = positive.sample_query(rng)
            if prefix is None:
                continue
            query = prefix
            leaf = next(n for n in query.nodes if n.is_leaf)
            leaf.add_child(Path(tuple(dead_end)))
        queries.append(query.finalize())
    return queries
