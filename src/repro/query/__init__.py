"""Twig-query model (paper Section 2).

A twig query is a node-labeled *query tree*: each node is a variable
``q_i`` (with ``q0`` bound to the document root) and each edge carries an
XPath expression over the supported subset (child ``/`` and
descendant-or-self ``//`` axes, plus existential branching predicates
``[path]``).  Dashed (optional) edges mark paths from the query's return
clause that may be empty without nullifying the result.

Contents:

* :mod:`repro.query.path` -- the XPath-subset AST (:class:`Path`,
  :class:`PathStep`).
* :mod:`repro.query.twig` -- :class:`TwigQuery` / :class:`QueryNode`.
* :mod:`repro.query.parser` -- text syntax for paths and twigs.
* :mod:`repro.query.generator` -- workload generation by sampling the
  count-stable summary (paper Section 6.1).
"""

from repro.query.path import Axis, Path, PathStep
from repro.query.twig import QueryNode, TwigQuery
from repro.query.parser import parse_path, parse_twig

__all__ = [
    "Axis",
    "Path",
    "PathStep",
    "QueryNode",
    "TwigQuery",
    "parse_path",
    "parse_twig",
]
