"""Twig queries as node-labeled query trees (paper Fig. 2(b))."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, List, Optional

from repro.query.path import Path


@dataclass
class QueryNode:
    """One variable node of a twig query tree.

    ``var`` is the variable name (``q0`` is the distinguished root bound to
    the document root).  ``path`` is the XPath expression annotating the
    edge from this node's parent (``None`` for the root).  ``optional``
    marks a dashed edge: a return-clause path that may be empty without
    nullifying the query (generalized-tree-pattern notation, [5]).
    """

    var: str
    path: Optional[Path] = None
    optional: bool = False
    children: List["QueryNode"] = field(default_factory=list)
    parent: Optional["QueryNode"] = None

    def add_child(
        self, path: Path, optional: bool = False, var: Optional[str] = None
    ) -> "QueryNode":
        """Attach and return a new child variable reached via ``path``."""
        child = QueryNode(var=var or "?", path=path, optional=optional, parent=self)
        self.children.append(child)
        return child

    def iter_preorder(self) -> Iterator["QueryNode"]:
        stack = [self]
        while stack:
            node = stack.pop()
            yield node
            stack.extend(reversed(node.children))

    def iter_postorder(self) -> Iterator["QueryNode"]:
        out: List[QueryNode] = []
        stack = [self]
        while stack:
            node = stack.pop()
            out.append(node)
            stack.extend(node.children)
        return iter(reversed(out))

    @property
    def is_leaf(self) -> bool:
        return not self.children


class TwigQuery:
    """A twig query: a query tree rooted at ``q0`` (the document root).

    Construct programmatically::

        q = TwigQuery()
        q1 = q.root.add_child(parse_path("//a[//b]"))
        q2 = q1.add_child(parse_path("//p"))
        q1.add_child(parse_path("//n"), optional=True)
        q2.add_child(parse_path("//k"), optional=True)
        q.finalize()

    or from text with :func:`repro.query.parser.parse_twig`.
    """

    def __init__(self) -> None:
        self.root = QueryNode(var="q0")
        self._nodes: List[QueryNode] = [self.root]

    def finalize(self) -> "TwigQuery":
        """Assign canonical variable names (pre-order) and freeze node list.

        Must be called after programmatic construction; the parser and the
        workload generator call it automatically.  Returns ``self``.
        """
        self._nodes = list(self.root.iter_preorder())
        for i, node in enumerate(self._nodes):
            node.var = f"q{i}"
        return self

    @property
    def nodes(self) -> List[QueryNode]:
        """All query nodes in pre-order (``q0`` first)."""
        return self._nodes

    @property
    def variables(self) -> List[str]:
        return [n.var for n in self._nodes]

    def node_by_var(self, var: str) -> QueryNode:
        for node in self._nodes:
            if node.var == var:
                return node
        raise KeyError(var)

    def size(self) -> int:
        """Number of variables (including ``q0``)."""
        return len(self._nodes)

    def depth(self) -> int:
        """Height of the query tree (edges on the longest root-leaf path)."""

        def height(node: QueryNode) -> int:
            if not node.children:
                return 0
            return 1 + max(height(c) for c in node.children)

        return height(self.root)

    def __str__(self) -> str:
        """Render in the twig text syntax accepted by ``parse_twig``."""
        return ", ".join(_render(child) for child in self.root.children)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"TwigQuery({self!s})"


def _render(node: QueryNode) -> str:
    text = str(node.path)
    if node.children:
        text += " (" + ", ".join(_render(c) for c in node.children) + ")"
    if node.optional:
        text += " ?"
    return text
