"""Text syntax for paths and twig queries.

Path syntax (the paper's XPath subset)::

    path  :=  step+
    step  :=  axis? label pred*
    axis  :=  '//' | '/'          (a missing leading axis means '/')
    label :=  NCName-ish token, '*', or an alternation  a|b|c
    pred  :=  '[' path ']'                     (existential branch)
           |  '[' path '=' string ']'          (value test; see repro.values)

Twig syntax (one line per query)::

    twig     :=  branch (',' branch)*
    branch   :=  path ( '(' twig ')' )? '?'?

The top-level branches hang off ``q0`` (the document root); ``?`` marks a
dashed/optional edge.  Example — the paper's Fig. 2 query::

    //a[//b] ( //p ( //k ? ), //n ? )
"""

from __future__ import annotations

import re
from typing import List

from repro.query.path import Axis, Path, PathStep, ValueTest
from repro.query.twig import QueryNode, TwigQuery

_LABEL_RE = re.compile(r"[A-Za-z_][\w.\-]*|\*")


class QuerySyntaxError(ValueError):
    """Raised on malformed path or twig text."""


class _Scanner:
    """Tiny cursor over the input text with shared error reporting."""

    def __init__(self, text: str) -> None:
        self.text = text
        self.pos = 0

    def skip_ws(self) -> None:
        while self.pos < len(self.text) and self.text[self.pos].isspace():
            self.pos += 1

    def at_end(self) -> bool:
        self.skip_ws()
        return self.pos >= len(self.text)

    def peek(self, token: str) -> bool:
        self.skip_ws()
        return self.text.startswith(token, self.pos)

    def accept(self, token: str) -> bool:
        if self.peek(token):
            self.pos += len(token)
            return True
        return False

    def expect(self, token: str) -> None:
        if not self.accept(token):
            self.error(f"expected {token!r}")

    def label(self) -> str:
        self.skip_ws()
        match = _LABEL_RE.match(self.text, self.pos)
        if not match:
            self.error("expected a label")
        self.pos = match.end()
        return match.group()

    def quoted_string(self) -> str:
        self.skip_ws()
        if self.pos >= len(self.text) or self.text[self.pos] not in "\"'":
            self.error("expected a quoted string")
        quote = self.text[self.pos]
        end = self.text.find(quote, self.pos + 1)
        if end < 0:
            self.error("unterminated string literal")
        literal = self.text[self.pos + 1 : end]
        self.pos = end + 1
        return literal

    def error(self, message: str) -> None:
        raise QuerySyntaxError(
            f"{message} at position {self.pos} in {self.text!r}"
        )


def _parse_steps(scanner: _Scanner) -> Path:
    steps: List[PathStep] = []
    while True:
        if scanner.accept("//"):
            axis = Axis.DESCENDANT
        elif scanner.accept("/"):
            axis = Axis.CHILD
        elif not steps:
            axis = Axis.CHILD  # relative first step defaults to child axis
        else:
            break
        label = scanner.label()
        while scanner.accept("|"):
            label += "|" + scanner.label()
        predicates: List[object] = []
        while scanner.accept("["):
            inner = _parse_steps(scanner)
            if scanner.accept("="):
                predicates.append(ValueTest(inner, scanner.quoted_string()))
            else:
                predicates.append(inner)
            scanner.expect("]")
        steps.append(PathStep(axis, label, tuple(predicates)))
        # Next iteration only continues if another axis token follows.
        if not (scanner.peek("/") or scanner.peek("//")):
            break
    if not steps:
        scanner.error("expected a path")
    return Path(tuple(steps))


def parse_path(text: str) -> Path:
    """Parse a path expression, e.g. ``"//a[//b]/c"``."""
    scanner = _Scanner(text)
    result = _parse_steps(scanner)
    if not scanner.at_end():
        scanner.error("trailing input after path")
    return result


def _parse_branches(scanner: _Scanner, parent: QueryNode) -> None:
    while True:
        path = _parse_steps(scanner)
        node = parent.add_child(path)
        if scanner.accept("("):
            _parse_branches(scanner, node)
            scanner.expect(")")
        if scanner.accept("?"):
            node.optional = True
        if not scanner.accept(","):
            break


def parse_twig(text: str) -> TwigQuery:
    """Parse a twig query, e.g. ``"//a[//b] ( //p ( //k ? ), //n ? )"``."""
    scanner = _Scanner(text)
    query = TwigQuery()
    _parse_branches(scanner, query.root)
    if not scanner.at_end():
        scanner.error("trailing input after twig")
    return query.finalize()
