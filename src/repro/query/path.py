"""AST for the supported XPath subset.

The paper considers XPath expressions built from the child (``/``) and
descendant-or-self (``//``) axes with existential branching predicates
``[path]``.  A :class:`Path` is a sequence of :class:`PathStep`; each step
has an axis, a label test, and zero or more branch predicates (each itself a
:class:`Path`).  The *main path* of an expression is the step sequence with
predicates stripped (used by EVALQUERY, Fig. 7, line 4).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import List, Tuple

WILDCARD = "*"


class Axis(enum.Enum):
    """XPath axis of one step."""

    CHILD = "/"
    DESCENDANT = "//"

    def __str__(self) -> str:
        return self.value


@dataclass(frozen=True)
class PathStep:
    """One step of a path: ``axis label [pred]*``.

    The label test may be a single tag, the ``*`` wildcard, or an
    alternation ``a|b|c`` (used, e.g., by the paper's Fig. 9 example
    query ``b|e``).  Predicates are existential :class:`Path` branches or
    :class:`ValueTest` value-equality branches (the values extension).
    """

    axis: Axis
    label: str
    predicates: Tuple[object, ...] = ()

    def __post_init__(self) -> None:
        if "|" in self.label:
            object.__setattr__(self, "_alternatives", frozenset(self.label.split("|")))
        else:
            object.__setattr__(self, "_alternatives", None)

    def matches_label(self, label: str) -> bool:
        """Label test, honouring the ``*`` wildcard and ``|`` alternation."""
        alternatives = self._alternatives  # type: ignore[attr-defined]
        if alternatives is not None:
            return label in alternatives
        return self.label == WILDCARD or self.label == label

    def strip_predicates(self) -> "PathStep":
        return PathStep(self.axis, self.label)

    def __str__(self) -> str:
        preds = "".join(f"[{p}]" for p in self.predicates)
        return f"{self.axis}{self.label}{preds}"


@dataclass(frozen=True)
class ValueTest:
    """A value-equality predicate ``[path = "literal"]``.

    Satisfied by an element that has at least one descendant along
    ``path`` whose (leaf) value equals ``value``.  Part of the values
    extension (:mod:`repro.values`); the structural algorithms of the
    paper never produce these.
    """

    path: "Path"
    value: str

    def __str__(self) -> str:
        return f'{self.path} = "{self.value}"'


@dataclass(frozen=True)
class Path:
    """A path expression: a non-empty sequence of steps."""

    steps: Tuple[PathStep, ...]

    def __post_init__(self) -> None:
        if not self.steps:
            raise ValueError("a Path must have at least one step")

    def __len__(self) -> int:
        return len(self.steps)

    def __iter__(self):
        return iter(self.steps)

    def main_path(self) -> "Path":
        """This path with all branch predicates removed (the twig 'spine')."""
        return Path(tuple(step.strip_predicates() for step in self.steps))

    def has_predicates(self) -> bool:
        return any(step.predicates for step in self.steps)

    def labels(self) -> List[str]:
        """Step labels along the main path, in order."""
        return [step.label for step in self.steps]

    def __str__(self) -> str:
        return "".join(str(step) for step in self.steps)


def child(label: str, *predicates: Path) -> PathStep:
    """Convenience constructor for a child-axis step."""
    return PathStep(Axis.CHILD, label, tuple(predicates))


def descendant(label: str, *predicates: Path) -> PathStep:
    """Convenience constructor for a descendant-axis step."""
    return PathStep(Axis.DESCENDANT, label, tuple(predicates))


def path(*steps: PathStep) -> Path:
    """Convenience constructor: ``path(descendant('a'), child('b'))``."""
    return Path(tuple(steps))
