"""Command-line interface: build synopses and query them approximately.

Installed as the ``treesketch`` console script::

    treesketch stats    data.xml
    treesketch stable   data.xml -o stable.json
    treesketch build    data.xml --budget-kb 10 -o sketch.json
    treesketch query    sketch.json "//a[//b] ( //p ( //k ? ), //n ? )"
    treesketch exact    data.xml   "//a[//b] ( //p ( //k ? ), //n ? )"
    treesketch compare  data.xml sketch.json "//a (//p)"
    treesketch workload data.xml --budget-kb 10 --queries 40
    treesketch estimate sketch.json "//a (//p)" --repeat 3
    treesketch convert  sketch.json sketch.tsb
    treesketch inspect  sketch.tsb
    treesketch serve sketch.tsb xmark=xmark.json.gz --port 7077
    treesketch serve live=data.xml --live-budget-kb 10 --port 7077
    treesketch workload data.xml --server 127.0.0.1:7077 --queries 40
    treesketch update 127.0.0.1:7077 --sketch live --action delete_subtree \
        --label item --ordinal 3
    treesketch update --generate 100 --document data.xml -o ops.jsonl

``build`` accepts either raw XML or a saved stable summary, so the
expensive parse/summarize step can be done once.  Synopsis paths ending
in ``.gz`` are read/written gzip-compressed; ``.tsb`` selects the binary
mmap-able store (docs/STORAGE.md) whose load time is O(header) --
``convert`` re-encodes between the formats and ``inspect`` prints any
file's header/section/stat summary.  ``serve`` runs the network
query daemon of :mod:`repro.serve` (docs/SERVING.md); ``workload
--server`` replays the generated workload against such a daemon instead
of evaluating in-process.  ``python -m repro ...`` is equivalent to the
installed script.

Every subcommand accepts ``--stats`` (print the internal metric counters
and span timings after the run) and ``--trace FILE`` (dump the span trace
as JSON lines); see docs/OBSERVABILITY.md.  ``build``, ``workload`` and
``estimate`` additionally accept ``--profile FILE`` (cProfile pstats dump
of the run; inspect with ``python -m pstats FILE``) -- see
docs/PERFORMANCE.md.
"""

from __future__ import annotations

import argparse
import sys
from typing import Optional, Sequence

from repro.core.build import TSBuildOptions, build_treesketch
from repro.core.estimate import estimate_selectivity
from repro.core.evaluate import eval_query
from repro.core.expand import expand_result
from repro.core.io import load_synopsis, save_synopsis
from repro.core.stable import StableSummary, build_stable
from repro.core.treesketch import TreeSketch
from repro.engine.exact import ExactEvaluator
from repro.metrics.esd import esd_nesting_trees
from repro.query.parser import parse_twig
from repro.xmltree.parser import parse_xml_file
from repro.xmltree.serialize import to_xml
from repro.xmltree.stats import compute_stats


def _load_document(path: str):
    return parse_xml_file(path)


def _load_sketch(path: str) -> TreeSketch:
    synopsis = load_synopsis(path)
    if isinstance(synopsis, StableSummary):
        return TreeSketch.from_stable(synopsis)
    return synopsis


def cmd_stats(args: argparse.Namespace) -> int:
    tree = _load_document(args.document)
    stats = compute_stats(tree)
    print(stats)
    stable = build_stable(tree)
    print(
        f"stable summary: {stable.num_nodes} nodes, {stable.num_edges} edges, "
        f"{stable.size_bytes() / 1024:.1f} KB"
    )
    return 0


def cmd_stable(args: argparse.Namespace) -> int:
    tree = _load_document(args.document)
    stable = build_stable(tree)
    save_synopsis(stable, args.output)
    print(
        f"wrote {args.output}: {stable.num_nodes} nodes, "
        f"{stable.size_bytes() / 1024:.1f} KB (lossless)"
    )
    return 0


def cmd_build(args: argparse.Namespace) -> int:
    value_summaries = None
    if args.source.endswith((".json", ".json.gz", ".tsb")):
        source = load_synopsis(args.source)
        if not isinstance(source, StableSummary):
            print("build expects XML or a *stable* summary synopsis",
                  file=sys.stderr)
            return 2
        if args.values:
            print("--values needs an XML source (values live in the document)",
                  file=sys.stderr)
            return 2
    elif args.values:
        from repro.values import annotate_sketch_values, annotate_stable_values

        tree = parse_xml_file(args.source, keep_values=True)
        source = build_stable(tree, keep_extents=True)
        value_summaries = annotate_stable_values(source, tree)
    else:
        source = build_stable(_load_document(args.source))

    if args.memo_cache and isinstance(source, StableSummary) \
            and args.source.endswith((".json", ".json.gz", ".tsb")):
        sketch = _build_with_memo_cache(args, source)
    else:
        if args.memo_cache:
            print("--memo-cache needs a synopsis-file source (the memo is "
                  "keyed by its checksum); building cold", file=sys.stderr)
        sketch = build_treesketch(
            source, int(args.budget_kb * 1024),
            TSBuildOptions(kernel=args.kernel),
        )
    if value_summaries is not None:
        from repro.values import annotate_sketch_values

        annotate_sketch_values(sketch, value_summaries)
    save_synopsis(sketch, args.output, format=args.format)
    print(
        f"wrote {args.output}: {sketch.num_nodes} nodes, "
        f"{sketch.size_bytes() / 1024:.1f} KB, "
        f"squared error {sketch.squared_error():.1f}"
    )
    return 0


def _build_with_memo_cache(args: argparse.Namespace,
                           source: StableSummary) -> TreeSketch:
    """TSBUILD with the merge-score memo persisted in the source's sidecar.

    The memo rides in ``SOURCE.cache``, keyed by the stable summary's
    checksum *and* the build-options signature, so a memo recorded
    against different data or a different merge schedule is ignored,
    never replayed (docs/STORAGE.md).  Memoization only skips rescoring
    work -- seeded or not, the resulting sketch is bit-identical.
    """
    from repro.core.build import TreeSketchBuilder
    from repro.core.store import (
        file_checksum,
        load_cache_sidecar,
        save_cache_sidecar,
    )

    checksum = file_checksum(args.source)
    builder = TreeSketchBuilder(source, TSBuildOptions(kernel=args.kernel))
    signature = builder.memo_signature()
    doc = load_cache_sidecar(args.source, checksum)
    memo = (doc or {}).get("memo")
    if isinstance(memo, dict) and memo.get("options") == signature:
        seeded = builder.seed_memo(memo.get("entries") or [])
        print(f"seeded merge memo: {seeded} entries")
    sketch = builder.compress_to(int(args.budget_kb * 1024))
    save_cache_sidecar(args.source, checksum, memo={
        "options": signature,
        "entries": builder.export_memo(),
    })
    return sketch


def cmd_convert(args: argparse.Namespace) -> int:
    """Re-encode a synopsis file; formats are sniffed, never guessed."""
    import os

    from repro.core.io import sniff_format

    try:
        synopsis = load_synopsis(args.input)
    except (OSError, ValueError) as exc:
        print(f"cannot load {args.input!r}: {exc}", file=sys.stderr)
        return 2
    save_synopsis(synopsis, args.output, format=args.format)
    kind = "stable" if isinstance(synopsis, StableSummary) else "treesketch"
    print(
        f"wrote {args.output}: {kind}, {synopsis.num_nodes} nodes, "
        f"{synopsis.num_edges} edges "
        f"({sniff_format(args.input)} {os.path.getsize(args.input)} B -> "
        f"{sniff_format(args.output)} {os.path.getsize(args.output)} B)"
    )
    return 0


def cmd_inspect(args: argparse.Namespace) -> int:
    """Header/section/stat summary of any synopsis file.

    The first debugging stop for a store that will not load: corrupt and
    truncated files report *why* (bad magic, checksum mismatch, section
    past EOF) instead of a traceback.
    """
    import os

    from repro.core.io import sniff_format
    from repro.core.store import (
        SynopsisFormatError,
        file_checksum,
        load_cache_sidecar,
        read_tsb_info,
        sidecar_path,
    )

    path = args.file
    try:
        fmt = sniff_format(path)
        if fmt == "tsb":
            info = read_tsb_info(path)
            print(f"{path}: tsb v{info['version']} ({info['kind']}), "
                  f"{info['file_bytes']} bytes, "
                  f"checksum {info['checksum']:#010x}")
            print(f"  root {info['root_id']}, height {info['doc_height']}, "
                  f"{info['nodes']} nodes, {info['edges']} edges")
            print(f"  {'section':<12} {'type':<4} {'offset':>10} "
                  f"{'bytes':>10} {'count':>10}")
            for sec in info["sections"]:
                print(f"  {sec['name']:<12} {sec['typecode']:<4} "
                      f"{sec['offset']:>10} {sec['bytes']:>10} "
                      f"{sec['count']:>10}")
        else:
            print(f"{path}: {fmt}, {os.path.getsize(path)} bytes")
        synopsis = load_synopsis(path)
        kind = ("stable" if isinstance(synopsis, StableSummary)
                else "treesketch")
        line = (f"  {kind}: {synopsis.num_nodes} nodes, "
                f"{synopsis.num_edges} edges, "
                f"{synopsis.size_bytes() / 1024:.1f} KB model size")
        if isinstance(synopsis, TreeSketch):
            line += (f", squared error {synopsis.squared_error():.1f}, "
                     f"{len(synopsis.members)} member sets, "
                     f"{len(synopsis.values)} value summaries")
        print(line)
        sidecar = sidecar_path(path)
        if os.path.exists(sidecar):
            doc = load_cache_sidecar(path, file_checksum(path),
                                     _count_stale=False)
            if doc is None:
                print(f"  sidecar {sidecar}: STALE (ignored at load)")
            else:
                selectivities = doc.get("selectivities") or {}
                memo = doc.get("memo") or {}
                print(f"  sidecar {sidecar}: fresh, "
                      f"{len(selectivities)} selectivities, "
                      f"{len(memo.get('entries') or [])} memo entries")
    except SynopsisFormatError as exc:
        print(f"corrupt store: {exc}", file=sys.stderr)
        return 2
    except (OSError, ValueError) as exc:
        print(f"unreadable synopsis: {exc}", file=sys.stderr)
        return 2
    return 0


def cmd_query(args: argparse.Namespace) -> int:
    sketch = _load_sketch(args.sketch)
    query = parse_twig(args.twig)
    result = eval_query(sketch, query)
    estimate = estimate_selectivity(result)
    print(f"estimated binding tuples: {estimate:,.1f}")
    if args.preview:
        nesting = expand_result(result, max_nodes=args.max_preview_nodes)
        with open(args.preview, "w", encoding="utf-8") as handle:
            handle.write(to_xml(nesting.to_xmltree()))
        print(f"approximate answer ({nesting.size():,} elements) -> {args.preview}")
    return 0


def _render_explanation(payload: dict, twig: str) -> str:
    """Console rendering of one explain payload (local or wire form)."""
    lines = [f"estimate: {payload.get('estimate', 0.0):,.1f}  ({twig})"]
    lines.append(
        "provenance: {touched} cluster(s) touched, "
        "{n} contribution term(s){split}".format(
            touched=payload.get("touched", 0),
            n=len(payload.get("contributions") or []),
            split=("" if payload.get("exact_split")
                   else " (single-term fallback: no additive split)"))
    )
    if payload.get("budget_state") is not None:
        lines.append(
            f"budget: {payload['budget_state']}  "
            f"(burn rate {payload.get('burn_rate', 0.0):.2f})"
        )
    clusters = payload.get("clusters") or []
    if clusters:
        lines.append("")
        lines.append(f"  {'cluster':>8} {'label':<12} {'mass':>10} "
                     f"{'tuples':>14} {'debt':>10} {'error wt':>12}")
        for c in clusters:
            lines.append(
                f"  {c.get('cluster', '?'):>8} {c.get('label', '?'):<12} "
                f"{c.get('mass', 0.0):>10.2f} {c.get('tuples', 0.0):>14,.1f} "
                f"{c.get('debt', 0.0):>10.2f} {c.get('error_weight', 0.0):>12.2f}"
            )
    else:
        lines.append("  (no clusters: empty approximate answer)")
    return "\n".join(lines)


def cmd_explain(args: argparse.Namespace) -> int:
    """Error provenance for one estimate: which synopsis clusters the
    traversal touched, their contribution to the answer, and their live
    error debt (docs/OBSERVABILITY.md, 'Accuracy plane')."""
    if bool(args.sketch) == bool(args.address):
        print("explain needs exactly one of --sketch PATH (local) or "
              "--address HOST:PORT (daemon)", file=sys.stderr)
        return 2
    if args.address:
        from repro.serve.client import ServeClient, ServerError, parse_address

        try:
            host, port = parse_address(args.address)
        except ValueError as exc:
            print(exc, file=sys.stderr)
            return 2
        client = ServeClient(host, port)
        try:
            payload = client.explain(args.twig, sketch=args.name,
                                     top_k=args.top_k)
        except (ServerError, ConnectionError, OSError) as exc:
            print(f"explain failed: {exc}", file=sys.stderr)
            return 1
        finally:
            client.close()
    else:
        from repro.core.explain import explain_query

        sketch = _load_sketch(args.sketch)
        explanation = explain_query(
            sketch, parse_twig(args.twig), top_k=args.top_k)
        payload = explanation.to_payload()
    print(_render_explanation(payload, args.twig))
    return 0


def cmd_exact(args: argparse.Namespace) -> int:
    tree = parse_xml_file(args.document, keep_values=args.values)
    query = parse_twig(args.twig)
    evaluator = ExactEvaluator(tree)
    print(f"exact binding tuples: {evaluator.selectivity(query):,}")
    return 0


def cmd_gen_corpus(args: argparse.Namespace) -> int:
    from repro.datagen.corpus import available_datasets, write_corpus

    names = args.datasets or None
    try:
        written = write_corpus(args.directory, names=names, scale=args.scale)
    except KeyError as exc:
        print(exc.args[0], file=sys.stderr)
        return 2
    for name, path in written.items():
        print(f"{name}: {path}")
    return 0


def cmd_workload(args: argparse.Namespace) -> int:
    from repro.workload.runner import run_selectivity, run_selectivity_remote
    from repro.workload.workload import make_workload

    if args.queries < 1:
        print("workload needs --queries >= 1", file=sys.stderr)
        return 2
    tree = _load_document(args.document)
    stable = build_stable(tree)
    workload = make_workload(
        tree, num_queries=args.queries, seed=args.seed, stable=stable
    )

    if args.server:
        # Replay mode: estimates come from a running serve daemon
        # (docs/SERVING.md); ground truth is still computed locally.
        from repro.serve.client import ServeClient, ServerError, parse_address

        try:
            host, port = parse_address(args.server)
        except ValueError as exc:
            print(exc, file=sys.stderr)
            return 2
        try:
            with ServeClient(host, port) as client:
                name = args.sketch_name
                if name is None:
                    names = [s["name"] for s in client.list_sketches()]
                    name = names[0] if len(names) == 1 else None
                    if name is None and names:
                        print(f"--sketch-name required; server holds {names}",
                              file=sys.stderr)
                        return 2
                quality = run_selectivity_remote(
                    client, workload, sketch=name,
                    request_id_prefix=args.request_prefix)
        except (OSError, ServerError) as exc:
            print(f"server replay failed: {exc}", file=sys.stderr)
            return 1
        print(
            f"workload: {len(workload)} queries over {args.document} "
            f"(seed {args.seed}), served by {host}:{port}"
            + (f" sketch {name!r}" if name else "")
        )
        print(
            f"avg selectivity error {quality.avg_error:.3f}, "
            f"{quality.seconds:.3f}s total"
        )
        return 0

    sketch = build_treesketch(
        stable, int(args.budget_kb * 1024),
        TSBuildOptions(kernel=args.kernel),
    )
    cache = None
    if args.eval_cache > 0:
        from repro.core.qcache import QueryCache

        cache = QueryCache(sketch, maxsize=args.eval_cache)
    quality = run_selectivity(sketch, workload, cache=cache, batch=args.batch)
    print(
        f"workload: {len(workload)} queries over {args.document} "
        f"(seed {args.seed}), sketch {sketch.size_bytes() / 1024:.1f} KB"
    )
    print(
        f"avg selectivity error {quality.avg_error:.3f}, "
        f"{quality.seconds:.3f}s total"
    )
    if cache is not None:
        info = cache.info()
        print(
            f"eval cache: {info['hits']} hits, {info['misses']} misses, "
            f"{info['evictions']} evictions ({info['size']}/{info['maxsize']} entries)"
        )
    return 0


def cmd_serve(args: argparse.Namespace) -> int:
    import asyncio
    import signal

    from repro import obs
    from repro.serve.registry import SketchRegistry, parse_spec
    from repro.serve.server import ServeConfig, SketchServer

    if args.workers > 1:
        return _cmd_serve_supervisor(args)
    if not 0 <= args.shard_index < max(1, args.shard_count):
        print(f"--shard-index must be in [0, {args.shard_count})",
              file=sys.stderr)
        return 2

    try:
        parsed = [parse_spec(spec) for spec in args.sketches]
    except ValueError as exc:
        print(f"bad sketch spec: {exc}", file=sys.stderr)
        return 2
    only = None
    if args.shard_count > 1 and args.shard_by == "name":
        from repro.serve import sharding

        only = set(sharding.shard_names(
            [name for name, _ in parsed], args.shard_index, args.shard_count))
    live_budget = (int(args.live_budget_kb * 1024)
                   if args.live_budget_kb else None)
    registry = SketchRegistry(cache_size=args.cache_size or None,
                              live_budget_bytes=live_budget)
    for name, path in parsed:
        if only is not None and name not in only:
            continue
        try:
            entry = registry.load(path, name=name)
        except (OSError, ValueError) as exc:
            print(f"cannot load sketch {path!r}: {exc}", file=sys.stderr)
            return 2
        live = " live," if entry.describe().get("live") else ""
        print(
            f"pinned {entry.name!r}:{live} {entry.sketch.num_nodes} nodes, "
            f"{entry.sketch.size_bytes() / 1024:.1f} KB ({path})"
        )
    shadow_reference = None
    if args.shadow_sample > 0:
        if not args.shadow_reference:
            print("--shadow-sample needs --shadow-reference "
                  "(an XML document for exact truth, or a synopsis)",
                  file=sys.stderr)
            return 2
        from repro.serve.shadow import load_reference

        try:
            shadow_reference = load_reference(args.shadow_reference)
        except (OSError, ValueError, TypeError) as exc:
            print(f"cannot load shadow reference "
                  f"{args.shadow_reference!r}: {exc}", file=sys.stderr)
            return 2
    if args.error_budget is not None and args.shadow_sample <= 0:
        print("--error-budget needs --shadow-sample > 0 (the ledger is "
              "fed by shadow-scored answers)", file=sys.stderr)
        return 2
    if args.adaptive_maintain and args.error_budget is None:
        print("--adaptive-maintain needs --error-budget (the controller "
              "follows the ledger's measured drift)", file=sys.stderr)
        return 2
    # The telemetry plane renders the *active* metrics registry, so the
    # daemon needs a live one even without --stats/--trace.
    if (args.metrics_port is not None or args.shadow_sample > 0) \
            and not obs.enabled():
        obs.enable()
    config = ServeConfig(
        host=args.host,
        port=args.port,
        max_pending=args.max_pending,
        degrade_watermark=args.degrade_watermark,
        default_deadline_ms=args.deadline_ms,
        max_expand_nodes=args.max_expand_nodes,
        workers=args.threads,
        metrics_port=args.metrics_port,
        shadow_fraction=args.shadow_sample,
        shadow_reference=shadow_reference,
        shadow_eval_delay_s=args.shadow_eval_delay_s,
        error_budget=args.error_budget,
        error_budget_window=args.error_budget_window,
        adaptive_maintenance=args.adaptive_maintain,
        coalesce=not args.no_coalesce,
        coalesce_window_s=args.batch_window_ms / 1000.0,
        coalesce_max=args.batch_max,
        reuse_port=args.reuse_port,
        cache_checkpoint_s=args.cache_checkpoint_s,
    )

    async def _run() -> None:
        server = SketchServer(registry, config)
        await server.start()
        # Signal handlers go in before the readiness lines are printed:
        # supervisors (and the tests) treat those lines as "safe to
        # signal", so the graceful path must already be armed.
        stop = asyncio.Event()
        loop = asyncio.get_running_loop()
        installed = []
        for sig in (signal.SIGINT, signal.SIGTERM):
            try:
                loop.add_signal_handler(sig, stop.set)
                installed.append(sig)
            except (NotImplementedError, ValueError, RuntimeError):
                pass  # non-Unix loop: fall back to KeyboardInterrupt
        host, port = server.address
        print(f"serving {len(registry)} sketch(es) on {host}:{port} "
              f"(protocol v1, Ctrl-C to stop)", flush=True)
        if args.metrics_port is not None:
            mhost, mport = server.metrics_address
            print(f"telemetry on http://{mhost}:{mport} "
                  "(/metrics /healthz /statusz)", flush=True)
        try:
            if installed:
                await stop.wait()
                print("\nshutting down: draining in-flight requests "
                      f"(up to {args.drain_s:g}s)", flush=True)
                if await server.drain(timeout=args.drain_s):
                    print("drained", flush=True)
                else:
                    print(f"drain timed out with "
                          f"{server.admission.depth} request(s) in flight",
                          flush=True)
            else:
                await server.serve_forever()
        finally:
            for sig in installed:
                loop.remove_signal_handler(sig)
            await server.stop()

    try:
        asyncio.run(_run())
    except KeyboardInterrupt:
        print("\nshutting down")
    # Persist warm-restart state for .tsb-backed sketches after the
    # drain: the next daemon on these files answers previously-seen
    # selectivity queries from its first request (docs/STORAGE.md).
    saved = registry.save_caches()
    if saved:
        print(f"persisted {saved} cache sidecar(s)", flush=True)
    if obs.enabled():
        # Flush span records now (idempotent; main() closes --trace sinks
        # again) and leave a final metrics snapshot in the log.
        obs.get_tracer().sink.close()
        if not getattr(args, "stats", False):
            print()
            print(obs.report.render_registry(
                obs.get_metrics(), title="final metrics snapshot"))
    return 0


def _cmd_serve_supervisor(args: argparse.Namespace) -> int:
    """``treesketch serve --workers N`` (N >= 2): the sharded fleet.

    The supervisor owns the control endpoint (``health`` / ``shard_map``
    / ``fleet_stats``) on ``--port``; data traffic goes straight to the
    workers, whose addresses clients learn from ``shard_map``
    (:class:`repro.serve.client.PooledClient` automates this).  Serving
    tunables are forwarded to every worker verbatim.
    """
    import signal
    import threading

    from repro import obs
    from repro.serve.supervisor import Supervisor, SupervisorConfig

    if args.metrics_port is not None and not obs.enabled():
        obs.enable()
    worker_args = [
        "--max-pending", str(args.max_pending),
        "--deadline-ms", str(args.deadline_ms),
        "--max-expand-nodes", str(args.max_expand_nodes),
        "--cache-size", str(args.cache_size),
        "--threads", str(args.threads),
        "--batch-window-ms", str(args.batch_window_ms),
        "--batch-max", str(args.batch_max),
    ]
    if args.degrade_watermark is not None:
        worker_args += ["--degrade-watermark", str(args.degrade_watermark)]
    if args.no_coalesce:
        worker_args.append("--no-coalesce")
    if args.live_budget_kb:
        worker_args += ["--live-budget-kb", str(args.live_budget_kb)]
    if args.cache_checkpoint_s:
        worker_args += ["--cache-checkpoint-s", str(args.cache_checkpoint_s)]
    if args.shadow_sample > 0 and args.shadow_reference:
        worker_args += ["--shadow-sample", str(args.shadow_sample),
                        "--shadow-reference", args.shadow_reference]
        if args.shadow_eval_delay_s > 0:
            worker_args += ["--shadow-eval-delay-s",
                            str(args.shadow_eval_delay_s)]
        if args.error_budget is not None:
            worker_args += ["--error-budget", str(args.error_budget),
                            "--error-budget-window",
                            str(args.error_budget_window)]
            if args.adaptive_maintain:
                worker_args.append("--adaptive-maintain")
    config = SupervisorConfig(
        host=args.host,
        port=args.port,
        workers=args.workers,
        shard_by=args.shard_by,
        worker_port=args.worker_port,
        metrics_port=args.metrics_port,
        backoff_base_s=args.backoff_base_s,
        backoff_cap_s=args.backoff_cap_s,
        backoff_reset_s=args.backoff_reset_s,
        drain_s=args.drain_s,
        worker_args=tuple(worker_args),
    )
    try:
        supervisor = Supervisor(args.sketches, config)
    except ValueError as exc:
        print(f"bad fleet configuration: {exc}", file=sys.stderr)
        return 2
    try:
        supervisor.start()
    except (RuntimeError, OSError) as exc:
        print(f"fleet failed to start: {exc}", file=sys.stderr)
        supervisor.stop(drain=False)
        return 2
    stop = threading.Event()
    for sig in (signal.SIGINT, signal.SIGTERM):
        signal.signal(sig, lambda signum, frame: stop.set())
    host, port = supervisor.control_address
    print(f"supervising {args.workers} worker(s), "
          f"{len(supervisor.sketch_names)} sketch(es), "
          f"shard_by={args.shard_by}; control on {host}:{port} "
          f"(protocol v1, ops health/shard_map/fleet_stats)", flush=True)
    if args.metrics_port is not None:
        mhost, mport = supervisor.metrics_address
        print(f"fleet telemetry on http://{mhost}:{mport} "
              "(/metrics /healthz /statusz)", flush=True)
    try:
        stop.wait()
    except KeyboardInterrupt:
        pass
    print(f"\nshutting down fleet: draining {args.workers} worker(s) "
          f"(up to {args.drain_s:g}s each)", flush=True)
    if supervisor.stop():
        print("fleet drained", flush=True)
    else:
        print("fleet drain timed out; stragglers killed", flush=True)
    return 0


def cmd_update(args: argparse.Namespace) -> int:
    """Mutate a live sketch on a running daemon, or generate edit scripts.

    Three modes:

    * ``--generate N --document X.xml``: emit a valid N-op mutation
      workload (JSON lines) without touching any server;
    * a single op (``--action`` plus its address flags) against
      ``ADDRESS``;
    * ``--script OPS.jsonl``: replay a generated workload against
      ``ADDRESS`` (``--pooled`` routes via a supervisor control endpoint).
    """
    from repro.workload.mutations import (
        MutationOp,
        dump_ops,
        load_ops,
        make_mutation_workload,
    )

    if args.generate:
        if not args.document:
            print("--generate needs --document (the XML the ops must stay "
                  "valid against)", file=sys.stderr)
            return 2
        tree = parse_xml_file(args.document)
        ops = make_mutation_workload(
            tree, num_ops=args.generate, seed=args.seed,
            insert_fraction=args.insert_fraction)
        text = dump_ops(ops)
        if args.output:
            with open(args.output, "w", encoding="utf-8") as handle:
                handle.write(text)
            print(f"wrote {args.output}: {len(ops)} ops "
                  f"(seed {args.seed}, {args.insert_fraction:g} inserts)")
        else:
            sys.stdout.write(text)
        return 0

    if not args.address:
        print("update needs a server ADDRESS (or --generate)", file=sys.stderr)
        return 2
    if args.script:
        try:
            with open(args.script, "r", encoding="utf-8") as handle:
                ops = load_ops(handle.read())
        except (OSError, ValueError, KeyError) as exc:
            print(f"cannot read op script {args.script!r}: {exc}",
                  file=sys.stderr)
            return 2
    elif args.action:
        ops = [MutationOp(
            action=args.action, label=args.label, ordinal=args.ordinal,
            parent_label=args.parent_label,
            parent_ordinal=args.parent_ordinal,
            subtree=_parse_subtree_arg(args.subtree))]
    else:
        print("update needs --action, --script, or --generate",
              file=sys.stderr)
        return 2

    from repro.serve.client import (
        PooledClient,
        ServeClient,
        ServerError,
        parse_address,
    )

    try:
        host, port = parse_address(args.address)
    except ValueError as exc:
        print(exc, file=sys.stderr)
        return 2
    client = None
    try:
        client = (PooledClient(host, port) if args.pooled
                  else ServeClient(host, port))
        response = None
        for i, op in enumerate(ops):
            response = client.update(sketch=args.sketch, **op.to_json())
            if args.verbose:
                print(f"[{i + 1}/{len(ops)}] {op.action} -> "
                      f"epoch {response['epoch']}, debt {response['debt']:.1f}")
        if response is not None:
            print(f"applied {len(ops)} op(s) to "
                  f"{response['sketch']!r}: epoch {response['epoch']}, "
                  f"{response['nodes']} nodes, "
                  f"{response['size_bytes'] / 1024:.1f} KB, "
                  f"debt {response['debt']:.1f}, "
                  f"{response['remerges']} re-merge(s)")
    except (OSError, ServerError) as exc:
        print(f"update failed: {exc}", file=sys.stderr)
        return 1
    finally:
        if client is not None:
            client.close()
    return 0


def _parse_subtree_arg(text: Optional[str]):
    """``--subtree`` accepts a bare label or the JSON nested-list form."""
    if text is None:
        return None
    stripped = text.strip()
    if stripped.startswith("["):
        import json

        return json.loads(stripped)
    return stripped


def _render_statusz(status: dict, source: str) -> str:
    """One console screen of a /statusz document (``treesketch top``)."""
    lines = [
        f"treesketch top — {source}  "
        f"(uptime {status.get('uptime_s', 0.0):.0f}s, "
        f"protocol v{status.get('protocol', '?')})",
        "",
    ]
    admission = status.get("admission") or {}
    lines.append(
        "admission  depth {depth}/{max_pending}  degrade>{degrade_watermark}  "
        "admitted {admitted_total}  shed {shed_total}".format(
            **{k: admission.get(k, "?") for k in (
                "depth", "max_pending", "degrade_watermark",
                "admitted_total", "shed_total")})
    )
    lines.append("")
    lines.append("sketches")
    for entry in status.get("sketches") or []:
        cache = entry.get("cache") or {}
        lines.append(
            f"  {entry.get('name'):<16} {entry.get('nodes', 0):>7} nodes  "
            f"{entry.get('size_bytes', 0) / 1024:>8.1f} KB  "
            f"cache {cache.get('hits', 0)}/{cache.get('misses', 0)} h/m "
            f"({cache.get('size', 0)}/{cache.get('maxsize')})"
        )
    latency = status.get("latency") or {}
    if latency:
        lines.append("")
        lines.append("latency (trailing window, ms)")
        lines.append(f"  {'op':<10} {'count':>7} {'mean':>8} {'p50':>8} "
                     f"{'p95':>8} {'p99':>8}")
        for op in sorted(latency):
            row = latency[op]
            lines.append(
                f"  {op:<10} {row.get('count', 0):>7.0f} "
                + " ".join(f"{row.get(k, 0.0) * 1000:>8.2f}"
                           for k in ("mean", "p50", "p95", "p99"))
            )
    accuracy = status.get("accuracy")
    lines.append("")
    if accuracy:
        mean = accuracy.get("rel_error_mean")
        worst = accuracy.get("rel_error_max")
        lines.append(
            "accuracy   fraction {fraction:g}  sampled {sampled}  "
            "evaluated {evaluated}  dropped {dropped}  stale {stale}  "
            "failed {failed}".format(
                stale=accuracy.get("stale_dropped", 0),
                **{k: accuracy.get(k, 0) for k in (
                    "fraction", "sampled", "evaluated", "dropped", "failed")})
        )
        lines.append(
            "           rel error mean "
            + (f"{mean:.4f}" if mean is not None else "n/a")
            + "  max " + (f"{worst:.4f}" if worst is not None else "n/a")
        )
    else:
        lines.append("accuracy   shadow sampler off")
    budgets = status.get("budgets")
    if budgets:
        lines.append("")
        lines.append(
            "budgets    target rel-err {target:g}  window {window}  "
            "transitions {transitions}".format(
                target=budgets.get("target_rel_error", 0.0),
                window=budgets.get("window", "?"),
                transitions=budgets.get("transitions", 0))
        )
        for name, budget in sorted((budgets.get("sketches") or {}).items()):
            mean = budget.get("window_mean")
            lines.append(
                f"  {name:<16} {budget.get('state', '?'):<8} "
                f"burn {budget.get('burn_rate', 0.0):>6.2f}  "
                f"samples {budget.get('samples', 0):>6}  mean "
                + (f"{mean:.4f}" if mean is not None else "   n/a")
                + f"  debt {budget.get('debt', 0.0):.1f}"
            )
    counters = status.get("counters") or {}
    if counters:
        lines.append("")
        lines.append("counters")
        for name in sorted(counters):
            lines.append(f"  {name:<32} {counters[name]:>12,}")
    return "\n".join(lines)


def _render_fleet_snapshot(snapshot: dict, source: str) -> str:
    """One console screen of a supervisor's merged ``/snapshotz``.

    The fleet endpoint ships a metrics snapshot (counters summed, gauges
    summed, histogram quantiles upper-enveloped across workers), so the
    accuracy panel reads fleet-wide: budget-state gauges are one-hot per
    sketch per worker, hence their sums count sketches in each state.
    """
    counters = snapshot.get("counters") or {}
    gauges = snapshot.get("gauges") or {}
    histograms = snapshot.get("histograms") or {}
    lines = [f"treesketch top — fleet {source}  (/snapshotz merge)", ""]
    lines.append(
        "traffic    requests {req:,}  updates {upd:,}  explains {expl:,}  "
        "shed {shed:,}".format(
            req=int(counters.get("serve.requests", 0)),
            upd=int(counters.get("serve.updates", 0)),
            expl=int(counters.get("serve.explains", 0)),
            shed=int(counters.get("serve.shed", 0)))
    )
    lines.append("")
    lines.append(
        "accuracy   sampled {s:,}  evaluated {e:,}  dropped {d:,}  "
        "stale {st:,}  failed {f:,}".format(
            s=int(counters.get("serve.accuracy.sampled", 0)),
            e=int(counters.get("serve.accuracy.evaluated", 0)),
            d=int(counters.get("serve.accuracy.dropped", 0)),
            st=int(counters.get("serve.accuracy.stale_dropped", 0)),
            f=int(counters.get("serve.accuracy.failed", 0)))
    )
    rel = histograms.get("serve.accuracy.rel_error")
    if rel:
        lines.append(
            f"           rel error mean {rel.get('mean', 0.0):.4f}  "
            f"p95<= {rel.get('p95', 0.0):.4f}  max {rel.get('max', 0.0):.4f}"
        )
    if any(f"serve.accuracy.budget_state.{s}" in gauges
           for s in ("ok", "warn", "burning")):
        lines.append("")
        lines.append(
            "budgets    ok {ok:g}  warn {warn:g}  burning {burning:g}  "
            "worst burn {burn:.2f}  transitions {tr:,}".format(
                ok=gauges.get("serve.accuracy.budget_state.ok", 0.0),
                warn=gauges.get("serve.accuracy.budget_state.warn", 0.0),
                burning=gauges.get("serve.accuracy.budget_state.burning", 0.0),
                burn=gauges.get("serve.accuracy.budget_burn_max", 0.0),
                tr=int(counters.get("serve.accuracy.budget_transitions", 0)))
        )
    if "live.debt_total" in gauges or counters.get("live.mutations"):
        lines.append("")
        lines.append(
            "maintain   mutations {mut:,}  remerges {rm:,}  "
            "debt {debt:.1f}".format(
                mut=int(counters.get("live.mutations", 0)),
                rm=int(counters.get("live.remerges", 0)),
                debt=gauges.get("live.debt_total", 0.0))
        )
        if "live.adaptive.threshold" in gauges:
            lines.append(
                "           adaptive threshold {thr:.3f}  "
                "tightened {t:,}  relaxed {r:,}".format(
                    thr=gauges.get("live.adaptive.threshold", 0.0),
                    t=int(counters.get("live.adaptive.tightened", 0)),
                    r=int(counters.get("live.adaptive.relaxed", 0)))
            )
    return "\n".join(lines)


def cmd_top(args: argparse.Namespace) -> int:
    import json
    import time
    import urllib.request

    from repro.serve.client import parse_address

    try:
        host, port = parse_address(args.address)
    except ValueError as exc:
        print(exc, file=sys.stderr)
        return 2
    base = f"http://{host}:{port}"
    endpoint = "/snapshotz" if args.fleet else "/statusz"
    render = _render_fleet_snapshot if args.fleet else _render_statusz
    shown = 0
    try:
        while True:
            try:
                with urllib.request.urlopen(
                        f"{base}{endpoint}",
                        timeout=args.http_timeout) as resp:
                    status = json.loads(resp.read().decode("utf-8"))
            except (OSError, ValueError) as exc:
                print(f"cannot poll {base}{endpoint}: {exc}", file=sys.stderr)
                return 1
            if not args.no_clear:
                print("\x1b[2J\x1b[H", end="")
            print(render(status, base), flush=True)
            shown += 1
            if args.iterations and shown >= args.iterations:
                return 0
            time.sleep(args.interval)
    except KeyboardInterrupt:
        return 0


def cmd_estimate(args: argparse.Namespace) -> int:
    from repro.core.qcache import QueryCache

    twigs = list(args.twigs)
    if args.queries_file:
        with open(args.queries_file, "r", encoding="utf-8") as handle:
            twigs.extend(
                line.strip() for line in handle
                if line.strip() and not line.lstrip().startswith("#")
            )
    if not twigs:
        print("estimate needs at least one twig (argument or --queries-file)",
              file=sys.stderr)
        return 2
    sketch = _load_sketch(args.sketch)
    queries = [parse_twig(text) for text in twigs]
    cache = QueryCache(sketch, maxsize=args.cache_size)
    if args.batch:
        from repro.core.estimate import estimate_selectivity_batch

        for _ in range(args.repeat):
            results = [cache.result(query) for query in queries]
            for text, est in zip(twigs, estimate_selectivity_batch(results)):
                print(f"{est:>16,.1f}  {text}")
    else:
        for _ in range(args.repeat):
            for text, query in zip(twigs, queries):
                print(f"{cache.selectivity(query):>16,.1f}  {text}")
    info = cache.info()
    print(
        f"eval cache: {info['hits']} hits, {info['misses']} misses, "
        f"{info['evictions']} evictions ({info['size']}/{info['maxsize']} entries)"
    )
    return 0


def cmd_compare(args: argparse.Namespace) -> int:
    tree = _load_document(args.document)
    sketch = _load_sketch(args.sketch)
    query = parse_twig(args.twig)
    evaluator = ExactEvaluator(tree)
    truth = evaluator.evaluate(query)
    result = eval_query(sketch, query)
    estimate = estimate_selectivity(result)
    approx = expand_result(result, max_nodes=args.max_preview_nodes)
    true_count = truth.binding_tuple_count()
    error = abs(estimate - true_count) / max(true_count, 1)
    print(f"exact tuples:     {true_count:,}")
    print(f"estimated tuples: {estimate:,.1f}  (error {error:.1%})")
    print(f"answer ESD:       {esd_nesting_trees(truth, approx):,.1f} (0 = exact)")
    return 0


def make_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="treesketch",
        description="Approximate XML query answers via TreeSketch synopses",
    )
    # Observability flags, shared by every subcommand (docs/OBSERVABILITY.md).
    obs_flags = argparse.ArgumentParser(add_help=False)
    group = obs_flags.add_argument_group("observability")
    group.add_argument(
        "--stats",
        action="store_true",
        help="print internal counters and span timings after the run",
    )
    group.add_argument(
        "--trace",
        metavar="FILE",
        help="write the span trace as JSON lines to FILE",
    )

    sub = parser.add_subparsers(dest="command", required=True)

    def add_parser(name: str, **kwargs):
        return sub.add_parser(name, parents=[obs_flags], **kwargs)

    p = add_parser("stats", help="document and stable-summary statistics")
    p.add_argument("document")
    p.set_defaults(func=cmd_stats)

    p = add_parser("stable", help="build the lossless count-stable summary")
    p.add_argument("document")
    p.add_argument("-o", "--output", required=True)
    p.set_defaults(func=cmd_stable)

    p = add_parser("build", help="compress to a TreeSketch under a budget")
    p.add_argument("source",
                   help="XML document or stable summary (.json[.gz]/.tsb)")
    p.add_argument("--budget-kb", type=float, required=True)
    p.add_argument("-o", "--output", required=True)
    p.add_argument("--format", choices=("auto", "json", "tsb"),
                   default="auto",
                   help="output format (auto: by extension; see "
                        "docs/STORAGE.md)")
    p.add_argument("--memo-cache", action="store_true",
                   help="persist/reuse the TSBUILD merge-score memo in the "
                        "source's .cache sidecar (synopsis sources only)")
    p.add_argument("--kernel",
                   choices=("auto", "dicts", "arrays", "numpy"),
                   default="auto",
                   help="TSBUILD scoring backend (bit-identical output; "
                        "auto picks by shape and upgrades to numpy block "
                        "scoring when numpy is available; see "
                        "docs/PERFORMANCE.md)")
    p.add_argument("--profile", metavar="FILE",
                   help="dump a cProfile pstats file for the run")
    p.add_argument(
        "--values",
        action="store_true",
        help="annotate the sketch with leaf-value summaries "
             "(enables [path = 'v'] predicates; XML source only)",
    )
    p.set_defaults(func=cmd_build)

    p = add_parser("convert",
                   help="re-encode a synopsis between JSON and binary .tsb")
    p.add_argument("input", help="synopsis file in any format")
    p.add_argument("output", help="destination path")
    p.add_argument("--format", choices=("auto", "json", "tsb"),
                   default="auto",
                   help="output format (auto: by extension)")
    p.set_defaults(func=cmd_convert)

    p = add_parser("inspect",
                   help="header/section/stat summary of a synopsis file")
    p.add_argument("file", help="synopsis file (.json[.gz] or .tsb)")
    p.set_defaults(func=cmd_inspect)

    p = add_parser("query", help="approximate a twig query over a synopsis")
    p.add_argument("sketch", help="synopsis JSON (TreeSketch or stable)")
    p.add_argument("twig", help='e.g. "//a[//b] ( //p ( //k ? ), //n ? )"')
    p.add_argument("--preview", help="write the approximate answer XML here")
    p.add_argument("--max-preview-nodes", type=int, default=2_000_000)
    p.set_defaults(func=cmd_query)

    p = add_parser("explain",
                   help="error provenance for one estimate: top-k "
                        "error-contributing clusters (docs/OBSERVABILITY.md)")
    p.add_argument("twig", help="twig query to explain")
    p.add_argument("--sketch", metavar="PATH",
                   help="local synopsis (.json[.gz]/.tsb) to explain against")
    p.add_argument("--address", metavar="HOST:PORT",
                   help="running daemon to ask instead (explain op)")
    p.add_argument("--name", metavar="SKETCH",
                   help="--address: target sketch (default: the server's "
                        "only sketch)")
    p.add_argument("--top-k", type=int, default=5,
                   help="clusters to report, ranked by error weight "
                        "(default 5)")
    p.set_defaults(func=cmd_explain)

    p = add_parser("exact", help="evaluate a twig query exactly")
    p.add_argument("document")
    p.add_argument("twig")
    p.add_argument("--values", action="store_true",
                   help="keep leaf values (for [path = 'v'] predicates)")
    p.set_defaults(func=cmd_exact)

    p = add_parser("gen-corpus", help="materialize benchmark data sets as XML")
    p.add_argument("directory")
    p.add_argument("datasets", nargs="*",
                   help="data set names (default: all; see repro.datagen)")
    p.add_argument("--scale", type=float, default=1.0,
                   help="size multiplier relative to the benchmark documents")
    p.set_defaults(func=cmd_gen_corpus)

    p = add_parser("compare", help="approximate vs exact, with ESD")
    p.add_argument("document")
    p.add_argument("sketch")
    p.add_argument("twig")
    p.add_argument("--max-preview-nodes", type=int, default=2_000_000)
    p.set_defaults(func=cmd_compare)

    p = add_parser("workload",
                   help="build a sketch and run a selectivity workload over it")
    p.add_argument("document")
    p.add_argument("--budget-kb", type=float, default=10.0)
    p.add_argument("--queries", type=int, default=40,
                   help="number of generated twig queries (default 40)")
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--eval-cache", type=int, default=0, metavar="N",
                   help="canonical-query LRU cache capacity (0 = off)")
    p.add_argument("--server", metavar="HOST:PORT",
                   help="replay the workload against a running serve daemon "
                        "instead of evaluating in-process (docs/SERVING.md)")
    p.add_argument("--sketch-name", metavar="NAME",
                   help="sketch to query in --server mode "
                        "(default: the server's only sketch)")
    p.add_argument("--request-prefix", metavar="PREFIX",
                   help="in --server mode, tag the n-th request with "
                        "request_id PREFIX-n for trace correlation")
    p.add_argument("--batch", action="store_true",
                   help="estimate all selectivities in one vectorized pass "
                        "(numpy when available; ignored in --server mode)")
    p.add_argument("--kernel",
                   choices=("auto", "dicts", "arrays", "numpy"),
                   default="auto",
                   help="TSBUILD scoring backend for the built sketch "
                        "(bit-identical output; ignored in --server mode)")
    p.add_argument("--profile", metavar="FILE",
                   help="dump a cProfile pstats file for the run")
    p.set_defaults(func=cmd_workload)

    p = add_parser("serve",
                   help="network query daemon over pinned sketches "
                        "(docs/SERVING.md)")
    p.add_argument("sketches", nargs="+", metavar="[NAME=]PATH",
                   help="synopsis (.json[.gz]/.tsb) to pin, or a raw .xml "
                        "document to pin LIVE (needs --live-budget-kb), "
                        "optionally named (default name: file stem)")
    p.add_argument("--host", default="127.0.0.1")
    p.add_argument("--port", type=int, default=7077,
                   help="TCP port (0 = ephemeral; default 7077); with "
                        "--workers >= 2 this is the supervisor control "
                        "endpoint and workers get their own data ports")
    p.add_argument("--workers", type=int, default=1,
                   help="serving worker processes (default 1 = in-process "
                        "daemon; >= 2 starts the sharded fleet under a "
                        "supervisor, docs/SERVING.md)")
    p.add_argument("--shard-by", choices=("name", "none"), default="name",
                   help="fleet sharding: 'name' assigns each sketch to one "
                        "worker by consistent hash (default); 'none' loads "
                        "all sketches in every worker and balances "
                        "connections via SO_REUSEPORT")
    p.add_argument("--worker-port", type=int, default=0,
                   help="shared SO_REUSEPORT data port for "
                        "--shard-by none fleets (default 0 = ephemeral)")
    p.add_argument("--threads", type=int, default=1,
                   help="compute threads per worker process (default 1)")
    p.add_argument("--backoff-base-s", type=float, default=0.1,
                   help=argparse.SUPPRESS)
    p.add_argument("--backoff-cap-s", type=float, default=5.0,
                   help=argparse.SUPPRESS)
    p.add_argument("--backoff-reset-s", type=float, default=10.0,
                   help=argparse.SUPPRESS)
    p.add_argument("--shard-index", type=int, default=0,
                   help=argparse.SUPPRESS)  # set by the supervisor
    p.add_argument("--shard-count", type=int, default=1,
                   help=argparse.SUPPRESS)  # set by the supervisor
    p.add_argument("--reuse-port", action="store_true",
                   help=argparse.SUPPRESS)  # set by the supervisor
    p.add_argument("--batch-window-ms", type=float, default=0.0,
                   help="coalescing window for concurrent same-sketch "
                        "estimates (default 0 = flush on next loop tick)")
    p.add_argument("--batch-max", type=int, default=64,
                   help="max coalesced estimates per batch (default 64)")
    p.add_argument("--no-coalesce", action="store_true",
                   help="disable estimate coalescing (one compute job per "
                        "request, the pre-fleet behaviour)")
    p.add_argument("--max-pending", type=int, default=64,
                   help="admission bound; beyond it requests are shed with "
                        "an `overloaded` error (default 64)")
    p.add_argument("--degrade-watermark", type=int, default=None,
                   help="queue depth above which eval degrades to "
                        "selectivity-only (default max-pending/2)")
    p.add_argument("--deadline-ms", type=float, default=10_000.0,
                   help="default per-request deadline (default 10000)")
    p.add_argument("--max-expand-nodes", type=int, default=200_000,
                   help="hard cap on expand answer size (default 200000)")
    p.add_argument("--cache-size", type=int, default=256,
                   help="per-sketch query cache capacity (0 = unbounded)")
    p.add_argument("--live-budget-kb", type=float, default=None,
                   metavar="KB",
                   help="pin raw .xml documents as LIVE sketches built to "
                        "this synopsis budget; live sketches accept the "
                        "update op (docs/MAINTENANCE.md)")
    p.add_argument("--cache-checkpoint-s", type=float, default=None,
                   metavar="SECONDS",
                   help="periodically persist .tsb cache sidecars every "
                        "SECONDS (default: only on graceful shutdown)")
    p.add_argument("--metrics-port", type=int, default=None, metavar="PORT",
                   help="start an HTTP telemetry sidecar on PORT "
                        "(0 = ephemeral) serving /metrics (Prometheus), "
                        "/healthz and /statusz")
    p.add_argument("--shadow-sample", type=float, default=0.0,
                   metavar="FRACTION",
                   help="replay this fraction of estimate/eval answers "
                        "against a reference off the hot path and record "
                        "serve.accuracy.* metrics (default 0 = off)")
    p.add_argument("--shadow-reference", metavar="PATH",
                   help="reference for --shadow-sample: an XML document "
                        "(exact truth) or a synopsis JSON (stable summary)")
    p.add_argument("--shadow-eval-delay-s", type=float, default=0.0,
                   help=argparse.SUPPRESS)  # test knob: delay shadow scoring
    p.add_argument("--error-budget", type=float, default=None,
                   metavar="REL_ERROR",
                   help="target relative error per sketch: enables the "
                        "accuracy ledger (ok/warn/burning budget states "
                        "from shadow-sampled drift; needs --shadow-sample; "
                        "docs/OBSERVABILITY.md 'Accuracy plane')")
    p.add_argument("--error-budget-window", type=int, default=64,
                   metavar="N",
                   help="trailing shadow samples per sketch behind the "
                        "budget burn rate (default 64)")
    p.add_argument("--adaptive-maintain", action="store_true",
                   help="let measured drift tighten/relax live sketches' "
                        "debt_threshold instead of the fixed knob "
                        "(needs --error-budget and --live-budget-kb)")
    p.add_argument("--drain-s", type=float, default=5.0,
                   help="on SIGTERM/SIGINT, wait up to this long for "
                        "in-flight requests before closing (default 5)")
    p.set_defaults(func=cmd_serve)

    p = add_parser("update",
                   help="mutate a live sketch on a running daemon, or "
                        "generate a mutation workload (docs/MAINTENANCE.md)")
    p.add_argument("address", nargs="?", metavar="HOST:PORT",
                   help="daemon data port (or supervisor control endpoint "
                        "with --pooled); omit in --generate mode")
    p.add_argument("--sketch", metavar="NAME",
                   help="target sketch (default: the server's only sketch)")
    p.add_argument("--action", choices=("insert_subtree", "delete_subtree"),
                   help="apply one mutation")
    p.add_argument("--parent-label", metavar="LABEL",
                   help="insert: label of the attachment-point node")
    p.add_argument("--parent-ordinal", type=int, default=0, metavar="N",
                   help="insert: attach under the N-th preorder node with "
                        "that label (default 0)")
    p.add_argument("--subtree", metavar="SPEC",
                   help="insert: a bare label or JSON "
                        "'[\"label\", [children...]]'")
    p.add_argument("--label", metavar="LABEL",
                   help="delete: label of the subtree root to remove")
    p.add_argument("--ordinal", type=int, default=0, metavar="N",
                   help="delete: the N-th preorder node with that label "
                        "(default 0)")
    p.add_argument("--script", metavar="FILE",
                   help="replay a JSON-lines op script (see --generate)")
    p.add_argument("--pooled", action="store_true",
                   help="ADDRESS is a supervisor control endpoint; route "
                        "each op to the owning worker")
    p.add_argument("--verbose", action="store_true",
                   help="print per-op progress during script replay")
    p.add_argument("--generate", type=int, default=0, metavar="N",
                   help="generate an N-op mutation workload instead of "
                        "talking to a server")
    p.add_argument("--document", metavar="XML",
                   help="--generate: the document the ops must stay valid "
                        "against")
    p.add_argument("--seed", type=int, default=0,
                   help="--generate: RNG seed (default 0)")
    p.add_argument("--insert-fraction", type=float, default=0.5,
                   help="--generate: fraction of inserts vs deletes "
                        "(default 0.5)")
    p.add_argument("-o", "--output", metavar="FILE",
                   help="--generate: write the op script here "
                        "(default stdout)")
    p.set_defaults(func=cmd_update)

    p = add_parser("top",
                   help="live console view of a serve daemon's /statusz "
                        "(or a supervisor's fleet /snapshotz with --fleet)")
    p.add_argument("address", metavar="HOST:PORT",
                   help="the daemon's --metrics-port address (with "
                        "--fleet: the supervisor's)")
    p.add_argument("--fleet", action="store_true",
                   help="poll the supervisor's merged /snapshotz instead "
                        "of a single worker's /statusz, so the accuracy "
                        "panel reads fleet-wide")
    p.add_argument("--interval", type=float, default=2.0,
                   help="seconds between polls (default 2)")
    p.add_argument("--iterations", type=int, default=0, metavar="N",
                   help="stop after N screens (default 0 = until Ctrl-C)")
    p.add_argument("--no-clear", action="store_true",
                   help="append screens instead of clearing the terminal")
    p.add_argument("--http-timeout", type=float, default=5.0,
                   help=argparse.SUPPRESS)
    p.set_defaults(func=cmd_top)

    p = add_parser("estimate",
                   help="estimate twig selectivities over a synopsis, cached")
    p.add_argument("sketch", help="synopsis JSON (TreeSketch or stable)")
    p.add_argument("twigs", nargs="*", help="twig queries")
    p.add_argument("--queries-file", metavar="FILE",
                   help="file with one twig per line (# comments allowed)")
    p.add_argument("--cache-size", type=int, default=256,
                   help="canonical-query LRU capacity (default 256)")
    p.add_argument("--repeat", type=int, default=1,
                   help="evaluate the query list this many times (cache demo)")
    p.add_argument("--batch", action="store_true",
                   help="estimate the whole query list per pass via "
                        "estimate_selectivity_batch (numpy when available)")
    p.add_argument("--profile", metavar="FILE",
                   help="dump a cProfile pstats file for the run")
    p.set_defaults(func=cmd_estimate)

    return parser


def _invoke(args: argparse.Namespace) -> int:
    """Run the subcommand, optionally under cProfile (--profile FILE)."""
    profile_path = getattr(args, "profile", None)
    if not profile_path:
        return args.func(args)
    import cProfile

    profiler = cProfile.Profile()
    profiler.enable()
    try:
        code = args.func(args)
    finally:
        profiler.disable()
        try:
            profiler.dump_stats(profile_path)
        except OSError as exc:
            print(f"cannot write profile file: {exc}", file=sys.stderr)
            return 2
        print(f"profile: pstats dump -> {profile_path}", file=sys.stderr)
    return code


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = make_parser().parse_args(argv)
    if not (getattr(args, "stats", False) or getattr(args, "trace", None)):
        return _invoke(args)

    from repro import obs

    try:
        sink = obs.JsonLinesSink(args.trace) if args.trace else None
    except OSError as exc:
        print(f"cannot open trace file: {exc}", file=sys.stderr)
        return 2
    try:
        with obs.observed(sink=sink) as registry:
            code = _invoke(args)
            if args.stats:
                print()
                print(obs.report.render_registry(registry))
    finally:
        if sink is not None:
            sink.close()
    if args.trace:
        print(f"trace: {sink.events_written} events -> {args.trace}")
    return code


if __name__ == "__main__":
    raise SystemExit(main())
