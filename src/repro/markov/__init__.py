"""Markov-table path selectivity estimation (Aboulnaga et al., VLDB'01).

One of the earlier XML summarization lines the paper cites ([1]): instead
of a graph synopsis, keep occurrence counts of short label paths and chain
them with a Markov assumption.  Only simple (child-axis) path expressions
are supported -- exactly the scope limitation that motivated the
twig-capable synopses this repository is about.  Provided as a baseline
for the path-workload benchmark (`benchmarks/test_baseline_markov.py`).
"""

from repro.markov.tables import MarkovPathEstimator

__all__ = ["MarkovPathEstimator"]
