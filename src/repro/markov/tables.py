"""Markov tables over label paths.

The order-``m`` Markov table stores the number of occurrences of every
downward label path of length ``<= m`` in the document (an occurrence of
``(l1, .., lk)`` is a node chain ``e1/../ek`` with those labels).  A long
path's count is estimated by chaining conditionals:

    f(t1..tn) ~= f(t1..tm) * prod_{i=2..n-m+1} f(ti..ti+m-1) / f(ti..ti+m-2)

which is exact when label paths are (m-1)-order Markov.  To respect a
space budget the table keeps the highest-count paths exactly and collapses
the discarded ones into per-length fallback buckets (average count over
the discarded paths of that length) -- the "star" pruning of the original
proposal, simplified.
"""

from __future__ import annotations

from collections import Counter
from typing import Dict, List, Optional, Sequence, Tuple

from repro.xmltree.tree import XMLTree

PathKey = Tuple[str, ...]


class MarkovPathEstimator:
    """Order-``m`` Markov table for child-axis path counts."""

    def __init__(
        self,
        order: int,
        counts: Dict[PathKey, int],
        fallback: Dict[int, float],
    ) -> None:
        if order < 1:
            raise ValueError("order must be >= 1")
        self.order = order
        self.counts = counts
        self.fallback = fallback

    # ------------------------------------------------------------------

    @classmethod
    def from_tree(
        cls,
        tree: XMLTree,
        order: int = 2,
        budget_bytes: Optional[int] = None,
    ) -> "MarkovPathEstimator":
        """Count all label paths of length <= order; prune to a budget."""
        if order < 1:
            raise ValueError("order must be >= 1")
        counter: Counter = Counter()
        # Every node starts paths ending at itself: walk up at most
        # ``order`` ancestors.
        for node in tree:
            labels: List[str] = []
            cursor = node
            for _ in range(order):
                if cursor is None:
                    break
                labels.append(cursor.label)
                counter[tuple(reversed(labels))] += 1
                cursor = cursor.parent

        counts = dict(counter)
        fallback: Dict[int, float] = {}
        if budget_bytes is not None:
            keep = max(1, budget_bytes // cls._entry_bytes(order))
            if len(counts) > keep:
                ranked = sorted(counts.items(), key=lambda kv: (-kv[1], kv[0]))
                kept = dict(ranked[:keep])
                dropped = ranked[keep:]
                per_length: Dict[int, List[int]] = {}
                for key, value in dropped:
                    per_length.setdefault(len(key), []).append(value)
                fallback = {
                    length: sum(values) / len(values)
                    for length, values in per_length.items()
                }
                counts = kept
        return cls(order, counts, fallback)

    @staticmethod
    def _entry_bytes(order: int) -> int:
        # label ids + a count, 4 bytes each.
        return 4 * (order + 1)

    def size_bytes(self) -> int:
        per_entry = self._entry_bytes(self.order)
        return per_entry * len(self.counts) + 8 * len(self.fallback)

    # ------------------------------------------------------------------

    def _lookup(self, key: PathKey) -> float:
        value = self.counts.get(key)
        if value is not None:
            return float(value)
        return self.fallback.get(len(key), 0.0)

    def estimate(self, labels: Sequence[str]) -> float:
        """Estimated occurrences of the downward label path ``labels``.

        For ``len(labels) <= order`` this is a (possibly pruned) lookup;
        longer paths chain conditional factors under the Markov
        assumption.
        """
        key = tuple(labels)
        if not key:
            raise ValueError("empty label path")
        if len(key) <= self.order:
            return self._lookup(key)
        estimate = self._lookup(key[: self.order])
        for i in range(1, len(key) - self.order + 1):
            window = key[i : i + self.order]
            numerator = self._lookup(window)
            denominator = self._lookup(window[:-1])
            if numerator <= 0 or denominator <= 0:
                return 0.0
            estimate *= numerator / denominator
        return estimate

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"MarkovPathEstimator(order={self.order}, entries={len(self.counts)}, "
            f"{self.size_bytes()} bytes)"
        )
