"""Structural indexes used by the exact query engine.

The engine needs two primitives per axis step:

* children of ``e`` with label ``l`` -- answered by scanning ``e.children``
  (document fan-outs are modest);
* proper descendants of ``e`` with label ``l`` -- answered in
  O(log n + answers) using the fact that oids are assigned in pre-order, so
  a sub-tree is a contiguous oid interval and the per-label oid lists are
  sorted.
"""

from __future__ import annotations

from bisect import bisect_left, bisect_right
from typing import Dict, List

from repro.query.path import WILDCARD
from repro.xmltree.node import XMLNode
from repro.xmltree.tree import XMLTree


class DocumentIndex:
    """Label + interval index over one document tree."""

    def __init__(self, tree: XMLTree) -> None:
        self.tree = tree
        # Per-label sorted oid lists come straight from the tree's index.
        self._by_label: Dict[str, List[int]] = {
            label: tree.oids_with_label(label) for label in tree.labels
        }

    def children_with_label(self, node: XMLNode, label: str) -> List[XMLNode]:
        """Direct children of ``node`` matching ``label`` (doc order)."""
        if label == WILDCARD:
            return list(node.children)
        return [c for c in node.children if c.label == label]

    def descendants_with_label(self, node: XMLNode, label: str) -> List[XMLNode]:
        """Proper descendants of ``node`` matching ``label`` (doc order)."""
        lo = node.oid + 1
        hi = node.oid + self.tree.subtree_size(node)  # inclusive of last oid
        if label == WILDCARD:
            return [self.tree.node(oid) for oid in range(lo, hi)]
        oids = self._by_label.get(label)
        if not oids:
            return []
        start = bisect_left(oids, lo)
        end = bisect_right(oids, hi - 1)
        return [self.tree.node(oid) for oid in oids[start:end]]

    def count_descendants_with_label(self, node: XMLNode, label: str) -> int:
        """Number of proper descendants of ``node`` matching ``label``."""
        lo = node.oid + 1
        hi = node.oid + self.tree.subtree_size(node)
        if label == WILDCARD:
            return hi - lo
        oids = self._by_label.get(label)
        if not oids:
            return 0
        return bisect_right(oids, hi - 1) - bisect_left(oids, lo)
