"""Synopsis-guided twig planning: ordering joins by estimated selectivity.

The paper motivates selectivity estimation with query optimization
(Section 4.4: "accurate estimation ... is a key requirement in producing
effective query plans").  This module closes that loop inside the library:
given a TreeSketch, :func:`reorder_query` rewrites a twig so that each
node's *most selective* solid branches come first.  The rewritten query is
semantically identical (branch order does not affect bindings, counts, or
nesting), but the exact engine's satisfaction checks short-circuit on the
first failing solid branch -- testing likely-to-fail branches first prunes
unsatisfied elements sooner.

Selectivity per branch comes from the synopsis itself: the query is
evaluated approximately once, and each variable's average satisfaction
fraction (see :func:`repro.core.expand.satisfaction_fractions`) ranks its
sub-tree's likelihood to survive.
"""

from __future__ import annotations

from typing import Dict

from repro.query.twig import QueryNode, TwigQuery

# repro.core.expand imports repro.engine.nesting; importing repro.core here
# at module load would close that cycle through the package __init__, so
# the core imports happen inside the functions.


def _core():
    from repro.core.evaluate import eval_query
    from repro.core.expand import satisfaction_fractions

    return eval_query, satisfaction_fractions


def branch_survival(query: TwigQuery, sketch) -> Dict[str, float]:
    """Estimated P(parent binding finds a satisfied match) per child var.

    For a query edge ``q -> q_c``, this is the average over ``q``'s
    bindings of ``min(1, sum_v count(u_Q, v_Q) * sat(v_Q))`` -- the same
    per-binding factor the satisfaction fractions use.  1.0 means the
    branch never rejects; values near 0 mark branches that reject almost
    every candidate (the ones worth testing first).  Child variables whose
    parent has no bindings map to 0.
    """
    eval_query, satisfaction_fractions = _core()
    result = eval_query(sketch, query)
    sat = satisfaction_fractions(result)
    survival: Dict[str, float] = {}
    for qnode in query.nodes:
        parent_keys = result.bind.get(qnode.var, [])
        for qc in qnode.children:
            if not parent_keys:
                survival[qc.var] = 0.0
                continue
            total = 0.0
            for key in parent_keys:
                supply = sum(
                    avg * sat.get(v_key, 0.0)
                    for v_key, avg in result.out.get(key, {}).items()
                    if v_key[1] == qc.var
                )
                total += min(1.0, supply)
            survival[qc.var] = total / len(parent_keys)
    return survival


def reorder_query(query: TwigQuery, sketch) -> TwigQuery:
    """Equivalent twig with solid branches ordered most-selective-first.

    Solid (non-optional) children are sorted by ascending estimated
    survival; optional children keep their relative order and come last
    (they can never reject a binding).  Variable names are re-assigned in
    the new pre-order, as always.
    """
    survival = branch_survival(query, sketch)

    def clone(node: QueryNode, into: QueryNode) -> None:
        solid = [c for c in node.children if not c.optional]
        optional = [c for c in node.children if c.optional]
        solid.sort(key=lambda c: survival.get(c.var, 0.0))
        for child in solid + optional:
            copied = into.add_child(child.path, optional=child.optional)
            clone(child, copied)

    reordered = TwigQuery()
    clone(query.root, reordered.root)
    return reordered.finalize()
