"""Exact twig evaluation: ground-truth nesting trees and selectivities.

The evaluator implements the semantics of Section 2: a twig query is
evaluated by jointly evaluating its path expressions; a binding of variable
``q`` at element ``e`` is *satisfied* when every solid (non-dashed) child
edge of ``q`` has at least one satisfied target under ``e``.  The result is
the nesting tree ``NT(Q)``; the selectivity is the number of binding tuples
it encodes, which we compute by dynamic programming.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.engine.index import DocumentIndex
from repro.engine.nesting import NestingTree, NTNode
from repro.query.path import Axis, Path, PathStep, ValueTest
from repro.query.twig import QueryNode, TwigQuery
from repro.xmltree.node import XMLNode
from repro.xmltree.tree import XMLTree


class _EvalContext:
    """Per-evaluation memo tables (scoped to one query run)."""

    def __init__(self) -> None:
        # (elem oid, id(path)) -> list of target nodes
        self.targets: Dict[Tuple[int, int], List[XMLNode]] = {}
        # (elem oid, id(path)) -> bool, for branch predicates
        self.exists: Dict[Tuple[int, int], bool] = {}
        # (elem oid, qnode index) -> bool
        self.sat: Dict[Tuple[int, int], bool] = {}
        # (elem oid, qnode index) -> int
        self.count: Dict[Tuple[int, int], int] = {}


class ExactEvaluator:
    """Evaluates twig queries exactly over one document tree."""

    def __init__(self, tree: XMLTree) -> None:
        self.tree = tree
        self.index = DocumentIndex(tree)

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------

    def evaluate(self, query: TwigQuery) -> NestingTree:
        """Compute the exact nesting tree ``NT(Q)``.

        If the query has an empty result (some solid path has no satisfied
        bindings), the returned nesting tree consists of the bare root
        occurrence and ``binding_tuple_count() == 0``.
        """
        ctx = _EvalContext()
        qindex = self._query_index(query)
        root = self.tree.root
        nt_root = NTNode(label=root.label, qvar="q0", oid=root.oid)
        if self._sat(root, query.root, qindex, ctx):
            self._build(root, query.root, nt_root, qindex, ctx)
        return NestingTree(nt_root, query)

    def selectivity(self, query: TwigQuery) -> int:
        """Number of binding tuples of ``query`` (without building NT)."""
        ctx = _EvalContext()
        qindex = self._query_index(query)
        return self._count(self.tree.root, query.root, qindex, ctx)

    def path_targets(self, elem: XMLNode, path: Path) -> List[XMLNode]:
        """Elements reached from ``elem`` via ``path`` (predicates honoured)."""
        return self._targets(elem, path, _EvalContext())

    def binding_tuples(self, query: TwigQuery, limit: Optional[int] = None):
        """Yield the query's binding tuples as ``{variable: XMLNode}`` dicts.

        Tuples are produced lazily in document order of the outermost
        bindings; ``limit`` caps the enumeration (counts can be huge --
        see Table 2).  Optional variables bind to ``None`` when their
        branch is empty.  ``q0`` is always the document root.
        """
        ctx = _EvalContext()
        qindex = self._query_index(query)
        root = self.tree.root
        if not self._sat(root, query.root, qindex, ctx):
            return
        emitted = 0
        for tuple_dict in self._tuples_from(root, query.root, qindex, ctx):
            yield tuple_dict
            emitted += 1
            if limit is not None and emitted >= limit:
                return

    def _tuples_from(
        self,
        elem: XMLNode,
        qnode: QueryNode,
        qindex: Dict[int, int],
        ctx: _EvalContext,
    ):
        """All binding tuples of the sub-twig rooted at (elem, qnode)."""
        partial = {qnode.var: elem}
        if not qnode.children:
            yield dict(partial)
            return

        # Satisfied target tuples per child variable; an optional-and-empty
        # child contributes one null binding for its whole sub-twig.
        def child_tuples(qc: QueryNode):
            produced = False
            for target in self._targets(elem, qc.path, ctx):
                if not self._sat(target, qc, qindex, ctx):
                    continue
                for sub in self._tuples_from(target, qc, qindex, ctx):
                    produced = True
                    yield sub
            if not produced and qc.optional:
                yield {var.var: None for var in qc.iter_preorder()}

        def combine(children):
            if not children:
                yield {}
                return
            head, tail = children[0], children[1:]
            for head_tuple in child_tuples(head):
                for tail_tuple in combine(tail):
                    merged = dict(head_tuple)
                    merged.update(tail_tuple)
                    yield merged

        for combo in combine(qnode.children):
            result = dict(partial)
            result.update(combo)
            yield result

    # ------------------------------------------------------------------
    # Path matching
    # ------------------------------------------------------------------

    def _step_targets(self, elem: XMLNode, step: PathStep) -> List[XMLNode]:
        if step.axis is Axis.CHILD:
            return [c for c in elem.children if step.matches_label(c.label)]
        if "|" not in step.label:
            return self.index.descendants_with_label(elem, step.label)
        targets: List[XMLNode] = []
        for label in step.label.split("|"):
            targets.extend(self.index.descendants_with_label(elem, label))
        targets.sort(key=lambda node: node.oid)
        return targets

    def _targets(self, elem: XMLNode, path: Path, ctx: _EvalContext) -> List[XMLNode]:
        key = (elem.oid, id(path))
        cached = ctx.targets.get(key)
        if cached is not None:
            return cached
        frontier: Dict[int, XMLNode] = {elem.oid: elem}
        for step in path.steps:
            nxt: Dict[int, XMLNode] = {}
            for node in frontier.values():
                for target in self._step_targets(node, step):
                    if target.oid in nxt:
                        continue
                    if all(
                        self._pred_holds(target, pred, ctx)
                        for pred in step.predicates
                    ):
                        nxt[target.oid] = target
            frontier = nxt
            if not frontier:
                break
        result = [frontier[oid] for oid in sorted(frontier)]
        ctx.targets[key] = result
        return result

    def _pred_holds(self, elem: XMLNode, pred, ctx: _EvalContext) -> bool:
        """Dispatch a step predicate: structural path or value test."""
        if isinstance(pred, ValueTest):
            return self._exists_value(elem, pred, ctx)
        return self._exists(elem, pred, ctx)

    def _exists_value(self, elem: XMLNode, test: ValueTest, ctx: _EvalContext) -> bool:
        """True iff some target of the test's path carries the value."""
        key = (elem.oid, id(test))
        cached = ctx.exists.get(key)
        if cached is not None:
            return cached
        result = any(
            target.value == test.value
            for target in self._targets(elem, test.path, ctx)
        )
        ctx.exists[key] = result
        return result

    def _exists(self, elem: XMLNode, path: Path, ctx: _EvalContext) -> bool:
        """Existential branch-predicate test with early exit."""
        key = (elem.oid, id(path))
        cached = ctx.exists.get(key)
        if cached is not None:
            return cached
        result = self._exists_from(elem, path.steps, 0, ctx)
        ctx.exists[key] = result
        return result

    def _exists_from(
        self, elem: XMLNode, steps: Tuple[PathStep, ...], pos: int, ctx: _EvalContext
    ) -> bool:
        step = steps[pos]
        for target in self._step_targets(elem, step):
            if not all(
                self._pred_holds(target, pred, ctx) for pred in step.predicates
            ):
                continue
            if pos + 1 == len(steps):
                return True
            if self._exists_from(target, steps, pos + 1, ctx):
                return True
        return False

    # ------------------------------------------------------------------
    # Satisfaction, nesting tree, counting
    # ------------------------------------------------------------------

    @staticmethod
    def _query_index(query: TwigQuery) -> Dict[int, int]:
        return {id(qnode): i for i, qnode in enumerate(query.nodes)}

    def _sat(
        self,
        elem: XMLNode,
        qnode: QueryNode,
        qindex: Dict[int, int],
        ctx: _EvalContext,
    ) -> bool:
        """True iff binding ``elem`` to ``qnode`` satisfies all solid edges."""
        key = (elem.oid, qindex[id(qnode)])
        cached = ctx.sat.get(key)
        if cached is not None:
            return cached
        result = True
        for qc in qnode.children:
            if qc.optional:
                continue
            targets = self._targets(elem, qc.path, ctx)
            if not any(self._sat(t, qc, qindex, ctx) for t in targets):
                result = False
                break
        ctx.sat[key] = result
        return result

    def _build(
        self,
        elem: XMLNode,
        qnode: QueryNode,
        nt_node: NTNode,
        qindex: Dict[int, int],
        ctx: _EvalContext,
    ) -> None:
        """Materialize the nesting sub-tree for a satisfied binding."""
        for qc in qnode.children:
            for target in self._targets(elem, qc.path, ctx):
                if not self._sat(target, qc, qindex, ctx):
                    continue
                child_nt = nt_node.add(
                    NTNode(label=target.label, qvar=qc.var, oid=target.oid)
                )
                self._build(target, qc, child_nt, qindex, ctx)

    def _count(
        self,
        elem: XMLNode,
        qnode: QueryNode,
        qindex: Dict[int, int],
        ctx: _EvalContext,
    ) -> int:
        """Binding tuples rooted at the occurrence (elem, qnode)."""
        key = (elem.oid, qindex[id(qnode)])
        cached = ctx.count.get(key)
        if cached is not None:
            return cached
        total = 1
        for qc in qnode.children:
            subtotal = sum(
                self._count(t, qc, qindex, ctx)
                for t in self._targets(elem, qc.path, ctx)
            )
            if qc.optional:
                subtotal = max(1, subtotal)
            total *= subtotal
            if total == 0:
                break
        ctx.count[key] = total
        return total
