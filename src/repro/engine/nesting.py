"""Nesting trees: the structured result of a twig query (paper Fig. 2(c)).

A nesting tree ``NT(Q)`` contains every document element that appears in a
binding of some query variable, nested according to the ancestor/descendant
relationships the query paths impose.  It is sufficient to reconstruct the
full set of binding tuples (and hence the query's selectivity), and it is
the object the ESD error metric compares.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

from repro.query.twig import QueryNode, TwigQuery
from repro.xmltree.node import XMLNode
from repro.xmltree.tree import XMLTree


@dataclass
class NTNode:
    """One occurrence of a document element in the nesting tree.

    ``oid`` is the document element's oid (or -1 for synthetic nodes created
    when expanding approximate answers), ``label`` its tag, and ``qvar`` the
    query variable it is bound to.  The same document element may occur
    several times, bound to different variables or under different parent
    occurrences.
    """

    label: str
    qvar: str
    oid: int = -1
    children: List["NTNode"] = field(default_factory=list)

    def add(self, child: "NTNode") -> "NTNode":
        self.children.append(child)
        return child

    def subtree_size(self) -> int:
        total = 0
        stack = [self]
        while stack:
            node = stack.pop()
            total += 1
            stack.extend(node.children)
        return total


class NestingTree:
    """The nesting tree of a twig query over a document (or synopsis)."""

    def __init__(self, root: NTNode, query: TwigQuery) -> None:
        self.root = root
        self.query = query

    def size(self) -> int:
        """Number of element occurrences in the nesting tree."""
        return self.root.subtree_size()

    def binding_tuple_count(self) -> int:
        """Number of binding tuples the nesting tree encodes.

        Computed by dynamic programming without materializing tuples: for an
        occurrence ``x`` bound to variable ``q``, the tuples rooted at ``x``
        multiply across ``q``'s child variables; a solid (non-optional)
        child with no occurrences nullifies ``x`` (this cannot happen for a
        correctly-built exact nesting tree), while an empty optional child
        contributes the single "null" binding (factor 1).
        """
        qnode_of = {n.var: n for n in self.query.nodes}
        return _tuples(self.root, qnode_of[self.root.qvar], qnode_of)

    def to_xmltree(self) -> XMLTree:
        """Convert to a plain :class:`XMLTree` (labels only) for metrics."""
        root = XMLNode(self.root.label)
        stack = [(self.root, root)]
        while stack:
            src, dst = stack.pop()
            for child in src.children:
                stack.append((child, dst.new_child(child.label)))
        return XMLTree(root)

    def is_empty(self) -> bool:
        """True iff the query had no bindings (root-only tree)."""
        return not self.root.children and bool(self.query.root.children)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"NestingTree(size={self.size()}, tuples~{self.binding_tuple_count()})"


def _tuples(nt_node: NTNode, qnode: QueryNode, qnode_of: Dict[str, QueryNode]) -> int:
    # Group child occurrences by the query variable they bind.
    by_var: Dict[str, List[NTNode]] = {}
    for child in nt_node.children:
        by_var.setdefault(child.qvar, []).append(child)
    total = 1
    for qc in qnode.children:
        subtotal = sum(
            _tuples(occ, qc, qnode_of) for occ in by_var.get(qc.var, [])
        )
        if qc.optional:
            subtotal = max(1, subtotal)
        total *= subtotal
        if total == 0:
            return 0
    return total


def empty_result(query: TwigQuery, root_label: str = "#empty") -> NestingTree:
    """The canonical empty answer: a bare root occurrence."""
    return NestingTree(NTNode(label=root_label, qvar="q0", oid=0), query)
