"""Exact twig-query evaluation over XML document trees.

This is the ground-truth engine the experiments compare against: it computes
the true nesting tree ``NT(Q)`` (paper Fig. 2(c)) and the true selectivity
(number of binding tuples) of a twig query.

* :mod:`repro.engine.index` -- label/descendant indexes over a document.
* :mod:`repro.engine.nesting` -- the :class:`NestingTree` result structure.
* :mod:`repro.engine.exact` -- the :class:`ExactEvaluator`.
"""

from repro.engine.exact import ExactEvaluator
from repro.engine.nesting import NestingTree, NTNode
from repro.engine.index import DocumentIndex
from repro.engine.planner import branch_survival, reorder_query

__all__ = [
    "ExactEvaluator",
    "NestingTree",
    "NTNode",
    "DocumentIndex",
    "branch_survival",
    "reorder_query",
]
