"""Classic node-partitioning path indexes: 1-index and A(k)-index.

Section 3.1 of the paper observes that 1-indexes [Milo & Suciu, ICDT'99],
A(k)-indexes [Kaushik et al., ICDE'02], XSketches, and TreeSketches are all
instances of one abstract model: a label-respecting partition of the
document's elements plus the induced edge structure.  This package
implements the classic *backward* (incoming-path) partitions for tree
data, where they take a particularly simple form:

* the 1-index groups elements by their full root label path;
* the A(k)-index groups by the last ``k+1`` labels of that path
  (``A(0)`` = label-split graph; large ``k`` converges to the 1-index).

Turning such a partition into an average-count summary
(:func:`partition_sketch`) yields an alternative baseline for the paper's
selectivity experiments: same storage model as a TreeSketch, but a
partition chosen by path context instead of squared-error-driven
clustering (see ``benchmarks/test_baseline_ak.py``).
"""

from repro.indexes.ak import (
    ak_index_partition,
    one_index_partition,
    partition_sketch,
)

__all__ = ["ak_index_partition", "one_index_partition", "partition_sketch"]
