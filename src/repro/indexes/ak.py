"""A(k)-index and 1-index partitions for tree-shaped XML.

On a tree, two elements are backward-bisimilar iff their root label paths
coincide, and k-bisimilar iff the last ``k+1`` labels coincide, so the
partitions are computed in one pre-order pass.  The induced graph synopsis
(one node per class, average child counts per edge) is produced by
:func:`partition_sketch` and can be queried with the shared TreeSketch
evaluator.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.core.treesketch import TreeSketch
from repro.xmltree.tree import XMLTree


def ak_index_partition(tree: XMLTree, k: int) -> Dict[int, int]:
    """Element oid -> A(k) class id (same k-suffix of the root label path).

    ``k = 0`` is the label-split partition; ``k >= height`` equals the
    1-index partition.
    """
    if k < 0:
        raise ValueError("k must be non-negative")
    classes: Dict[Tuple[str, ...], int] = {}
    assignment: Dict[int, int] = {}
    # Walk in pre-order keeping the current root path suffix.
    stack: List[Tuple[object, Tuple[str, ...]]] = [
        (tree.root, (tree.root.label,))
    ]
    while stack:
        node, suffix = stack.pop()
        cid = classes.setdefault(suffix, len(classes))
        assignment[node.oid] = cid
        for child in node.children:
            child_suffix = (suffix + (child.label,))[-(k + 1):]
            stack.append((child, child_suffix))
    return assignment


def one_index_partition(tree: XMLTree) -> Dict[int, int]:
    """Element oid -> 1-index class id (full root label path)."""
    return ak_index_partition(tree, k=tree.height)


def partition_sketch(tree: XMLTree, assignment: Dict[int, int]) -> TreeSketch:
    """Average-count summary over an arbitrary element partition.

    Produces a :class:`TreeSketch` (counts, edge averages, sufficient
    statistics) so the partition can be evaluated and scored with the
    library's shared machinery.  The partition must respect labels.
    """
    labels: Dict[int, str] = {}
    counts: Dict[int, int] = {}
    # Per (class, class) edge: per-element child counts accumulate into
    # sufficient statistics.
    sums: Dict[Tuple[int, int], float] = {}
    sumsqs: Dict[Tuple[int, int], float] = {}

    for node in tree:
        cid = assignment[node.oid]
        prior = labels.setdefault(cid, node.label)
        if prior != node.label:
            raise ValueError(f"partition mixes labels {prior!r}/{node.label!r}")
        counts[cid] = counts.get(cid, 0) + 1
        per_child: Dict[int, int] = {}
        for child in node.children:
            tid = assignment[child.oid]
            per_child[tid] = per_child.get(tid, 0) + 1
        for tid, k in per_child.items():
            key = (cid, tid)
            sums[key] = sums.get(key, 0.0) + k
            sumsqs[key] = sumsqs.get(key, 0.0) + k * k

    sketch = TreeSketch()
    for cid, label in labels.items():
        sketch.add_node(cid, label, counts[cid])
    for (cid, tid), total in sums.items():
        sketch.add_edge(cid, tid, total / counts[cid])
        sketch.stats[(cid, tid)] = (total, sumsqs[(cid, tid)])
    sketch.root_id = assignment[tree.root.oid]
    sketch.doc_height = tree.height
    return sketch


def ak_sketch(tree: XMLTree, k: int) -> TreeSketch:
    """Convenience: the average-count summary of the A(k) partition."""
    return partition_sketch(tree, ak_index_partition(tree, k))
