"""Structural statistics over XML trees.

These are used by the experiment harness (dataset characteristics, Table 1)
and by the dataset generators' self-checks.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Dict

from repro.xmltree.tree import XMLTree


@dataclass
class TreeStats:
    """Summary statistics of one document tree."""

    num_elements: int
    num_labels: int
    height: int
    max_fanout: int
    avg_fanout: float
    label_histogram: Dict[str, int] = field(default_factory=dict)
    level_histogram: Dict[int, int] = field(default_factory=dict)

    def __str__(self) -> str:
        return (
            f"elements={self.num_elements} labels={self.num_labels} "
            f"height={self.height} max_fanout={self.max_fanout} "
            f"avg_fanout={self.avg_fanout:.2f}"
        )


def compute_stats(tree: XMLTree) -> TreeStats:
    """Compute :class:`TreeStats` for a document tree in one pass."""
    label_hist: Counter = Counter()
    level_hist: Counter = Counter()
    max_fanout = 0
    internal = 0
    total_children = 0
    for node in tree:
        label_hist[node.label] += 1
        level_hist[tree.level(node)] += 1
        fanout = len(node.children)
        if fanout:
            internal += 1
            total_children += fanout
            if fanout > max_fanout:
                max_fanout = fanout
    return TreeStats(
        num_elements=len(tree),
        num_labels=len(label_hist),
        height=tree.height,
        max_fanout=max_fanout,
        avg_fanout=(total_children / internal) if internal else 0.0,
        label_histogram=dict(label_hist),
        level_histogram=dict(level_hist),
    )


def fanout_distribution(tree: XMLTree, parent_label: str, child_label: str) -> Counter:
    """Distribution of ``child_label``-child counts across ``parent_label`` nodes.

    This is the quantity TreeSketch edge averages summarize; the generators'
    tests use it to confirm the synthetic data sets carry the intended
    fan-out skew.
    """
    dist: Counter = Counter()
    for node in tree.nodes_with_label(parent_label):
        count = sum(1 for c in node.children if c.label == child_label)
        dist[count] += 1
    return dist
