"""Human-readable renderings of trees and synopses.

Debugging summaries calls for *looking* at them.  This module renders

* document trees and nesting trees as indented ASCII art, and
* graph synopses (stable summaries, TreeSketches) as Graphviz ``dot``
  source, with extent counts on nodes and (average) child counts on
  edges.

Both are pure string builders -- no external dependencies; pipe the dot
output into ``dot -Tsvg`` if Graphviz is available.
"""

from __future__ import annotations

from typing import List, Optional

from repro.xmltree.node import XMLNode
from repro.xmltree.tree import XMLTree


def render_tree(
    tree: XMLTree,
    max_nodes: int = 200,
    show_values: bool = False,
) -> str:
    """Indented ASCII rendering of a document tree (truncated politely)."""
    lines: List[str] = []
    remaining = [max_nodes]

    def walk(node: XMLNode, prefix: str, is_last: bool) -> None:
        if remaining[0] <= 0:
            return
        remaining[0] -= 1
        connector = "" if node.parent is None else ("`-- " if is_last else "|-- ")
        text = node.label
        if show_values and node.value is not None:
            text += f' = "{node.value}"'
        lines.append(prefix + connector + text)
        child_prefix = prefix if node.parent is None else (
            prefix + ("    " if is_last else "|   ")
        )
        for i, child in enumerate(node.children):
            walk(child, child_prefix, i == len(node.children) - 1)

    walk(tree.root, "", True)
    if remaining[0] <= 0:
        lines.append(f"... (truncated at {max_nodes} nodes)")
    return "\n".join(lines)


def render_nesting_tree(nt, max_nodes: int = 200) -> str:
    """ASCII rendering of a nesting tree, annotated with query variables."""
    lines: List[str] = []
    remaining = [max_nodes]

    def walk(node, prefix: str, is_last: bool, is_root: bool) -> None:
        if remaining[0] <= 0:
            return
        remaining[0] -= 1
        connector = "" if is_root else ("`-- " if is_last else "|-- ")
        lines.append(prefix + connector + f"{node.label} [{node.qvar}]")
        child_prefix = prefix if is_root else prefix + ("    " if is_last else "|   ")
        for i, child in enumerate(node.children):
            walk(child, child_prefix, i == len(node.children) - 1, False)

    walk(nt.root, "", True, True)
    if remaining[0] <= 0:
        lines.append(f"... (truncated at {max_nodes} nodes)")
    return "\n".join(lines)


def synopsis_to_dot(
    synopsis,
    title: Optional[str] = None,
    max_nodes: int = 400,
) -> str:
    """Graphviz dot source for a graph synopsis.

    Nodes show ``label (extent count)``; edges show their weight (exact k
    for stable summaries, average child count for TreeSketches, 2
    decimals).  The root is drawn with a double border.  Oversized
    synopses are truncated to the ``max_nodes`` ids closest to the root
    (breadth-first).
    """
    # Breadth-first selection from the root keeps the rendered fragment
    # connected and meaningful.
    selected: List[int] = []
    seen = set()
    frontier = [synopsis.root_id]
    while frontier and len(selected) < max_nodes:
        nid = frontier.pop(0)
        if nid in seen:
            continue
        seen.add(nid)
        selected.append(nid)
        frontier.extend(sorted(synopsis.out.get(nid, {}).keys()))
    chosen = set(selected)

    lines = ["digraph synopsis {"]
    if title:
        lines.append(f'  label="{_escape(title)}"; labelloc=t;')
    lines.append("  node [shape=box, fontsize=10];")
    for nid in selected:
        label = f"{synopsis.label[nid]} ({synopsis.count[nid]})"
        shape = ', peripheries=2' if nid == synopsis.root_id else ""
        lines.append(f'  n{nid} [label="{_escape(label)}"{shape}];')
    for nid in selected:
        for dst, weight in sorted(synopsis.out.get(nid, {}).items()):
            if dst not in chosen:
                continue
            text = f"{weight:g}" if float(weight).is_integer() else f"{weight:.2f}"
            lines.append(f'  n{nid} -> n{dst} [label="{text}", fontsize=9];')
    if len(chosen) < synopsis.num_nodes:
        lines.append(
            f'  truncated [shape=plaintext, label="... '
            f'{synopsis.num_nodes - len(chosen)} more nodes"];'
        )
    lines.append("}")
    return "\n".join(lines)


def _escape(text: str) -> str:
    return text.replace("\\", "\\\\").replace('"', '\\"')
