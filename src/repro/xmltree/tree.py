"""The XML document tree with structural indexes.

:class:`XMLTree` wraps a root :class:`~repro.xmltree.node.XMLNode` and
maintains the indexes the rest of the library needs:

* pre-order oids (``node.oid``), so nodes can be referenced compactly;
* Euler intervals ``(pre, post)`` for O(1) ancestor/descendant tests;
* a label index mapping each tag to the pre-order-sorted list of its nodes,
  which the exact query engine uses for fast ``//label`` matching;
* per-node sub-tree depth (longest downward path), needed by CREATEPOOL and
  by the ESD metric's missing-sub-tree penalty.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Sequence

from repro.xmltree.node import XMLNode


class XMLTree:
    """A node-labeled document tree ``T(V, E)`` (paper Section 2)."""

    def __init__(self, root: XMLNode) -> None:
        if root is None:
            raise ValueError("XMLTree requires a root node")
        self.root = root
        self._nodes: List[XMLNode] = []
        self._pre: List[int] = []
        self._post: List[int] = []
        self._depth_below: List[int] = []
        self._level: List[int] = []
        self._label_index: Dict[str, List[int]] = {}
        self.reindex()

    # ------------------------------------------------------------------
    # Index construction
    # ------------------------------------------------------------------

    def reindex(self) -> None:
        """(Re)assign oids in pre-order and rebuild all structural indexes.

        Must be called after any structural mutation of the tree; all
        factory functions in this package call it automatically.
        """
        nodes: List[XMLNode] = []
        for node in self.root.iter_preorder():
            node.oid = len(nodes)
            nodes.append(node)
        self._nodes = nodes

        n = len(nodes)
        self._pre = list(range(n))
        post = [0] * n
        for counter, node in enumerate(self.root.iter_postorder()):
            post[node.oid] = counter
        self._post = post

        depth_below = [0] * n
        for node in self.root.iter_postorder():
            if node.children:
                depth_below[node.oid] = 1 + max(
                    depth_below[c.oid] for c in node.children
                )
        self._depth_below = depth_below

        level = [0] * n
        for node in nodes:
            if node.parent is not None:
                level[node.oid] = level[node.parent.oid] + 1
        self._level = level

        label_index: Dict[str, List[int]] = {}
        for node in nodes:
            label_index.setdefault(node.label, []).append(node.oid)
        self._label_index = label_index

    # ------------------------------------------------------------------
    # Basic accessors
    # ------------------------------------------------------------------

    def __len__(self) -> int:
        return len(self._nodes)

    def __iter__(self) -> Iterator[XMLNode]:
        return iter(self._nodes)

    def node(self, oid: int) -> XMLNode:
        """Return the node with the given pre-order oid."""
        return self._nodes[oid]

    @property
    def nodes(self) -> Sequence[XMLNode]:
        """All nodes in pre-order."""
        return self._nodes

    @property
    def labels(self) -> List[str]:
        """Sorted list of distinct labels in the document."""
        return sorted(self._label_index)

    def nodes_with_label(self, label: str) -> List[XMLNode]:
        """All nodes with a given label, in document order."""
        return [self._nodes[oid] for oid in self._label_index.get(label, [])]

    def oids_with_label(self, label: str) -> List[int]:
        """Pre-order oids of all nodes with a given label (sorted)."""
        return self._label_index.get(label, [])

    def depth_below(self, node: XMLNode) -> int:
        """Longest downward path from ``node`` to a leaf (paper's depth)."""
        return self._depth_below[node.oid]

    def level(self, node: XMLNode) -> int:
        """Distance from the root (the root has level 0)."""
        return self._level[node.oid]

    @property
    def height(self) -> int:
        """Height of the document: the root's depth-below value."""
        return self._depth_below[self.root.oid] if self._nodes else 0

    # ------------------------------------------------------------------
    # Structural predicates
    # ------------------------------------------------------------------

    def is_ancestor(self, anc: XMLNode, desc: XMLNode) -> bool:
        """True iff ``anc`` is a proper ancestor of ``desc``.

        Uses the Euler interval property: ``anc`` is an ancestor of ``desc``
        iff ``pre(anc) < pre(desc)`` and ``post(anc) > post(desc)``.
        """
        return (
            self._pre[anc.oid] < self._pre[desc.oid]
            and self._post[anc.oid] > self._post[desc.oid]
        )

    def descendant_oid_range(self, node: XMLNode) -> range:
        """Pre-order oid range covering ``node``'s proper descendants.

        Because oids are assigned in pre-order, the descendants of a node
        occupy a contiguous oid interval starting right after the node.
        """
        return range(node.oid + 1, node.oid + 1 + self._subtree_span(node))

    def _subtree_span(self, node: XMLNode) -> int:
        """Number of proper descendants of ``node``."""
        # In pre-order, the subtree of ``node`` is exactly the oids
        # [node.oid, node.oid + size).  We recover size from the post-order
        # rank: a subtree of size s rooted at pre-order position p has its
        # last pre-order member at p + s - 1.  Rather than store sizes we
        # walk the rightmost spine; cheaper: compute from post index.
        # post rank counts nodes finished before node, which equals
        # (descendants of node) + (nodes wholly before node).  Deriving span
        # directly: span = post[node] - (pre[node] - level[node] adjustments)
        # is fiddly, so we store nothing and compute by scanning is O(s).
        # Instead use the classic identity: size = post[v] - pre[v] + level[v] + 1.
        size = self._post[node.oid] - self._pre[node.oid] + self._level[node.oid] + 1
        return size - 1

    def subtree_size(self, node: XMLNode) -> int:
        """Number of nodes in the sub-tree rooted at ``node``."""
        return self._subtree_span(node) + 1

    # ------------------------------------------------------------------
    # Convenience constructors
    # ------------------------------------------------------------------

    @staticmethod
    def from_nested(spec) -> "XMLTree":
        """Build a tree from a nested ``(label, [children...])`` spec.

        A spec is either a plain string label (a leaf) or a tuple/list
        ``(label, [child_spec, ...])``.  Handy for tests and examples::

            XMLTree.from_nested(("r", ["a", ("b", ["c", "c"])]))
        """
        root = _build_nested(spec)
        return XMLTree(root)

    def copy(self) -> "XMLTree":
        """Deep-copy the tree (fresh nodes, fresh indexes)."""
        mapping: Dict[int, XMLNode] = {}
        new_root: Optional[XMLNode] = None
        for node in self.root.iter_preorder():
            clone = XMLNode(node.label)
            mapping[id(node)] = clone
            if node.parent is None:
                new_root = clone
            else:
                mapping[id(node.parent)].add_child(clone)
        assert new_root is not None
        return XMLTree(new_root)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"XMLTree(root={self.root.label!r}, nodes={len(self)})"


def _build_nested(spec) -> XMLNode:
    if isinstance(spec, str):
        return XMLNode(spec)
    label, children = spec
    node = XMLNode(label)
    for child_spec in children:
        node.add_child(_build_nested(child_spec))
    return node
