"""Node-labeled XML tree substrate.

This package implements the paper's data model (Section 2): an XML document
is a large node-labeled tree ``T(V, E)``; each node carries a unique object
identifier (oid) and a string label (tag).  The package provides:

* :class:`~repro.xmltree.node.XMLNode` -- a single element node.
* :class:`~repro.xmltree.tree.XMLTree` -- the document tree, with pre-order
  oids, label indexes, Euler (pre/post) intervals for fast
  ancestor/descendant tests, and structural statistics.
* :mod:`~repro.xmltree.parser` -- parsing from XML text (via the stdlib
  ``xml.etree.ElementTree``) and from a compact native text form.
* :mod:`~repro.xmltree.serialize` -- serialization back to XML text and to
  the native form.
* :mod:`~repro.xmltree.stats` -- structural statistics (fan-out
  distributions, label histograms, depth profiles) used by the experiment
  harness.
"""

from repro.xmltree.node import XMLNode
from repro.xmltree.tree import XMLTree
from repro.xmltree.parser import parse_xml, parse_compact, from_etree
from repro.xmltree.serialize import to_xml, to_compact, to_etree
from repro.xmltree.stats import TreeStats, compute_stats

__all__ = [
    "XMLNode",
    "XMLTree",
    "parse_xml",
    "parse_compact",
    "from_etree",
    "to_xml",
    "to_compact",
    "to_etree",
    "TreeStats",
    "compute_stats",
]
