"""Parsing XML documents into :class:`~repro.xmltree.tree.XMLTree`.

Two input forms are supported:

* standard XML text, parsed with the stdlib ``xml.etree.ElementTree``
  (value content and attributes are dropped -- the paper and this library
  model only the label structure);
* a *compact* native form, one node per line as ``<indent><label>``, which
  is convenient for fixtures and is what :func:`repro.xmltree.serialize.to_compact`
  emits.
"""

from __future__ import annotations

import xml.etree.ElementTree as ET
from typing import List

from repro.xmltree.node import XMLNode
from repro.xmltree.tree import XMLTree


def parse_xml(text: str, keep_values: bool = False) -> XMLTree:
    """Parse XML text into an :class:`XMLTree`.

    Attributes, comments, and processing instructions are discarded;
    element tags become node labels.  With ``keep_values=True`` the
    stripped text of *leaf* elements is retained as ``node.value`` (used
    by the :mod:`repro.values` extension); otherwise all text is dropped,
    matching the paper's structural scope.  Namespace-qualified tags keep
    their ``{uri}local`` form as produced by ElementTree.
    """
    elem = ET.fromstring(text)
    return from_etree(elem, keep_values=keep_values)


def parse_xml_file(path: str, keep_values: bool = False) -> XMLTree:
    """Parse an XML file on disk into an :class:`XMLTree`."""
    elem = ET.parse(path).getroot()
    return from_etree(elem, keep_values=keep_values)


def from_etree(elem: ET.Element, keep_values: bool = False) -> XMLTree:
    """Convert an ``xml.etree`` Element (and its sub-tree) to an XMLTree."""
    root = XMLNode(elem.tag)
    stack: List[tuple] = [(elem, root)]
    while stack:
        src, dst = stack.pop()
        if keep_values and len(src) == 0 and src.text and src.text.strip():
            dst.value = src.text.strip()
        for child in src:
            node = dst.new_child(child.tag)
            stack.append((child, node))
    return XMLTree(root)


def parse_compact(text: str) -> XMLTree:
    """Parse the compact one-node-per-line form.

    Each non-empty line is ``<spaces><label>``; the number of leading spaces
    is the node's level (any consistent indent step works, including 1).
    Example::

        r
         a
          b
         a
    """
    root: XMLNode | None = None
    # Stack of (indent, node) for the current root-to-cursor path.
    stack: List[tuple] = []
    for lineno, raw in enumerate(text.splitlines(), start=1):
        if not raw.strip():
            continue
        indent = len(raw) - len(raw.lstrip(" "))
        label = raw.strip()
        node = XMLNode(label)
        if root is None:
            if indent != 0:
                raise ValueError(f"line {lineno}: first node must have no indent")
            root = node
            stack = [(0, node)]
            continue
        while stack and stack[-1][0] >= indent:
            stack.pop()
        if not stack:
            raise ValueError(f"line {lineno}: multiple roots in compact input")
        stack[-1][1].add_child(node)
        stack.append((indent, node))
    if root is None:
        raise ValueError("empty compact input")
    return XMLTree(root)
