"""A single node of a node-labeled XML tree."""

from __future__ import annotations

from typing import Iterator, List, Optional


class XMLNode:
    """One element node of an XML document tree.

    Nodes follow the paper's data model: a unique object identifier
    (:attr:`oid`, assigned in document pre-order by :class:`XMLTree`), a
    string :attr:`label` (the element tag), an ordered list of
    :attr:`children`, and a :attr:`parent` pointer (``None`` for the root).

    The paper's algorithms are purely structural; the optional
    :attr:`value` (leaf text content) exists for the library's value
    extension (:mod:`repro.values`, the paper's declared future work) and
    is ignored by everything structural.
    """

    __slots__ = ("oid", "label", "parent", "children", "value")

    def __init__(
        self,
        label: str,
        parent: Optional["XMLNode"] = None,
        value: Optional[str] = None,
    ) -> None:
        self.oid: int = -1  # assigned by XMLTree.reindex()
        self.label = label
        self.parent = parent
        self.children: List["XMLNode"] = []
        self.value = value

    def add_child(self, child: "XMLNode") -> "XMLNode":
        """Append ``child`` under this node and return it."""
        child.parent = self
        self.children.append(child)
        return child

    def new_child(self, label: str) -> "XMLNode":
        """Create, attach, and return a new child with the given label."""
        return self.add_child(XMLNode(label))

    @property
    def is_leaf(self) -> bool:
        return not self.children

    @property
    def is_root(self) -> bool:
        return self.parent is None

    def iter_preorder(self) -> Iterator["XMLNode"]:
        """Yield this node and all descendants in document (pre-) order.

        Iterative to survive very deep documents without exhausting the
        Python recursion limit.
        """
        stack = [self]
        while stack:
            node = stack.pop()
            yield node
            # Reversed so children are visited left-to-right.
            stack.extend(reversed(node.children))

    def iter_postorder(self) -> Iterator["XMLNode"]:
        """Yield all descendants and this node in post-order (children first)."""
        # Two-stack trick: push in pre-order with children reversed, then
        # reverse the output order.
        out: List[XMLNode] = []
        stack = [self]
        while stack:
            node = stack.pop()
            out.append(node)
            stack.extend(node.children)
        return reversed(out)

    def subtree_size(self) -> int:
        """Number of nodes in the sub-tree rooted here (including itself)."""
        return sum(1 for _ in self.iter_preorder())

    def depth_below(self) -> int:
        """Longest path to a leaf descendant (0 for a leaf).

        This is the paper's notion of element *depth* used by CREATEPOOL
        (Section 4.2): ``depth(e) = 0`` if ``e`` is a leaf, else
        ``1 + max(depth(child))``.
        """
        depth = {}
        for node in self.iter_postorder():
            if node.children:
                depth[id(node)] = 1 + max(depth[id(c)] for c in node.children)
            else:
                depth[id(node)] = 0
            # Free child entries we no longer need to bound memory.
        return depth[id(self)]

    def path_from_root(self) -> List[str]:
        """Label path from the document root down to this node (inclusive)."""
        labels: List[str] = []
        node: Optional[XMLNode] = self
        while node is not None:
            labels.append(node.label)
            node = node.parent
        labels.reverse()
        return labels

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"XMLNode(oid={self.oid}, label={self.label!r}, children={len(self.children)})"
