"""Serializing :class:`~repro.xmltree.tree.XMLTree` back to text forms."""

from __future__ import annotations

import xml.etree.ElementTree as ET
from typing import List

from repro.xmltree.tree import XMLTree


def to_etree(tree: XMLTree) -> ET.Element:
    """Convert an XMLTree to an ``xml.etree`` Element tree.

    Leaf values (if the tree carries any, see the values extension) are
    emitted as text content.
    """
    root = ET.Element(tree.root.label)
    if tree.root.value is not None:
        root.text = tree.root.value
    stack: List[tuple] = [(tree.root, root)]
    while stack:
        src, dst = stack.pop()
        for child in src.children:
            sub = ET.SubElement(dst, child.label)
            if child.value is not None:
                sub.text = child.value
            stack.append((child, sub))
    return root


def to_xml(tree: XMLTree) -> str:
    """Serialize to XML text (no declaration, UTF-8 safe labels assumed)."""
    return ET.tostring(to_etree(tree), encoding="unicode")


def to_compact(tree: XMLTree, indent: int = 1) -> str:
    """Serialize to the compact one-node-per-line form.

    The inverse of :func:`repro.xmltree.parser.parse_compact` (up to the
    indent step size).
    """
    lines: List[str] = []
    stack: List[tuple] = [(tree.root, 0)]
    while stack:
        node, level = stack.pop()
        lines.append(" " * (indent * level) + node.label)
        for child in reversed(node.children):
            stack.append((child, level + 1))
    return "\n".join(lines)


def xml_byte_size(tree: XMLTree) -> int:
    """Size in bytes of the document serialized as XML text.

    Used by the experiment harness for the paper's Table 1 "File Size"
    column.
    """
    return len(to_xml(tree).encode("utf-8"))
