"""Synthetic stand-ins for the paper's four data sets (Table 1).

Each generator mimics the structural signature of its namesake:

* **IMDB** -- movie/person records with strongly bimodal cast sizes and
  per-actor structural variety (role/credit combinations), giving
  heterogeneous fan-out at two adjacent levels.
* **XMark** -- the auction-site DTD skeleton: regions/items with recursive
  ``parlist`` descriptions, people with optional profiles, open auctions
  with bidder chains (recursion + the most path diversity; the paper's
  hardest data set, with the largest stable summary relative to size).
* **SwissProt** -- protein entries carrying many repeated ``ref``/
  ``feature`` groups whose multiplicities correlate within an entry (wide
  fan-out, heavy multiplicity skew).
* **DBLP** -- a flat, regular bibliography with variety only in author
  lists and optional fields (the easiest data set to summarize, as in the
  paper, with the smallest stable summary relative to size).

The paper's key structural property -- that the minimal count-stable
summary is 1-5% of the document and meaningfully larger than the 10-50KB
synopsis budgets -- is what the experiments exercise, so the generators
put structural variability at *adjacent* levels (signature diversity
composes multiplicatively up the tree).  ``scale=1.0`` targets tens of
thousands of elements so the full suite runs in minutes; every generator
is deterministic per (scale, seed).
"""

from __future__ import annotations

from typing import Callable, Dict

from repro.datagen.synthetic import (
    Choice,
    Fixed,
    Geometric,
    LabelSchema,
    SchemaGenerator,
    Uniform,
    Zipf,
    profile,
)
from repro.xmltree.tree import XMLTree


def imdb_like(scale: float = 1.0, seed: int = 1) -> XMLTree:
    """IMDB-like movie database (default ~7k elements at scale 1)."""
    movies = max(1, int(300 * scale))
    people = max(1, int(140 * scale))
    schema = {
        "imdb": LabelSchema((
            profile(1.0, ("movie", Fixed(movies)), ("person", Fixed(people))),
        )),
        "movie": LabelSchema((
            # Mainstream production: large cast, several genres, awards.
            profile(
                0.45,
                ("title", Fixed(1)),
                ("year", Fixed(1)),
                ("genre", Uniform(2, 5)),
                ("cast", Fixed(1)),
                ("award", Choice((0, 1, 2, 3), (0.45, 0.3, 0.15, 0.1))),
                ("release", Uniform(1, 2)),
                ("review", Zipf(0, 4, alpha=1.3)),
            ),
            # Indie production: tiny cast, one genre, rarely awarded.
            profile(
                0.35,
                ("title", Fixed(1)),
                ("year", Fixed(1)),
                ("genre", Uniform(1, 2)),
                ("cast", Fixed(1)),
                ("award", Choice((0, 1), (0.9, 0.1))),
                ("review", Choice((0, 1, 2), (0.5, 0.3, 0.2))),
            ),
            # TV episode: no cast element at all, episode metadata instead.
            profile(
                0.20,
                ("title", Fixed(1)),
                ("year", Fixed(1)),
                ("episode", Uniform(1, 3)),
                ("genre", Fixed(1)),
            ),
        )),
        # Casts combine credited actors (with a role) and uncredited ones;
        # the per-cast (credited, uncredited) count pair ranges over a
        # small grid, so casts cluster into a moderate number of genuinely
        # similar sub-structures -- the paper's "intrinsic sub-structure
        # similarity" premise (high-entropy per-cast noise would instead
        # be unclusterable by *any* structural summary).
        "cast": LabelSchema((
            profile(
                0.5,
                ("actor", Uniform(1, 3)),       # credited leads
                ("extra", Uniform(4, 9)),       # uncredited
                ("director", Fixed(1)),
            ),
            profile(
                0.5,
                ("actor", Fixed(1)),
                ("extra", Uniform(0, 3)),
                ("director", Fixed(1)),
            ),
        )),
        "actor": LabelSchema((
            profile(1.0, ("name", Fixed(1)), ("role", Fixed(1))),
        )),
        "extra": LabelSchema((profile(1.0, ("name", Fixed(1))),)),
        "director": LabelSchema((
            profile(0.7, ("name", Fixed(1))),
            profile(0.3, ("name", Fixed(1)), ("credit", Uniform(1, 2))),
        )),
        "person": LabelSchema((
            profile(0.6, ("name", Fixed(1)), ("filmography", Fixed(1))),
            profile(0.4, ("name", Fixed(1))),
        )),
        "filmography": LabelSchema((
            profile(1.0, ("entry", Zipf(1, 15, alpha=1.2))),
        )),
        "entry": LabelSchema((
            profile(0.8, ("title", Fixed(1))),
            profile(0.2, ("title", Fixed(1)), ("year", Fixed(1))),
        )),
        "award": LabelSchema((
            profile(0.7, ("category", Fixed(1))),
            profile(0.3, ("category", Fixed(1)), ("year", Fixed(1))),
        )),
        "release": LabelSchema((
            profile(0.8, ("region", Fixed(1)), ("date", Fixed(1))),
            profile(0.2, ("region", Fixed(1))),
        )),
        "review": LabelSchema((
            profile(0.6, ("rating", Fixed(1))),
            profile(0.4, ("rating", Fixed(1)), ("text", Fixed(1))),
        )),
        "episode": LabelSchema((profile(1.0, ("title", Fixed(1))),)),
    }
    return SchemaGenerator("imdb", schema).generate(seed)


def xmark_like(scale: float = 1.0, seed: int = 2) -> XMLTree:
    """XMark-like auction site with recursive parlist descriptions."""
    items = max(4, int(130 * scale))
    persons = max(1, int(100 * scale))
    auctions = max(1, int(80 * scale))
    schema = {
        "site": LabelSchema((
            profile(
                1.0,
                ("regions", Fixed(1)),
                ("people", Fixed(1)),
                ("open_auctions", Fixed(1)),
                ("closed_auctions", Fixed(1)),
            ),
        )),
        "regions": LabelSchema((
            profile(
                1.0,
                ("africa", Fixed(1)),
                ("asia", Fixed(1)),
                ("europe", Fixed(1)),
                ("namerica", Fixed(1)),
            ),
        )),
        "africa": LabelSchema((profile(1.0, ("item", Fixed(max(1, items // 10)))),)),
        "asia": LabelSchema((profile(1.0, ("item", Fixed(max(1, items // 5)))),)),
        "europe": LabelSchema((profile(1.0, ("item", Fixed(max(1, items // 3)))),)),
        "namerica": LabelSchema((profile(1.0, ("item", Fixed(max(1, items // 3)))),)),
        "item": LabelSchema((
            profile(
                0.6,
                ("location", Fixed(1)),
                ("name", Fixed(1)),
                ("payment", Fixed(1)),
                ("description", Fixed(1)),
                ("shipping", Fixed(1)),
                ("incategory", Uniform(1, 6)),
            ),
            profile(
                0.4,
                ("location", Fixed(1)),
                ("name", Fixed(1)),
                ("description", Fixed(1)),
                ("mailbox", Fixed(1)),
                ("incategory", Uniform(1, 3)),
            ),
        )),
        "description": LabelSchema((
            profile(0.5, ("text", Fixed(1))),
            profile(0.5, ("parlist", Fixed(1))),
        )),
        "parlist": LabelSchema((
            profile(1.0, ("listitem", Uniform(1, 5))),
        )),
        "listitem": LabelSchema((
            profile(0.55, ("text", Uniform(1, 3))),
            profile(0.3, ("parlist", Fixed(1))),  # recursion
            profile(0.15, ("text", Fixed(1)), ("keyword", Uniform(1, 2))),
        )),
        # XMark text carries markup children (bold/keyword/emph), which is
        # where much of the real data set's path diversity lives.
        "text": LabelSchema((
            profile(0.55,),
            profile(0.25, ("bold", Uniform(1, 2))),
            profile(0.12, ("keyword", Fixed(1)), ("emph", Uniform(0, 2))),
            profile(0.08, ("bold", Fixed(1)), ("keyword", Uniform(1, 3))),
        )),
        "mailbox": LabelSchema((profile(1.0, ("mail", Uniform(0, 4))),)),
        "mail": LabelSchema((
            profile(0.7, ("from", Fixed(1)), ("to", Fixed(1)), ("text", Fixed(1))),
            profile(0.3, ("from", Fixed(1)), ("to", Fixed(1)), ("text", Uniform(2, 4))),
        )),
        "people": LabelSchema((profile(1.0, ("person", Fixed(persons))),)),
        "person": LabelSchema((
            profile(
                0.5,
                ("name", Fixed(1)),
                ("emailaddress", Fixed(1)),
                ("profile", Fixed(1)),
                ("watches", Fixed(1)),
            ),
            profile(0.3, ("name", Fixed(1)), ("emailaddress", Fixed(1))),
            profile(
                0.2,
                ("name", Fixed(1)),
                ("emailaddress", Fixed(1)),
                ("phone", Fixed(1)),
                ("watches", Fixed(1)),
            ),
        )),
        "profile": LabelSchema((
            profile(
                1.0,
                ("interest", Zipf(0, 6, alpha=1.3)),
                ("education", Choice((0, 1), (0.6, 0.4))),
                ("business", Choice((0, 1), (0.5, 0.5))),
            ),
        )),
        "watches": LabelSchema((profile(1.0, ("watch", Geometric(0.6, cap=10))),)),
        "watch": LabelSchema((
            profile(0.8, ("open_auction_ref", Fixed(1))),
            profile(0.2, ("open_auction_ref", Fixed(1)), ("note", Fixed(1))),
        )),
        "open_auctions": LabelSchema((profile(1.0, ("open_auction", Fixed(auctions))),)),
        "open_auction": LabelSchema((
            profile(
                0.65,
                ("initial", Fixed(1)),
                ("bidder", Geometric(0.72, cap=14)),
                ("current", Fixed(1)),
                ("itemref", Fixed(1)),
                ("annotation", Choice((0, 1), (0.4, 0.6))),
            ),
            profile(
                0.35,
                ("initial", Fixed(1)),
                ("itemref", Fixed(1)),
            ),
        )),
        "bidder": LabelSchema((
            profile(0.65, ("date", Fixed(1)), ("personref", Fixed(1)), ("increase", Fixed(1))),
            profile(0.25, ("date", Fixed(1)), ("personref", Fixed(1))),
            profile(0.10, ("date", Fixed(1)), ("personref", Fixed(1)), ("increase", Uniform(2, 3))),
        )),
        "annotation": LabelSchema((
            profile(1.0, ("description", Fixed(1)), ("happiness", Fixed(1))),
        )),
        "closed_auctions": LabelSchema((
            profile(1.0, ("closed_auction", Fixed(max(1, auctions // 2)))),
        )),
        "closed_auction": LabelSchema((
            profile(
                0.7,
                ("seller", Fixed(1)),
                ("buyer", Fixed(1)),
                ("itemref", Fixed(1)),
                ("price", Fixed(1)),
            ),
            profile(
                0.3,
                ("seller", Fixed(1)),
                ("buyer", Fixed(1)),
                ("itemref", Fixed(1)),
                ("price", Fixed(1)),
                ("annotation", Fixed(1)),
            ),
        )),
    }
    return SchemaGenerator("site", schema, recursion_decay=0.5, max_depth=18).generate(seed)


def sprot_like(scale: float = 1.0, seed: int = 3) -> XMLTree:
    """SwissProt-like protein annotation database."""
    entries = max(1, int(170 * scale))
    schema = {
        "sprot": LabelSchema((profile(1.0, ("entry", Fixed(entries))),)),
        "entry": LabelSchema((
            # Heavily-annotated entry: many refs and features together.
            profile(
                0.35,
                ("protein", Fixed(1)),
                ("organism", Fixed(1)),
                ("ref", Uniform(4, 10)),
                ("feature", Uniform(6, 16)),
                ("keyword", Uniform(3, 7)),
            ),
            # Lightly-annotated entry: few of both.
            profile(
                0.5,
                ("protein", Fixed(1)),
                ("organism", Fixed(1)),
                ("ref", Uniform(1, 3)),
                ("feature", Uniform(0, 4)),
                ("keyword", Uniform(0, 2)),
            ),
            # Fragment entry: no features.
            profile(
                0.15,
                ("protein", Fixed(1)),
                ("organism", Fixed(1)),
                ("ref", Uniform(1, 2)),
            ),
        )),
        "protein": LabelSchema((
            profile(0.8, ("name", Uniform(1, 2))),
            profile(0.2, ("name", Fixed(1)), ("domain", Uniform(1, 3))),
        )),
        "organism": LabelSchema((
            profile(0.8, ("name", Fixed(1)), ("lineage", Fixed(1))),
            profile(0.2, ("name", Fixed(1))),
        )),
        "lineage": LabelSchema((profile(1.0, ("taxon", Uniform(3, 9))),)),
        "ref": LabelSchema((
            profile(0.6, ("citation", Fixed(1)), ("author", Uniform(2, 9))),
            profile(
                0.4,
                ("citation", Fixed(1)),
                ("author", Uniform(1, 4)),
                ("comment", Uniform(1, 2)),
            ),
        )),
        "feature": LabelSchema((
            profile(0.55, ("ftype", Fixed(1)), ("location", Fixed(1))),
            profile(0.45, ("ftype", Fixed(1)), ("location", Fixed(1)), ("evidence", Fixed(1))),
        )),
        "location": LabelSchema((
            profile(0.85, ("begin", Fixed(1)), ("end", Fixed(1))),
            profile(0.15, ("position", Fixed(1))),
        )),
    }
    return SchemaGenerator("sprot", schema).generate(seed)


def dblp_like(scale: float = 1.0, seed: int = 4) -> XMLTree:
    """DBLP-like bibliography: flat and regular."""
    articles = max(1, int(430 * scale))
    inproc = max(1, int(540 * scale))
    schema = {
        "dblp": LabelSchema((
            profile(
                1.0,
                ("article", Fixed(articles)),
                ("inproceedings", Fixed(inproc)),
                ("proceedings", Fixed(max(1, int(28 * scale)))),
            ),
        )),
        "article": LabelSchema((
            profile(
                0.6,
                ("author", Zipf(1, 18, alpha=1.25)),
                ("title", Fixed(1)),
                ("journal", Fixed(1)),
                ("year", Fixed(1)),
                ("pages", Fixed(1)),
                ("volume", Choice((0, 1), (0.3, 0.7))),
            ),
            profile(
                0.3,
                ("author", Zipf(1, 18, alpha=1.25)),
                ("title", Fixed(1)),
                ("journal", Fixed(1)),
                ("year", Fixed(1)),
                ("ee", Uniform(1, 2)),
                ("number", Choice((0, 1), (0.5, 0.5))),
            ),
            profile(
                0.1,
                ("author", Zipf(1, 10, alpha=1.3)),
                ("title", Fixed(1)),
                ("journal", Fixed(1)),
                ("year", Fixed(1)),
                ("cite", Zipf(1, 15, alpha=1.05)),
            ),
        )),
        "inproceedings": LabelSchema((
            profile(
                0.55,
                ("author", Zipf(1, 20, alpha=1.2)),
                ("title", Fixed(1)),
                ("booktitle", Fixed(1)),
                ("year", Fixed(1)),
                ("pages", Fixed(1)),
            ),
            profile(
                0.35,
                ("author", Zipf(1, 20, alpha=1.2)),
                ("title", Fixed(1)),
                ("booktitle", Fixed(1)),
                ("year", Fixed(1)),
                ("crossref", Fixed(1)),
                ("ee", Choice((0, 1, 2), (0.4, 0.4, 0.2))),
            ),
            profile(
                0.1,
                ("author", Zipf(1, 12, alpha=1.2)),
                ("title", Fixed(1)),
                ("booktitle", Fixed(1)),
                ("year", Fixed(1)),
                ("cite", Zipf(1, 14, alpha=1.05)),
            ),
        )),
        "cite": LabelSchema((
            profile(0.8,),
            profile(0.2, ("label", Fixed(1))),
        )),
        "proceedings": LabelSchema((
            profile(
                1.0,
                ("editor", Uniform(1, 4)),
                ("title", Fixed(1)),
                ("booktitle", Fixed(1)),
                ("year", Fixed(1)),
                ("publisher", Fixed(1)),
                ("isbn", Fixed(1)),
            ),
        )),
    }
    return SchemaGenerator("dblp", schema).generate(seed)


# Name -> generator, mirroring the paper's Table 1 groupings.  The "TX"
# variants are the documents used for the head-to-head against
# twig-XSketches; the plain variants are the larger scaling data sets.
TX_DATASETS: Dict[str, Callable[[], XMLTree]] = {
    "IMDB-TX": lambda: imdb_like(scale=8.0, seed=11),
    "XMark-TX": lambda: xmark_like(scale=8.0, seed=12),
    "SProt-TX": lambda: sprot_like(scale=7.0, seed=13),
}

DATASETS: Dict[str, Callable[[], XMLTree]] = {
    "IMDB": lambda: imdb_like(scale=18.0, seed=21),
    "XMark": lambda: xmark_like(scale=40.0, seed=22),
    "SProt": lambda: sprot_like(scale=14.0, seed=23),
    "DBLP": lambda: dblp_like(scale=25.0, seed=24),
}
