"""Synthetic XML data sets.

The paper evaluates on IMDB, XMark, SwissProt, and DBLP documents that are
not redistributable; :mod:`repro.datagen.datasets` generates seeded
synthetic stand-ins that mimic each data set's structural signature (label
alphabet, fan-out skew, recursion, and the sub-structure clustering /
sibling-count correlations the synopses compete on).  See DESIGN.md for the
substitution rationale.  :mod:`repro.datagen.synthetic` is the generic
schema-driven generator they are built on.
"""

from repro.datagen.synthetic import (
    Fixed,
    Uniform,
    Geometric,
    Zipf,
    Choice,
    ChildSpec,
    Profile,
    LabelSchema,
    SchemaGenerator,
)
from repro.datagen.datasets import (
    imdb_like,
    xmark_like,
    sprot_like,
    dblp_like,
    DATASETS,
    TX_DATASETS,
)

__all__ = [
    "Fixed",
    "Uniform",
    "Geometric",
    "Zipf",
    "Choice",
    "ChildSpec",
    "Profile",
    "LabelSchema",
    "SchemaGenerator",
    "imdb_like",
    "xmark_like",
    "sprot_like",
    "dblp_like",
    "DATASETS",
    "TX_DATASETS",
]
