"""Generic schema-driven synthetic XML generation.

A schema maps each label to a :class:`LabelSchema`: a weighted set of
*profiles*, each listing child specs (child label + count distribution).
Profiles are the source of the structural clustering real XML exhibits --
all elements drawn from one profile have similar sub-trees (what TreeSketch
clusters exploit), while distinct profiles under the same tag create the
correlations that summaries relying on independence assumptions miss.

Recursive schemas (a label reachable from itself, like XMark's ``parlist``)
are supported; the generator decays recursion with a per-level depth factor
and hard-caps the tree depth.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.xmltree.node import XMLNode
from repro.xmltree.tree import XMLTree


class Distribution:
    """A non-negative integer count distribution."""

    def sample(self, rng: random.Random) -> int:
        raise NotImplementedError

    def mean(self) -> float:
        raise NotImplementedError


@dataclass(frozen=True)
class Fixed(Distribution):
    """Always ``value``."""

    value: int

    def sample(self, rng: random.Random) -> int:
        return self.value

    def mean(self) -> float:
        return float(self.value)


@dataclass(frozen=True)
class Uniform(Distribution):
    """Uniform integer in [low, high]."""

    low: int
    high: int

    def sample(self, rng: random.Random) -> int:
        return rng.randint(self.low, self.high)

    def mean(self) -> float:
        return (self.low + self.high) / 2.0


@dataclass(frozen=True)
class Geometric(Distribution):
    """Geometric-ish count: number of successes before failure, capped."""

    p: float
    cap: int = 20

    def sample(self, rng: random.Random) -> int:
        count = 0
        while count < self.cap and rng.random() < self.p:
            count += 1
        return count

    def mean(self) -> float:
        # Mean of the uncapped geometric; close enough for reporting.
        return self.p / (1.0 - self.p)


@dataclass(frozen=True)
class Zipf(Distribution):
    """Zipf-skewed count over {low, .., high} (rank-1 most likely)."""

    low: int
    high: int
    alpha: float = 1.5

    def sample(self, rng: random.Random) -> int:
        n = self.high - self.low + 1
        weights = [1.0 / (rank ** self.alpha) for rank in range(1, n + 1)]
        total = sum(weights)
        pick = rng.random() * total
        acc = 0.0
        for i, w in enumerate(weights):
            acc += w
            if pick <= acc:
                return self.low + i
        return self.high

    def mean(self) -> float:
        n = self.high - self.low + 1
        weights = [1.0 / (rank ** self.alpha) for rank in range(1, n + 1)]
        total = sum(weights)
        return sum((self.low + i) * w for i, w in enumerate(weights)) / total


@dataclass(frozen=True)
class Choice(Distribution):
    """Explicit categorical distribution over counts."""

    values: Tuple[int, ...]
    weights: Tuple[float, ...]

    def sample(self, rng: random.Random) -> int:
        return rng.choices(self.values, weights=self.weights, k=1)[0]

    def mean(self) -> float:
        total = sum(self.weights)
        return sum(v * w for v, w in zip(self.values, self.weights)) / total


@dataclass(frozen=True)
class ChildSpec:
    """One child slot: label plus its count distribution."""

    label: str
    count: Distribution


@dataclass(frozen=True)
class Profile:
    """One structural variant of a label's elements."""

    weight: float
    children: Tuple[ChildSpec, ...]


@dataclass(frozen=True)
class LabelSchema:
    """All structural variants of one label."""

    profiles: Tuple[Profile, ...]


def profile(weight: float, *children: Tuple[str, Distribution]) -> Profile:
    """Shorthand: ``profile(0.7, ("actor", Uniform(2, 5)), ...)``."""
    return Profile(weight, tuple(ChildSpec(lab, dist) for lab, dist in children))


class SchemaGenerator:
    """Generates documents from a label schema.

    ``recursion_decay`` multiplies recursive child counts by
    ``decay**level`` (probabilistically) so recursive labels terminate;
    ``max_depth`` is a hard cap.
    """

    def __init__(
        self,
        root_label: str,
        schema: Dict[str, LabelSchema],
        recursion_decay: float = 0.55,
        max_depth: int = 16,
    ) -> None:
        self.root_label = root_label
        self.schema = schema
        self.recursion_decay = recursion_decay
        self.max_depth = max_depth
        self._recursive_labels = self._find_recursive_labels()

    def _find_recursive_labels(self) -> set:
        """Labels that can reach themselves through the schema."""
        adjacency: Dict[str, set] = {}
        for label, label_schema in self.schema.items():
            targets = set()
            for prof in label_schema.profiles:
                targets.update(spec.label for spec in prof.children)
            adjacency[label] = targets
        recursive = set()
        for label in adjacency:
            frontier = set(adjacency.get(label, ()))
            seen = set(frontier)
            while frontier:
                nxt = set()
                for lab in frontier:
                    for t in adjacency.get(lab, ()):
                        if t not in seen:
                            seen.add(t)
                            nxt.add(t)
                frontier = nxt
            if label in seen:
                recursive.add(label)
        return recursive

    def generate(self, seed: int = 0) -> XMLTree:
        """Generate one document (deterministic per seed)."""
        rng = random.Random(seed)
        root = XMLNode(self.root_label)
        # Stack entries carry the per-recursive-label nesting count so the
        # decay is relative to recursion level, not absolute depth.
        empty: Dict[str, int] = {}
        stack: List[Tuple[XMLNode, int, Dict[str, int]]] = [(root, 0, empty)]
        while stack:
            node, depth, rec = stack.pop()
            label_schema = self.schema.get(node.label)
            if label_schema is None or depth >= self.max_depth:
                continue
            prof = self._pick_profile(label_schema, rng)
            for spec in prof.children:
                count = spec.count.sample(rng)
                child_rec = rec
                if spec.label in self._recursive_labels:
                    level = rec.get(spec.label, 0)
                    if level:
                        # Thin nested occurrences geometrically per level.
                        count = sum(
                            1
                            for _ in range(count)
                            if rng.random() < self.recursion_decay ** level
                        )
                    if count:
                        child_rec = dict(rec)
                        child_rec[spec.label] = level + 1
                for _ in range(count):
                    child = node.new_child(spec.label)
                    stack.append((child, depth + 1, child_rec))
        return XMLTree(root)

    @staticmethod
    def _pick_profile(label_schema: LabelSchema, rng: random.Random) -> Profile:
        profiles = label_schema.profiles
        if len(profiles) == 1:
            return profiles[0]
        total = sum(p.weight for p in profiles)
        pick = rng.random() * total
        acc = 0.0
        for prof in profiles:
            acc += prof.weight
            if pick <= acc:
                return prof
        return profiles[-1]
