"""Corpus tooling: materialize the benchmark data sets as XML files.

The experiments generate documents in memory; downstream users (and the
``treesketch`` CLI) want files.  ``write_corpus`` materializes any subset
of the named data sets into a directory with a manifest recording the
generator parameters, so a corpus is reproducible and self-describing.
"""

from __future__ import annotations

import json
import os
import time
from typing import Dict, List, Optional, Sequence

from repro.datagen.datasets import DATASETS, TX_DATASETS
from repro.xmltree.serialize import to_xml
from repro.xmltree.stats import compute_stats

MANIFEST_NAME = "corpus.json"


def available_datasets() -> List[str]:
    """Names accepted by :func:`write_corpus`."""
    return list(TX_DATASETS) + list(DATASETS)


def write_corpus(
    directory: str,
    names: Optional[Sequence[str]] = None,
    scale: float = 1.0,
) -> Dict[str, str]:
    """Generate and write data sets as XML files; returns name -> path.

    ``scale`` multiplies each generator's default size (1.0 reproduces the
    benchmark documents).  A ``corpus.json`` manifest with element counts
    and structural statistics is written alongside.
    """
    os.makedirs(directory, exist_ok=True)
    chosen = list(names) if names is not None else available_datasets()
    generators = {**TX_DATASETS, **DATASETS}

    written: Dict[str, str] = {}
    manifest = {
        "generated": time.strftime("%Y-%m-%d %H:%M:%S"),
        "scale": scale,
        "documents": {},
    }
    for name in chosen:
        generator = generators.get(name)
        if generator is None:
            raise KeyError(
                f"unknown data set {name!r}; available: {available_datasets()}"
            )
        tree = generator()
        if scale != 1.0:
            # Re-generate through the underlying function with a scale knob.
            tree = _rescaled(name, scale)
        filename = name.lower().replace("-", "_") + ".xml"
        path = os.path.join(directory, filename)
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(to_xml(tree))
        stats = compute_stats(tree)
        manifest["documents"][name] = {
            "file": filename,
            "elements": stats.num_elements,
            "labels": stats.num_labels,
            "height": stats.height,
        }
        written[name] = path

    with open(os.path.join(directory, MANIFEST_NAME), "w", encoding="utf-8") as handle:
        json.dump(manifest, handle, indent=2)
    return written


def _rescaled(name: str, scale: float):
    from repro.datagen import datasets as ds

    base = {
        "IMDB-TX": (ds.imdb_like, 8.0, 11),
        "XMark-TX": (ds.xmark_like, 8.0, 12),
        "SProt-TX": (ds.sprot_like, 7.0, 13),
        "IMDB": (ds.imdb_like, 18.0, 21),
        "XMark": (ds.xmark_like, 40.0, 22),
        "SProt": (ds.sprot_like, 14.0, 23),
        "DBLP": (ds.dblp_like, 25.0, 24),
    }
    generator, base_scale, seed = base[name]
    return generator(scale=base_scale * scale, seed=seed)


def read_manifest(directory: str) -> Dict:
    """Load a corpus manifest written by :func:`write_corpus`."""
    with open(os.path.join(directory, MANIFEST_NAME), "r", encoding="utf-8") as handle:
        return json.load(handle)
