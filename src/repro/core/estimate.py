"""Twig selectivity estimation over a result sketch (paper Section 4.4).

The estimator performs a single post-order traversal of the result sketch
and computes, for each node, the average number of binding tuples per
element of its extent; the query's estimated selectivity is the value at
the root (whose extent is the single document root).  The recurrence
mirrors the exact binding-tuple DP of :mod:`repro.engine.nesting`: factors
multiply across a variable's child variables, each factor summing
``count(u_Q, v_Q) * t(v_Q)`` over the child bindings, with dashed
(optional) edges clamped at one (the "null" binding).

:func:`estimate_selectivity_batch` runs the same recurrence over many
result sketches at once: every sketch's DP is flattened into shared
index arrays and processed level by level (deepest query variables
first) with numpy scatter ops.  ``np.add.at`` / ``np.multiply.at`` are
unbuffered and apply strictly in array order, and the arrays are emitted
in the scalar estimator's iteration order (edge insertion order within a
child-variable group, query-children order across groups), so the batch
path reproduces the sequential floating-point results.  Without numpy
(or with ``REPRO_NO_NUMPY`` set) it falls back to the scalar estimator
per query.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.core.evaluate import ResultSketch, RSKey
from repro.core.npsupport import get_numpy
from repro.obs import get_metrics, get_tracer
from repro.query.twig import QueryNode


def estimate_selectivity(result: ResultSketch) -> float:
    """Estimated number of binding tuples summarized by ``result``."""
    get_metrics().counter("estimate.calls").inc()
    with get_tracer().span("estimate.selectivity") as span:
        if result.empty:
            return 0.0
        qnode_of: Dict[str, QueryNode] = {n.var: n for n in result.query.nodes}
        memo: Dict[RSKey, float] = {}
        estimate = _tuples_per_element(result, result.root_key, qnode_of, memo)
        span.annotate(estimate=estimate)
        return estimate


def estimate_selectivity_batch(results: Sequence[ResultSketch]) -> List[float]:
    """Estimated binding tuples for many result sketches in one pass.

    Equivalent to ``[estimate_selectivity(r) for r in results]`` but
    amortizes the per-query DP into a handful of vectorized scatter ops
    when numpy is available; the pure-python fallback simply loops the
    scalar estimator.  The vectorized path preserves the scalar path's
    accumulation orders (see the module docstring), so both agree on
    every query.
    """
    results = list(results)
    get_metrics().counter("estimate.batch.calls").inc()
    np = get_numpy()
    if np is None:
        return [estimate_selectivity(r) for r in results]
    get_metrics().counter("estimate.calls").inc(len(results))
    with get_tracer().span(
        "estimate.selectivity_batch", queries=len(results)
    ):
        return _batch_numpy(results, np)


def _batch_numpy(results: Sequence[ResultSketch], np) -> List[float]:
    # Flatten every sketch's DP into shared arrays.  Nodes are levelled
    # by their query variable's depth; result-sketch edges always go from
    # a variable to one of its query children, so processing levels
    # deepest-first makes every child total final before its parents read
    # it.  One group per (node, query child) -- including childless
    # groups, whose subtotal is 0 (or the optional clamp's 1), exactly
    # the scalar estimator's empty-group / no-edges behavior.
    node_depth: List[int] = []
    g_parent: List[int] = []
    g_optional: List[bool] = []
    g_depth: List[int] = []
    e_group: List[int] = []
    e_child: List[int] = []
    e_avg: List[float] = []
    roots: List[Optional[int]] = []
    for result in results:
        if result.empty:
            roots.append(None)
            continue
        qnode_of: Dict[str, QueryNode] = {n.var: n for n in result.query.nodes}
        depth_of_var: Dict[str, int] = {}
        for n in result.query.nodes:  # pre-order: parents first
            depth_of_var[n.var] = (
                0 if n.parent is None else depth_of_var[n.parent.var] + 1
            )
        base = len(node_depth)
        node_index: Dict[RSKey, int] = {}
        for key in result.label:
            node_index[key] = base + len(node_index)
            node_depth.append(depth_of_var[key[1]])
        roots.append(node_index[result.root_key])
        for key, nid in node_index.items():
            qnode = qnode_of[key[1]]
            if not qnode.children:
                continue
            edges = result.out.get(key, {})
            d = node_depth[nid]
            for qc in qnode.children:
                gid = len(g_parent)
                g_parent.append(nid)
                g_optional.append(qc.optional)
                g_depth.append(d)
                for v_key, avg in edges.items():
                    if v_key[1] == qc.var:
                        e_group.append(gid)
                        e_child.append(node_index[v_key])
                        e_avg.append(avg)

    t = np.ones(len(node_depth))
    if g_parent:
        g_parent_a = np.asarray(g_parent, dtype=np.intp)
        g_opt_a = np.asarray(g_optional, dtype=bool)
        g_depth_a = np.asarray(g_depth, dtype=np.intp)
        e_group_a = np.asarray(e_group, dtype=np.intp)
        e_child_a = np.asarray(e_child, dtype=np.intp)
        e_avg_a = np.asarray(e_avg, dtype=np.float64)
        e_depth_a = g_depth_a[e_group_a] if len(e_group_a) else e_group_a
        sub = np.zeros(len(g_parent))
        for d in range(int(g_depth_a.max()), -1, -1):
            gmask = g_depth_a == d
            if not gmask.any():
                continue
            sub[gmask] = 0.0
            emask = e_depth_a == d
            if len(e_group_a) and emask.any():
                np.add.at(
                    sub,
                    e_group_a[emask],
                    e_avg_a[emask] * t[e_child_a[emask]],
                )
            clamp = gmask & g_opt_a
            sub[clamp] = np.maximum(1.0, sub[clamp])
            np.multiply.at(t, g_parent_a[gmask], sub[gmask])
    return [0.0 if r is None else float(t[r]) for r in roots]


def estimate_bindings(result: ResultSketch) -> Dict[str, float]:
    """Estimated number of *bindings* per query variable.

    A variable's binding count is the expected number of element
    occurrences bound to it (not tuples): occurrence mass propagates from
    the root through the result sketch's average edge counts.  Useful for
    optimizer-style decisions about individual variables; ``q0`` is
    always 1.0.
    """
    occurrences: Dict[RSKey, float] = {result.root_key: 1.0}
    totals: Dict[str, float] = {}
    if result.empty:
        return {n.var: (1.0 if n.var == "q0" else 0.0) for n in result.query.nodes}
    for qnode in result.query.nodes:  # pre-order: parents before children
        for key in result.bind.get(qnode.var, []):
            occ = occurrences.get(key, 0.0)
            totals[qnode.var] = totals.get(qnode.var, 0.0) + occ
            for child_key, avg in result.out.get(key, {}).items():
                occurrences[child_key] = occurrences.get(child_key, 0.0) + occ * avg
    for qnode in result.query.nodes:
        totals.setdefault(qnode.var, 0.0)
    return totals


def _tuples_per_element(
    result: ResultSketch,
    key: RSKey,
    qnode_of: Dict[str, QueryNode],
    memo: Dict[RSKey, float],
) -> float:
    cached = memo.get(key)
    if cached is not None:
        return cached

    qnode = qnode_of[key[1]]
    edges = result.out.get(key, {})
    total = 1.0
    if edges and qnode.children:
        # One pass over the edges, grouped by child variable; insertion
        # order is preserved within each group, so the floating-point
        # summation order matches the per-child filtered scan.
        by_var: Dict[str, list] = {}
        for v_key, avg in edges.items():
            by_var.setdefault(v_key[1], []).append((v_key, avg))
        for qc in qnode.children:
            subtotal = 0.0
            for v_key, avg in by_var.get(qc.var, ()):
                subtotal += avg * _tuples_per_element(result, v_key, qnode_of, memo)
            if qc.optional:
                subtotal = max(1.0, subtotal)
            total *= subtotal
            if total == 0.0:
                break
    else:
        for qc in qnode.children:
            subtotal = 1.0 if qc.optional else 0.0
            total *= subtotal
            if total == 0.0:
                break

    memo[key] = total
    return total
