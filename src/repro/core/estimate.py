"""Twig selectivity estimation over a result sketch (paper Section 4.4).

The estimator performs a single post-order traversal of the result sketch
and computes, for each node, the average number of binding tuples per
element of its extent; the query's estimated selectivity is the value at
the root (whose extent is the single document root).  The recurrence
mirrors the exact binding-tuple DP of :mod:`repro.engine.nesting`: factors
multiply across a variable's child variables, each factor summing
``count(u_Q, v_Q) * t(v_Q)`` over the child bindings, with dashed
(optional) edges clamped at one (the "null" binding).
"""

from __future__ import annotations

from typing import Dict

from repro.core.evaluate import ResultSketch, RSKey
from repro.obs import get_metrics, get_tracer
from repro.query.twig import QueryNode


def estimate_selectivity(result: ResultSketch) -> float:
    """Estimated number of binding tuples summarized by ``result``."""
    get_metrics().counter("estimate.calls").inc()
    with get_tracer().span("estimate.selectivity") as span:
        if result.empty:
            return 0.0
        qnode_of: Dict[str, QueryNode] = {n.var: n for n in result.query.nodes}
        memo: Dict[RSKey, float] = {}
        estimate = _tuples_per_element(result, result.root_key, qnode_of, memo)
        span.annotate(estimate=estimate)
        return estimate


def estimate_bindings(result: ResultSketch) -> Dict[str, float]:
    """Estimated number of *bindings* per query variable.

    A variable's binding count is the expected number of element
    occurrences bound to it (not tuples): occurrence mass propagates from
    the root through the result sketch's average edge counts.  Useful for
    optimizer-style decisions about individual variables; ``q0`` is
    always 1.0.
    """
    occurrences: Dict[RSKey, float] = {result.root_key: 1.0}
    totals: Dict[str, float] = {}
    if result.empty:
        return {n.var: (1.0 if n.var == "q0" else 0.0) for n in result.query.nodes}
    for qnode in result.query.nodes:  # pre-order: parents before children
        for key in result.bind.get(qnode.var, []):
            occ = occurrences.get(key, 0.0)
            totals[qnode.var] = totals.get(qnode.var, 0.0) + occ
            for child_key, avg in result.out.get(key, {}).items():
                occurrences[child_key] = occurrences.get(child_key, 0.0) + occ * avg
    for qnode in result.query.nodes:
        totals.setdefault(qnode.var, 0.0)
    return totals


def _tuples_per_element(
    result: ResultSketch,
    key: RSKey,
    qnode_of: Dict[str, QueryNode],
    memo: Dict[RSKey, float],
) -> float:
    cached = memo.get(key)
    if cached is not None:
        return cached

    qnode = qnode_of[key[1]]
    edges = result.out.get(key, {})
    total = 1.0
    if edges and qnode.children:
        # One pass over the edges, grouped by child variable; insertion
        # order is preserved within each group, so the floating-point
        # summation order matches the per-child filtered scan.
        by_var: Dict[str, list] = {}
        for v_key, avg in edges.items():
            by_var.setdefault(v_key[1], []).append((v_key, avg))
        for qc in qnode.children:
            subtotal = 0.0
            for v_key, avg in by_var.get(qc.var, ()):
                subtotal += avg * _tuples_per_element(result, v_key, qnode_of, memo)
            if qc.optional:
                subtotal = max(1.0, subtotal)
            total *= subtotal
            if total == 0.0:
                break
    else:
        for qc in qnode.children:
            subtotal = 1.0 if qc.optional else 0.0
            total *= subtotal
            if total == 0.0:
                break

    memo[key] = total
    return total
