"""Optional numpy: one place to gate every vectorized code path.

Every consumer of numpy in this codebase (the array-scoring kernel's
diagnostics, batch selectivity estimation) goes through :func:`get_numpy`
so that

* environments without numpy degrade to the pure-python fallbacks
  automatically, and
* the fallbacks stay testable on machines that *do* have numpy: setting
  ``REPRO_NO_NUMPY=1`` makes :func:`get_numpy` report numpy as absent,
  which is how the CI matrix proves the fallback paths without
  uninstalling anything.

The environment variable is read on every call (not cached at import
time) so tests can flip it with ``monkeypatch.setenv``.
"""

from __future__ import annotations

import os

try:  # pragma: no cover - exercised via get_numpy()
    import numpy as _numpy
except ImportError:  # pragma: no cover - container always has numpy
    _numpy = None


def get_numpy():
    """The numpy module, or None when absent or disabled.

    ``REPRO_NO_NUMPY`` (any non-empty value) simulates an environment
    without numpy; see docs/PERFORMANCE.md.
    """
    if os.environ.get("REPRO_NO_NUMPY"):
        return None
    return _numpy


def have_numpy() -> bool:
    return get_numpy() is not None


def np_index_dtype(np):
    """The dtype vectorized kernels use for id/index arrays.

    ``np.intp`` matches the width CPython itself indexes with, so gathers
    and ``np.add.at`` scatters take the no-conversion fast path.
    """
    return np.intp
