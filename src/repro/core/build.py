"""TSBUILD: compressing the count-stable summary to a space budget (Fig. 5).

The builder maintains a min-heap of candidate merges ordered by the
marginal-gain ratio ``errd / sized`` (least squared-error increase per byte
saved).  It repeatedly applies the best merge, rewrites heap entries whose
operands were absorbed, and recomputes entries whose neighbourhood changed
(the paper's ``affected(h, m)`` set -- realized here with per-cluster
version stamps and lazy recomputation at pop time).  When the heap drains
below ``Lh`` the pool is regenerated via CREATEPOOL; the loop ends when the
synopsis fits the budget or no merges remain.

Heap entries are ordered by the *canonical* tuple ``(ratio, errd, sized,
u, v, ver_u, ver_v)`` -- no insertion-order tiebreak -- so the merge
sequence is a function of the candidate *set* alone.  That is what lets
the incremental and parallel pool generators (repro.core.pool), which may
produce candidates in a different order, build byte-identical sketches;
tests/test_build_equivalence.py holds them to it.

Performance knobs (``memoize``, ``incremental_pool``, ``workers``) are
documented in docs/PERFORMANCE.md; ``reference=True`` restores the seed
code paths end to end and serves as the benchmark baseline.
"""

from __future__ import annotations

import gc
import heapq
import logging
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Union

from repro.core.kernel import KernelPartition
from repro.core.partition import MergePartition
from repro.core.pool import PoolState, create_pool, create_pool_reference
from repro.core.stable import StableSummary, build_stable
from repro.core.treesketch import TreeSketch
from repro.obs import get_metrics, get_tracer
from repro.xmltree.tree import XMLTree

logger = logging.getLogger(__name__)

#: Stable-summary edge density (edges per class) at and above which
#: ``kernel="auto"`` prefers the dict-backed partition.  Merged-dims-
#: dominated shapes (IMDB-like: densities 5-6.5) spend their time copying
#: and folding wide out-dimension maps, where CPython's C-level dict ops
#: beat the array kernel's per-slot loops by ~1.2x; child-light shapes
#: (XMark-like: densities 2.5-3.2) stay on the kernel.  Output is
#: bit-identical either way, so this is purely a speed heuristic.
AUTO_DICTS_DENSITY = 4.0

#: Minimum combined in-source count for a stale heap pop to trigger a
#: vectorized block refresh (``kernel="numpy"``).  Bitwise-neutral speed
#: knob.  It sits at the giant-union tail on purpose: measured on XMark
#: (docs/PERFORMANCE.md "Block-vectorized merge scoring"), per-pair
#: numpy marshalling exceeds what vectorizing the source loop saves
#: until unions reach thousands of sources, and speculative lookahead
#: warming loses outright (~1 large stale pop per merge window, and the
#: merge is exactly what invalidates warmed entries), so only pairs
#: where the vector core at least breaks even are admitted.
REFRESH_MIN_SOURCES = 1536


@dataclass
class TSBuildOptions:
    """Tuning knobs of TSBUILD.

    ``heap_upper`` / ``heap_lower`` are the paper's ``Uh`` / ``Lh`` (the
    experiments use 10000 / 100).  ``pair_window`` bounds candidate
    generation within large (label, depth) groups (``None`` = exhaustive,
    see CREATEPOOL).  ``drain_fraction`` regenerates the pool once this
    fraction of it remains: merges applied early change which candidates
    are worthwhile, and refreshing the pool before it runs dry measurably
    improves synopsis quality at negligible cost (see the pool ablation).
    ``stop_when_full`` restores Fig. 6's literal early termination of
    candidate generation.

    Performance knobs (all output-preserving; docs/PERFORMANCE.md):

    * ``memoize`` -- versioned memoization of merge scores, so stale-heap
      recomputation and pool regeneration skip pairs whose neighbourhood
      is unchanged;
    * ``incremental_pool`` -- persist the CREATEPOOL label/depth grouping
      and structural-key cache across regenerations;
    * ``workers`` -- fan candidate scoring across a process pool
      (``1`` = serial; needs a fork-capable platform, else falls back);
    * ``kernel`` -- the partition/scoring backend: ``"arrays"`` is the
      flat-array :class:`repro.core.kernel.KernelPartition` (CSR adjacency,
      slot-table sufficient statistics, epoch-stamped scratch --
      bit-identical output), ``"numpy"`` is the same partition with its
      vectorized block scorer enabled (stale heap candidates are rescored
      in batches through one numpy pass; raises ``ValueError`` when numpy
      is unavailable), ``"dicts"`` the original dict-backed
      :class:`MergePartition`, and ``"auto"`` (default) picks
      dicts for merged-dims-dominated summaries (stable edge density of
      ``AUTO_DICTS_DENSITY`` or more, where the dict path's C-level dim
      copies beat the kernel's per-slot loops by ~1.2x -- the IMDB shape;
      see docs/PERFORMANCE.md), otherwise arrays whenever the summary has
      dense ids (always true for ``build_stable`` output) -- upgraded to
      the numpy block scorer when numpy is importable and
      ``REPRO_NO_NUMPY`` is unset -- falling back to dicts for sparse
      ids.  Auto never raises on a missing numpy: the fallback is silent
      and decided before the build starts, so no ImportError can surface
      mid-build;
    * ``block_size`` -- max stale candidates rescored per vectorized
      block on the numpy path (bitwise-neutral speed knob; with the
      default ``REFRESH_MIN_SOURCES`` admission floor blocks are nearly
      always singletons -- lookahead warming measured as a net loss, see
      docs/PERFORMANCE.md);
    * ``reference`` -- run the seed scorer and from-scratch CREATEPOOL
      verbatim, ignoring the knobs above (benchmark baseline; implies the
      dict-backed partition).
    """

    heap_upper: int = 10_000
    heap_lower: int = 100
    pair_window: Optional[int] = 32
    drain_fraction: float = 0.5
    stop_when_full: bool = False
    memoize: bool = True
    incremental_pool: bool = True
    workers: int = 1
    kernel: str = "auto"
    block_size: int = 16
    reference: bool = False


class TreeSketchBuilder:
    """Incrementally compresses one document's stable summary.

    Reusable across decreasing budgets: ``compress_to`` continues merging
    from the current state, so a sweep over budgets (as in the paper's
    figures) costs one construction pass.
    """

    def __init__(
        self,
        source: Union[XMLTree, StableSummary],
        options: Optional[TSBuildOptions] = None,
        *,
        partition: Optional[MergePartition] = None,
    ) -> None:
        stable = source if isinstance(source, StableSummary) else build_stable(source)
        self.stable = stable
        self.options = options or TSBuildOptions()
        # A pre-built partition (e.g. repro.core.live.LivePartition) lets a
        # caller keep mutating the state TSBUILD compressed; otherwise the
        # backend is chosen by ``options.kernel``.
        self.partition = partition if partition is not None \
            else self._make_partition(stable)
        self.merges_applied = 0
        #: Whether the most recent ``compress_to`` call met its budget.
        self.reached_budget = False
        # Forwarding chains for clusters absorbed by merges.
        self._merged_into: Dict[int, int] = {}
        self._pool_state: Optional[PoolState] = None
        if self.options.memoize and not self.options.reference:
            self.partition.enable_memo()

    def _make_partition(self, stable: StableSummary):
        """Instantiate the partition backend selected by ``options.kernel``."""
        opts = self.options
        kernel = opts.kernel
        if kernel not in ("auto", "arrays", "dicts", "numpy"):
            raise ValueError(
                f"unknown kernel {kernel!r} "
                "(expected 'arrays', 'dicts', 'numpy' or 'auto')"
            )
        if opts.reference or kernel == "dicts":
            # The reference path scores through evaluate_merge_reference,
            # which lives on the dict-backed partition.
            return MergePartition(stable)
        if kernel == "arrays":
            return KernelPartition(stable)
        if kernel == "numpy":
            part = KernelPartition(stable)
            if not part.enable_vector_blocks():
                raise ValueError(
                    "kernel='numpy' requires numpy (absent or disabled "
                    "via REPRO_NO_NUMPY); use kernel='auto' for a silent "
                    "fallback"
                )
            return part
        # auto: dicts for merged-dims-dominated shapes, else arrays when
        # the summary has dense ids, falling back to dicts otherwise.
        # The numpy block scorer rides on the arrays choice whenever
        # numpy is importable; enable_vector_blocks() returning False
        # (no numpy / REPRO_NO_NUMPY) simply leaves the scalar path in
        # place -- the decision is made here, before any scoring, so a
        # missing numpy can never surface as an ImportError mid-build.
        num_classes = max(1, len(stable.count))
        if stable.num_edges / num_classes >= AUTO_DICTS_DENSITY:
            return MergePartition(stable)
        try:
            part = KernelPartition(stable)
        except ValueError:
            return MergePartition(stable)
        part.enable_vector_blocks()
        return part

    # ------------------------------------------------------------------

    def size_bytes(self) -> int:
        return self.partition.size_bytes()

    def squared_error(self) -> float:
        return self.partition.total_sq

    # ------------------------------------------------------------------
    # Merge-memo persistence (cache sidecars; docs/STORAGE.md)
    # ------------------------------------------------------------------

    def memo_signature(self) -> str:
        """Fingerprint of every option that shapes the merge sequence.

        A persisted memo entry is only sound if the build that reads it
        walks the same merge sequence that produced its version stamps,
        so sidecars key memo payloads on this signature.  ``memoize`` /
        ``incremental_pool`` / ``workers`` / ``kernel`` / ``block_size``
        are deliberately excluded: the equivalence tests pin all of them
        bit-identical.
        """
        opts = self.options
        return ("v1:heap_upper={0},heap_lower={1},pair_window={2},"
                "drain_fraction={3!r},stop_when_full={4}").format(
            opts.heap_upper, opts.heap_lower, opts.pair_window,
            opts.drain_fraction, opts.stop_when_full)

    def export_memo(self) -> List[list]:
        """The merge-score memo as JSON-ready rows.

        Each row is ``[u, v, ver_u, ver_v, ratio, errd, sized]``; floats
        survive the JSON round trip exactly, so a seeded build scores --
        and therefore merges -- bit-identically to the build that
        exported the memo.
        """
        memo = self.partition.merge_memo
        if not memo:
            return []
        return [[u, v, e[0], e[1], e[2], e[3], e[4]]
                for (u, v), e in memo.items()]

    def seed_memo(self, rows: Iterable[Sequence]) -> int:
        """Warm the merge-score memo from :meth:`export_memo` rows.

        Entries whose version stamps never match the seeded build's
        state are simply overwritten on first rescore -- the same
        invalidation discipline live memoization uses -- so a wrong or
        partial memo can cost time, never correctness.  Callers must
        gate rows on :meth:`memo_signature`.  Returns the number of
        entries loaded.
        """
        self.partition.enable_memo()
        memo = self.partition.merge_memo
        loaded = 0
        for u, v, ver_u, ver_v, ratio, errd, sized in rows:
            memo[(u, v)] = (ver_u, ver_v, ratio, errd, sized)
            loaded += 1
        return loaded

    def _resolve(self, cid: int) -> int:
        """Follow forwarding pointers to the surviving cluster id."""
        seen = []
        while cid in self._merged_into:
            seen.append(cid)
            cid = self._merged_into[cid]
        for s in seen:  # path compression
            self._merged_into[s] = cid
        return cid

    def _generate_pool(self, part):
        opts = self.options
        if opts.reference:
            return create_pool_reference(
                part, opts.heap_upper, opts.pair_window, opts.stop_when_full
            )
        state = None
        if opts.incremental_pool:
            if self._pool_state is None:
                self._pool_state = PoolState(part)
            state = self._pool_state
        return create_pool(
            part, opts.heap_upper, opts.pair_window, opts.stop_when_full,
            state=state, memoize=opts.memoize, workers=opts.workers,
        )

    def _apply_merge(self, part, u: int, v: int) -> None:
        """Apply one merge and keep the incremental pool state in step."""
        state = self._pool_state
        if state is not None:
            label_u = part.cluster_label[u]
            label_v = part.cluster_label[v]
            depth_u = part.cluster_depth[u]
            depth_v = part.cluster_depth[v]
            part.apply_merge(u, v)
            state.on_merge(
                label_u, label_v, u, v, depth_u, depth_v, part.cluster_depth[u]
            )
        else:
            part.apply_merge(u, v)
        self._merged_into[v] = u
        self.merges_applied += 1

    def compress_to(self, budget_bytes: int) -> TreeSketch:
        """Merge until ``size <= budget_bytes`` (or no merges remain).

        Returns the TreeSketch snapshot of the resulting partition.
        """
        opts = self.options
        part = self.partition
        metrics = get_metrics()
        pool_regens = metrics.counter("tsbuild.pool_regenerations")
        # Register the drain-loop counters up front so a build that never
        # merges (budget already met) still reports them at zero.
        metrics.counter("tsbuild.merges_applied")
        metrics.counter("tsbuild.heap_pops")
        metrics.counter("tsbuild.stale_recomputations")
        memo_hits = metrics.counter("tsbuild.memo_hits")
        memo_misses = metrics.counter("tsbuild.memo_misses")
        hits_before, misses_before = part.memo_hits, part.memo_misses
        # Which partition backend served this build (see options.kernel).
        if isinstance(part, KernelPartition) and part.vector_blocks:
            metrics.counter("tsbuild.kernel_numpy").inc()
            # Pre-register the block-scoring telemetry so a numpy build
            # that never hits a stale pop still reports them at zero.
            metrics.counter("tsbuild.block_rescores")
            metrics.histogram("tsbuild.block_size")
        elif isinstance(part, KernelPartition):
            metrics.counter("tsbuild.kernel_arrays").inc()
        else:
            metrics.counter("tsbuild.kernel_dicts").inc()
        state = self._pool_state
        skey_hits_before = state.key_hits if state is not None else 0
        skey_recomputes_before = state.key_recomputes if state is not None else 0
        # The merge loop allocates millions of short-lived tuples and never
        # creates reference cycles, so cyclic GC passes are pure overhead
        # (~15-20% on large builds); suspend collection for the duration.
        manage_gc = not opts.reference and gc.isenabled()
        if manage_gc:
            gc.disable()
        try:
            self._compress_loop(part, budget_bytes, pool_regens)
        finally:
            if manage_gc:
                gc.enable()
        memo_hits.inc(part.memo_hits - hits_before)
        memo_misses.inc(part.memo_misses - misses_before)
        state = self._pool_state
        if state is not None:
            metrics.counter("tsbuild.skey_cache_hits").inc(
                state.key_hits - skey_hits_before
            )
            metrics.counter("tsbuild.skey_recomputes").inc(
                state.key_recomputes - skey_recomputes_before
            )
        logger.info(
            "tsbuild: %d bytes (budget %d), %d nodes, sq %.1f, %d merges total",
            part.size_bytes(), budget_bytes, part.num_nodes,
            part.total_sq, self.merges_applied,
        )
        return part.to_treesketch()

    def _compress_loop(self, part, budget_bytes: int,
                       pool_regens) -> None:
        opts = self.options
        merges_before = self.merges_applied
        version = part.version
        with get_tracer().span("tsbuild.compress_to",
                               budget_bytes=budget_bytes) as span:
            while part.size_bytes() > budget_bytes:
                pool = self._generate_pool(part)
                if not pool:
                    logger.debug(
                        "tsbuild: no candidates left at %d bytes (budget %d)",
                        part.size_bytes(), budget_bytes,
                    )
                    break  # nothing left to merge; budget unreachable
                pool_regens.inc()
                logger.debug(
                    "tsbuild: pool of %d candidates at %d bytes (budget %d, sq %.1f)",
                    len(pool), part.size_bytes(), budget_bytes, part.total_sq,
                )
                heap = [
                    (ratio, errd, sized, u, v,
                     version.get(u, 0), version.get(v, 0))
                    for ratio, errd, sized, u, v in pool
                ]
                heapq.heapify(heap)
                # Refresh the pool after draining (1 - drain_fraction) of it;
                # on small inputs the whole pool fits under Lh, so fall back to
                # draining fully rather than regenerating without progress.
                lower = int(len(heap) * opts.drain_fraction)
                if len(heap) > opts.heap_lower:
                    lower = max(lower, opts.heap_lower)
                progressed = self._drain_heap(heap, budget_bytes, lower)
                if not progressed:
                    break  # defensive: avoid spinning if the pool yields nothing
            self.reached_budget = part.size_bytes() <= budget_bytes
            span.annotate(
                size_bytes=part.size_bytes(),
                num_nodes=part.num_nodes,
                merges=self.merges_applied - merges_before,
                reached_budget=self.reached_budget,
            )

    def _drain_heap(self, heap: List, budget_bytes: int, lower: int) -> bool:
        """Apply merges from ``heap`` until budget met or heap low.

        Returns True iff at least one merge was applied.
        """
        part = self.partition
        reference = self.options.reference
        metrics = get_metrics()
        heap_pops = metrics.counter("tsbuild.heap_pops")
        stale = metrics.counter("tsbuild.stale_recomputations")
        merges = metrics.counter("tsbuild.merges_applied")
        version = part.version
        # Block mode (kernel="numpy"): stale pops whose score is not
        # already memoized trigger a vectorized rescore of a whole block
        # of stale heap-prefix candidates (see _block_refresh).  It is a
        # memo warmer, so it needs the memo; without one, stale pops fall
        # through to the per-pair scalar path unchanged.
        memo = part.merge_memo
        block_mode = (
            not reference
            and memo is not None
            and getattr(part, "vector_blocks", False)
        )
        if block_mode:
            block_rescores = metrics.counter("tsbuild.block_rescores")
            block_sizes = metrics.histogram("tsbuild.block_size")
        applied = 0
        # Partition size only changes when a merge is applied; track it
        # locally instead of recomputing per pop.
        size = part.size_bytes()
        while heap and len(heap) > lower and size > budget_bytes:
            ratio, errd, sized, u, v, ver_u, ver_v = heapq.heappop(heap)
            heap_pops.inc()
            u, v = self._resolve(u), self._resolve(v)
            if u == v:
                continue  # operands already merged together
            cur_u, cur_v = version.get(u, 0), version.get(v, 0)
            if (ver_u, ver_v) != (cur_u, cur_v):
                # Stale (operand rewritten or neighbourhood changed):
                # recompute the metrics and re-queue with fresh stamps.
                stale.inc()
                if reference:
                    result = part.evaluate_merge_reference(u, v)
                    if result.sized <= 0:
                        continue  # non-improving by definition: drop it
                    entry = (result.ratio, result.errd, result.sized,
                             u, v, cur_u, cur_v)
                else:
                    if (
                        block_mode
                        and len(part.in_sources[u]) + len(part.in_sources[v])
                        >= REFRESH_MIN_SOURCES
                    ):
                        m = memo.get((u, v))
                        if m is None or m[0] != cur_u or m[1] != cur_v:
                            # Score due anyway; warm the memo for this
                            # pair plus a block of upcoming stale
                            # candidates in one vectorized pass.
                            self._block_refresh(
                                part, heap, u, v,
                                block_rescores, block_sizes,
                            )
                    scored = part.scored_merge(u, v)
                    if scored[2] <= 0:
                        continue  # non-improving by definition: drop it
                    entry = scored + (u, v, cur_u, cur_v)
                heapq.heappush(heap, entry)
                continue
            self._apply_merge(part, u, v)
            size = part.size_bytes()
            merges.inc()
            applied += 1
        return applied > 0

    def _block_refresh(self, part, heap: List, u0: int, v0: int,
                       block_rescores, block_sizes) -> None:
        """Vectorized memo warming: rescore a block of stale candidates.

        Collects up to ``block_size`` stale pairs from the heap prefix
        (the candidates most likely to be popped next), starting with the
        pair that triggered the refresh, and scores them through
        ``part.eval_block`` in one vectorized pass, writing the results
        into the merge memo with current version stamps.

        This deliberately does NOT touch the heap: the drain discipline
        -- pop, check staleness, rescore via ``scored_merge``, re-push --
        is unchanged, so the merge sequence is preserved *by
        construction*; the only new proof obligation is that
        ``eval_block`` scores bitwise-identically to ``_eval_raw``
        (tests/test_block_scoring.py).  Warming pairs that are never
        popped costs time, never correctness: the memo's version-stamp
        discipline invalidates any entry whose operands change.
        """
        memo = part.merge_memo
        version = part.version
        in_sources = part.in_sources
        resolve = self._resolve
        block_size = max(1, self.options.block_size)
        pairs = [(u0, v0)]
        seen = {(u0, v0)}
        # Pop the heap's true next-in-order entries (bounded), collect the
        # stale vector-eligible ones, then push every popped entry back
        # *unchanged*: the heap multiset is restored exactly, so pop order
        # -- and hence the merge sequence -- cannot change.  Popping gives
        # the real upcoming candidates, so warmed scores are the ones the
        # drain loop is about to ask for (small-union pairs are skipped:
        # their pop-time scalar rescore costs no more than warming would).
        pop, push = heapq.heappop, heapq.heappush
        popped: List = []
        # Warmed entries only survive until a merge bumps their operands'
        # versions, and big-union pairs border most of the graph, so the
        # useful lookahead is roughly the pop distance to the next merge
        # -- keep the window small rather than warming scores that will
        # be invalidated before they are ever popped.
        budget = block_size * 2
        while heap and len(popped) < budget and len(pairs) < block_size:
            entry = pop(heap)
            popped.append(entry)
            u, v = resolve(entry[3]), resolve(entry[4])
            if u == v:
                continue  # operands already merged; pop will discard it
            cur_u, cur_v = version.get(u, 0), version.get(v, 0)
            if (entry[5], entry[6]) == (cur_u, cur_v):
                continue  # fresh in heap: pop applies it, no score needed
            key = (u, v)
            if key in seen:
                continue
            if len(in_sources[u]) + len(in_sources[v]) < REFRESH_MIN_SOURCES:
                continue  # scalar rescore at pop time is just as cheap
            m = memo.get(key)
            if m is not None and m[0] == cur_u and m[1] == cur_v:
                continue  # already warm: pop will hit the memo
            seen.add(key)
            pairs.append(key)
        for entry in popped:
            push(heap, entry)
        # Block fills count as misses; the pops they serve count as hits
        # (same accounting a scalar miss-then-hit pair would produce).
        part.memo_misses += len(pairs)
        # Admission already filtered by REFRESH_MIN_SOURCES, so vectorize
        # every collected pair regardless of the pool-side routing floor.
        scores = part.eval_block(pairs, min_sources=0)
        for (u, v), (errd, sized) in zip(pairs, scores):
            ratio = errd / sized if sized > 0 else float("inf")
            memo[(u, v)] = (
                version.get(u, 0), version.get(v, 0), ratio, errd, sized
            )
        block_rescores.inc(len(pairs))
        block_sizes.observe(len(pairs))


def build_treesketch(
    source: Union[XMLTree, StableSummary],
    budget_bytes: int,
    options: Optional[TSBuildOptions] = None,
) -> TreeSketch:
    """One-shot TSBUILD: compress ``source`` to at most ``budget_bytes``.

    ``source`` may be a document tree (the stable summary is built first)
    or a pre-built :class:`StableSummary`.
    """
    return TreeSketchBuilder(source, options).compress_to(budget_bytes)


def compress_to_budgets(
    source: Union[XMLTree, StableSummary],
    budgets_bytes: Iterable[int],
    options: Optional[TSBuildOptions] = None,
) -> Dict[int, TreeSketch]:
    """Build TreeSketches for several budgets in one compression pass.

    Budgets are visited in decreasing order (merging is monotone), and the
    result maps each requested budget to its sketch.
    """
    builder = TreeSketchBuilder(source, options)
    sketches: Dict[int, TreeSketch] = {}
    for budget in sorted(set(budgets_bytes), reverse=True):
        sketches[budget] = builder.compress_to(budget)
    return sketches
