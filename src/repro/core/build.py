"""TSBUILD: compressing the count-stable summary to a space budget (Fig. 5).

The builder maintains a min-heap of candidate merges ordered by the
marginal-gain ratio ``errd / sized`` (least squared-error increase per byte
saved).  It repeatedly applies the best merge, rewrites heap entries whose
operands were absorbed, and recomputes entries whose neighbourhood changed
(the paper's ``affected(h, m)`` set -- realized here with per-cluster
version stamps and lazy recomputation at pop time).  When the heap drains
below ``Lh`` the pool is regenerated via CREATEPOOL; the loop ends when the
synopsis fits the budget or no merges remain.

Heap entries are ordered by the *canonical* tuple ``(ratio, errd, sized,
u, v, ver_u, ver_v)`` -- no insertion-order tiebreak -- so the merge
sequence is a function of the candidate *set* alone.  That is what lets
the incremental and parallel pool generators (repro.core.pool), which may
produce candidates in a different order, build byte-identical sketches;
tests/test_build_equivalence.py holds them to it.

Performance knobs (``memoize``, ``incremental_pool``, ``workers``) are
documented in docs/PERFORMANCE.md; ``reference=True`` restores the seed
code paths end to end and serves as the benchmark baseline.
"""

from __future__ import annotations

import gc
import heapq
import logging
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Union

from repro.core.kernel import KernelPartition
from repro.core.partition import MergePartition
from repro.core.pool import PoolState, create_pool, create_pool_reference
from repro.core.stable import StableSummary, build_stable
from repro.core.treesketch import TreeSketch
from repro.obs import get_metrics, get_tracer
from repro.xmltree.tree import XMLTree

logger = logging.getLogger(__name__)

#: Stable-summary edge density (edges per class) at and above which
#: ``kernel="auto"`` prefers the dict-backed partition.  Merged-dims-
#: dominated shapes (IMDB-like: densities 5-6.5) spend their time copying
#: and folding wide out-dimension maps, where CPython's C-level dict ops
#: beat the array kernel's per-slot loops by ~1.2x; child-light shapes
#: (XMark-like: densities 2.5-3.2) stay on the kernel.  Output is
#: bit-identical either way, so this is purely a speed heuristic.
AUTO_DICTS_DENSITY = 4.0


@dataclass
class TSBuildOptions:
    """Tuning knobs of TSBUILD.

    ``heap_upper`` / ``heap_lower`` are the paper's ``Uh`` / ``Lh`` (the
    experiments use 10000 / 100).  ``pair_window`` bounds candidate
    generation within large (label, depth) groups (``None`` = exhaustive,
    see CREATEPOOL).  ``drain_fraction`` regenerates the pool once this
    fraction of it remains: merges applied early change which candidates
    are worthwhile, and refreshing the pool before it runs dry measurably
    improves synopsis quality at negligible cost (see the pool ablation).
    ``stop_when_full`` restores Fig. 6's literal early termination of
    candidate generation.

    Performance knobs (all output-preserving; docs/PERFORMANCE.md):

    * ``memoize`` -- versioned memoization of merge scores, so stale-heap
      recomputation and pool regeneration skip pairs whose neighbourhood
      is unchanged;
    * ``incremental_pool`` -- persist the CREATEPOOL label/depth grouping
      and structural-key cache across regenerations;
    * ``workers`` -- fan candidate scoring across a process pool
      (``1`` = serial; needs a fork-capable platform, else falls back);
    * ``kernel`` -- the partition/scoring backend: ``"arrays"`` is the
      flat-array :class:`repro.core.kernel.KernelPartition` (CSR adjacency,
      slot-table sufficient statistics, epoch-stamped scratch -- the
      fastest path, bit-identical output), ``"dicts"`` the original
      dict-backed :class:`MergePartition`, and ``"auto"`` (default) picks
      dicts for merged-dims-dominated summaries (stable edge density of
      ``AUTO_DICTS_DENSITY`` or more, where the dict path's C-level dim
      copies beat the kernel's per-slot loops by ~1.2x -- the IMDB shape;
      see docs/PERFORMANCE.md), otherwise arrays whenever the summary has
      dense ids (always true for ``build_stable`` output), falling back
      to dicts for sparse ids;
    * ``reference`` -- run the seed scorer and from-scratch CREATEPOOL
      verbatim, ignoring the knobs above (benchmark baseline; implies the
      dict-backed partition).
    """

    heap_upper: int = 10_000
    heap_lower: int = 100
    pair_window: Optional[int] = 32
    drain_fraction: float = 0.5
    stop_when_full: bool = False
    memoize: bool = True
    incremental_pool: bool = True
    workers: int = 1
    kernel: str = "auto"
    reference: bool = False


class TreeSketchBuilder:
    """Incrementally compresses one document's stable summary.

    Reusable across decreasing budgets: ``compress_to`` continues merging
    from the current state, so a sweep over budgets (as in the paper's
    figures) costs one construction pass.
    """

    def __init__(
        self,
        source: Union[XMLTree, StableSummary],
        options: Optional[TSBuildOptions] = None,
        *,
        partition: Optional[MergePartition] = None,
    ) -> None:
        stable = source if isinstance(source, StableSummary) else build_stable(source)
        self.stable = stable
        self.options = options or TSBuildOptions()
        # A pre-built partition (e.g. repro.core.live.LivePartition) lets a
        # caller keep mutating the state TSBUILD compressed; otherwise the
        # backend is chosen by ``options.kernel``.
        self.partition = partition if partition is not None \
            else self._make_partition(stable)
        self.merges_applied = 0
        #: Whether the most recent ``compress_to`` call met its budget.
        self.reached_budget = False
        # Forwarding chains for clusters absorbed by merges.
        self._merged_into: Dict[int, int] = {}
        self._pool_state: Optional[PoolState] = None
        if self.options.memoize and not self.options.reference:
            self.partition.enable_memo()

    def _make_partition(self, stable: StableSummary):
        """Instantiate the partition backend selected by ``options.kernel``."""
        opts = self.options
        kernel = opts.kernel
        if kernel not in ("auto", "arrays", "dicts"):
            raise ValueError(
                f"unknown kernel {kernel!r} (expected 'arrays', 'dicts' or 'auto')"
            )
        if opts.reference or kernel == "dicts":
            # The reference path scores through evaluate_merge_reference,
            # which lives on the dict-backed partition.
            return MergePartition(stable)
        if kernel == "arrays":
            return KernelPartition(stable)
        # auto: dicts for merged-dims-dominated shapes, else arrays when
        # the summary has dense ids, falling back to dicts otherwise.
        num_classes = max(1, len(stable.count))
        if stable.num_edges / num_classes >= AUTO_DICTS_DENSITY:
            return MergePartition(stable)
        try:
            return KernelPartition(stable)
        except ValueError:
            return MergePartition(stable)

    # ------------------------------------------------------------------

    def size_bytes(self) -> int:
        return self.partition.size_bytes()

    def squared_error(self) -> float:
        return self.partition.total_sq

    # ------------------------------------------------------------------
    # Merge-memo persistence (cache sidecars; docs/STORAGE.md)
    # ------------------------------------------------------------------

    def memo_signature(self) -> str:
        """Fingerprint of every option that shapes the merge sequence.

        A persisted memo entry is only sound if the build that reads it
        walks the same merge sequence that produced its version stamps,
        so sidecars key memo payloads on this signature.  ``memoize`` /
        ``incremental_pool`` / ``workers`` / ``kernel`` are deliberately
        excluded: the equivalence tests pin all of them bit-identical.
        """
        opts = self.options
        return ("v1:heap_upper={0},heap_lower={1},pair_window={2},"
                "drain_fraction={3!r},stop_when_full={4}").format(
            opts.heap_upper, opts.heap_lower, opts.pair_window,
            opts.drain_fraction, opts.stop_when_full)

    def export_memo(self) -> List[list]:
        """The merge-score memo as JSON-ready rows.

        Each row is ``[u, v, ver_u, ver_v, ratio, errd, sized]``; floats
        survive the JSON round trip exactly, so a seeded build scores --
        and therefore merges -- bit-identically to the build that
        exported the memo.
        """
        memo = self.partition.merge_memo
        if not memo:
            return []
        return [[u, v, e[0], e[1], e[2], e[3], e[4]]
                for (u, v), e in memo.items()]

    def seed_memo(self, rows: Iterable[Sequence]) -> int:
        """Warm the merge-score memo from :meth:`export_memo` rows.

        Entries whose version stamps never match the seeded build's
        state are simply overwritten on first rescore -- the same
        invalidation discipline live memoization uses -- so a wrong or
        partial memo can cost time, never correctness.  Callers must
        gate rows on :meth:`memo_signature`.  Returns the number of
        entries loaded.
        """
        self.partition.enable_memo()
        memo = self.partition.merge_memo
        loaded = 0
        for u, v, ver_u, ver_v, ratio, errd, sized in rows:
            memo[(u, v)] = (ver_u, ver_v, ratio, errd, sized)
            loaded += 1
        return loaded

    def _resolve(self, cid: int) -> int:
        """Follow forwarding pointers to the surviving cluster id."""
        seen = []
        while cid in self._merged_into:
            seen.append(cid)
            cid = self._merged_into[cid]
        for s in seen:  # path compression
            self._merged_into[s] = cid
        return cid

    def _generate_pool(self, part):
        opts = self.options
        if opts.reference:
            return create_pool_reference(
                part, opts.heap_upper, opts.pair_window, opts.stop_when_full
            )
        state = None
        if opts.incremental_pool:
            if self._pool_state is None:
                self._pool_state = PoolState(part)
            state = self._pool_state
        return create_pool(
            part, opts.heap_upper, opts.pair_window, opts.stop_when_full,
            state=state, memoize=opts.memoize, workers=opts.workers,
        )

    def _apply_merge(self, part, u: int, v: int) -> None:
        """Apply one merge and keep the incremental pool state in step."""
        state = self._pool_state
        if state is not None:
            label_u = part.cluster_label[u]
            label_v = part.cluster_label[v]
            depth_u = part.cluster_depth[u]
            depth_v = part.cluster_depth[v]
            part.apply_merge(u, v)
            state.on_merge(
                label_u, label_v, u, v, depth_u, depth_v, part.cluster_depth[u]
            )
        else:
            part.apply_merge(u, v)
        self._merged_into[v] = u
        self.merges_applied += 1

    def compress_to(self, budget_bytes: int) -> TreeSketch:
        """Merge until ``size <= budget_bytes`` (or no merges remain).

        Returns the TreeSketch snapshot of the resulting partition.
        """
        opts = self.options
        part = self.partition
        metrics = get_metrics()
        pool_regens = metrics.counter("tsbuild.pool_regenerations")
        # Register the drain-loop counters up front so a build that never
        # merges (budget already met) still reports them at zero.
        metrics.counter("tsbuild.merges_applied")
        metrics.counter("tsbuild.heap_pops")
        metrics.counter("tsbuild.stale_recomputations")
        memo_hits = metrics.counter("tsbuild.memo_hits")
        memo_misses = metrics.counter("tsbuild.memo_misses")
        hits_before, misses_before = part.memo_hits, part.memo_misses
        # Which partition backend served this build (see options.kernel).
        metrics.counter(
            "tsbuild.kernel_arrays"
            if isinstance(part, KernelPartition)
            else "tsbuild.kernel_dicts"
        ).inc()
        state = self._pool_state
        skey_hits_before = state.key_hits if state is not None else 0
        skey_recomputes_before = state.key_recomputes if state is not None else 0
        # The merge loop allocates millions of short-lived tuples and never
        # creates reference cycles, so cyclic GC passes are pure overhead
        # (~15-20% on large builds); suspend collection for the duration.
        manage_gc = not opts.reference and gc.isenabled()
        if manage_gc:
            gc.disable()
        try:
            self._compress_loop(part, budget_bytes, pool_regens)
        finally:
            if manage_gc:
                gc.enable()
        memo_hits.inc(part.memo_hits - hits_before)
        memo_misses.inc(part.memo_misses - misses_before)
        state = self._pool_state
        if state is not None:
            metrics.counter("tsbuild.skey_cache_hits").inc(
                state.key_hits - skey_hits_before
            )
            metrics.counter("tsbuild.skey_recomputes").inc(
                state.key_recomputes - skey_recomputes_before
            )
        logger.info(
            "tsbuild: %d bytes (budget %d), %d nodes, sq %.1f, %d merges total",
            part.size_bytes(), budget_bytes, part.num_nodes,
            part.total_sq, self.merges_applied,
        )
        return part.to_treesketch()

    def _compress_loop(self, part, budget_bytes: int,
                       pool_regens) -> None:
        opts = self.options
        merges_before = self.merges_applied
        version = part.version
        with get_tracer().span("tsbuild.compress_to",
                               budget_bytes=budget_bytes) as span:
            while part.size_bytes() > budget_bytes:
                pool = self._generate_pool(part)
                if not pool:
                    logger.debug(
                        "tsbuild: no candidates left at %d bytes (budget %d)",
                        part.size_bytes(), budget_bytes,
                    )
                    break  # nothing left to merge; budget unreachable
                pool_regens.inc()
                logger.debug(
                    "tsbuild: pool of %d candidates at %d bytes (budget %d, sq %.1f)",
                    len(pool), part.size_bytes(), budget_bytes, part.total_sq,
                )
                heap = [
                    (ratio, errd, sized, u, v,
                     version.get(u, 0), version.get(v, 0))
                    for ratio, errd, sized, u, v in pool
                ]
                heapq.heapify(heap)
                # Refresh the pool after draining (1 - drain_fraction) of it;
                # on small inputs the whole pool fits under Lh, so fall back to
                # draining fully rather than regenerating without progress.
                lower = int(len(heap) * opts.drain_fraction)
                if len(heap) > opts.heap_lower:
                    lower = max(lower, opts.heap_lower)
                progressed = self._drain_heap(heap, budget_bytes, lower)
                if not progressed:
                    break  # defensive: avoid spinning if the pool yields nothing
            self.reached_budget = part.size_bytes() <= budget_bytes
            span.annotate(
                size_bytes=part.size_bytes(),
                num_nodes=part.num_nodes,
                merges=self.merges_applied - merges_before,
                reached_budget=self.reached_budget,
            )

    def _drain_heap(self, heap: List, budget_bytes: int, lower: int) -> bool:
        """Apply merges from ``heap`` until budget met or heap low.

        Returns True iff at least one merge was applied.
        """
        part = self.partition
        reference = self.options.reference
        metrics = get_metrics()
        heap_pops = metrics.counter("tsbuild.heap_pops")
        stale = metrics.counter("tsbuild.stale_recomputations")
        merges = metrics.counter("tsbuild.merges_applied")
        version = part.version
        applied = 0
        # Partition size only changes when a merge is applied; track it
        # locally instead of recomputing per pop.
        size = part.size_bytes()
        while heap and len(heap) > lower and size > budget_bytes:
            ratio, errd, sized, u, v, ver_u, ver_v = heapq.heappop(heap)
            heap_pops.inc()
            u, v = self._resolve(u), self._resolve(v)
            if u == v:
                continue  # operands already merged together
            cur_u, cur_v = version.get(u, 0), version.get(v, 0)
            if (ver_u, ver_v) != (cur_u, cur_v):
                # Stale (operand rewritten or neighbourhood changed):
                # recompute the metrics and re-queue with fresh stamps.
                stale.inc()
                if reference:
                    result = part.evaluate_merge_reference(u, v)
                    if result.sized <= 0:
                        continue  # non-improving by definition: drop it
                    entry = (result.ratio, result.errd, result.sized,
                             u, v, cur_u, cur_v)
                else:
                    scored = part.scored_merge(u, v)
                    if scored[2] <= 0:
                        continue  # non-improving by definition: drop it
                    entry = scored + (u, v, cur_u, cur_v)
                heapq.heappush(heap, entry)
                continue
            self._apply_merge(part, u, v)
            size = part.size_bytes()
            merges.inc()
            applied += 1
        return applied > 0


def build_treesketch(
    source: Union[XMLTree, StableSummary],
    budget_bytes: int,
    options: Optional[TSBuildOptions] = None,
) -> TreeSketch:
    """One-shot TSBUILD: compress ``source`` to at most ``budget_bytes``.

    ``source`` may be a document tree (the stable summary is built first)
    or a pre-built :class:`StableSummary`.
    """
    return TreeSketchBuilder(source, options).compress_to(budget_bytes)


def compress_to_budgets(
    source: Union[XMLTree, StableSummary],
    budgets_bytes: Iterable[int],
    options: Optional[TSBuildOptions] = None,
) -> Dict[int, TreeSketch]:
    """Build TreeSketches for several budgets in one compression pass.

    Budgets are visited in decreasing order (merging is monotone), and the
    result maps each requested budget to its sketch.
    """
    builder = TreeSketchBuilder(source, options)
    sketches: Dict[int, TreeSketch] = {}
    for budget in sorted(set(budgets_bytes), reverse=True):
        sketches[budget] = builder.compress_to(budget)
    return sketches
