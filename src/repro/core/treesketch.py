"""The TreeSketch synopsis (paper Definition 3.2).

A TreeSketch is a graph synopsis where each node stores its extent size and
each edge ``(u, v)`` stores the *average* number of children in
``extent(v)`` per element of ``extent(u)``.  Interpreting the averages as
exact per-element counts is what makes approximate evaluation work; the
fidelity of that interpretation is quantified by the *squared error* of the
induced clustering (Section 3.2), which this class computes from per-edge
sufficient statistics (sum and sum of squares of the per-element child
counts) without touching base data.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

from repro.core.size import synopsis_bytes
from repro.core.stable import StableSummary
from repro.core.synopsis import GraphSynopsis


class TreeSketch(GraphSynopsis):
    """A TreeSketch synopsis ``TS`` of an XML document.

    Edge weights (``self.out``) are average child counts
    ``count(u, v)``.  ``stats`` holds per-edge sufficient statistics
    ``(sum, sum_of_squares)`` over all elements of the source extent
    (elements with zero children toward the target contribute zero to
    both), from which the squared error of each cluster follows as
    ``sum_sq - sum**2 / count(u)``.
    """

    def __init__(self) -> None:
        super().__init__()
        # (src, dst) -> (sum of child counts, sum of squared child counts)
        self.stats: Dict[Tuple[int, int], Tuple[float, float]] = {}
        # node id -> stable classes merged into it (for value annotation).
        self.members: Dict[int, set] = {}
        # node id -> ValueSummary; populated by the values extension.
        self.values: Dict[int, object] = {}

    def value_probability(self, nid: int, value: str) -> Optional[float]:
        """``P(element of nid carries this value)``; None if unannotated.

        The hook EVALQUERY's value-predicate selectivity consults (see
        :mod:`repro.values`).
        """
        summary = self.values.get(nid)
        if summary is None:
            return None
        return summary.probability(value)

    # ------------------------------------------------------------------
    # Quality and size
    # ------------------------------------------------------------------

    def size_bytes(self) -> int:
        """Storage footprint under the library's synopsis size model."""
        return synopsis_bytes(self.num_nodes, self.num_edges)

    def cluster_squared_error(self, nid: int) -> float:
        """Squared error ``sq(u)`` of one cluster (Section 3.2)."""
        count = self.count[nid]
        total = 0.0
        for dst in self.out.get(nid, {}):
            s, sq = self.stats[(nid, dst)]
            total += sq - (s * s) / count
        # Clamp tiny negative residue from float arithmetic.
        return max(0.0, total)

    def squared_error(self) -> float:
        """Squared error ``sq(TS)`` of the synopsis: sum over clusters."""
        return sum(self.cluster_squared_error(nid) for nid in self.label)

    def edge_average(self, src: int, dst: int) -> float:
        """Average child count ``count(u, v)`` along one edge."""
        return self.out[src][dst]

    # ------------------------------------------------------------------
    # Conversions
    # ------------------------------------------------------------------

    @classmethod
    def from_stable(cls, summary: StableSummary) -> "TreeSketch":
        """The zero-error TreeSketch corresponding to a count-stable summary.

        Every edge of a stable summary is k-stable, so the averages equal k
        exactly, the sufficient statistics follow in closed form
        (``sum = count * k``, ``sum_sq = count * k**2``), and the squared
        error is zero.
        """
        sketch = cls()
        for nid in summary.node_ids():
            sketch.add_node(nid, summary.label[nid], summary.count[nid])
        for src, dst, k in summary.edges():
            count = summary.count[src]
            sketch.add_edge(src, dst, float(k))
            sketch.stats[(src, dst)] = (count * float(k), count * float(k) ** 2)
        sketch.root_id = summary.root_id
        sketch.doc_height = summary.doc_height
        sketch.members = {nid: {nid} for nid in summary.node_ids()}
        return sketch

    def validate(self) -> None:
        super().validate()
        for (src, dst), (s, sq) in self.stats.items():
            if dst not in self.out.get(src, {}):
                raise AssertionError(f"stats for missing edge {src}->{dst}")
            avg = self.out[src][dst]
            expected = s / self.count[src]
            if abs(avg - expected) > 1e-6 * max(1.0, abs(avg)):
                raise AssertionError(
                    f"edge {src}->{dst}: stored avg {avg} != sum/count {expected}"
                )
            if sq + 1e-9 < (s * s) / (self.count[src] or 1):
                raise AssertionError(
                    f"edge {src}->{dst}: sum_sq below Cauchy-Schwarz bound"
                )
