"""Per-query error provenance for selectivity estimates.

:func:`explain_estimate` is the instrumented companion of
:func:`repro.core.estimate.estimate_selectivity`.  It answers "*why* is
this estimate what it is, and which synopsis clusters would I distrust?"
by decomposing the estimate into per-cluster contribution terms and
attributing occurrence mass (and, when a live maintainer supplies one,
error debt) to every cluster the traversal touched.

Design constraints, in order of importance:

1. **Zero overhead when disabled.**  This module is *never* imported by
   :mod:`repro.core.estimate` or :mod:`repro.core.evaluate`; the plain
   estimate path performs no extra work whatsoever.  The module-level
   :data:`PROBES` counters exist so a test can pin that invariant: they
   only move when an ``explain_*`` entry point runs.

2. **Bitwise additivity.**  Floating-point arithmetic rules out generic
   redistributions (``0.3 + (1 - 0.3) != 1.0``), so the contribution
   terms *are* the plain DP's own summation terms.  The root variable
   ``q0`` binds only the document root, and the estimate is
   ``total = 1.0 * subtotal_1 * subtotal_2 * ...`` over its query-child
   groups.  When ``q0`` has exactly one child group (every query the
   workload generator emits, and any single-branch twig), the estimate
   is ``1.0 * subtotal`` — bitwise equal to ``subtotal``, which is the
   left-associated sum of ``avg * t(child)`` terms in edge insertion
   order.  Those terms, attributed to each child's synopsis cluster,
   are the contributions; summing them left-to-right reproduces the
   plain estimator's answer bit for bit (``exact_split=True``).  For
   the remaining shapes (multi-branch roots, a fired optional clamp at
   the root, empty groups) no additive split exists and the whole
   estimate is attributed to the root cluster (``exact_split=False``).

3. **No duplicated recurrence.**  The t-values come from the *actual*
   :func:`repro.core.estimate._tuples_per_element` memo, so the two
   paths cannot drift apart: the contribution terms multiply the same
   operands the plain DP multiplied.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Tuple

from repro.core.estimate import _tuples_per_element
from repro.core.evaluate import ResultSketch, RSKey, eval_query
from repro.obs import get_metrics, get_tracer
from repro.query.twig import QueryNode, TwigQuery

# Instrumentation-activity probes.  A regression test pins these at zero
# across plain estimate/eval calls, proving the un-instrumented path does
# no explain work; they are plain ints (not obs counters) so the pin
# holds even with metrics disabled.
PROBES: Dict[str, int] = {"explain_calls": 0, "dp_keys": 0}


def reset_probes() -> None:
    for k in PROBES:
        PROBES[k] = 0


@dataclass
class ClusterReport:
    """Provenance record for one synopsis cluster touched by a query."""

    cluster: int
    label: str
    mass: float          # expected element occurrences routed through it
    tuples: float        # expected binding tuples it accounts for
    debt: float          # live error debt (0.0 unless a maintainer feeds it)
    error_weight: float  # mass * debt: ranking key for "blame"

    def to_payload(self) -> dict:
        return {
            "cluster": self.cluster,
            "label": self.label,
            "mass": self.mass,
            "tuples": self.tuples,
            "debt": self.debt,
            "error_weight": self.error_weight,
        }


@dataclass
class EstimateExplanation:
    """Decomposition of one selectivity estimate.

    ``contributions`` is a list of ``(cluster_id, term)`` pairs whose
    left-associated sum equals ``estimate`` bitwise when
    ``exact_split`` is true (see the module docstring for when it is
    not).  ``clusters`` ranks the touched clusters by ``error_weight``
    (truncated to the requested ``top_k``).
    """

    estimate: float
    contributions: List[Tuple[int, float]]
    exact_split: bool
    touched: int
    clusters: List[ClusterReport]

    def to_payload(self) -> dict:
        return {
            "estimate": self.estimate,
            "exact_split": self.exact_split,
            "touched": self.touched,
            "contributions": [
                {"cluster": c, "term": t} for c, t in self.contributions
            ],
            "clusters": [c.to_payload() for c in self.clusters],
        }


def explain_query(
    sketch,
    query: TwigQuery,
    debt: Optional[Mapping[int, float]] = None,
    top_k: int = 5,
) -> EstimateExplanation:
    """Evaluate ``query`` against ``sketch`` and explain the estimate."""
    result = eval_query(sketch, query)
    return explain_estimate(result, debt=debt, top_k=top_k)


def explain_estimate(
    result: ResultSketch,
    debt: Optional[Mapping[int, float]] = None,
    top_k: int = 5,
) -> EstimateExplanation:
    """Explain where ``estimate_selectivity(result)`` comes from.

    ``debt`` maps synopsis cluster ids to live error debt (as kept by
    :class:`repro.core.live.SketchMaintainer`); omitted clusters carry
    zero debt.  ``top_k`` bounds the returned cluster reports.
    """
    PROBES["explain_calls"] += 1
    get_metrics().counter("explain.calls").inc()
    with get_tracer().span("estimate.explain") as span:
        if result.empty:
            return EstimateExplanation(
                estimate=0.0, contributions=[], exact_split=True,
                touched=0, clusters=[],
            )
        qnode_of: Dict[str, QueryNode] = {n.var: n for n in result.query.nodes}
        memo: Dict[RSKey, float] = {}
        # The plain DP, verbatim: identical float ops, identical result.
        estimate = _tuples_per_element(result, result.root_key, qnode_of, memo)
        PROBES["dp_keys"] += len(memo)

        contributions, exact = _split_contributions(
            result, qnode_of, memo, estimate
        )
        clusters = _cluster_reports(result, qnode_of, memo, debt or {}, top_k)
        span.annotate(estimate=estimate, clusters=len(clusters))
        return EstimateExplanation(
            estimate=estimate,
            contributions=contributions,
            exact_split=exact,
            touched=len({key[0] for key in result.label}),
            clusters=clusters,
        )


def _split_contributions(
    result: ResultSketch,
    qnode_of: Dict[str, QueryNode],
    memo: Dict[RSKey, float],
    estimate: float,
) -> Tuple[List[Tuple[int, float]], bool]:
    root_key = result.root_key
    root_cluster = root_key[0]
    qroot = qnode_of[root_key[1]]
    edges = result.out.get(root_key, {})
    if len(qroot.children) == 1 and edges:
        qc = qroot.children[0]
        terms: List[Tuple[int, float]] = []
        subtotal = 0.0
        for v_key, avg in edges.items():
            if v_key[1] != qc.var:
                continue
            term = avg * memo[v_key]
            terms.append((v_key[0], term))
            subtotal += term
        if terms and not (qc.optional and subtotal < 1.0):
            # estimate == 1.0 * subtotal, and 1.0 * x is bitwise x.
            return terms, True
    # Clamped, multi-branch, or edgeless root: no additive split exists.
    return [(root_cluster, estimate)], False


def _cluster_reports(
    result: ResultSketch,
    qnode_of: Dict[str, QueryNode],
    memo: Dict[RSKey, float],
    debt: Mapping[int, float],
    top_k: int,
) -> List[ClusterReport]:
    # Occurrence mass: pre-order propagation of expected element counts
    # through average edge weights (estimate_bindings' recurrence),
    # re-aggregated per synopsis cluster instead of per query variable.
    occurrences: Dict[RSKey, float] = {result.root_key: 1.0}
    mass: Dict[int, float] = {}
    tuples: Dict[int, float] = {}
    label: Dict[int, str] = {}
    for qnode in result.query.nodes:  # pre-order: parents before children
        for key in result.bind.get(qnode.var, []):
            occ = occurrences.get(key, 0.0)
            cid = key[0]
            mass[cid] = mass.get(cid, 0.0) + occ
            # t-values are absent for sub-DAGs the DP short-circuited
            # past (early zero break); they account for zero tuples.
            tuples[cid] = tuples.get(cid, 0.0) + occ * memo.get(key, 0.0)
            label.setdefault(cid, result.label[key])
            for child_key, avg in result.out.get(key, {}).items():
                occurrences[child_key] = (
                    occurrences.get(child_key, 0.0) + occ * avg
                )
    reports = [
        ClusterReport(
            cluster=cid,
            label=label[cid],
            mass=m,
            tuples=tuples.get(cid, 0.0),
            debt=float(debt.get(cid, 0.0)),
            error_weight=m * float(debt.get(cid, 0.0)),
        )
        for cid, m in mass.items()
    ]
    reports.sort(key=lambda r: (-r.error_weight, -r.mass, r.cluster))
    if top_k is not None and top_k >= 0:
        reports = reports[:top_k]
    return reports
