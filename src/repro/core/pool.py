"""CREATEPOOL: bottom-up generation of candidate merge operations (Fig. 6).

A merge of two synopsis nodes clusters well only when their sub-trees are
similar, and sub-trees become similar only after *their* children have been
merged.  CREATEPOOL therefore scans same-label cluster pairs in increasing
order of depth (the longest downward path of any extent element) and keeps
the best ``Uh`` candidates by marginal-gain ratio ``errd / sized`` in a
bounded heap; generation stops once the current depth is exhausted and the
heap is full.

On top of the paper's scheme, very large (label, depth) groups are thinned
with a locality window: group members are sorted by a cheap structural key
(out-degree, total child count, extent size) and each node is paired only
with its ``pair_window`` nearest neighbours.  ``pair_window=None`` restores
the exhaustive behaviour (see DESIGN.md).
"""

from __future__ import annotations

import heapq
from bisect import bisect_left
from typing import Dict, List, Optional, Tuple

from repro.core.partition import MergePartition

# A pool entry: (ratio, errd, sized, u, v).
PoolEntry = Tuple[float, float, int, int, int]


def _structural_key(partition: MergePartition, cid: int) -> Tuple[float, float, int]:
    out = partition.out_stats[cid]
    total = sum(s for s, _ in out.values()) / max(1, partition.count[cid])
    return (len(out), total, partition.count[cid])


class _BoundedBest:
    """Keeps the ``limit`` entries with the smallest ratio."""

    def __init__(self, limit: int) -> None:
        self.limit = limit
        # Max-heap by ratio via negation, so the worst entry pops first.
        self._heap: List[Tuple[float, float, int, int, int]] = []

    def push(self, entry: PoolEntry) -> None:
        ratio, errd, sized, u, v = entry
        item = (-ratio, errd, sized, u, v)
        if len(self._heap) < self.limit:
            heapq.heappush(self._heap, item)
        elif item > self._heap[0]:
            # Strictly better (smaller ratio) than the current worst.
            heapq.heapreplace(self._heap, item)

    def __len__(self) -> int:
        return len(self._heap)

    def entries(self) -> List[PoolEntry]:
        return [(-nratio, errd, sized, u, v) for nratio, errd, sized, u, v in self._heap]


def create_pool(
    partition: MergePartition,
    heap_upper: int,
    pair_window: Optional[int] = 32,
    stop_when_full: bool = False,
) -> List[PoolEntry]:
    """Generate up to ``heap_upper`` scored merge candidates, bottom-up.

    With ``stop_when_full=True`` generation terminates once the current
    depth is exhausted and the heap is full -- the literal Fig. 6
    behaviour.  The default keeps scanning all levels while retaining only
    the best ``heap_upper`` candidates: when the space budget is reached
    before the pool is ever regenerated, the literal variant never
    considers upper-level merges and leaves redundancy there (see the
    pool ablation benchmark); scanning costs the same asymptotics and
    strictly improves the candidate set.
    """
    best = _BoundedBest(heap_upper)

    # Group clusters by label, bucketed by depth.
    by_label: Dict[str, Dict[int, List[int]]] = {}
    max_depth = 0
    for cid, label in partition.cluster_label.items():
        depth = partition.cluster_depth[cid]
        by_label.setdefault(label, {}).setdefault(depth, []).append(cid)
        if depth > max_depth:
            max_depth = depth

    # Labels where any merge is possible at all.
    mergeable = {
        label: buckets
        for label, buckets in by_label.items()
        if sum(len(b) for b in buckets.values()) >= 2
    }

    for level in range(max_depth + 1):
        for buckets in mergeable.values():
            news = buckets.get(level)
            if not news:
                continue
            partners: List[int] = []
            for depth, bucket in buckets.items():
                if depth <= level:
                    partners.extend(bucket)
            if len(partners) < 2:
                continue
            _pair_up(partition, news, partners, level, pair_window, best)
        if stop_when_full and len(best) >= heap_upper:
            break
    return best.entries()


def _pair_up(
    partition: MergePartition,
    news: List[int],
    partners: List[int],
    level: int,
    pair_window: Optional[int],
    best: _BoundedBest,
) -> None:
    """Score pairs (a, b) with ``a`` at the current level, max-depth = level."""
    if pair_window is None or len(partners) <= pair_window + 1:
        seen = set()
        for a in news:
            for b in partners:
                if a == b:
                    continue
                key = (a, b) if a < b else (b, a)
                if key in seen:
                    continue
                seen.add(key)
                _score(partition, key[0], key[1], best)
        return

    keyed = sorted(
        (( _structural_key(partition, cid), cid) for cid in partners),
    )
    keys = [k for k, _ in keyed]
    order = [cid for _, cid in keyed]
    half = max(1, pair_window // 2)
    seen = set()
    for a in news:
        pos = bisect_left(keys, _structural_key(partition, a))
        lo = max(0, pos - half)
        hi = min(len(order), pos + half + 1)
        for b in order[lo:hi]:
            if a == b:
                continue
            key = (a, b) if a < b else (b, a)
            if key in seen:
                continue
            seen.add(key)
            _score(partition, key[0], key[1], best)


def _score(partition: MergePartition, u: int, v: int, best: _BoundedBest) -> None:
    result = partition.evaluate_merge(u, v)
    best.push((result.ratio, result.errd, result.sized, u, v))
