"""CREATEPOOL: bottom-up generation of candidate merge operations (Fig. 6).

A merge of two synopsis nodes clusters well only when their sub-trees are
similar, and sub-trees become similar only after *their* children have been
merged.  CREATEPOOL therefore scans same-label cluster pairs in increasing
order of depth (the longest downward path of any extent element) and keeps
the best ``Uh`` candidates by marginal-gain ratio ``errd / sized`` in a
bounded heap; generation stops once the current depth is exhausted and the
heap is full.

On top of the paper's scheme, very large (label, depth) groups are thinned
with a locality window: group members are sorted by a cheap structural key
(out-degree, total child count, extent size) and each node is paired only
with its ``pair_window`` nearest neighbours.  ``pair_window=None`` restores
the exhaustive behaviour (see DESIGN.md).

Performance machinery (docs/PERFORMANCE.md):

* :class:`PoolState` persists the label/depth grouping and the structural-
  key cache across pool regenerations, so a regeneration no longer rebuilds
  both from scratch;
* within one call, each label's partner list (and its key-sorted variant)
  is accumulated level by level with linear merges instead of the seed's
  per-level re-sort;
* ``memoize=True`` scores through the partition's versioned merge memo, so
  pairs whose neighbourhood is unchanged since the previous regeneration
  are not re-scored;
* ``workers > 1`` fans the miss-scoring across a fork-based process pool,
  one task per (label, depth) group, merging results into the same
  deterministic bounded-best structure.

All variants emit the *same candidate set* as the seed implementation
(:func:`create_pool_reference`): candidate selection in the bounded heap is
a top-``Uh`` under a total order, hence independent of scoring order.
"""

from __future__ import annotations

import heapq
from bisect import bisect_left
from typing import Dict, Iterable, List, Optional, Set, Tuple

from repro.core.partition import MergePartition

# A pool entry: (ratio, errd, sized, u, v).
PoolEntry = Tuple[float, float, int, int, int]


def _structural_key(partition, cid: int) -> Tuple[float, float, int]:
    # Dispatches to the partition implementation (dict-backed
    # MergePartition or the flat-array KernelPartition) -- both compute
    # the identical floats.
    return partition.structural_key(cid)


class _BoundedBest:
    """Keeps the ``limit`` entries with the smallest ratio.

    Selection is a top-``limit`` under the *total* order of the (negated)
    entry tuples, so the retained set does not depend on push order — the
    property the incremental and parallel generation paths rely on.
    """

    def __init__(self, limit: int) -> None:
        self.limit = limit
        # Max-heap by ratio via negation, so the worst entry pops first.
        self._heap: List[Tuple[float, float, int, int, int]] = []

    def push(self, entry: PoolEntry) -> None:
        ratio, errd, sized, u, v = entry
        item = (-ratio, errd, sized, u, v)
        if len(self._heap) < self.limit:
            heapq.heappush(self._heap, item)
        elif item > self._heap[0]:
            # Strictly better (smaller ratio) than the current worst.
            heapq.heapreplace(self._heap, item)

    def __len__(self) -> int:
        return len(self._heap)

    def entries(self) -> List[PoolEntry]:
        return [(-nratio, errd, sized, u, v) for nratio, errd, sized, u, v in self._heap]


class PoolState:
    """Incrementally maintained CREATEPOOL inputs.

    Persists, across pool regenerations of one build:

    * ``groups``: label -> depth -> set of live cluster ids (the grouping
      the seed rebuilt from ``cluster_label`` on every call);
    * ``max_depth``: an upper bound on live cluster depths (merges never
      raise it past the initial maximum);
    * a structural-key cache validated by the partition's version stamps.

    The owning builder must report every applied merge via
    :meth:`on_merge`; :meth:`rebuilt_groups` lets tests audit the
    incremental state against a from-scratch rebuild.
    """

    __slots__ = ("groups", "max_depth", "_keys", "key_hits", "key_recomputes")

    def __init__(self, partition) -> None:
        groups: Dict[str, Dict[int, Set[int]]] = {}
        max_depth = 0
        depth_of = partition.cluster_depth
        for cid, label in partition.cluster_label.items():
            depth = depth_of[cid]
            groups.setdefault(label, {}).setdefault(depth, set()).add(cid)
            if depth > max_depth:
                max_depth = depth
        self.groups = groups
        self.max_depth = max_depth
        self._keys: Dict[int, Tuple[int, Tuple[float, float, int]]] = {}
        self.key_hits = 0
        self.key_recomputes = 0

    def structural_key(self, partition, cid: int):
        # Cached under ``struct_version`` (child-side stamps only): a
        # parent-only update -- the cluster's parent merged, changing
        # count/dims *on the parent's side* -- bumps ``version`` but not
        # ``struct_version``, and the structural key provably depends only
        # on the cluster's own dims and count.  Keying on the full
        # ``version`` (the pre-split behaviour) forced a recompute on
        # every such bump.
        version = partition.struct_version.get(cid, 0)
        cached = self._keys.get(cid)
        if cached is not None and cached[0] == version:
            self.key_hits += 1
            return cached[1]
        self.key_recomputes += 1
        key = _structural_key(partition, cid)
        self._keys[cid] = (version, key)
        return key

    def on_merge(
        self,
        label_u: str,
        label_v: str,
        u: int,
        v: int,
        depth_u: int,
        depth_v: int,
        new_depth: int,
    ) -> None:
        """Update the grouping after ``v`` was merged into ``u``."""
        buckets_v = self.groups.get(label_v)
        if buckets_v is not None:
            bucket = buckets_v.get(depth_v)
            if bucket is not None:
                bucket.discard(v)
                if not bucket:
                    del buckets_v[depth_v]
        if new_depth != depth_u:
            buckets_u = self.groups.get(label_u)
            if buckets_u is not None:
                bucket = buckets_u.get(depth_u)
                if bucket is not None:
                    bucket.discard(u)
                    if not bucket:
                        del buckets_u[depth_u]
                buckets_u.setdefault(new_depth, set()).add(u)
        self._keys.pop(v, None)

    def rebuilt_groups(self, partition) -> Dict[str, Dict[int, Set[int]]]:
        """A from-scratch grouping for consistency audits (tests only)."""
        return PoolState(partition).groups


class _LabelAccumulator:
    """Per-label partner list, accumulated level by level within one call."""

    __slots__ = ("plain", "keyed", "keys")

    def __init__(self) -> None:
        self.plain: List[int] = []
        # Lazily built once the group outgrows the pair window; kept as two
        # parallel sorted lists ((key, cid) pairs and bare keys for bisect).
        self.keyed: Optional[List[Tuple[Tuple[float, float, int], int]]] = None
        self.keys: Optional[List[Tuple[float, float, int]]] = None


def _merge_keyed(older, newer):
    """Linear merge of two (key, cid)-sorted lists; returns (keyed, keys)."""
    merged: List[Tuple[Tuple[float, float, int], int]] = []
    append = merged.append
    i = j = 0
    len_a, len_b = len(older), len(newer)
    while i < len_a and j < len_b:
        if older[i] <= newer[j]:
            append(older[i])
            i += 1
        else:
            append(newer[j])
            j += 1
    if i < len_a:
        merged.extend(older[i:])
    if j < len_b:
        merged.extend(newer[j:])
    return merged, [k for k, _ in merged]


def _level_pairs(
    news: List[int],
    acc: _LabelAccumulator,
    pair_window: Optional[int],
    key_of,
) -> List[Tuple[int, int]]:
    """Pairs (a, b), a < b, joining this level's ``news`` into the group.

    Mirrors the seed ``_pair_up`` semantics: every new node is paired with
    all partners of depth <= level (exhaustive mode) or with its
    ``pair_window`` nearest neighbours by structural key (windowed mode).
    Updates ``acc`` with the new nodes as a side effect.
    """
    plain = acc.plain
    total = len(plain) + len(news)
    pairs: List[Tuple[int, int]] = []
    if pair_window is None or total <= pair_window + 1:
        for i, a in enumerate(news):
            for b in plain:
                pairs.append((a, b) if a < b else (b, a))
            for b in news[i + 1:]:
                pairs.append((a, b) if a < b else (b, a))
        plain.extend(news)
        return pairs

    news_keyed = sorted((key_of(a), a) for a in news)
    if acc.keyed is None:
        acc.keyed = sorted((key_of(c), c) for c in plain)
        acc.keys = [k for k, _ in acc.keyed]
    acc.keyed, acc.keys = _merge_keyed(acc.keyed, news_keyed)
    plain.extend(news)

    keys, order = acc.keys, acc.keyed
    half = max(1, pair_window // 2)
    size = len(order)
    seen: Set[Tuple[int, int]] = set()
    for key, a in news_keyed:
        pos = bisect_left(keys, key)
        lo = 0 if pos <= half else pos - half
        hi = min(size, pos + half + 1)
        for _, b in order[lo:hi]:
            if a == b:
                continue
            pair = (a, b) if a < b else (b, a)
            if pair in seen:
                continue
            seen.add(pair)
            pairs.append(pair)
    return pairs


# ----------------------------------------------------------------------
# Parallel scoring (workers > 1): fork-based process pool
# ----------------------------------------------------------------------

_WORKER_PARTITION = None  # MergePartition or KernelPartition (fork-shared)


def _worker_init(partition) -> None:
    global _WORKER_PARTITION
    _WORKER_PARTITION = partition


def _worker_score(pairs: List[Tuple[int, int]]) -> List[PoolEntry]:
    part = _WORKER_PARTITION
    raw = part._eval_raw
    out: List[PoolEntry] = []
    append = out.append
    for u, v in pairs:
        errd, sized = raw(u, v)
        ratio = errd / sized if sized > 0 else float("inf")
        append((ratio, errd, sized, u, v))
    return out


def _make_worker_pool(partition, workers: int):
    """A fork-context pool whose workers share ``partition`` by COW memory.

    Returns None when fork is unavailable (caller falls back to serial).
    """
    import multiprocessing

    try:
        ctx = multiprocessing.get_context("fork")
    except ValueError:  # pragma: no cover - non-POSIX platforms
        return None
    return ctx.Pool(processes=workers, initializer=_worker_init,
                    initargs=(partition,))


# ----------------------------------------------------------------------
# Optimized CREATEPOOL
# ----------------------------------------------------------------------


def create_pool(
    partition,
    heap_upper: int,
    pair_window: Optional[int] = 32,
    stop_when_full: bool = False,
    *,
    state: Optional[PoolState] = None,
    memoize: bool = False,
    workers: int = 1,
) -> List[PoolEntry]:
    """Generate up to ``heap_upper`` scored merge candidates, bottom-up.

    With ``stop_when_full=True`` generation terminates once the current
    depth is exhausted and the heap is full -- the literal Fig. 6
    behaviour.  The default keeps scanning all levels while retaining only
    the best ``heap_upper`` candidates: when the space budget is reached
    before the pool is ever regenerated, the literal variant never
    considers upper-level merges and leaves redundancy there (see the
    pool ablation benchmark); scanning costs the same asymptotics and
    strictly improves the candidate set.

    ``state`` reuses an incrementally maintained :class:`PoolState`
    instead of regrouping from scratch; ``memoize`` routes scoring through
    the partition's versioned merge memo; ``workers > 1`` scores memo
    misses on a process pool.  All combinations return the same candidate
    set (property-tested in tests/test_build_equivalence.py).
    """
    best = _BoundedBest(heap_upper)

    if state is not None:
        groups: Iterable[Dict[int, Iterable[int]]] = state.groups.values()
        max_depth = state.max_depth

        def key_of(cid: int):
            return state.structural_key(partition, cid)

    else:
        scratch: Dict[str, Dict[int, List[int]]] = {}
        max_depth = 0
        depth_of = partition.cluster_depth
        for cid, label in partition.cluster_label.items():
            depth = depth_of[cid]
            scratch.setdefault(label, {}).setdefault(depth, []).append(cid)
            if depth > max_depth:
                max_depth = depth
        groups = scratch.values()
        key_cache: Dict[int, Tuple[float, float, int]] = {}

        def key_of(cid: int):
            key = key_cache.get(cid)
            if key is None:
                key = key_cache[cid] = _structural_key(partition, cid)
            return key

    # Labels where any merge is possible at all.
    active = [
        (buckets, _LabelAccumulator())
        for buckets in groups
        if sum(len(b) for b in buckets.values()) >= 2
    ]

    memo = partition.merge_memo if memoize else None
    version = partition.version
    eval_block = partition.eval_block

    # The bounded-best push, inlined for the million-candidate hot loops.
    heap = best._heap
    heappush, heapreplace = heapq.heappush, heapq.heapreplace

    worker_pool = None
    if workers and workers > 1:
        worker_pool = _make_worker_pool(partition, workers)
    try:
        for level in range(max_depth + 1):
            tasks: List[List[Tuple[int, int]]] = []
            for buckets, acc in active:
                news = buckets.get(level)
                if not news:
                    continue
                pairs = _level_pairs(
                    list(news) if not isinstance(news, list) else news,
                    acc, pair_window, key_of,
                )
                if not pairs:
                    continue
                if memo is not None:
                    # Serve memo hits inline; only misses need scoring.
                    hits = 0
                    misses: List[Tuple[int, int]] = []
                    miss = misses.append
                    for pair in pairs:
                        entry = memo.get(pair)
                        if (
                            entry is not None
                            and entry[0] == version[pair[0]]
                            and entry[1] == version[pair[1]]
                        ):
                            hits += 1
                            if entry[4] <= 0:
                                continue  # non-improving: never pooled
                            item = (-entry[2], entry[3], entry[4],
                                    pair[0], pair[1])
                            if len(heap) < heap_upper:
                                heappush(heap, item)
                            elif item > heap[0]:
                                heapreplace(heap, item)
                        else:
                            miss(pair)
                    partition.memo_hits += hits
                    pairs = misses
                    if not pairs:
                        continue
                if worker_pool is not None:
                    tasks.append(pairs)
                    continue
                if memo is not None:
                    partition.memo_misses += len(pairs)
                    # eval_block == per-pair raw() bitwise; it only
                    # vectorizes on the numpy kernel (large unions).
                    for (u, v), (errd, sized) in zip(
                        pairs, eval_block(pairs)
                    ):
                        if sized > 0:
                            ratio = errd / sized
                        else:
                            ratio = float("inf")
                        memo[(u, v)] = (version[u], version[v],
                                        ratio, errd, sized)
                        if sized <= 0:
                            continue  # non-improving: skip at insertion
                        item = (-ratio, errd, sized, u, v)
                        if len(heap) < heap_upper:
                            heappush(heap, item)
                        elif item > heap[0]:
                            heapreplace(heap, item)
                else:
                    for (u, v), (errd, sized) in zip(
                        pairs, eval_block(pairs)
                    ):
                        if sized <= 0:
                            continue  # non-improving: skip at insertion
                        item = (-(errd / sized), errd, sized, u, v)
                        if len(heap) < heap_upper:
                            heappush(heap, item)
                        elif item > heap[0]:
                            heapreplace(heap, item)
            if worker_pool is not None and tasks:
                for chunk in worker_pool.map(_worker_score, tasks):
                    if memo is not None:
                        partition.memo_misses += len(chunk)
                    for ratio, errd, sized, u, v in chunk:
                        if memo is not None:
                            memo[(u, v)] = (version[u], version[v],
                                            ratio, errd, sized)
                        if sized <= 0:
                            continue  # non-improving: skip at insertion
                        item = (-ratio, errd, sized, u, v)
                        if len(heap) < heap_upper:
                            heappush(heap, item)
                        elif item > heap[0]:
                            heapreplace(heap, item)
            if stop_when_full and len(best) >= heap_upper:
                break
    finally:
        if worker_pool is not None:
            worker_pool.close()
            worker_pool.join()
    return best.entries()


# ----------------------------------------------------------------------
# Seed implementation (reference mode)
# ----------------------------------------------------------------------


def create_pool_reference(
    partition: MergePartition,
    heap_upper: int,
    pair_window: Optional[int] = 32,
    stop_when_full: bool = False,
) -> List[PoolEntry]:
    """The seed CREATEPOOL, verbatim: regroups and re-sorts on every call.

    Scoring goes through :meth:`MergePartition.evaluate_merge_reference`.
    Kept as the "before" arm of the benchmark feed and as the oracle the
    optimized :func:`create_pool` is equivalence-tested against.
    """
    best = _BoundedBest(heap_upper)

    # Group clusters by label, bucketed by depth.
    by_label: Dict[str, Dict[int, List[int]]] = {}
    max_depth = 0
    for cid, label in partition.cluster_label.items():
        depth = partition.cluster_depth[cid]
        by_label.setdefault(label, {}).setdefault(depth, []).append(cid)
        if depth > max_depth:
            max_depth = depth

    # Labels where any merge is possible at all.
    mergeable = {
        label: buckets
        for label, buckets in by_label.items()
        if sum(len(b) for b in buckets.values()) >= 2
    }

    for level in range(max_depth + 1):
        for buckets in mergeable.values():
            news = buckets.get(level)
            if not news:
                continue
            partners: List[int] = []
            for depth, bucket in buckets.items():
                if depth <= level:
                    partners.extend(bucket)
            if len(partners) < 2:
                continue
            _pair_up(partition, news, partners, level, pair_window, best)
        if stop_when_full and len(best) >= heap_upper:
            break
    return best.entries()


def _pair_up(
    partition: MergePartition,
    news: List[int],
    partners: List[int],
    level: int,
    pair_window: Optional[int],
    best: _BoundedBest,
) -> None:
    """Score pairs (a, b) with ``a`` at the current level, max-depth = level."""
    if pair_window is None or len(partners) <= pair_window + 1:
        seen = set()
        for a in news:
            for b in partners:
                if a == b:
                    continue
                key = (a, b) if a < b else (b, a)
                if key in seen:
                    continue
                seen.add(key)
                _score(partition, key[0], key[1], best)
        return

    keyed = sorted(
        (( _structural_key(partition, cid), cid) for cid in partners),
    )
    keys = [k for k, _ in keyed]
    order = [cid for _, cid in keyed]
    half = max(1, pair_window // 2)
    seen = set()
    for a in news:
        pos = bisect_left(keys, _structural_key(partition, a))
        lo = max(0, pos - half)
        hi = min(len(order), pos + half + 1)
        for b in order[lo:hi]:
            if a == b:
                continue
            key = (a, b) if a < b else (b, a)
            if key in seen:
                continue
            seen.add(key)
            _score(partition, key[0], key[1], best)


def _score(partition: MergePartition, u: int, v: int, best: _BoundedBest) -> None:
    result = partition.evaluate_merge_reference(u, v)
    if result.sized <= 0:
        return  # non-improving by definition: skip at pool insertion
    best.push((result.ratio, result.errd, result.sized, u, v))
