"""Incremental maintenance of count-stable summaries under updates.

The paper builds its summaries offline; a production deployment also needs
to keep them fresh as the document changes.  Count stability localizes the
work nicely: an element's class depends only on its label and its
children's classes, so inserting or deleting a sub-tree can only change
the classes of the edited node's *ancestors* -- a root path of length at
most the document height -- plus a bottom-up classification of the
inserted sub-tree itself.

:class:`StableMaintainer` owns a mutable document and its evolving
summary:

* ``insert_subtree(parent, spec)`` attaches a new sub-tree (given in the
  nested-tuple format of ``XMLTree.from_nested``) and updates classes;
* ``delete_subtree(node)`` detaches a sub-tree and updates classes;
* ``summary()`` exports a regular :class:`StableSummary`, identical (up
  to class renaming) to a from-scratch ``build_stable`` of the current
  document -- the equivalence the test suite checks after random edit
  sequences.

Cost per edit: O(|inserted sub-tree| + height * max fan-out) hash
operations, versus O(|document|) for a rebuild.
"""

from __future__ import annotations

from collections import Counter
from typing import Dict, List, Optional, Tuple, Union

from repro.core.stable import StableSummary
from repro.xmltree.node import XMLNode
from repro.xmltree.tree import XMLTree

Signature = Tuple[str, Tuple[Tuple[int, int], ...]]


class StableMaintainer:
    """Maintains the count-stable summary of a mutable document."""

    def __init__(self, tree: XMLTree) -> None:
        self.tree = tree
        # Signature interning: signature -> class id (ids never reused).
        self._classes: Dict[Signature, int] = {}
        self._signature_of: Dict[int, Signature] = {}
        self._count: Dict[int, int] = {}
        self._next_cid = 0
        # Per-node class assignment, keyed by object identity.
        self._class_of: Dict[int, int] = {}
        self.edits_applied = 0
        # Optional per-class net count deltas since the last drain; enabled
        # by track_deltas() so synopsis-layer consumers (repro.core.live)
        # can reconcile without diffing whole summaries.  None = disabled.
        self._deltas: Optional[Dict[int, int]] = None
        # Optional per-node value moves (value, old_cid, new_cid) for
        # maintaining per-class value statistics; None = disabled.
        self._value_moves: Optional[List[Tuple[str, Optional[int], Optional[int]]]] = None

        for node in tree.root.iter_postorder():
            self._assign(node)

    # ------------------------------------------------------------------
    # Classification primitives
    # ------------------------------------------------------------------

    def _signature(self, node: XMLNode) -> Signature:
        counts: Counter = Counter(self._class_of[id(c)] for c in node.children)
        return (node.label, tuple(sorted(counts.items())))

    def _intern(self, signature: Signature) -> int:
        cid = self._classes.get(signature)
        if cid is None:
            cid = self._next_cid
            self._next_cid += 1
            self._classes[signature] = cid
            self._signature_of[cid] = signature
            self._count[cid] = 0
        return cid

    def _assign(self, node: XMLNode) -> int:
        """(Re)compute and record the class of one node."""
        signature = self._signature(node)
        cid = self._intern(signature)
        old = self._class_of.get(id(node))
        if old == cid:
            return cid
        if old is not None:
            self._release(old)
        self._class_of[id(node)] = cid
        self._count[cid] += 1
        self._record(cid, +1)
        if self._value_moves is not None and node.value is not None:
            self._value_moves.append((node.value, old, cid))
        return cid

    def _record(self, cid: int, delta: int) -> None:
        if self._deltas is not None:
            self._deltas[cid] = self._deltas.get(cid, 0) + delta

    def _release(self, cid: int) -> None:
        self._count[cid] -= 1
        self._record(cid, -1)
        if self._count[cid] == 0:
            # Garbage-collect the empty class so the summary stays minimal.
            del self._count[cid]
            signature = self._signature_of.pop(cid)
            del self._classes[signature]

    def _drop_node(self, node: XMLNode) -> None:
        cid = self._class_of.pop(id(node))
        self._release(cid)
        if self._value_moves is not None and node.value is not None:
            self._value_moves.append((node.value, cid, None))

    def _reclassify_ancestors(self, node: Optional[XMLNode]) -> None:
        """Refresh classes from ``node`` up to the root."""
        while node is not None:
            before = self._class_of.get(id(node))
            after = self._assign(node)
            if before == after:
                break  # signature unchanged; ancestors cannot change either
            node = node.parent

    # ------------------------------------------------------------------
    # Edits
    # ------------------------------------------------------------------

    def insert_subtree(
        self, parent: XMLNode, spec: Union[str, tuple, XMLNode]
    ) -> XMLNode:
        """Attach a sub-tree under ``parent`` and update the summary.

        ``spec`` is a label, a nested ``(label, [children])`` tuple, or a
        detached :class:`XMLNode`.  Returns the inserted root node.
        """
        node = spec if isinstance(spec, XMLNode) else _build(spec)
        if node.parent is not None:
            raise ValueError("spec node is already attached to a document")
        if id(node) in self._class_of:
            raise ValueError("spec node is already tracked by this maintainer")
        parent.add_child(node)
        for descendant in node.iter_postorder():
            self._assign(descendant)
        self._reclassify_ancestors(parent)
        self.edits_applied += 1
        return node

    def delete_subtree(self, node: XMLNode) -> None:
        """Detach ``node`` (and its sub-tree) and update the summary."""
        parent = node.parent
        if parent is None:
            raise ValueError("cannot delete the document root")
        parent.children.remove(node)
        node.parent = None
        for descendant in node.iter_postorder():
            self._drop_node(descendant)
        self._reclassify_ancestors(parent)
        self.edits_applied += 1

    # ------------------------------------------------------------------
    # Export
    # ------------------------------------------------------------------

    @property
    def num_classes(self) -> int:
        return len(self._count)

    def summary(self) -> StableSummary:
        """Materialize the current count-stable summary.

        Node ids are the maintainer's class ids (stable across edits for
        surviving classes).  Depth per class is derived from the class DAG
        -- all elements of a class have isomorphic sub-trees, so the class
        depth is exact.
        """
        summary = StableSummary()
        for cid, count in self._count.items():
            label, child_counts = self._signature_of[cid]
            summary.add_node(cid, label, count)
            for child_cid, k in child_counts:
                summary.add_edge(cid, child_cid, k)

        depth: Dict[int, int] = {}
        order = summary.topological_order()
        if order is None:  # pragma: no cover - class DAGs are always acyclic
            raise AssertionError("count-stable class graph must be acyclic")
        for cid in reversed(order):
            children = summary.out.get(cid, {})
            depth[cid] = 1 + max((depth[c] for c in children), default=-1)
        summary.depth = depth

        root_cid = self._class_of[id(self.tree.root)]
        summary.root_id = root_cid
        summary.doc_height = depth[root_cid]
        return summary

    def class_of(self, node: XMLNode) -> int:
        """Current class id of a tracked node."""
        return self._class_of[id(node)]

    # ------------------------------------------------------------------
    # Delta tracking (for incremental synopsis maintenance)
    # ------------------------------------------------------------------

    def track_deltas(self) -> None:
        """Start recording per-class net count deltas.

        After this call, every class count change is accumulated into a
        delta map that :meth:`drain_deltas` returns and clears.  A class
        that is born and dies within one window nets to a zero entry; a
        consumer distinguishes births/deaths by whether the class id is
        still alive (:meth:`count_of` is not None).
        """
        if self._deltas is None:
            self._deltas = {}

    def drain_deltas(self) -> Dict[int, int]:
        """Return and clear the accumulated per-class count deltas."""
        if self._deltas is None:
            raise RuntimeError("track_deltas() was never enabled")
        deltas = self._deltas
        self._deltas = {}
        return deltas

    def track_value_moves(self) -> None:
        """Also record per-node value moves ``(value, old_cid, new_cid)``.

        ``old_cid`` is None for nodes entering the document, ``new_cid``
        None for nodes leaving it; reclassified nodes carry both.  Drained
        (and cleared) by :meth:`drain_value_moves`.
        """
        if self._value_moves is None:
            self._value_moves = []

    def drain_value_moves(self) -> List[Tuple[str, Optional[int], Optional[int]]]:
        """Return and clear the accumulated value moves."""
        if self._value_moves is None:
            raise RuntimeError("track_value_moves() was never enabled")
        moves = self._value_moves
        self._value_moves = []
        return moves

    def count_of(self, cid: int) -> Optional[int]:
        """Current element count of a class, or None if it is dead."""
        return self._count.get(cid)

    def signature_of(self, cid: int) -> Signature:
        """Interned signature ``(label, ((child_cid, k), ...))`` of a live
        class.  Immutable for the lifetime of the class id."""
        return self._signature_of[cid]


def _build(spec: Union[str, tuple]) -> XMLNode:
    if isinstance(spec, str):
        return XMLNode(spec)
    label, children = spec
    node = XMLNode(label)
    for child in children:
        node.add_child(_build(child))
    return node
