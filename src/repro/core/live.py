"""Live TreeSketch maintenance under document mutation.

TSBUILD compresses a frozen count-stable summary; this module keeps the
*compressed* synopsis fresh while the document keeps changing, without
ever rebuilding from scratch.  Two layers:

:class:`LivePartition`
    Extends :class:`~repro.core.partition.MergePartition` with the three
    primitive deltas a count-stable summary can undergo (a class's
    signature is interned and immutable for its lifetime, so the only
    possible changes are class *births*, *deaths*, and *count changes*).
    Each primitive maintains every partition table exactly -- grouped
    adjacency, reverse index, per-edge sufficient statistics, edge counts,
    version stamps -- so the existing merge machinery (``scored_merge``,
    ``apply_merge``, CREATEPOOL, the versioned merge memo) keeps working
    unchanged on the mutated state.  It also adds :meth:`dissolve`, the
    inverse of ``apply_merge``: a cluster is split back into per-class
    singletons with exactly reconstructed statistics, which is what lets a
    local re-merge *reduce* error instead of only trading space.

    All sufficient statistics are sums of integer-valued floats, so the
    incremental adds/subtracts are exact (no drift) well below 2**53 --
    the randomized oracle in tests/test_live_maintain.py holds the
    maintained tables bitwise-equal to a from-scratch reconstruction.

:class:`SketchMaintainer`
    The subsystem facade: owns a :class:`~repro.core.maintain.StableMaintainer`
    (document + evolving summary), drains its per-edit class deltas,
    routes newborn classes into existing clusters via a
    ``struct_version``-backed structural-key cache (singleton fallback on
    miss), tracks per-cluster **error debt** (absolute squared-error drift
    accumulated per mutation), and triggers **bounded local re-merges** --
    a mini-TSBUILD over only the debt-crossing clusters and their
    neighbours -- when debt crosses the configured threshold or the
    synopsis outgrows its budget.  A full pass (``remerge(full=True)``)
    reuses :class:`~repro.core.build.TreeSketchBuilder` verbatim on the
    live partition.

Cost per edit: O(affected classes x their degree) dictionary work plus an
occasional bounded re-merge -- versus tens of seconds for a full TSBUILD
(the ``maintain`` arm of BENCH_build.json records the gap).  Consistency
guarantees and the debt model are documented in docs/MAINTENANCE.md.
"""

from __future__ import annotations

import heapq
import time
from collections import Counter, deque
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Set, Tuple, Union

from repro.core.build import TreeSketchBuilder, TSBuildOptions
from repro.core.maintain import StableMaintainer
from repro.core.partition import MergePartition
from repro.core.treesketch import TreeSketch
from repro.obs import get_metrics, get_tracer
from repro.xmltree.node import XMLNode
from repro.xmltree.tree import XMLTree


@dataclass
class LiveOptions:
    """Tuning knobs of live maintenance.

    * ``debt_threshold`` -- squared-error drift a cluster may accumulate
      before it seeds a local re-merge (units of squared error, same
      scale as ``MergePartition.total_sq``);
    * ``size_slack`` -- multiplicative headroom over the byte budget
      before an oversize re-merge triggers (mutations may add singleton
      clusters faster than debt accrues);
    * ``route_tolerance`` -- relative slack on the average-total-child-
      count component of the structural key when routing a newborn class
      into an existing cluster (``0`` = exact match only);
    * ``max_region`` -- cap on the number of clusters a local re-merge
      considers (debt seeds first, then neighbours);
    * ``max_dissolve`` -- cap on the singleton clusters one local
      re-merge may create by dissolving drifted clusters.  The region
      drain scores same-label pairs, so its cost is quadratic in the
      region size; without this cap, dissolving one giant cluster (at an
      aggressive budget a cluster can hold thousands of classes) turns a
      "bounded" re-merge into a near-full TSBUILD.  Clusters larger than
      the remaining allowance keep their (still exact) statistics and
      have their debt popped -- they are repaired only by
      :meth:`SketchMaintainer.remerge` with ``full=True``;
    * ``auto_remerge`` -- run re-merges automatically after the edits
      that trigger them (disable to drive :meth:`SketchMaintainer.remerge`
      manually, e.g. from tests);
    * ``track_values`` -- maintain per-class value statistics so
      snapshots carry value summaries (costs one Counter update per
      valued element per edit).
    """

    debt_threshold: float = 32.0
    size_slack: float = 1.25
    route_tolerance: float = 0.25
    max_region: int = 64
    max_dissolve: int = 256
    auto_remerge: bool = True
    track_values: bool = False


class LivePartition(MergePartition):
    """A merge partition that also supports class births, deaths, count
    changes, and cluster dissolution -- the primitives of live
    maintenance."""

    def __init__(self, stable) -> None:
        super().__init__(stable)
        # Live class adjacency (the frozen ``stable.out`` goes stale as
        # classes are born and die); ground truth for ``gs`` regrouping.
        self.s_out: Dict[int, Dict[int, float]] = {
            nid: {dst: float(k) for dst, k in stable.out.get(nid, {}).items()}
            for nid in stable.node_ids()
        }
        self.live_root_class: int = stable.root_id
        self.live_doc_height: int = stable.doc_height
        # Version stamps last held by ids that left the partition, so a
        # resurrected id (class reborn as a singleton, or a member re-made
        # a cluster by dissolve) restarts *above* its old stamps and the
        # versioned merge memo / heap entries can never go stale-valid.
        self._stamp_floor: Dict[int, Tuple[int, int]] = {}
        # Batch state for begin_batch/end_batch reconciliation.
        self._dirty: Set[int] = set()
        self._version_only: Set[int] = set()

    # ------------------------------------------------------------------
    # Overrides keeping the base machinery correct on live state
    # ------------------------------------------------------------------

    def source_out(self, s_id: int) -> Dict[int, float]:
        return self.s_out.get(s_id, {})

    def root_cluster(self) -> int:
        return self.assign[self.live_root_class]

    def doc_height(self) -> int:
        return self.live_doc_height

    def apply_merge(self, u: int, v: int) -> int:
        ver = self.version.get(v, 0)
        sver = self.struct_version.get(v, 0)
        merged = super().apply_merge(u, v)
        self._note_floor(v, ver, sver)
        return merged

    def _note_floor(self, cid: int, version: int, struct_version: int) -> None:
        prev = self._stamp_floor.get(cid, (0, 0))
        self._stamp_floor[cid] = (
            max(prev[0], version), max(prev[1], struct_version)
        )

    def _resurrect(self, cid: int) -> None:
        floor_v, floor_sv = self._stamp_floor.pop(cid, (0, 0))
        self.version[cid] = floor_v + 1
        self.struct_version[cid] = floor_sv + 1

    # ------------------------------------------------------------------
    # Batch reconciliation of stable-summary deltas
    # ------------------------------------------------------------------

    def begin_batch(self) -> None:
        """Start a reconciliation batch (one document edit)."""
        self._dirty.clear()
        self._version_only.clear()

    def end_batch(self) -> Dict[int, float]:
        """Finish a batch: prune zero dims, recompute squared errors,
        bump version stamps with the ``apply_merge`` discipline.

        Returns the per-cluster absolute squared-error drift of this
        batch -- the raw material of the maintainer's error debt.
        """
        drift: Dict[int, float] = {}
        # Sorted so total_sq accumulates in a deterministic order.
        for u in sorted(self._dirty):
            if u not in self.members:
                continue  # cluster died within the batch
            out = self.out_stats[u]
            dead_dims = [t for t, (s, sq) in out.items() if s == 0.0 and sq == 0.0]
            for t in dead_dims:
                del out[t]
                self.num_edges -= 1
            count = self.count[u]
            new_sq = 0.0
            for s, sq in out.values():
                new_sq += sq - (s * s) / count
            old_sq = self.cluster_sq[u]
            self.cluster_sq[u] = new_sq
            self.total_sq += new_sq - old_sq
            drift[u] = abs(new_sq - old_sq)
            # Same discipline as apply_merge: the changed cluster bumps
            # both stamps; its children (scores read the parent side)
            # bump the full version only.
            self.version[u] = self.version.get(u, 0) + 1
            self.struct_version[u] = self.struct_version.get(u, 0) + 1
            for child in out:
                if child != u:
                    self.version[child] = self.version.get(child, 0) + 1
        for t in self._version_only:
            if t in self.members and t not in self._dirty:
                self.version[t] = self.version.get(t, 0) + 1
        self._dirty.clear()
        self._version_only.clear()
        return drift

    def live_add_class(
        self,
        cid: int,
        label: str,
        depth: int,
        count: int,
        out: Dict[int, float],
        target: Optional[int] = None,
    ) -> int:
        """Register a newborn stable class.

        With ``target=None`` the class becomes a fresh singleton cluster;
        otherwise it is routed into the existing cluster ``target`` (same
        label required).  Returns the owning cluster id.
        """
        if cid in self.s_count:
            raise ValueError(f"class {cid} already tracked")
        self.s_count[cid] = count
        self.s_label[cid] = label
        self.s_depth[cid] = depth
        self.s_out[cid] = dict(out)
        assign = self.assign
        grouped: Dict[int, float] = {}
        for dst, k in out.items():
            c = assign[dst]
            grouped[c] = grouped.get(c, 0.0) + k
        self.gs[cid] = grouped

        if target is None:
            owner = cid
            self.members[cid] = {cid}
            self.count[cid] = count
            self.cluster_label[cid] = label
            self.cluster_depth[cid] = depth
            self.out_stats[cid] = {}
            self.cluster_sq[cid] = 0.0
            self.in_sources.setdefault(cid, set())
            self._resurrect(cid)
        else:
            owner = target
            if self.cluster_label[target] != label:
                raise ValueError(
                    f"cannot route {label!r} class into "
                    f"{self.cluster_label[target]!r} cluster {target}"
                )
            self.members[target].add(cid)
            self.count[target] += count
            if depth > self.cluster_depth[target]:
                self.cluster_depth[target] = depth
        assign[cid] = owner
        self.src[cid] = [grouped, owner, count]

        out_o = self.out_stats[owner]
        for t, k in grouped.items():
            self.in_sources[t].add(cid)
            acc = out_o.get(t)
            if acc is None:
                out_o[t] = (count * k, count * k * k)
                self.num_edges += 1
            else:
                out_o[t] = (acc[0] + count * k, acc[1] + count * k * k)
            # The targets gained a parent class: their merge scores
            # changed even if their own dims did not.
            self._version_only.add(t)
        self._dirty.add(owner)
        return owner

    def live_remove_class(self, cid: int) -> None:
        """Remove a dead stable class, killing its cluster if emptied."""
        owner = self.assign.pop(cid)
        count = self.s_count.pop(cid)
        del self.s_label[cid]
        del self.s_depth[cid]
        del self.s_out[cid]
        grouped = self.gs.pop(cid)
        del self.src[cid]
        out_o = self.out_stats[owner]
        for t, k in grouped.items():
            s, sq = out_o[t]
            out_o[t] = (s - count * k, sq - count * k * k)
            self.in_sources[t].discard(cid)
            self._version_only.add(t)
        self.members[owner].discard(cid)
        self.count[owner] -= count
        self._dirty.add(owner)
        if self.count[owner] == 0:
            self._kill_cluster(owner)

    def live_change_count(self, cid: int, new_count: int) -> None:
        """Propagate a surviving class's element-count change."""
        old = self.s_count[cid]
        delta = new_count - old
        if delta == 0:
            return
        self.s_count[cid] = new_count
        self.src[cid][2] = new_count
        owner = self.assign[cid]
        out_o = self.out_stats[owner]
        for t, k in self.gs[cid].items():
            s, sq = out_o[t]
            out_o[t] = (s + delta * k, sq + delta * k * k)
        self.count[owner] += delta
        self._dirty.add(owner)

    def _kill_cluster(self, owner: int) -> None:
        assert not self.members[owner], "cluster emptied with members left"
        del self.members[owner]
        del self.count[owner]
        del self.cluster_label[owner]
        del self.cluster_depth[owner]
        out = self.out_stats.pop(owner)
        self.num_edges -= len(out)
        self.total_sq -= self.cluster_sq.pop(owner)
        sources = self.in_sources.pop(owner)
        # Liveness: a live class pointing into this cluster would mean a
        # live member -- contradiction; parents died earlier in the batch
        # (class-DAG edges go from larger to smaller ids, and deaths are
        # processed in descending id order).
        assert not sources, f"dead cluster {owner} still has sources {sources}"
        ver = self.version.pop(owner, 0)
        sver = self.struct_version.pop(owner, 0)
        self._note_floor(owner, ver, sver)
        self._dirty.discard(owner)

    # ------------------------------------------------------------------
    # Dissolution (inverse of apply_merge)
    # ------------------------------------------------------------------

    def dissolve(self, u: int) -> List[int]:
        """Split cluster ``u`` back into one singleton cluster per member
        class, with exactly reconstructed statistics.

        The inverse of ``apply_merge``: afterwards a local re-merge can
        re-cluster the region under *current* statistics, which is what
        lets accuracy recover (merging alone can only trade error for
        space).  Returns the new cluster ids (the member class ids).
        """
        member_set = self.members.pop(u)
        members = sorted(member_set)
        old_out = self.out_stats.pop(u)
        self.num_edges -= len(old_out)
        self.total_sq -= self.cluster_sq.pop(u)
        del self.count[u]
        del self.cluster_label[u]
        del self.cluster_depth[u]
        sources = self.in_sources.pop(u)
        ver = self.version.pop(u, 0)
        sver = self.struct_version.pop(u, 0)
        self._note_floor(u, ver, sver)

        for m in members:
            self.assign[m] = m
            self.src[m][1] = m
            self.members[m] = {m}
            self.count[m] = self.s_count[m]
            self.cluster_label[m] = self.s_label[m]
            self.cluster_depth[m] = self.s_depth[m]
            self.in_sources[m] = set()
            self._resurrect(m)

        # Regroup every source's adjacency: the aggregated ->u entry
        # splits into per-singleton entries (s_out is the ground truth).
        for s_id in sources:
            gs = self.gs[s_id]
            gs.pop(u, None)
            for dst, k in self.s_out[s_id].items():
                if dst in member_set:
                    gs[dst] = gs.get(dst, 0.0) + k
                    self.in_sources[dst].add(s_id)

        # Fresh singleton statistics (zero squared error by construction).
        for m in members:
            count = self.s_count[m]
            out_m = {
                t: (count * k, count * k * k) for t, k in self.gs[m].items()
            }
            self.out_stats[m] = out_m
            self.num_edges += len(out_m)
            self.cluster_sq[m] = 0.0

        # External parents: the single ->u dim splits per member.
        parent_clusters = {self.assign[s] for s in sources} - member_set
        for p in parent_clusters:
            out_p = self.out_stats[p]
            count_p = self.count[p]
            old_stats = out_p.pop(u, None)
            old_dim_sq = 0.0
            if old_stats is not None:
                self.num_edges -= 1
                old_dim_sq = old_stats[1] - (old_stats[0] * old_stats[0]) / count_p
            acc: Dict[int, List[float]] = {}
            for s_id in self.members[p]:
                if s_id not in sources:
                    continue
                sc = self.s_count[s_id]
                for t, k in self.gs[s_id].items():
                    if t in member_set:
                        entry = acc.get(t)
                        if entry is None:
                            acc[t] = [sc * k, sc * k * k]
                        else:
                            entry[0] += sc * k
                            entry[1] += sc * k * k
            new_dim_sq = 0.0
            for t, (sp, sqp) in acc.items():
                out_p[t] = (sp, sqp)
                self.num_edges += 1
                new_dim_sq += sqp - (sp * sp) / count_p
            self.cluster_sq[p] += new_dim_sq - old_dim_sq
            self.total_sq += new_dim_sq - old_dim_sq
            self.version[p] = self.version.get(p, 0) + 1
            self.struct_version[p] = self.struct_version.get(p, 0) + 1

        # Former siblings-through-u: targets of the old cluster keep their
        # dims but their parent set changed composition.
        for t in old_out:
            if t in self.members and t not in member_set:
                self.version[t] = self.version.get(t, 0) + 1
        return members


class DebtController:
    """Drift-adaptive ``debt_threshold``: accuracy-driven, not guessed.

    ``debt_threshold`` trades re-merge work against drift, but the right
    setting depends on the workload: a threshold that is fine for a cold
    sketch lets windowed relative error blow past its budget once churn
    concentrates on a few clusters, while an always-tight threshold
    re-merges constantly for accuracy nobody asked for.  The controller
    closes the loop from *measured* error (the shadow sampler / accuracy
    ledger feed :meth:`observe`) back to the knob:

    * when the trailing-window mean error exceeds ``target_rel_error``
      (burn rate > 1), the threshold is multiplied by ``tighten_factor``
      (clamped at ``min_threshold``) and a re-merge runs immediately so
      the already-accumulated debt is settled at the new, tighter bar;
      the error window is cleared so recovery is measured on the
      repaired sketch rather than on stale pre-repair samples;
    * when the burn rate stays below ``relax_below`` for ``cooldown``
      consecutive observations, the threshold is multiplied by
      ``relax_factor`` (clamped at ``max_threshold``, the configured
      fixed setting) -- accuracy headroom is traded back for fewer
      re-merges.

    Metrics: ``live.adaptive.observations`` / ``.tightened`` /
    ``.relaxed`` counters and ``live.adaptive.threshold`` /
    ``.burn_rate`` gauges.
    """

    def __init__(
        self,
        maintainer: "SketchMaintainer",
        target_rel_error: float = 0.25,
        window: int = 16,
        min_samples: int = 4,
        tighten_factor: float = 0.25,
        relax_factor: float = 2.0,
        relax_below: float = 0.5,
        cooldown: int = 32,
        min_threshold: Optional[float] = None,
        max_threshold: Optional[float] = None,
    ) -> None:
        if target_rel_error <= 0:
            raise ValueError("target_rel_error must be positive")
        if not 0.0 < tighten_factor < 1.0:
            raise ValueError("tighten_factor must be in (0, 1)")
        if relax_factor <= 1.0:
            raise ValueError("relax_factor must be > 1")
        self.maintainer = maintainer
        base = maintainer.options.debt_threshold
        self.target_rel_error = float(target_rel_error)
        self.min_samples = max(1, int(min_samples))
        self.tighten_factor = float(tighten_factor)
        self.relax_factor = float(relax_factor)
        self.relax_below = float(relax_below)
        self.cooldown = max(1, int(cooldown))
        self.min_threshold = (
            float(min_threshold) if min_threshold is not None
            else base / 1024.0
        )
        self.max_threshold = (
            float(max_threshold) if max_threshold is not None else base
        )
        self.errors: deque = deque(maxlen=max(1, int(window)))
        self.observations = 0
        self.tightened = 0
        self.relaxed = 0
        self._calm = 0
        metrics = get_metrics()
        self._m_obs = metrics.counter("live.adaptive.observations")
        self._m_tight = metrics.counter("live.adaptive.tightened")
        self._m_relax = metrics.counter("live.adaptive.relaxed")
        self._g_threshold = metrics.gauge("live.adaptive.threshold")
        self._g_burn = metrics.gauge("live.adaptive.burn_rate")
        self._g_threshold.set(maintainer.options.debt_threshold)

    def burn_rate(self) -> float:
        if not self.errors:
            return 0.0
        return (sum(self.errors) / len(self.errors)) / self.target_rel_error

    def observe(self, rel_error: float) -> None:
        """Fold one measured relative error into the control loop."""
        self.observations += 1
        self._m_obs.inc()
        self.errors.append(float(rel_error))
        burn = self.burn_rate()
        self._g_burn.set(burn)
        if len(self.errors) < self.min_samples:
            return
        opts = self.maintainer.options
        if burn > 1.0:
            self._calm = 0
            tightened = max(
                self.min_threshold, opts.debt_threshold * self.tighten_factor
            )
            if tightened < opts.debt_threshold:
                opts.debt_threshold = tightened
                self.tightened += 1
                self._m_tight.inc()
                self._g_threshold.set(tightened)
            # Settle debt already sitting above the tighter bar now --
            # waiting for the next edit would keep serving the drifted
            # sketch -- and restart measurement on the repaired state.
            self.maintainer._maybe_remerge()
            self.errors.clear()
            self._g_burn.set(0.0)
        elif burn < self.relax_below:
            self._calm += 1
            if (self._calm >= self.cooldown
                    and opts.debt_threshold < self.max_threshold):
                opts.debt_threshold = min(
                    self.max_threshold,
                    opts.debt_threshold * self.relax_factor,
                )
                self.relaxed += 1
                self._m_relax.inc()
                self._g_threshold.set(opts.debt_threshold)
                self._calm = 0
        else:
            self._calm = 0

    def info(self) -> Dict[str, object]:
        return {
            "target_rel_error": self.target_rel_error,
            "threshold": self.maintainer.options.debt_threshold,
            "min_threshold": self.min_threshold,
            "max_threshold": self.max_threshold,
            "burn_rate": self.burn_rate(),
            "observations": self.observations,
            "tightened": self.tightened,
            "relaxed": self.relaxed,
            "window_n": len(self.errors),
        }


class SketchMaintainer:
    """Keeps a budgeted TreeSketch fresh under subtree insert/delete.

    Owns the document (via :class:`StableMaintainer`), the live partition,
    the per-cluster error debt, and the re-merge policy.  ``snapshot()``
    exports a regular :class:`TreeSketch` at any point; every estimator
    downstream works unchanged.
    """

    def __init__(
        self,
        tree: XMLTree,
        budget_bytes: int,
        options: Optional[LiveOptions] = None,
        build_options: Optional[TSBuildOptions] = None,
    ) -> None:
        self.options = options or LiveOptions()
        self.build_options = build_options or TSBuildOptions()
        self.budget_bytes = budget_bytes
        self.stable = StableMaintainer(tree)
        self._seed_summary = self.stable.summary()
        self.partition = LivePartition(self._seed_summary)
        builder = TreeSketchBuilder(
            self._seed_summary, self.build_options, partition=self.partition
        )
        builder.compress_to(budget_bytes)
        self.stable.track_deltas()

        self.debt: Dict[int, float] = {}
        self.mutations = 0
        self.remerges = 0
        self.remerge_merges = 0
        self.routed = 0
        self.singletons = 0
        self.key_hits = 0
        self.key_recomputes = 0
        # Clusters touched since the last re-merge (oversize-trigger seeds).
        self._touched: Set[int] = set()
        # struct_version-backed structural-key cache for routing, plus a
        # lazily (re)built (label, depth) -> cluster ids index.
        self._skey_cache: Dict[int, Tuple[int, Tuple[float, float, int]]] = {}
        self._label_index: Optional[Dict[Tuple[str, int], List[int]]] = None

        # Optional drift-adaptive debt_threshold loop (enable_adaptive).
        self.adaptive: Optional[DebtController] = None

        self._value_counts: Optional[Dict[int, Counter]] = None
        if self.options.track_values:
            self.stable.track_value_moves()
            counts: Dict[int, Counter] = {}
            for node in tree.root.iter_preorder():
                if node.value is not None:
                    cid = self.stable.class_of(node)
                    counts.setdefault(cid, Counter())[node.value] += 1
            self._value_counts = counts

        metrics = get_metrics()
        self._m_mutations = metrics.counter("live.mutations")
        self._m_inserts = metrics.counter("live.inserts")
        self._m_deletes = metrics.counter("live.deletes")
        self._m_routed = metrics.counter("live.routed")
        self._m_singletons = metrics.counter("live.singletons")
        self._m_remerges = metrics.counter("live.remerges")
        self._m_remerge_merges = metrics.counter("live.remerge_merges")
        self._m_remerge_s = metrics.histogram("live.remerge_seconds")
        self._g_debt = metrics.gauge("live.debt_total")
        self._g_clusters = metrics.gauge("live.clusters")
        self._g_size = metrics.gauge("live.size_bytes")
        self._refresh_gauges()

    @property
    def tree(self) -> XMLTree:
        """The live document (owned by the stable maintainer)."""
        return self.stable.tree

    # ------------------------------------------------------------------
    # Edits
    # ------------------------------------------------------------------

    def insert_subtree(
        self, parent: XMLNode, spec: Union[str, tuple, XMLNode]
    ) -> XMLNode:
        """Attach a subtree under ``parent`` and reconcile the sketch."""
        node = self.stable.insert_subtree(parent, spec)
        self._m_inserts.inc()
        self._reconcile()
        return node

    def delete_subtree(self, node: XMLNode) -> None:
        """Detach ``node``'s subtree and reconcile the sketch."""
        self.stable.delete_subtree(node)
        self._m_deletes.inc()
        self._reconcile()

    def _reconcile(self) -> None:
        part = self.partition
        deltas = self.stable.drain_deltas()
        births: List[int] = []
        deaths: List[int] = []
        changes: List[Tuple[int, int]] = []
        for cid, delta in deltas.items():
            alive = self.stable.count_of(cid)
            if cid in part.s_count:
                if alive is None:
                    deaths.append(cid)
                elif delta:
                    changes.append((cid, alive))
            elif alive is not None:
                births.append(cid)
            # else: born and died within this edit; nothing to reconcile.

        part.begin_batch()
        # Deaths in descending class id = parents before children (class-
        # DAG edges always point from larger to smaller interned ids), so
        # reverse-index removals find their targets alive.
        for cid in sorted(deaths, reverse=True):
            part.live_remove_class(cid)
            self.debt.pop(cid, None)
        for cid, new_count in changes:
            part.live_change_count(cid, new_count)
        # Births ascending = children before parents, so grouping sees
        # every referenced class already assigned.
        for cid in sorted(births):
            label, child_counts = self.stable.signature_of(cid)
            out = {c: float(k) for c, k in child_counts}
            depth = 1 + max((part.s_depth[c] for c in out), default=-1)
            count = self.stable.count_of(cid)
            target = self._route(label, depth, out)
            owner = part.live_add_class(
                cid, label, depth, count, out, target=target
            )
            if target is None:
                self.singletons += 1
                self._m_singletons.inc()
                self._index_add(label, depth, cid)
            else:
                self.routed += 1
                self._m_routed.inc()
            self._touched.add(owner)
        drift = part.end_batch()

        root_class = self.stable.class_of(self.stable.tree.root)
        part.live_root_class = root_class
        part.live_doc_height = part.s_depth[root_class]

        for u, d in drift.items():
            self.debt[u] = self.debt.get(u, 0.0) + d
            self._touched.add(u)
        for u in list(self.debt):
            if u not in part.members:
                del self.debt[u]

        if self._value_counts is not None:
            self._apply_value_moves()

        self.mutations += 1
        self._m_mutations.inc()
        self._refresh_gauges()
        if self.options.auto_remerge:
            self._maybe_remerge()

    def _apply_value_moves(self) -> None:
        counts = self._value_counts
        for value, old_cid, new_cid in self.stable.drain_value_moves():
            if old_cid is not None:
                counter = counts.get(old_cid)
                if counter is not None:
                    counter[value] -= 1
                    if counter[value] <= 0:
                        del counter[value]
                    if not counter:
                        del counts[old_cid]
            if new_cid is not None:
                counts.setdefault(new_cid, Counter())[value] += 1

    # ------------------------------------------------------------------
    # Routing (structural-key cache, struct_version-backed)
    # ------------------------------------------------------------------

    def _cluster_key(self, cid: int) -> Tuple[float, float, int]:
        part = self.partition
        stamp = part.struct_version.get(cid, 0)
        cached = self._skey_cache.get(cid)
        if cached is not None and cached[0] == stamp:
            self.key_hits += 1
            return cached[1]
        self.key_recomputes += 1
        key = part.structural_key(cid)
        self._skey_cache[cid] = (stamp, key)
        return key

    def _ensure_index(self) -> Dict[Tuple[str, int], List[int]]:
        index = self._label_index
        if index is None:
            index = {}
            part = self.partition
            for cid, label in part.cluster_label.items():
                index.setdefault((label, part.cluster_depth[cid]), []).append(cid)
            self._label_index = index
        return index

    def _index_add(self, label: str, depth: int, cid: int) -> None:
        if self._label_index is not None:
            self._label_index.setdefault((label, depth), []).append(cid)

    def _route(
        self, label: str, depth: int, out: Dict[int, float]
    ) -> Optional[int]:
        """Find an existing cluster structurally close enough to absorb a
        newborn class; None = fall back to a singleton."""
        part = self.partition
        candidates = self._ensure_index().get((label, depth))
        if not candidates:
            return None
        grouped: Dict[int, float] = {}
        for dst, k in out.items():
            c = part.assign[dst]
            grouped[c] = grouped.get(c, 0.0) + k
        degree = len(grouped)
        total = sum(grouped.values())
        tolerance = self.options.route_tolerance
        best = None
        best_gap = None
        scanned = 0
        for cid in candidates:
            if cid not in part.members or part.cluster_label.get(cid) != label:
                continue  # stale index entry (merged or dead); skip lazily
            scanned += 1
            if scanned > 32:
                break
            key_degree, key_total, _count = self._cluster_key(cid)
            if abs(degree - key_degree) > 1:
                continue
            gap = abs(total - key_total)
            if gap > tolerance * max(1.0, key_total):
                continue
            if best_gap is None or gap < best_gap:
                best, best_gap = cid, gap
        return best

    # ------------------------------------------------------------------
    # Error debt and re-merging
    # ------------------------------------------------------------------

    def enable_adaptive(self, target_rel_error: float = 0.25,
                        **kwargs) -> DebtController:
        """Attach a drift-adaptive ``debt_threshold`` controller.

        Measured errors flow in through :meth:`observe_error` (the
        serving tier subscribes the accuracy ledger to it); the
        controller tightens and relaxes ``options.debt_threshold``.
        """
        self.adaptive = DebtController(
            self, target_rel_error=target_rel_error, **kwargs)
        return self.adaptive

    def observe_error(self, rel_error: float) -> None:
        """Feed one measured relative error to the adaptive controller
        (no-op unless :meth:`enable_adaptive` was called)."""
        if self.adaptive is not None:
            self.adaptive.observe(rel_error)

    def total_debt(self) -> float:
        return sum(self.debt.values())

    def max_debt(self) -> float:
        return max(self.debt.values(), default=0.0)

    def size_bytes(self) -> int:
        return self.partition.size_bytes()

    @property
    def num_clusters(self) -> int:
        return self.partition.num_nodes

    def _maybe_remerge(self) -> None:
        threshold = self.options.debt_threshold
        part = self.partition
        crossing = [
            u for u, d in self.debt.items()
            if d > threshold and u in part.members
        ]
        oversize = part.size_bytes() > self.budget_bytes * self.options.size_slack
        if crossing or oversize:
            self._run_remerge(crossing, oversize)

    def remerge(self, full: bool = False) -> int:
        """Run a re-merge now; ``full=True`` forces a global TSBUILD pass
        over the live partition (no rebuild -- the same state object).
        Returns the number of merges applied."""
        if full:
            return self._run_remerge([], oversize=True, full=True)
        crossing = [
            u for u, d in self.debt.items()
            if d > self.options.debt_threshold and u in self.partition.members
        ]
        return self._run_remerge(crossing, oversize=True)

    def _run_remerge(
        self, crossing: List[int], oversize: bool, full: bool = False
    ) -> int:
        part = self.partition
        started = time.perf_counter()
        with get_tracer().span(
            "live.remerge", seeds=len(crossing), full=full
        ) as span:
            if full:
                builder = TreeSketchBuilder(
                    self._seed_summary, self.build_options, partition=part
                )
                builder.compress_to(self.budget_bytes)
                merges = builder.merges_applied
                self.debt.clear()
            else:
                merges = self._remerge_region(crossing, oversize)
            span.annotate(merges=merges, size_bytes=part.size_bytes())
        self.remerges += 1
        self.remerge_merges += merges
        self._m_remerges.inc()
        self._m_remerge_merges.inc(merges)
        self._m_remerge_s.observe(time.perf_counter() - started)
        self._touched.clear()
        self._label_index = None
        self._refresh_gauges()
        return merges

    def _remerge_region(self, crossing: List[int], oversize: bool) -> int:
        """Bounded local re-merge: dissolve the debt-crossing clusters,
        then mini-TSBUILD over them and their neighbours."""
        part = self.partition
        opts = self.options
        region: Set[int] = set(crossing)
        if oversize:
            region |= {u for u in self._touched if u in part.members}
        seeds = sorted(
            region, key=lambda u: self.debt.get(u, 0.0), reverse=True
        )[: opts.max_region]
        region = set(seeds)
        for u in seeds:
            region |= part.parents_of(u)
            region.update(t for t in part.out_stats[u] if t in part.members)
        region = {u for u in region if u in part.members}
        if len(region) > opts.max_region:
            region = set(sorted(
                region, key=lambda u: self.debt.get(u, 0.0), reverse=True
            )[: opts.max_region])

        # Dissolve the clusters whose statistics drifted past the
        # threshold: re-clustering them from exact singletons is what
        # makes accuracy recover instead of only compounding merges.
        # Largest debt first, under a singleton allowance: the drain
        # below scores same-label pairs (quadratic in region size), so a
        # giant cluster must never explode the region.
        threshold = opts.debt_threshold
        dissolve_left = opts.max_dissolve
        for u in sorted(region, key=lambda c: (-self.debt.get(c, 0.0), c)):
            members = part.members.get(u)
            if (
                self.debt.get(u, 0.0) > threshold
                and members is not None
                and 1 < len(members) <= dissolve_left
            ):
                region.discard(u)
                born = part.dissolve(u)
                region.update(born)
                dissolve_left -= len(born)
        for u in list(self.debt):
            if u not in part.members:
                del self.debt[u]

        merges = self._drain_region(region)
        for u in region:
            self.debt.pop(u, None)
        return merges

    def _drain_region(self, region: Set[int]) -> int:
        """TSBUILD's heap drain restricted to one cluster region."""
        part = self.partition
        version = part.version
        by_label: Dict[str, List[int]] = {}
        for u in sorted(region):
            if u in part.members:
                by_label.setdefault(part.cluster_label[u], []).append(u)

        heap: List[Tuple] = []
        for group in by_label.values():
            for i, u in enumerate(group):
                for v in group[i + 1:]:
                    ratio, errd, sized = part.scored_merge(u, v)
                    if sized > 0:
                        heap.append((ratio, errd, sized, u, v,
                                     version.get(u, 0), version.get(v, 0)))
        heapq.heapify(heap)

        merged_into: Dict[int, int] = {}

        def resolve(cid: int) -> int:
            while cid in merged_into:
                cid = merged_into[cid]
            return cid

        merges = 0
        budget = self.budget_bytes
        size = part.size_bytes()
        while heap:
            ratio, errd, sized, u, v, ver_u, ver_v = heapq.heappop(heap)
            if size <= budget and ratio > 0:
                break  # under budget and no free improvements left
            u, v = resolve(u), resolve(v)
            if u == v or u not in part.members or v not in part.members:
                continue
            cur_u, cur_v = version.get(u, 0), version.get(v, 0)
            if (ver_u, ver_v) != (cur_u, cur_v):
                ratio, errd, sized = part.scored_merge(u, v)
                if sized > 0:
                    heapq.heappush(
                        heap, (ratio, errd, sized, u, v, cur_u, cur_v)
                    )
                continue
            part.apply_merge(u, v)
            merged_into[v] = u
            merges += 1
            size = part.size_bytes()
        return merges

    # ------------------------------------------------------------------
    # Export and introspection
    # ------------------------------------------------------------------

    def snapshot(self) -> TreeSketch:
        """Freeze the current live partition into a TreeSketch."""
        sketch = self.partition.to_treesketch()
        if self._value_counts:
            from repro.values import ValueSummary, annotate_sketch_values

            summaries = {
                cid: ValueSummary.from_values(list(counter.elements()))
                for cid, counter in self._value_counts.items()
                if counter
            }
            annotate_sketch_values(sketch, summaries)
        return sketch

    def drift_reference(
        self, every: int = 100
    ) -> Callable[[object], float]:
        """A shadow-sampler reference that estimates against a periodic
        full rebuild of the current document (docs/MAINTENANCE.md).

        The returned callable rebuilds a fresh TSBUILD sketch at most
        every ``every`` mutations and answers estimates from it -- plug it
        into :class:`repro.serve.shadow.ShadowSampler` to measure the
        maintained sketch's drift vs. a from-scratch build.
        """
        from repro.core.estimate import estimate_selectivity
        from repro.core.evaluate import eval_query

        state = {"at": -1, "sketch": None}

        def reference(query) -> float:
            if state["sketch"] is None or self.mutations - state["at"] >= every:
                state["sketch"] = TreeSketchBuilder(
                    self.stable.summary(), self.build_options
                ).compress_to(self.budget_bytes)
                state["at"] = self.mutations
            return estimate_selectivity(eval_query(state["sketch"], query))

        return reference

    def info(self) -> Dict[str, object]:
        part = self.partition
        return {
            "mutations": self.mutations,
            "nodes": part.num_nodes,
            "edges": part.num_edges,
            "size_bytes": part.size_bytes(),
            "budget_bytes": self.budget_bytes,
            "squared_error": part.total_sq,
            "debt_total": self.total_debt(),
            "debt_max": self.max_debt(),
            "remerges": self.remerges,
            "remerge_merges": self.remerge_merges,
            "routed": self.routed,
            "singletons": self.singletons,
            "debt_threshold": self.options.debt_threshold,
            "adaptive": (
                self.adaptive.info() if self.adaptive is not None else None
            ),
        }

    def check(self) -> None:
        """Expensive consistency audit (test suite)."""
        self.partition.check_invariants()
        part = self.partition
        total = sum(part.cluster_sq.values())
        assert abs(total - part.total_sq) < 1e-6 * max(1.0, abs(total)), \
            (total, part.total_sq)
        doc_nodes = len(list(self.stable.tree.root.iter_preorder()))
        assert sum(part.count.values()) == doc_nodes

    def _refresh_gauges(self) -> None:
        self._g_debt.set(self.total_debt())
        self._g_clusters.set(self.partition.num_nodes)
        self._g_size.set(self.partition.size_bytes())


def find_labeled(root: XMLNode, label: str, ordinal: int = 0) -> Optional[XMLNode]:
    """The ``ordinal``-th node labeled ``label`` in document pre-order.

    This is the wire protocol's node addressing scheme (``label`` +
    ``ordinal`` in an ``update`` request): it stays meaningful across
    mutations without relying on the XMLTree oid index, which the
    maintainer's in-place edits deliberately do not refresh.  Returns
    ``None`` when fewer than ``ordinal + 1`` such nodes exist.
    """
    seen = 0
    for node in root.iter_preorder():
        if node.label == label:
            if seen == ordinal:
                return node
            seen += 1
    return None


def rebuild_partition_like(
    maintainer: SketchMaintainer,
) -> Tuple[MergePartition, Dict[int, int]]:
    """A from-scratch partition replaying the maintainer's clustering.

    Builds a fresh :class:`MergePartition` over the *current* summary and
    merges it into exactly the maintainer's cluster membership.  Because
    every sufficient statistic is a sum of integer-valued floats, the
    replayed tables must equal the live ones bitwise -- the oracle
    tests/test_live_maintain.py holds the subsystem to.

    Returns ``(fresh, id_map)`` where ``id_map`` maps each live cluster id
    to its replayed id (live ids can outlive their founding class, so the
    replay anchors each cluster on its smallest surviving member).
    """
    live = maintainer.partition
    fresh = MergePartition(maintainer.stable.summary())
    id_map: Dict[int, int] = {}
    for cid in sorted(live.members):
        members = sorted(live.members[cid])
        anchor = members[0]
        id_map[cid] = anchor
        for member in members[1:]:
            fresh.apply_merge(anchor, member)
    return fresh, id_map
