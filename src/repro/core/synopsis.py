"""Generic node-partitioning graph-synopsis model (paper Section 3.1).

A graph synopsis of a document ``T(V, E)`` is induced by a label-respecting
equivalence relation over ``V``: each synopsis node is an equivalence class
(its *extent*), and a synopsis edge ``(u, v)`` exists iff some element in
``extent(u)`` has a child in ``extent(v)``.

:class:`GraphSynopsis` is the shared representation used by count-stable
summaries, TreeSketches, and the twig-XSketch baseline: integer node ids,
labels, extent sizes, and a weighted out-adjacency (the weight's meaning --
exact count, average count, or mere existence -- is up to the subclass).
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Set, Tuple


class GraphSynopsis:
    """A node- and edge-labeled graph synopsis.

    Attributes:
        label: node id -> element tag of the class.
        count: node id -> extent size ``|extent(u)|``.
        out: node id -> {child node id -> edge weight}.
        root_id: the class containing the document root.
        doc_height: height of the summarized document (used to bound
            descendant-axis searches on possibly-cyclic synopses).
    """

    def __init__(self) -> None:
        self.label: Dict[int, str] = {}
        self.count: Dict[int, int] = {}
        self.out: Dict[int, Dict[int, float]] = {}
        self.root_id: int = -1
        self.doc_height: int = 0
        self._topo: Optional[List[int]] = None
        self._topo_computed = False

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------

    def add_node(self, nid: int, label: str, count: int) -> None:
        self.label[nid] = label
        self.count[nid] = count
        self.out.setdefault(nid, {})
        self._topo_computed = False

    def add_edge(self, src: int, dst: int, weight: float) -> None:
        self.out.setdefault(src, {})[dst] = weight
        self._topo_computed = False

    # ------------------------------------------------------------------
    # Basic queries
    # ------------------------------------------------------------------

    @property
    def num_nodes(self) -> int:
        return len(self.label)

    @property
    def num_edges(self) -> int:
        return sum(len(targets) for targets in self.out.values())

    def node_ids(self) -> Iterable[int]:
        return self.label.keys()

    def edges(self) -> Iterable[Tuple[int, int, float]]:
        for src, targets in self.out.items():
            for dst, weight in targets.items():
                yield src, dst, weight

    def children_of(self, nid: int) -> Dict[int, float]:
        return self.out.get(nid, {})

    def nodes_with_label(self, label: str) -> List[int]:
        return [nid for nid, lab in self.label.items() if lab == label]

    def parents_index(self) -> Dict[int, Set[int]]:
        """Reverse adjacency: node id -> set of parent node ids."""
        parents: Dict[int, Set[int]] = {nid: set() for nid in self.label}
        for src, dst, _ in self.edges():
            parents[dst].add(src)
        return parents

    # ------------------------------------------------------------------
    # Topology
    # ------------------------------------------------------------------

    def topological_order(self) -> Optional[List[int]]:
        """Topological order of nodes, or ``None`` if the synopsis is cyclic.

        Count-stable summaries of trees are always DAGs (a class is created
        strictly after all its child classes).  Compressed TreeSketches can
        acquire cycles when recursive labels are merged across levels; the
        evaluation algorithms fall back to height-bounded propagation then.
        """
        if self._topo_computed:
            return self._topo
        indeg: Dict[int, int] = {nid: 0 for nid in self.label}
        for _, dst, _ in self.edges():
            indeg[dst] += 1
        frontier = [nid for nid, deg in indeg.items() if deg == 0]
        order: List[int] = []
        while frontier:
            nid = frontier.pop()
            order.append(nid)
            for dst in self.out.get(nid, {}):
                indeg[dst] -= 1
                if indeg[dst] == 0:
                    frontier.append(dst)
        self._topo = order if len(order) == len(self.label) else None
        self._topo_computed = True
        return self._topo

    def is_dag(self) -> bool:
        return self.topological_order() is not None

    def validate(self) -> None:
        """Sanity-check internal consistency (used by tests)."""
        if self.root_id not in self.label:
            raise AssertionError("root_id is not a synopsis node")
        for src, dst, weight in self.edges():
            if src not in self.label or dst not in self.label:
                raise AssertionError(f"dangling edge {src}->{dst}")
            if weight <= 0:
                raise AssertionError(f"non-positive edge weight on {src}->{dst}")
        for nid, cnt in self.count.items():
            if cnt <= 0:
                raise AssertionError(f"non-positive extent size on node {nid}")

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"{type(self).__name__}(nodes={self.num_nodes}, "
            f"edges={self.num_edges}, root={self.root_id})"
        )
