"""Canonical-query LRU caching for serving approximate answers.

Interactive workloads repeat queries (dashboards, refinement loops), and a
TreeSketch is frozen once built: ``eval_query`` / ``estimate_selectivity``
are pure functions of ``(sketch, query)``.  :class:`QueryCache` therefore
memoizes both behind the query's *canonical text form* -- ``str(query)``
renders the twig deterministically, so structurally identical queries
parsed from different strings share one entry.

Result sketches are returned by reference: every consumer in this codebase
(:func:`repro.core.estimate.estimate_selectivity`,
:func:`repro.core.expand.expand_result`) treats them as read-only, so a
cached :class:`ResultSketch` is safely shared across calls.

Cache traffic is reported through the PR-1 observability registry as
``eval.cache.hits`` / ``eval.cache.misses`` / ``eval.cache.evictions``.
See docs/PERFORMANCE.md for sizing guidance.

The cache is **concurrency-safe**: the serving daemon
(:mod:`repro.serve`) hits one instance from its worker pool, so every
lookup/insert runs under an internal lock.  The lock is held across the
underlying ``eval_query`` too -- single-flight semantics: concurrent
requests for the same (or different) queries serialize rather than
duplicating evaluation work, which is the right trade on the single-core
hosts this targets.  Two readers deliberately sidestep that lock:
:meth:`QueryCache.info` falls back to a lock-free (GIL-atomic) snapshot
so the server's control plane never blocks behind a slow query, and
:meth:`QueryCache.peek_selectivity` answers from cache only -- the
degraded serving path that must not add evaluation work.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from repro.core.estimate import estimate_selectivity, estimate_selectivity_batch
from repro.core.evaluate import ResultSketch, eval_query
from repro.core.treesketch import TreeSketch
from repro.obs import get_metrics
from repro.query.twig import TwigQuery


class QueryCache:
    """LRU cache of query results over one frozen :class:`TreeSketch`.

    ``maxsize`` bounds the number of distinct canonical queries retained
    (least recently used evicted first); ``maxsize=None`` is unbounded.
    The sketch must not change out from under live entries: when the
    underlying synopsis is mutated or swapped (live maintenance,
    hot-reload), call :meth:`invalidate` -- it atomically drops every
    cached and seeded answer, rebinds the sketch, and bumps ``epoch`` so
    stale answers are never served.
    """

    def __init__(self, sketch: TreeSketch, maxsize: Optional[int] = 256) -> None:
        if maxsize is not None and maxsize < 1:
            raise ValueError("maxsize must be >= 1 (or None for unbounded)")
        self.sketch = sketch
        self.maxsize = maxsize
        # canonical text -> [ResultSketch, Optional[float] selectivity]
        self._entries: "OrderedDict[str, list]" = OrderedDict()
        # canonical text -> selectivity restored from a cache sidecar
        # (docs/STORAGE.md).  Seeded values answer selectivity lookups
        # without evaluation until the query is evaluated for real; they
        # never satisfy result(), which needs an actual ResultSketch.
        self._seeded: Dict[str, float] = {}
        # Guards entries *and* the hit/miss/eviction tallies; reentrant so
        # selectivity() can call _entry() while holding it.
        self._lock = threading.RLock()
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        # Bumped by invalidate(); consumers (serve registry) use it to
        # tell pre- from post-mutation answers.
        self.epoch = 0
        self.invalidations = 0

    # ------------------------------------------------------------------

    def _entry(self, query: TwigQuery) -> list:
        metrics = get_metrics()
        key = str(query)
        with self._lock:
            entry = self._entries.get(key)
            if entry is not None:
                self._entries.move_to_end(key)
                self.hits += 1
                metrics.counter("eval.cache.hits").inc()
                return entry
            self.misses += 1
            metrics.counter("eval.cache.misses").inc()
            entry = [eval_query(self.sketch, query), None]
            self._entries[key] = entry
            if self.maxsize is not None and len(self._entries) > self.maxsize:
                self._entries.popitem(last=False)
                self.evictions += 1
                metrics.counter("eval.cache.evictions").inc()
            return entry

    def result(self, query: TwigQuery) -> ResultSketch:
        """The (cached) result sketch of ``query``; treat as read-only."""
        return self._entry(query)[0]

    def _seeded_lookup(self, key: str) -> Optional[float]:
        """A sidecar-seeded selectivity for ``key``, counted as a hit.

        Caller must hold the lock and must have already missed in
        ``_entries`` -- live entries win over seeded values (they are
        equal anyway: both are the pure function of (sketch, query)
        computed by the same estimator).
        """
        value = self._seeded.get(key)
        if value is not None:
            self.hits += 1
            get_metrics().counter("eval.cache.hits").inc()
        return value

    def selectivity(self, query: TwigQuery) -> float:
        """The (cached) estimated binding-tuple count of ``query``."""
        with self._lock:
            if str(query) not in self._entries:
                seeded = self._seeded_lookup(str(query))
                if seeded is not None:
                    return seeded
            entry = self._entry(query)
            if entry[1] is None:
                entry[1] = estimate_selectivity(entry[0])
            return entry[1]

    def selectivity_batch(self, queries: "Sequence[TwigQuery]") -> "List[float]":
        """Selectivities for many queries in one pass, batch-estimated.

        The single-flight lock is held across the whole batch (one
        admission-bounded worker drives it in the serving daemon), result
        sketches come from the same LRU entries the scalar path uses, and
        the uncached selectivities are filled by
        :func:`repro.core.estimate.estimate_selectivity_batch` -- which is
        bitwise-equal to the scalar estimator, so mixing scalar and batch
        calls over one cache can never yield two answers for one query.
        Duplicate queries in ``queries`` share one cache entry and are
        estimated once.
        """
        with self._lock:
            seeded: Dict[int, float] = {}
            entries: list = []
            for i, query in enumerate(queries):
                if str(query) not in self._entries:
                    value = self._seeded_lookup(str(query))
                    if value is not None:
                        seeded[i] = value
                        entries.append(None)
                        continue
                entries.append(self._entry(query))
            missing = []
            for entry in entries:
                if (entry is not None and entry[1] is None
                        and all(e is not entry for e in missing)):
                    missing.append(entry)
            if missing:
                values = estimate_selectivity_batch(
                    [entry[0] for entry in missing])
                for entry, value in zip(missing, values):
                    entry[1] = value
            return [seeded[i] if entry is None else entry[1]
                    for i, entry in enumerate(entries)]

    def peek_selectivity(self, query: TwigQuery) -> Optional[float]:
        """Cached-only selectivity: ``None`` on a miss or lock contention.

        Never calls ``eval_query`` -- this is the serving daemon's
        degraded path, which must not add evaluation work to an already
        overloaded server.  A hit counts as a cache hit and memoizes the
        (cheap) selectivity over the already-cached result sketch; a
        miss leaves the miss tally untouched because nothing was
        evaluated.
        """
        if not self._lock.acquire(blocking=False):
            return None
        try:
            key = str(query)
            entry = self._entries.get(key)
            if entry is None:
                return self._seeded_lookup(key)
            self._entries.move_to_end(key)
            self.hits += 1
            get_metrics().counter("eval.cache.hits").inc()
            if entry[1] is None:
                entry[1] = estimate_selectivity(entry[0])
            return entry[1]
        finally:
            self._lock.release()

    # ------------------------------------------------------------------

    def seed_selectivities(self, entries: "Mapping[str, float]") -> int:
        """Warm the cache with canonical-text -> selectivity pairs.

        Used on daemon restart to restore the selectivities a previous
        process persisted to a ``.tsb.cache`` sidecar (docs/STORAGE.md).
        Seeded pairs are held outside the LRU (they cost a float each,
        not a result sketch) and answer ``selectivity`` /
        ``peek_selectivity`` / ``selectivity_batch`` lookups as cache
        hits until the query is evaluated for real.  Returns the number
        of pairs accepted.
        """
        accepted = {str(k): float(v) for k, v in entries.items()}
        with self._lock:
            self._seeded.update(accepted)
        return len(accepted)

    def export_selectivities(self) -> Dict[str, float]:
        """Every selectivity this cache can answer without evaluating.

        The persistable warm state: live LRU entries with a computed
        selectivity, plus any still-unevaluated seeded pairs.  Result
        sketches are deliberately not exported -- they are cheap to
        recompute and expensive to store.
        """
        with self._lock:
            out = dict(self._seeded)
            for key, entry in self._entries.items():
                if entry[1] is not None:
                    out[key] = entry[1]
            return out

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()

    def invalidate(self, sketch: Optional[TreeSketch] = None) -> int:
        """Drop every cached answer; the epoch-bump mutation barrier.

        Called when the underlying synopsis changed (live maintenance
        applied an update, or the registry swapped the sketch in place).
        Clears both the LRU entries *and* the sidecar-seeded
        selectivities -- seeded values were computed against the old
        synopsis too -- and rebinds ``self.sketch`` when a replacement is
        given, all under the single-flight lock so no in-flight request
        can observe the new sketch with an old answer.  Returns the new
        epoch.
        """
        with self._lock:
            self._entries.clear()
            self._seeded.clear()
            if sketch is not None:
                self.sketch = sketch
            self.epoch += 1
            self.invalidations += 1
            get_metrics().counter("eval.cache.invalidations").inc()
            return self.epoch

    def info(self) -> dict:
        """Hit/miss/eviction totals and current occupancy, for reporting.

        Never blocks: the single-flight lock is held across whole
        ``eval_query`` calls, so a blocking read here would stall the
        serving daemon's control plane (``stats``/``list_sketches``)
        behind a slow query.  If the lock is busy the tallies are read
        without it -- int and ``len`` reads are atomic under the GIL, so
        the worst case is a snapshot one update stale.
        """
        acquired = self._lock.acquire(blocking=False)
        try:
            return {
                "hits": self.hits,
                "misses": self.misses,
                "evictions": self.evictions,
                "size": len(self._entries),
                "maxsize": self.maxsize,
                "seeded": len(self._seeded),
                "epoch": self.epoch,
                "invalidations": self.invalidations,
            }
        finally:
            if acquired:
                self._lock.release()


def resolve_cache(
    synopsis, cache: "Optional[QueryCache | int]"
) -> Optional[QueryCache]:
    """Normalize a ``cache`` argument: pass through, build, or disable.

    Accepts an existing :class:`QueryCache`, an int size (a fresh cache of
    that capacity), or None.  Returns None for synopses without the
    TreeSketch evaluation interface (the XSketch baseline estimates
    through its own code path).
    """
    if cache is None:
        return None
    if isinstance(cache, QueryCache):
        return cache
    if not isinstance(synopsis, TreeSketch):
        return None
    return QueryCache(synopsis, maxsize=int(cache))
