"""EVALQUERY / EVALEMBED: approximate twig evaluation over a TreeSketch
(paper Figs. 7-8).

The query is processed pre-order over the query tree.  For every current
binding -- a pair ``(u, q)`` of synopsis node and query variable -- and
every child variable ``q_c``, the engine finds the synopsis embeddings of
``path(q, q_c)`` starting at ``u`` and computes, per terminal synopsis node
``v``, the expected number of descendants ``k`` each element of ``u`` has
along the path (EVALEMBED): the product of average edge counts along the
embedding, scaled by the selectivity of every branching predicate, where
branch selectivity uses the inclusion-exclusion principle over per-
embedding descendant fractions.  The output is a *result sketch*: a graph
whose nodes are ``(u, q)`` pairs with fractional average edge counts,
summarizing the approximate nesting tree.

Implementation note: rather than materializing embeddings one by one (their
number can be exponential in a DAG), we aggregate with dynamic programming
over synopsis nodes -- the sum over embeddings of a product of edge counts
distributes over the graph structure.  Per-terminal totals are exactly the
aggregated ``count(u_Q, v_Q)`` increments of Fig. 7, line 12.  On a cyclic
synopsis (possible after aggressive merging of recursive labels) the
descendant-closure falls back to propagation bounded by the document
height, so evaluation always terminates; on DAGs (all count-stable
summaries) the closure is exact.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.core.treesketch import TreeSketch
from repro.obs import get_metrics, get_tracer
from repro.query.path import Axis, Path, ValueTest
from repro.query.twig import TwigQuery

# A result-sketch node: (synopsis node id, query variable).
RSKey = Tuple[int, str]


class ResultSketch:
    """TreeSketch-style summary of the approximate nesting tree.

    Nodes are ``(u, q)`` pairs; each node is inserted once per pair (the
    Fig. 7 optimization that bounds the result by ``O(|TS| * |Q|)``).
    Edge weights are average child counts, possibly fractional.
    """

    def __init__(self, query: TwigQuery, root_key: RSKey, root_label: str) -> None:
        self.query = query
        self.root_key = root_key
        self.label: Dict[RSKey, str] = {root_key: root_label}
        self.out: Dict[RSKey, Dict[RSKey, float]] = {root_key: {}}
        # Bindings per query variable, in insertion order.
        self.bind: Dict[str, List[RSKey]] = {"q0": [root_key]}
        self.empty = False

    def add_binding(self, parent: RSKey, key: RSKey, label: str, k: float) -> None:
        if key not in self.label:
            self.label[key] = label
            self.out[key] = {}
            self.bind.setdefault(key[1], []).append(key)
        edges = self.out[parent]
        edges[key] = edges.get(key, 0.0) + k

    @property
    def num_nodes(self) -> int:
        return len(self.label)

    @property
    def num_edges(self) -> int:
        return sum(len(e) for e in self.out.values())

    def mark_empty(self) -> None:
        """Record that the (approximate) answer is empty."""
        self.empty = True
        self.out = {self.root_key: {}}
        self.label = {self.root_key: self.label[self.root_key]}
        self.bind = {"q0": [self.root_key]}

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"ResultSketch(nodes={self.num_nodes}, edges={self.num_edges})"


class _SketchEvalContext:
    """Per-evaluation memoization over (synopsis node, path object)."""

    def __init__(self, sketch: TreeSketch) -> None:
        self.sketch = sketch
        self.topo = sketch.topological_order()
        self.topo_pos = (
            {nid: i for i, nid in enumerate(self.topo)} if self.topo else None
        )
        # (node id, id(path)) -> {terminal node id -> expected count}
        self.path_counts: Dict[Tuple[int, int], Dict[int, float]] = {}
        # (node id, id(path)) -> branch selectivity in [0, 1]
        self.selectivity: Dict[Tuple[int, int], float] = {}
        # Synopsis nodes touched by the path DP (observability counter).
        self.node_visits = 0


def eval_query(sketch: TreeSketch, query: TwigQuery) -> ResultSketch:
    """EVALQUERY (Fig. 7): approximate ``query`` over ``sketch``.

    Returns the result sketch summarizing the approximate nesting tree; if
    some solid query edge has no bindings the result is marked empty.
    """
    ctx = _SketchEvalContext(sketch)
    metrics = get_metrics()
    metrics.counter("eval.queries").inc()
    with get_tracer().span("eval.query") as span:
        result = _eval_query(ctx, sketch, query)
        span.annotate(nodes=result.num_nodes, edges=result.num_edges,
                      empty=result.empty)
    metrics.counter("eval.node_visits").inc(ctx.node_visits)
    return result


def _eval_query(
    ctx: _SketchEvalContext, sketch: TreeSketch, query: TwigQuery
) -> ResultSketch:
    root_key: RSKey = (sketch.root_id, "q0")
    result = ResultSketch(query, root_key, sketch.label[sketch.root_id])

    for qnode in query.nodes:  # pre-order
        bindings = result.bind.get(qnode.var, [])
        for qc in qnode.children:
            for u_key in bindings:
                u = u_key[0]
                per_terminal = _path_counts(ctx, u, qc.path)
                for v, k in per_terminal.items():
                    if k <= 0.0:
                        continue
                    result.add_binding(u_key, (v, qc.var), sketch.label[v], k)
            if not qc.optional and not result.bind.get(qc.var):
                result.mark_empty()
                return result
    return result


# ----------------------------------------------------------------------
# EVALEMBED as dynamic programming over the synopsis graph
# ----------------------------------------------------------------------


def _path_counts(ctx: _SketchEvalContext, start: int, path: Path) -> Dict[int, float]:
    """Expected descendants per terminal synopsis node along ``path``.

    ``result[v]`` equals the sum over all embeddings ``start/../v`` of the
    product of average edge counts, scaled by branch-predicate
    selectivities at the landing node of each step (the aggregation of
    EVALEMBED over the embedding set ``E`` of Fig. 7, lines 5-8).
    """
    key = (start, id(path))
    cached = ctx.path_counts.get(key)
    if cached is not None:
        return cached

    sketch = ctx.sketch
    out_get = sketch.out.get
    label_of = sketch.label
    current: Dict[int, float] = {start: 1.0}
    for step in path.steps:
        nxt: Dict[int, float] = {}
        nxt_get = nxt.get
        matches = step.matches_label
        if step.axis is Axis.CHILD:
            for x, value in current.items():
                edges = out_get(x)
                if not edges:
                    continue
                for y, avg in edges.items():
                    if matches(label_of[y]):
                        nxt[y] = nxt_get(y, 0.0) + value * avg
        else:
            reach = _descendant_closure(ctx, current)
            for y, value in reach.items():
                if matches(label_of[y]):
                    nxt[y] = nxt_get(y, 0.0) + value
        if step.predicates:
            for y in list(nxt):
                sel = 1.0
                for pred in step.predicates:
                    if isinstance(pred, ValueTest):
                        sel *= _value_selectivity(ctx, y, pred)
                    else:
                        sel *= _branch_selectivity(ctx, y, pred)
                    if sel == 0.0:
                        break
                if sel == 0.0:
                    del nxt[y]
                else:
                    nxt[y] *= sel
        current = nxt
        ctx.node_visits += len(current)
        if not current:
            break

    ctx.path_counts[key] = current
    return current


def _descendant_closure(
    ctx: _SketchEvalContext, seeds: Dict[int, float]
) -> Dict[int, float]:
    """Total value reaching each node via >= 1 synopsis edge from ``seeds``.

    ``g[y] = sum over edges (x -> y) of (seeds[x] + g[x]) * avg(x, y)``.
    Solved in one pass in topological order on DAGs; on cyclic synopses,
    by value propagation bounded by the document height.
    """
    sketch = ctx.sketch
    out_get = sketch.out.get
    if ctx.topo is not None:
        g: Dict[int, float] = {}
        g_get = g.get
        seeds_get = seeds.get
        visits = 0
        for x in ctx.topo:
            inbound = seeds_get(x, 0.0) + g_get(x, 0.0)
            if inbound == 0.0:
                continue
            visits += 1
            edges = out_get(x)
            if not edges:
                continue
            for y, avg in edges.items():
                g[y] = g_get(y, 0.0) + inbound * avg
        ctx.node_visits += visits
        return g

    # Cyclic fallback: propagate frontier values for at most `height` hops.
    g = {}
    g_get = g.get
    frontier = dict(seeds)
    for _ in range(max(1, sketch.doc_height)):
        nxt: Dict[int, float] = {}
        nxt_get = nxt.get
        for x, value in frontier.items():
            if value == 0.0:
                continue
            edges = out_get(x)
            if not edges:
                continue
            for y, avg in edges.items():
                contribution = value * avg
                nxt[y] = nxt_get(y, 0.0) + contribution
                g[y] = g_get(y, 0.0) + contribution
        if not nxt:
            break
        frontier = nxt
    return g


def _branch_selectivity(ctx: _SketchEvalContext, node: int, pred: Path) -> float:
    """Selectivity of a branching predicate ``[pred]`` at a synopsis node.

    Per EVALEMBED (Fig. 8, lines 2-12): compute the per-terminal expected
    descendant counts ``N``; if any count is >= 1 every element satisfies
    the branch (selectivity 1); otherwise each count is read as the
    fraction of elements with a matching embedding and the fractions are
    combined with the inclusion-exclusion principle --
    ``1 - prod(1 - k_j)`` under edge-distribution independence.
    """
    key = (node, id(pred))
    cached = ctx.selectivity.get(key)
    if cached is not None:
        return cached

    # Synopses with richer per-node statistics (the twig-XSketch baseline's
    # joint edge histograms) may answer the branch probability directly.
    hook = getattr(ctx.sketch, "branch_probability", None)
    if hook is not None:
        direct = hook(node, pred)
        if direct is not None:
            direct = min(1.0, max(0.0, direct))
            ctx.selectivity[key] = direct
            return direct

    counts = _path_counts(ctx, node, pred)
    if not counts:
        sel = 0.0
    elif any(k >= 1.0 for k in counts.values()):
        sel = 1.0
    else:
        # Fig. 8 sums the counts of embeddings ending at the same synopsis
        # node (line 5).  For consistency under refinement we extend the
        # grouping to same-label terminals: clusters of one label
        # partition that label's elements, so fractions that total below
        # one are *disjoint* alternatives and add up -- treating them as
        # independent would systematically underestimate on fine synopses
        # (a 0.5/0.3 cast split must give 0.8, not 0.65).  A label group
        # totalling >= 1 implies genuine overlap (elements with several
        # matches), where the paper's independence products apply
        # unchanged -- this keeps Example 4.1's 0.6/0.7 -> 0.88 intact.
        by_label: Dict[str, List[float]] = {}
        for terminal, k in counts.items():
            by_label.setdefault(ctx.sketch.label[terminal], []).append(k)
        miss = 1.0
        for group in by_label.values():
            total = sum(group)
            if total >= 1.0:
                group_miss = 1.0
                for k in group:
                    group_miss *= 1.0 - k
                group_sel = 1.0 - group_miss
            else:
                group_sel = total
            miss *= 1.0 - group_sel
        sel = 1.0 - miss
    sel = min(1.0, max(0.0, sel))
    ctx.selectivity[key] = sel
    return sel


def _value_selectivity(ctx: _SketchEvalContext, node: int, test: ValueTest) -> float:
    """Selectivity of a value predicate ``[path = "v"]`` at a synopsis node.

    Per terminal ``t`` of the structural path: an element has ``k_t``
    descendants there, each carrying the value with probability ``p_t``
    (from the node's value summary -- see :mod:`repro.values`); under
    edge/value independence the element misses along ``t`` with
    probability ``(1 - p_t)**k_t`` (``1 - k_t p_t`` for fractional
    ``k_t < 1``), and the per-terminal misses multiply.  Unannotated
    synopses fall back to the structural selectivity (``p_t = 1``), an
    upper bound.
    """
    key = (node, id(test))
    cached = ctx.selectivity.get(key)
    if cached is not None:
        return cached

    counts = _path_counts(ctx, node, test.path)
    hook = getattr(ctx.sketch, "value_probability", None)
    if not counts:
        sel = 0.0
    else:
        miss = 1.0
        for t, k in counts.items():
            p = hook(t, test.value) if hook is not None else None
            if p is None:
                p = 1.0  # structural fallback
            if p <= 0.0:
                continue
            if k >= 1.0:
                miss *= (1.0 - p) ** k
            else:
                miss *= max(0.0, 1.0 - k * p)
        sel = 1.0 - miss
    sel = min(1.0, max(0.0, sel))
    ctx.selectivity[key] = sel
    return sel
